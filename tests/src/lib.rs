//! Integration-test-only package; see `tests/` for the suites.
