//! Observability properties: the span set an execution emits mirrors the
//! executed DAG, span timestamps respect the dependency order, the critical
//! path is sandwiched by wall clock and the per-task time sum, and the
//! structural digest is a pure function of (workflow, seed) — never of the
//! thread count the run happened to use.

use proptest::prelude::*;
use schedflow_dataflow::obs::{KIND_QUEUE, KIND_RUN};
use schedflow_dataflow::{
    critical_path, structural_digest, RunOptions, Runner, StageKind, Telemetry, Workflow,
};
use std::collections::BTreeSet;

/// Deterministic layered workflow: `widths[l]` tasks in layer `l`, each
/// consuming every artifact of the previous layer and producing one `u64`.
fn layered(widths: &[usize]) -> Workflow {
    let mut wf = Workflow::new();
    let mut prev: Vec<schedflow_dataflow::Artifact<u64>> = Vec::new();
    for (l, &w) in widths.iter().enumerate() {
        let mut layer = Vec::new();
        for t in 0..w {
            let out = wf.value::<u64>(&format!("v-{l}-{t}"));
            let inputs: Vec<_> = prev.iter().map(|a| a.id()).collect();
            let prev_arts = prev.clone();
            wf.task(
                &format!("t-{l}-{t}"),
                StageKind::Static,
                inputs,
                [out.id()],
                move |ctx| {
                    let mut acc = ((l as u64) << 32) | t as u64;
                    for a in &prev_arts {
                        acc = acc.wrapping_mul(31).wrapping_add(*ctx.get(*a)?);
                    }
                    ctx.put(out, acc)
                },
            );
            layer.push(out);
        }
        prev = layer;
    }
    for a in &prev {
        wf.retain(a.id());
    }
    wf
}

/// Every task name `layered(widths)` creates.
fn task_names(widths: &[usize]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (l, &w) in widths.iter().enumerate() {
        for t in 0..w {
            names.insert(format!("t-{l}-{t}"));
        }
    }
    names
}

/// Run the layered workflow traced and return its telemetry.
fn run_traced(widths: &[usize], threads: usize, seed: u64) -> Telemetry {
    let runner = Runner::new(layered(widths)).expect("layered workflow is structurally valid");
    let report = runner.run(
        &RunOptions::with_threads(threads)
            .tracing(true)
            .with_trace_seed(seed),
    );
    assert!(
        report.is_success(),
        "workflow failed: {:?}",
        report.failed()
    );
    report.telemetry
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The span tree is the executed DAG: one run span per task, one
    /// queue-wait per task, every child span parented to a run span of its
    /// own task, and the recorded edges exactly the layer-to-layer
    /// dependencies.
    #[test]
    fn span_tree_mirrors_the_executed_dag(
        widths in proptest::collection::vec(1usize..4, 2..5),
        seed in 0u64..1000,
    ) {
        let t = run_traced(&widths, 4, seed);
        let expected = task_names(&widths);
        let ran: BTreeSet<String> =
            t.spans_of(KIND_RUN).map(|s| s.task.clone()).collect();
        prop_assert_eq!(&ran, &expected);
        let queued: BTreeSet<String> =
            t.spans_of(KIND_QUEUE).map(|s| s.task.clone()).collect();
        prop_assert_eq!(&queued, &expected);

        let mut run_of: std::collections::HashMap<u64, &str> =
            std::collections::HashMap::new();
        for s in t.spans_of(KIND_RUN) {
            run_of.insert(s.id, &s.task);
        }
        for s in &t.spans {
            if s.parent != 0 {
                prop_assert_eq!(
                    run_of.get(&s.parent).copied(),
                    Some(s.task.as_str()),
                    "child span {} must hang off its task's run span",
                    s.kind
                );
            }
        }

        let mut expected_edges = BTreeSet::new();
        for l in 1..widths.len() {
            for i in 0..widths[l] {
                for j in 0..widths[l - 1] {
                    expected_edges.insert((format!("t-{}-{j}", l - 1), format!("t-{l}-{i}")));
                }
            }
        }
        let edges: BTreeSet<(String, String)> = t
            .edges
            .iter()
            .map(|e| (e.from.clone(), e.to.clone()))
            .collect();
        prop_assert_eq!(edges, expected_edges);
    }

    /// Timestamps respect the dependency order: a consumer's run span never
    /// starts before every producer's run span has ended.
    #[test]
    fn timestamps_respect_dependency_order(
        widths in proptest::collection::vec(1usize..4, 2..5),
        seed in 0u64..1000,
    ) {
        let t = run_traced(&widths, 4, seed);
        for e in &t.edges {
            let from_end = t
                .spans_of(KIND_RUN)
                .filter(|s| s.task == e.from)
                .map(|s| s.end_ms)
                .fold(0.0_f64, f64::max);
            let to_start = t
                .spans_of(KIND_RUN)
                .filter(|s| s.task == e.to)
                .map(|s| s.start_ms)
                .fold(f64::INFINITY, f64::min);
            prop_assert!(
                from_end <= to_start + 0.5,
                "{} ended at {from_end} after {} started at {to_start}",
                e.from, e.to
            );
        }
    }

    /// The sandwich: critical path ≤ wall clock ≤ Σ per-task times (with
    /// scheduling slack), and the path visits at least one task per layer.
    #[test]
    fn critical_path_is_bounded_by_wall_clock(
        widths in proptest::collection::vec(1usize..4, 2..5),
        seed in 0u64..1000,
    ) {
        let t = run_traced(&widths, 4, seed);
        let cp = critical_path(&t);
        prop_assert!(cp.length_ms <= t.makespan_ms + 5.0);
        prop_assert!(t.makespan_ms <= t.sum_of_task_times_ms() * 1.10 + 250.0);
        prop_assert_eq!(cp.steps.len(), widths.len());
        prop_assert!(cp.headroom_ms() >= 0.0);
    }

    /// The structural digest depends on (workflow, seed) only: identical at
    /// 1 and 4 threads, different under a different seed.
    #[test]
    fn structural_digest_is_thread_count_invariant(
        widths in proptest::collection::vec(1usize..4, 2..5),
        seed in 0u64..1000,
    ) {
        let serial = run_traced(&widths, 1, seed);
        let parallel = run_traced(&widths, 4, seed);
        prop_assert_eq!(structural_digest(&serial), structural_digest(&parallel));
        let reseeded = run_traced(&widths, 1, seed ^ 0xDEAD_BEEF);
        prop_assert_ne!(structural_digest(&serial), structural_digest(&reseeded));
    }
}
