//! Property tests over the dataflow engine: random layered DAGs must
//! validate, execute to completion on any thread count, propagate values
//! correctly, and honor failure semantics.

use proptest::prelude::*;
use schedflow_dataflow::{Artifact, RunOptions, Runner, StageKind, TaskStatus, Workflow};

/// A random layered DAG description: `edges[layer][node]` lists the parent
/// indices (into the previous layer) each node consumes.
#[derive(Debug, Clone)]
struct DagSpec {
    layers: Vec<Vec<Vec<usize>>>,
}

fn arb_dag() -> impl Strategy<Value = DagSpec> {
    // 2..5 layers, 1..6 nodes each, each node consuming 0..=parents edges.
    proptest::collection::vec(1usize..6, 2..5).prop_flat_map(|sizes| {
        let mut layer_strategies = Vec::new();
        for (li, &size) in sizes.iter().enumerate() {
            let parents = if li == 0 { 0 } else { sizes[li - 1] };
            let node = proptest::collection::vec(0..parents.max(1), 0..=parents.min(3));
            layer_strategies.push(proptest::collection::vec(node, size..=size));
        }
        layer_strategies.prop_map(|layers| DagSpec { layers })
    })
}

/// Build the workflow: each node sums its parents' values plus one.
/// Returns the output artifacts per layer. With `retain_all`, every value
/// artifact is pinned past the lifetime tracker so it can be read post-run;
/// without it, consumed artifacts are dropped after their last consumer.
fn build(spec: &DagSpec, retain_all: bool) -> (Workflow, Vec<Vec<Artifact<u64>>>) {
    let mut wf = Workflow::new();
    let mut arts: Vec<Vec<Artifact<u64>>> = Vec::new();
    for (li, layer) in spec.layers.iter().enumerate() {
        let mut layer_arts = Vec::new();
        for (ni, parents) in layer.iter().enumerate() {
            let out = wf.value::<u64>(&format!("v-{li}-{ni}"));
            if retain_all {
                wf.retain(out.id());
            }
            layer_arts.push(out);
            let parent_arts: Vec<Artifact<u64>> = if li == 0 {
                Vec::new()
            } else {
                parents.iter().map(|&p| arts[li - 1][p]).collect()
            };
            let inputs: Vec<_> = parent_arts.iter().map(|a| a.id()).collect();
            wf.task(
                &format!("t-{li}-{ni}"),
                if ni % 2 == 0 {
                    StageKind::Static
                } else {
                    StageKind::UserDefined
                },
                inputs,
                [out.id()],
                move |ctx| {
                    let mut sum = 1u64;
                    for p in &parent_arts {
                        sum += *ctx.get(*p)?;
                    }
                    ctx.put(out, sum)
                },
            );
        }
        arts.push(layer_arts);
    }
    (wf, arts)
}

/// Reference (sequential) evaluation of the same DAG.
fn reference(spec: &DagSpec) -> Vec<Vec<u64>> {
    let mut values: Vec<Vec<u64>> = Vec::new();
    for (li, layer) in spec.layers.iter().enumerate() {
        let mut row = Vec::new();
        for parents in layer {
            let mut sum = 1u64;
            if li > 0 {
                for &p in parents {
                    sum += values[li - 1][p];
                }
            }
            row.push(sum);
        }
        values.push(row);
    }
    values
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prop_random_dags_execute_correctly(spec in arb_dag(), threads in 1usize..5) {
        let (wf, arts) = build(&spec, true);
        let depths = wf.validate().expect("layered DAGs are acyclic");
        prop_assert_eq!(depths.len(), spec.layers.iter().map(Vec::len).sum::<usize>());
        let runner = Runner::new(wf).unwrap();
        let report = runner.run(&RunOptions::with_threads(threads));
        prop_assert!(report.is_success(), "{:?}", report.failed());
        let expected = reference(&spec);
        for (li, layer) in arts.iter().enumerate() {
            for (ni, art) in layer.iter().enumerate() {
                let got = runner
                    .store()
                    .get_any(art.id())
                    .and_then(|v| v.downcast::<u64>().ok())
                    .map(|v| *v);
                prop_assert_eq!(got, Some(expected[li][ni]), "node {}-{}", li, ni);
            }
        }
    }

    #[test]
    fn prop_lifetime_drops_exactly_the_consumed_artifacts(spec in arb_dag(), threads in 1usize..5) {
        // Without retains, every artifact with at least one consumer must be
        // dropped after the run, and every unconsumed (terminal) artifact
        // must survive with the correct value.
        let (wf, arts) = build(&spec, false);
        let mut consumed: Vec<Vec<bool>> =
            spec.layers.iter().map(|l| vec![false; l.len()]).collect();
        for li in 1..spec.layers.len() {
            for parents in &spec.layers[li] {
                for &p in parents {
                    consumed[li - 1][p] = true;
                }
            }
        }
        let runner = Runner::new(wf).unwrap();
        let report = runner.run(&RunOptions::with_threads(threads));
        prop_assert!(report.is_success(), "{:?}", report.failed());
        let expected = reference(&spec);
        for (li, layer) in arts.iter().enumerate() {
            for (ni, art) in layer.iter().enumerate() {
                let got = runner
                    .store()
                    .get_any(art.id())
                    .and_then(|v| v.downcast::<u64>().ok())
                    .map(|v| *v);
                if consumed[li][ni] {
                    prop_assert_eq!(got, None, "consumed {}-{} must be dropped", li, ni);
                } else {
                    prop_assert_eq!(got, Some(expected[li][ni]), "terminal {}-{}", li, ni);
                }
            }
        }
    }

    #[test]
    fn prop_failure_skips_exactly_the_descendants(spec in arb_dag(), threads in 1usize..4) {
        // Fail every node of layer 0; everything transitively reachable from
        // layer 0 must be skipped, unreachable nodes must succeed.
        let mut wf = Workflow::new();
        let mut arts: Vec<Vec<Artifact<u64>>> = Vec::new();
        for (li, layer) in spec.layers.iter().enumerate() {
            let mut layer_arts = Vec::new();
            for (ni, parents) in layer.iter().enumerate() {
                let out = wf.value::<u64>(&format!("v-{li}-{ni}"));
                layer_arts.push(out);
                let parent_arts: Vec<Artifact<u64>> = if li == 0 {
                    Vec::new()
                } else {
                    parents.iter().map(|&p| arts[li - 1][p]).collect()
                };
                let inputs: Vec<_> = parent_arts.iter().map(|a| a.id()).collect();
                let fail = li == 0;
                wf.task(&format!("t-{li}-{ni}"), StageKind::Static, inputs, [out.id()], move |ctx| {
                    if fail {
                        return Err("root failure".to_owned());
                    }
                    let mut sum = 1u64;
                    for p in &parent_arts {
                        sum += *ctx.get(*p)?;
                    }
                    ctx.put(out, sum)
                });
            }
            arts.push(layer_arts);
        }

        // Reachability from layer 0 in the spec.
        let mut tainted: Vec<Vec<bool>> = spec
            .layers
            .iter()
            .enumerate()
            .map(|(li, l)| vec![li == 0; l.len()])
            .collect();
        for li in 1..spec.layers.len() {
            for (ni, parents) in spec.layers[li].iter().enumerate() {
                if parents.iter().any(|&p| tainted[li - 1][p]) {
                    tainted[li][ni] = true;
                }
            }
        }

        let runner = Runner::new(wf).unwrap();
        let report = runner.run(&RunOptions::with_threads(threads));
        let mut idx = 0;
        for (li, layer_tainted) in tainted.iter().enumerate() {
            for (ni, &is_tainted) in layer_tainted.iter().enumerate() {
                let status = &report.tasks[idx].status;
                idx += 1;
                if li == 0 {
                    prop_assert!(matches!(status, TaskStatus::Failed(_)), "{li}-{ni}: {status:?}");
                } else if is_tainted {
                    prop_assert_eq!(status.clone(), TaskStatus::Skipped, "{}-{}", li, ni);
                } else {
                    prop_assert_eq!(status.clone(), TaskStatus::Succeeded, "{}-{}", li, ni);
                }
            }
        }
    }
}
