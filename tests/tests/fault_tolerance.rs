//! Fault-tolerance integration tests: seeded chaos drills over the full
//! workflow, checkpoint/resume after a partial run, and engine-level
//! properties of retry + skip propagation.
//!
//! Every chaos outcome below is deterministic: injections are a pure
//! function of `(seed, task name, attempt)`, so the asserted failure sets
//! replay identically on every platform.

use proptest::prelude::*;
use schedflow_core::{run, CoreError, System, WorkflowConfig, MANIFEST_FILE};
use schedflow_dataflow::{
    Artifact, ChaosConfig, ChaosScope, RetryPolicy, RunManifest, RunOptions, Runner, StageKind,
    TaskStatus, Workflow,
};

fn tiny_config(tag: &str) -> WorkflowConfig {
    let base = std::env::temp_dir().join(format!("schedflow-ft-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let mut cfg = WorkflowConfig::new(System::Andes);
    cfg.from = (2024, 1);
    cfg.to = (2024, 2);
    cfg.scale = 0.02;
    cfg.threads = 4;
    cfg.seed = 5;
    cfg.cache_dir = base.join("cache");
    cfg.data_dir = base.join("data");
    cfg
}

fn cleanup(cfg: &WorkflowConfig) {
    let _ = std::fs::remove_dir_all(cfg.cache_dir.parent().unwrap());
}

/// The acceptance drill: seeded p≈0.3 transient chaos plus the default
/// retry budget heals every stage, and the dashboard comes out fully real.
#[test]
fn chaos_with_retries_recovers_end_to_end() {
    let mut cfg = tiny_config("heal");
    cfg.fault.chaos = Some(ChaosConfig::failing(11, 0.3));
    cfg.fault.retries = 8;
    cfg.fault.retry_base_delay_ms = 1;
    let outcome = run(&cfg).unwrap_or_else(|e| panic!("chaos run should heal: {e}"));
    assert!(outcome.report.is_success());
    let retried = outcome.report.retried();
    assert!(!retried.is_empty(), "p=0.3 must force at least one retry");
    assert!(outcome.report.total_attempts() > outcome.report.tasks.len() as u32 - 2);

    // Every dashboard tab is a real chart — no placeholders survived. The
    // extra panels are the post-run "Run report", "Policy analysis", and
    // "Timeline" tabs.
    let panels_dir = cfg.data_dir.join("dashboard").join("panels");
    let panels: Vec<_> = std::fs::read_dir(&panels_dir).unwrap().collect();
    assert_eq!(panels.len(), schedflow_core::PLOT_STAGES.len() + 3);
    for entry in panels {
        let html = std::fs::read_to_string(entry.unwrap().path()).unwrap();
        assert!(
            !html.contains("Chart unavailable"),
            "healed run must not leave placeholder tabs"
        );
    }
    cleanup(&cfg);
}

/// Same chaos without retries: the run fails with a structured error that
/// names the failed stages, and downstream work is skipped, not attempted.
#[test]
fn chaos_without_retries_fails_and_skips() {
    let mut cfg = tiny_config("noheal");
    cfg.fault.chaos = Some(ChaosConfig::failing(11, 0.4));
    match run(&cfg) {
        Err(CoreError::StageFailed { failed, report }) => {
            assert!(!failed.is_empty());
            assert!(!report.failed().is_empty());
            assert!(report.skipped() > 0, "descendants of failures are skipped");
            assert_eq!(report.tasks.iter().map(|t| t.attempts).max(), Some(1));
        }
        other => panic!("expected StageFailed, got {other:?}", other = other.err()),
    }
    cleanup(&cfg);
}

/// Partial upstream failure degrades the dashboard instead of losing tabs:
/// with seed 20 / p=0.35 exactly plot-waits, plot-states, and plot-dynamics
/// fail on their only attempt while the data spine and the (failure-
/// tolerant) dashboard task succeed.
#[test]
fn partial_failure_keeps_dashboard_complete_with_placeholders() {
    let mut cfg = tiny_config("degrade");
    cfg.fault.chaos = Some(ChaosConfig::failing(20, 0.35));
    let err = run(&cfg).err().expect("failed plots must fail the run");
    assert!(matches!(err, CoreError::StageFailed { .. }));

    let panels_dir = cfg.data_dir.join("dashboard").join("panels");
    for stage in schedflow_core::PLOT_STAGES {
        let html = std::fs::read_to_string(panels_dir.join(format!("{stage}.html")))
            .unwrap_or_else(|e| panic!("tab {stage} missing from degraded dashboard: {e}"));
        let placeholder = html.contains("Chart unavailable");
        let expect_placeholder = matches!(stage, "waits" | "states" | "dynamics");
        assert_eq!(
            placeholder, expect_placeholder,
            "stage {stage}: placeholder={placeholder}"
        );
        if expect_placeholder {
            assert!(html.contains(&format!("the plot-{stage} stage failed upstream")));
        }
    }
    cleanup(&cfg);
}

/// Checkpoint/resume: a run interrupted after the fetch stages (simulated by
/// failing every user-defined stage) leaves a manifest from which a resumed
/// run replays the file-producing successes and re-executes only the rest.
#[test]
fn resume_reexecutes_only_unfinished_tasks() {
    let mut cfg = tiny_config("resume");
    cfg.use_cache = false; // so resume, not mtime caching, explains reuse
    cfg.fault.chaos = Some(ChaosConfig {
        fail_p: 1.0,
        scope: ChaosScope::UserDefined,
        ..ChaosConfig::default()
    });

    let err = run(&cfg).err().expect("all AI stages fail");
    assert!(matches!(err, CoreError::StageFailed { .. }));
    let manifest_path = cfg.data_dir.join(MANIFEST_FILE);
    let first = RunManifest::load(&manifest_path).expect("checkpoint persisted on failure");
    let obtain: Vec<_> = first
        .tasks
        .iter()
        .filter(|t| t.name.starts_with("obtain-"))
        .collect();
    assert_eq!(obtain.len(), 2);
    for t in &obtain {
        assert_eq!(t.status, "succeeded");
        assert_eq!(t.attempts, 1);
        assert!(t.outputs_all_files, "obtain stages are file-producing");
    }
    assert!(first.tasks.iter().any(|t| t.status == "failed"));
    assert!(first.tasks.iter().any(|t| t.status == "skipped"));

    // Second run: chaos off, resume on.
    cfg.fault.chaos = None;
    cfg.fault.resume = true;
    let outcome = run(&cfg).unwrap_or_else(|e| panic!("resumed run should succeed: {e}"));
    assert!(outcome.report.is_success());
    // Three manifest claims are honored: both obtain stages and the
    // (failure-tolerant) dashboard task, whose checksummed index.html from
    // the interrupted run verifies on disk.
    let resumable = |name: &str| name.starts_with("obtain-") || name == "dashboard";
    assert_eq!(
        outcome.report.resumed(),
        3,
        "obtain stages + dashboard replayed"
    );
    for t in &outcome.report.tasks {
        if resumable(&t.name) {
            assert_eq!(t.status, TaskStatus::Resumed, "{}", t.name);
            assert_eq!(t.attempts, 0, "resumed tasks never re-execute");
        } else {
            assert_eq!(t.status, TaskStatus::Succeeded, "{}", t.name);
            assert!(t.attempts >= 1);
        }
    }
    let second = RunManifest::load(&manifest_path).unwrap();
    for t in &second.tasks {
        if resumable(&t.name) {
            assert_eq!(
                (t.status.as_str(), t.attempts),
                ("resumed", 0),
                "{}",
                t.name
            );
        } else {
            assert_eq!(t.status, "succeeded");
        }
    }
    cleanup(&cfg);
}

/// Retry/chaos span coverage: under seeded I/O chaos a task whose first
/// attempt dies on a store write emits one run span per attempt — the
/// failing attempt marked `ok=false` with its failing artifact-write child —
/// plus the retry-backoff span bridging them.
#[test]
fn chaos_retries_emit_one_span_per_attempt() {
    use schedflow_dataflow::obs::{KIND_RETRY, KIND_RUN, KIND_WRITE};
    use schedflow_dataflow::TaskError;

    // Probe the pure fault schedule for a seed where the task's first
    // attempt fails its first write and the second attempt succeeds — the
    // test then asserts on a *certain* schedule, never on luck.
    let chaos = (0..10_000u64)
        .map(|seed| ChaosConfig {
            seed,
            io_eio_p: 0.5,
            ..ChaosConfig::default()
        })
        .find(|c| {
            c.io_fault("flaky-write", 1, 0).is_some() && c.io_fault("flaky-write", 2, 0).is_none()
        })
        .expect("some seed schedules fail-then-succeed");

    let dir = std::env::temp_dir().join(format!("schedflow-chaos-span-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut wf = Workflow::new();
    let out = wf.value::<u64>("written");
    let target = dir.join("artifact.txt");
    wf.task_typed(
        "flaky-write",
        StageKind::Static,
        [],
        [out.id()],
        move |ctx| {
            schedflow_dataflow::store::ambient()
                .write_atomic(&target, b"payload")
                .map_err(|e| TaskError::transient(e.to_string()))?;
            ctx.put(out, 1).map_err(TaskError::from)
        },
    );
    wf.retain(out.id());
    let runner = Runner::new(wf).unwrap();
    let report = runner.run(
        &RunOptions::with_threads(2)
            .retrying(RetryPolicy::transient(3).with_backoff(1, 2))
            .with_chaos(chaos)
            .tracing(true)
            .with_trace_seed(9),
    );
    assert!(report.is_success(), "{:?}", report.failed());

    let t = &report.telemetry;
    let mut runs: Vec<_> = t
        .spans_of(KIND_RUN)
        .filter(|s| s.task == "flaky-write")
        .collect();
    runs.sort_by_key(|s| s.attempt);
    assert_eq!(runs.len(), 2, "one run span per attempt");
    assert_eq!((runs[0].attempt, runs[0].ok), (1, false));
    assert_eq!((runs[1].attempt, runs[1].ok), (2, true));
    assert!(
        runs[0].detail.contains("artifact.txt") || !runs[0].detail.is_empty(),
        "failing attempt carries the error"
    );

    let writes: Vec<_> = t.spans_of(KIND_WRITE).collect();
    let failed_write = writes
        .iter()
        .find(|s| s.attempt == 1)
        .expect("attempt 1's failing write is recorded");
    assert!(!failed_write.ok);
    assert_eq!(failed_write.parent, runs[0].id, "write hangs off its run");
    let ok_write = writes
        .iter()
        .find(|s| s.attempt == 2)
        .expect("attempt 2's write is recorded");
    assert!(ok_write.ok);
    assert_eq!(ok_write.parent, runs[1].id);

    let retry = t
        .spans_of(KIND_RETRY)
        .find(|s| s.task == "flaky-write")
        .expect("the backoff between attempts is a span");
    assert_eq!(retry.attempt, 1, "backoff follows the failed attempt");
    assert_eq!(t.counters.retries, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- Engine-level properties over random DAGs under chaos. ----

/// Random layered DAG: `layers[li][ni]` lists parent indices in layer li-1.
#[derive(Debug, Clone)]
struct DagSpec {
    layers: Vec<Vec<Vec<usize>>>,
}

fn arb_dag() -> impl Strategy<Value = DagSpec> {
    proptest::collection::vec(1usize..6, 2..5).prop_flat_map(|sizes| {
        let mut layer_strategies = Vec::new();
        for (li, &size) in sizes.iter().enumerate() {
            let parents = if li == 0 { 0 } else { sizes[li - 1] };
            let node = proptest::collection::vec(0..parents.max(1), 0..=parents.min(3));
            layer_strategies.push(proptest::collection::vec(node, size..=size));
        }
        layer_strategies.prop_map(|layers| DagSpec { layers })
    })
}

fn build_dag(spec: &DagSpec) -> (Workflow, Vec<Vec<Artifact<u64>>>) {
    let mut wf = Workflow::new();
    let mut arts: Vec<Vec<Artifact<u64>>> = Vec::new();
    for (li, layer) in spec.layers.iter().enumerate() {
        let mut layer_arts = Vec::new();
        for (ni, parents) in layer.iter().enumerate() {
            let out = wf.value::<u64>(&format!("v-{li}-{ni}"));
            layer_arts.push(out);
            let parent_arts: Vec<Artifact<u64>> = if li == 0 {
                Vec::new()
            } else {
                parents.iter().map(|&p| arts[li - 1][p]).collect()
            };
            let inputs: Vec<_> = parent_arts.iter().map(|a| a.id()).collect();
            wf.task(
                &format!("t-{li}-{ni}"),
                StageKind::Static,
                inputs,
                [out.id()],
                move |ctx| {
                    let mut sum = 1u64;
                    for p in &parent_arts {
                        sum += *ctx.get(*p)?;
                    }
                    ctx.put(out, sum)
                },
            );
        }
        arts.push(layer_arts);
    }
    (wf, arts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chaos at p=0.3 (seed 5 never needs more than 3 attempts for any
    /// `t-*-*` name) plus a 6-attempt transient budget heals every DAG.
    #[test]
    fn prop_chaos_with_retries_heals_any_dag(spec in arb_dag(), threads in 1usize..4) {
        let (wf, _) = build_dag(&spec);
        let runner = Runner::new(wf).unwrap();
        let options = RunOptions::with_threads(threads)
            .retrying(RetryPolicy::transient(6).with_backoff(1, 4))
            .with_chaos(ChaosConfig::failing(5, 0.3));
        let report = runner.run(&options);
        prop_assert!(report.is_success(), "{:?}", report.failed());
        // Layer 0 always contains t-0-0, which fails its first attempt at
        // this seed — so retries demonstrably fired.
        prop_assert!(!report.retried().is_empty());
    }

    /// Without retries chaos fails some tasks; skip propagation must remain
    /// exact: a task is skipped iff at least one of its parents resolved
    /// badly, and tasks whose parents all succeeded always run.
    #[test]
    fn prop_skips_require_a_failed_parent(spec in arb_dag(), threads in 1usize..4) {
        let (wf, _) = build_dag(&spec);
        let runner = Runner::new(wf).unwrap();
        let options = RunOptions::with_threads(threads)
            .with_chaos(ChaosConfig::failing(5, 0.35));
        let report = runner.run(&options);

        // Flatten (layer, node) -> report index; tasks were added in order.
        let mut statuses: Vec<Vec<&TaskStatus>> = Vec::new();
        let mut idx = 0;
        for layer in &spec.layers {
            let row = (0..layer.len()).map(|_| { let s = &report.tasks[idx].status; idx += 1; s }).collect();
            statuses.push(row);
        }
        for (li, layer) in spec.layers.iter().enumerate() {
            for (ni, parents) in layer.iter().enumerate() {
                let parent_ok = li == 0
                    || parents.iter().all(|&p| statuses[li - 1][p].is_ok());
                let status = statuses[li][ni];
                if parent_ok {
                    prop_assert!(
                        !matches!(status, TaskStatus::Skipped),
                        "t-{li}-{ni} skipped although every dependency succeeded"
                    );
                } else {
                    prop_assert_eq!(status.clone(), TaskStatus::Skipped, "t-{}-{}", li, ni);
                }
            }
        }
    }
}
