//! Determinism and race-detection properties spanning the static lint gate,
//! the runtime happens-before tracker, and the digest-based verifier.
//!
//! The contract under test: a lint-clean workflow produces *identical*
//! per-artifact content digests no matter the thread count and no matter
//! what seeded chaos injects — and a workflow the effect analysis rejects
//! (SF0501) really does trip the vector-clock tracker when forced to run.

use proptest::prelude::*;
use schedflow_dataflow::{ChaosConfig, RetryPolicy, RunOptions, Runner, StageKind, Workflow};
use schedflow_lint::lint_workflow;

/// Deterministic layered workflow: `widths[l]` tasks in layer `l`, each
/// consuming every artifact of the previous layer and producing one
/// digest-tracked `u64`. Lint-clean by construction: every intermediate
/// artifact is consumed, and the final layer is retained.
fn layered(widths: &[usize]) -> Workflow {
    let mut wf = Workflow::new();
    let mut prev: Vec<schedflow_dataflow::Artifact<u64>> = Vec::new();
    for (l, &w) in widths.iter().enumerate() {
        let mut layer = Vec::new();
        for t in 0..w {
            let out = wf.value::<u64>(&format!("v-{l}-{t}"));
            let inputs: Vec<_> = prev.iter().map(|a| a.id()).collect();
            let prev_arts = prev.clone();
            wf.task(
                &format!("t-{l}-{t}"),
                StageKind::Static,
                inputs,
                [out.id()],
                move |ctx| {
                    let mut acc = ((l as u64) << 32) | t as u64;
                    for a in &prev_arts {
                        acc = acc.wrapping_mul(31).wrapping_add(*ctx.get(*a)?);
                    }
                    ctx.put(out, acc)
                },
            );
            wf.track_digest(out);
            layer.push(out);
        }
        prev = layer;
    }
    for a in &prev {
        wf.retain(a.id());
    }
    wf
}

/// Run to completion and collect `(artifact, digest)` pairs.
fn digests(wf: Workflow, options: &RunOptions) -> Vec<(String, Option<String>)> {
    let runner = Runner::new(wf).expect("layered workflow is structurally valid");
    let report = runner.run(options);
    assert!(
        report.is_success(),
        "workflow failed: {:?}",
        report.failed()
    );
    report
        .artifacts
        .iter()
        .map(|a| (a.name.clone(), a.digest.clone()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Lint-clean ⇒ digest-deterministic: the same workflow digests
    /// identically at 1 and 4 threads, and under seeded chaos with retries —
    /// neither scheduling nor injected faults leave a fingerprint.
    #[test]
    fn lint_clean_workflows_digest_identically(
        widths in proptest::collection::vec(1usize..4, 2..5),
        chaos_seed in 1u64..10_000,
    ) {
        let report = lint_workflow(&layered(&widths));
        prop_assert!(!report.has_errors(), "{}", report.render());

        let serial = digests(layered(&widths), &RunOptions::with_threads(1));
        let parallel = digests(layered(&widths), &RunOptions::with_threads(4));
        prop_assert_eq!(&serial, &parallel);

        let mut chaotic_opts = RunOptions::with_threads(4);
        chaotic_opts.default_retry = RetryPolicy::transient(12).with_backoff(1, 4);
        chaotic_opts.chaos = Some(ChaosConfig::failing(chaos_seed, 0.2));
        let chaotic = digests(layered(&widths), &chaotic_opts);
        prop_assert_eq!(&serial, &chaotic);
    }
}

/// The static and dynamic analyses agree on the two-unordered-writers race:
/// lint rejects it with SF0501, and forcing execution anyway trips the
/// vector-clock tracker, which aborts the run with a counterexample naming
/// the same task pair.
#[test]
fn static_sf0501_and_dynamic_tracker_agree_on_unordered_writers() {
    let dir = std::env::temp_dir().join(format!("schedflow-det-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);

    let build = || {
        let mut wf = Workflow::new();
        let f1 = wf.file(dir.join("shared.txt"));
        let f2 = wf.file(dir.join("./shared.txt"));
        for (name, f) in [("writer-a", f1), ("writer-b", f2)] {
            wf.task(name, StageKind::Static, [], [f.id()], move |ctx| {
                std::fs::write(ctx.path(&f)?, name).map_err(|e| e.to_string())
            });
        }
        wf
    };

    let report = lint_workflow(&build());
    assert!(
        !report
            .with_code(schedflow_lint::codes::WRITE_WRITE_CONFLICT)
            .is_empty(),
        "{}",
        report.render()
    );

    let mut options = RunOptions::with_threads(2);
    options.detect_races = true;
    let run = Runner::new(build())
        .expect("structurally valid")
        .run(&options);
    assert!(!run.is_success(), "the tracker must fail the run");
    assert_eq!(run.race_violations.len(), 1, "{:?}", run.race_violations);
    assert!(run.race_violations[0].contains("writer-a"));
    assert!(run.race_violations[0].contains("writer-b"));
    let _ = std::fs::remove_dir_all(&dir);
}
