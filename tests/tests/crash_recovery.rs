//! Crash-only durability drills: injected I/O faults against the durable
//! store, checksum quarantine end-to-end, and the headline property — a run
//! killed at an arbitrary durable-store write, then resumed, converges to
//! the exact artifact digests of a fault-free run.
//!
//! Every fault below is deterministic: I/O injections are a pure function
//! of `(seed, task name, attempt, write ordinal)` and the crash countdown
//! is an explicit write index, so failures replay identically everywhere.

use proptest::prelude::*;
use schedflow_core::{verify_crash_recovery, System, WorkflowConfig};
use schedflow_dataflow::store::{self, ChaosFs, CrashPlan, DurableStore, RealFs};
use schedflow_dataflow::ChaosConfig;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("schedflow-cr-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny_config(tag: &str) -> WorkflowConfig {
    let base = scratch(tag);
    let mut cfg = WorkflowConfig::new(System::Andes);
    cfg.from = (2024, 1);
    cfg.to = (2024, 2);
    cfg.scale = 0.02;
    cfg.threads = 4;
    cfg.seed = 5;
    cfg.cache_dir = base.join("cache");
    cfg.data_dir = base.join("data");
    cfg
}

fn cleanup(cfg: &WorkflowConfig) {
    let _ = std::fs::remove_dir_all(cfg.cache_dir.parent().unwrap());
}

/// A chaos schedule that is pure I/O faults (no task-outcome chaos), with
/// combined fault probability ≥ 0.3 per store write.
fn io_chaos(seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed,
        io_torn_p: 0.15,
        io_enospc_p: 0.1,
        io_eio_p: 0.05,
        ..ChaosConfig::default()
    }
}

fn chaos_store(cfg: ChaosConfig, crash: Option<CrashPlan>) -> DurableStore {
    DurableStore::with_fs(Arc::new(ChaosFs::new(
        Arc::new(RealFs),
        cfg,
        true,
        "drill",
        1,
        crash,
    )))
}

// ---- Fault-path unit drills against the store itself. ----

/// A torn write (half the bytes land, then the device errors) must never
/// reach the final path: the atomic protocol confines damage to the temp
/// file, and a later fault-free attempt fully replaces it.
#[test]
fn torn_write_never_corrupts_the_final_path() {
    let dir = scratch("torn");
    let path = dir.join("artifact.txt");
    let torn = chaos_store(
        ChaosConfig {
            seed: 3,
            io_torn_p: 1.0,
            ..ChaosConfig::default()
        },
        None,
    );
    let err = torn
        .write_atomic(&path, b"payload that will be torn mid-write")
        .expect_err("torn write must surface as an error");
    assert!(err.to_string().contains("torn"), "{err}");
    assert!(
        !path.exists(),
        "final path must not exist after a torn write"
    );

    // Retry through a clean store: full payload, verified checksum.
    let clean = DurableStore::real();
    clean.write_atomic(&path, b"second attempt").unwrap();
    let payload = clean.read_verified(&path).unwrap();
    assert!(payload.is_verified());
    assert_eq!(payload.into_bytes(), b"second attempt");
    let _ = std::fs::remove_dir_all(&dir);
}

/// ENOSPC and EIO injections surface as the genuine OS error codes, so
/// retry classification treats them exactly like the real thing.
#[test]
fn enospc_and_eio_surface_with_real_error_codes() {
    let dir = scratch("errno");
    let path = dir.join("artifact.txt");
    let enospc = chaos_store(
        ChaosConfig {
            seed: 3,
            io_enospc_p: 1.0,
            ..ChaosConfig::default()
        },
        None,
    );
    let err = enospc.write_atomic(&path, b"x").expect_err("ENOSPC");
    assert_eq!(err.raw_os_error(), Some(28), "{err}");

    let eio = chaos_store(
        ChaosConfig {
            seed: 3,
            io_eio_p: 1.0,
            ..ChaosConfig::default()
        },
        None,
    );
    let err = eio.write_atomic(&path, b"x").expect_err("EIO");
    assert_eq!(err.raw_os_error(), Some(5), "{err}");
    assert!(!path.exists());
    let _ = std::fs::remove_dir_all(&dir);
}

/// I/O fault schedules are a pure function of the seed and write ordinal:
/// the same config produces the same fault sequence on every evaluation.
#[test]
fn io_fault_schedule_is_deterministic() {
    let cfg = io_chaos(11);
    let first: Vec<_> = (0..64).map(|w| cfg.io_fault("curate", 1, w)).collect();
    let second: Vec<_> = (0..64).map(|w| cfg.io_fault("curate", 1, w)).collect();
    assert_eq!(first, second);
    assert!(
        first.iter().any(Option::is_some),
        "p=0.3 over 64 writes must inject at least once"
    );
    // A different seed reshuffles the schedule.
    let other: Vec<_> = (0..64)
        .map(|w| io_chaos(12).io_fault("curate", 1, w))
        .collect();
    assert_ne!(first, other);
}

/// Bytes flipped on disk after a verified write are detected on read: the
/// damaged file is quarantined to `<name>.corrupt` rather than parsed.
#[test]
fn corruption_is_quarantined_on_read() {
    let dir = scratch("quarantine");
    let path = dir.join("frame.csv");
    let store = DurableStore::real();
    store.write_atomic(&path, b"a,b\n1,2\n").unwrap();

    let mut bytes = std::fs::read(&path).unwrap();
    bytes[0] ^= 0x01; // flip one payload bit
    std::fs::write(&path, &bytes).unwrap();

    let err = store.read_verified(&path).expect_err("corrupt read");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(!path.exists(), "damaged file must not stay in place");
    let corrupt = dir.join("frame.csv.corrupt");
    assert!(corrupt.exists(), "damaged file is preserved for forensics");
    assert_eq!(std::fs::read(&corrupt).unwrap(), bytes);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The crash countdown is global across store handles — it models one
/// process dying, not one task — and fires exactly once at write N.
#[test]
fn crash_plan_fires_once_at_the_nth_write_across_handles() {
    let dir = scratch("crashplan");
    let plan = CrashPlan::new(3);
    let a = chaos_store(ChaosConfig::default(), Some(plan.clone()));
    let b = chaos_store(ChaosConfig::default(), Some(plan));
    a.write_atomic(&dir.join("w1"), b"1").unwrap();
    b.write_atomic(&dir.join("w2"), b"2").unwrap();
    let died = catch_unwind(AssertUnwindSafe(|| a.write_atomic(&dir.join("w3"), b"3")))
        .expect_err("third write is the crash point");
    let msg = died.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains(store::CRASH_MARKER), "{msg}");
    assert!(
        !dir.join("w3").exists(),
        "the dying write left nothing behind"
    );
    // The countdown has passed; later writes proceed normally.
    b.write_atomic(&dir.join("w4"), b"4").unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- End-to-end: crash, resume, converge. ----

/// The acceptance drill: seeded I/O chaos at combined p=0.3 on every store
/// write plus a process death at write 7; the resumed run must converge to
/// the fault-free digests with no torn artifact anywhere.
#[test]
fn crash_under_io_chaos_resumes_to_fault_free_digests() {
    let mut cfg = tiny_config("accept");
    cfg.fault.chaos = Some(io_chaos(11));
    cfg.fault.retries = 8;
    cfg.fault.retry_base_delay_ms = 1;
    let outcome = verify_crash_recovery(&cfg, 7).unwrap_or_else(|e| panic!("verifier: {e}"));
    assert!(outcome.crashed, "write 7 must land mid-run");
    assert!(
        outcome.is_converged(),
        "digests diverged: {:?}",
        outcome.mismatches
    );
    assert!(
        !outcome.baseline.digests.is_empty(),
        "convergence must be over a non-trivial artifact set"
    );
    assert!(
        outcome.recovered.digests.iter().all(|(_, d)| d.is_some()),
        "every recovered artifact carries a digest"
    );
    cleanup(&cfg);
}

/// A crash point beyond the run's total writes means no crash at all: the
/// leg completes first time and trivially matches the baseline.
#[test]
fn crash_point_past_the_last_write_degenerates_to_verify() {
    let mut cfg = tiny_config("nocrash");
    cfg.fault.retries = 2;
    cfg.fault.retry_base_delay_ms = 1;
    let outcome = verify_crash_recovery(&cfg, 100_000).unwrap();
    assert!(!outcome.crashed);
    assert!(outcome.is_converged(), "{:?}", outcome.mismatches);
    cleanup(&cfg);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Crash at the k-th durable-store write for arbitrary small k: wherever
    /// the process dies — during fetch, curate, a chart, an insight, or the
    /// dashboard — resume from the checkpoint manifest converges to the
    /// fault-free digest map.
    #[test]
    fn prop_crash_at_any_write_point_converges(k in 1u64..28) {
        let mut cfg = tiny_config(&format!("prop{k}"));
        cfg.fault.chaos = Some(io_chaos(7));
        cfg.fault.retries = 8;
        cfg.fault.retry_base_delay_ms = 1;
        let outcome = verify_crash_recovery(&cfg, k)
            .unwrap_or_else(|e| panic!("verifier at k={k}: {e}"));
        prop_assert!(
            outcome.is_converged(),
            "k={}: digests diverged: {:?}",
            k,
            outcome.mismatches
        );
        prop_assert!(!outcome.baseline.digests.is_empty());
        cleanup(&cfg);
    }
}
