//! Property tests for the zero-copy data plane: every view-producing op
//! (`filter`/`take`/`head`/`select`/`vstack`-then-`group_by`) must be
//! semantically identical to the eager single-chunk baseline across random
//! chunkings, null masks, and dtypes — and the zero-copy ops must report
//! zero row copies through the `copycount` hook.

use proptest::prelude::*;
use schedflow_frame::{copycount, group_by, Agg, Column, Frame};

/// Random per-row data covering all four dtypes, nulls included.
#[derive(Debug, Clone)]
struct Rows {
    ints: Vec<Option<i64>>,
    floats: Vec<Option<f64>>,
    strs: Vec<Option<String>>,
    bools: Vec<bool>,
}

impl Rows {
    fn len(&self) -> usize {
        self.ints.len()
    }

    /// Build a frame over rows `[lo, hi)` — single-chunk columns.
    fn frame(&self, lo: usize, hi: usize) -> Frame {
        Frame::new()
            .with("i", Column::from_opt_i64(self.ints[lo..hi].to_vec()))
            .with("f", Column::from_opt_f64(self.floats[lo..hi].to_vec()))
            .with("s", Column::from_opt_str(self.strs[lo..hi].to_vec()))
            .with("b", Column::from_bool(self.bools[lo..hi].to_vec()))
    }
}

/// Rows plus a random chunking (cut points) and a random row mask.
#[derive(Debug, Clone)]
struct Case {
    rows: Rows,
    cuts: Vec<usize>,
    mask: Vec<bool>,
    take: Vec<usize>,
    head: usize,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (1usize..40).prop_flat_map(|n| {
        let rows = (
            proptest::collection::vec(proptest::option::of(-100i64..100), n..=n),
            proptest::collection::vec(proptest::option::of(-10.0f64..10.0), n..=n),
            proptest::collection::vec(
                proptest::option::of(proptest::sample::select(vec!["alpha", "beta", "gamma", ""])),
                n..=n,
            ),
            proptest::collection::vec(any::<bool>(), n..=n),
        );
        let shape = (
            proptest::collection::vec(0..=n, 0..4),
            proptest::collection::vec(any::<bool>(), n..=n),
            proptest::collection::vec(0..n, 0..(2 * n)),
            0..=n + 2,
        );
        (rows, shape).prop_map(
            |((ints, floats, strs, bools), (cuts, mask, take, head))| Case {
                rows: Rows {
                    ints,
                    floats,
                    strs: strs.into_iter().map(|o| o.map(str::to_owned)).collect(),
                    bools,
                },
                cuts,
                mask,
                take,
                head,
            },
        )
    })
}

/// The same rows as a multi-chunk frame: vstack of the segments between the
/// (sorted, deduplicated) cut points.
fn chunked(case: &Case) -> Frame {
    let n = case.rows.len();
    let mut bounds = vec![0, n];
    bounds.extend(&case.cuts);
    bounds.sort_unstable();
    bounds.dedup();
    let parts: Vec<Frame> = bounds
        .windows(2)
        .map(|w| case.rows.frame(w[0], w[1]))
        .collect();
    Frame::vstack(&parts).expect("identical schemas")
}

fn aggs() -> Vec<(&'static str, Agg)> {
    vec![
        ("n", Agg::Count),
        ("sum_i", Agg::Sum("i".to_owned())),
        ("mean_f", Agg::Mean("f".to_owned())),
        ("max_i", Agg::Max("i".to_owned())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vstack_is_lossless_and_zero_copy(case in arb_case()) {
        let baseline = case.rows.frame(0, case.rows.len());
        copycount::reset();
        let multi = chunked(&case);
        prop_assert_eq!(copycount::rows_copied(), 0, "vstack must not copy rows");
        prop_assert_eq!(&multi, &baseline);
        prop_assert_eq!(&multi.compact(), &baseline);
    }

    #[test]
    fn filter_view_matches_eager_baseline(case in arb_case()) {
        let baseline = case.rows.frame(0, case.rows.len());
        let multi = chunked(&case);
        let eager = baseline.filter(&case.mask).unwrap();
        copycount::reset();
        let view = multi.view().filter(&case.mask).unwrap();
        prop_assert_eq!(copycount::rows_copied(), 0, "a view is not a copy");
        prop_assert_eq!(view.height(), eager.height());
        prop_assert_eq!(&view.materialize(), &eager);
        prop_assert_eq!(&multi.filter(&case.mask).unwrap(), &eager);
    }

    #[test]
    fn take_view_matches_eager_baseline(case in arb_case()) {
        let baseline = case.rows.frame(0, case.rows.len());
        let multi = chunked(&case);
        let eager = baseline.take(&case.take);
        copycount::reset();
        let view = multi.view().take(&case.take);
        prop_assert_eq!(copycount::rows_copied(), 0, "a view is not a copy");
        prop_assert_eq!(&view.materialize(), &eager);
        prop_assert_eq!(&multi.take(&case.take), &eager);
    }

    #[test]
    fn head_is_an_equal_zero_copy_window(case in arb_case()) {
        let baseline = case.rows.frame(0, case.rows.len());
        let multi = chunked(&case);
        let eager = baseline.head(case.head).compact();
        copycount::reset();
        let h = multi.head(case.head);
        let hv = multi.view().head(case.head);
        prop_assert_eq!(copycount::rows_copied(), 0, "head must stay a view");
        prop_assert_eq!(&h, &eager);
        prop_assert_eq!(&hv.materialize(), &eager);
    }

    #[test]
    fn select_shares_columns_across_chunkings(case in arb_case()) {
        let baseline = case.rows.frame(0, case.rows.len());
        let multi = chunked(&case);
        copycount::reset();
        let sel = multi.select(&["s", "i"]).unwrap();
        prop_assert_eq!(copycount::rows_copied(), 0, "select clones Arcs, not rows");
        prop_assert_eq!(&sel, &baseline.select(&["s", "i"]).unwrap());
    }

    #[test]
    fn group_by_over_chunked_matches_single_chunk(case in arb_case()) {
        let baseline = case.rows.frame(0, case.rows.len());
        let multi = chunked(&case);
        let aggs = aggs();
        let expected = group_by(&baseline, &["s", "b"], &aggs).unwrap();
        let got = group_by(&multi, &["s", "b"], &aggs).unwrap();
        prop_assert_eq!(&got, &expected);
    }

    #[test]
    fn composed_views_match_composed_eager_ops(case in arb_case()) {
        let baseline = case.rows.frame(0, case.rows.len());
        let multi = chunked(&case);
        let eager = baseline.filter(&case.mask).unwrap().head(case.head).compact();
        copycount::reset();
        let view = multi.view().filter(&case.mask).unwrap().head(case.head);
        prop_assert_eq!(copycount::rows_copied(), 0, "composed views stay views");
        prop_assert_eq!(&view.materialize(), &eager);
    }
}
