//! Integration + property tests over the scheduler simulator: invariants
//! that must hold for *any* valid submission stream, plus cross-policy
//! dominance properties on generated workloads.

use proptest::prelude::*;
use schedflow_model::time::Timestamp;
use schedflow_sim::{metrics, BackfillPolicy, JobRequest, PlannedOutcome, Simulator, SystemConfig};

fn arb_job(id: u64) -> impl Strategy<Value = JobRequest> {
    (
        0i64..50_000, // submit offset
        1u32..=16,    // nodes (toy machine of 16)
        1i64..=24,    // walltime hours-ish units (15-min chunks)
        1i64..20_000, // actual seconds
        0u8..5,       // outcome selector
    )
        .prop_map(move |(submit, nodes, wall_chunks, actual, which)| {
            let outcome = match which {
                0 | 1 => PlannedOutcome::Complete,
                2 => PlannedOutcome::Fail {
                    at: 0.5,
                    exit_code: 1,
                },
                3 => PlannedOutcome::CancelRunning { at: 0.3 },
                _ => PlannedOutcome::CancelPending {
                    patience_secs: 2000,
                },
            };
            JobRequest {
                id,
                user: (id % 7) as u32,
                submit: Timestamp(Timestamp::from_ymd(2024, 1, 1).0 + submit),
                nodes,
                walltime_secs: wall_chunks * 900,
                actual_secs: actual,
                partition: "batch".to_owned(),
                qos: "normal".to_owned(),
                outcome,
                dependency: None,
            }
        })
}

fn arb_stream() -> impl Strategy<Value = Vec<JobRequest>> {
    proptest::collection::vec(0u8..1, 1..60).prop_flat_map(|v| {
        let n = v.len();
        (0..n as u64).map(arb_job).collect::<Vec<_>>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_simulator_invariants(jobs in arb_stream()) {
        let sim = Simulator::new(SystemConfig::toy(16));
        let outcomes = sim.run(&jobs).unwrap();
        prop_assert_eq!(outcomes.len(), jobs.len());
        for (j, o) in jobs.iter().zip(&outcomes) {
            // Terminal state always.
            prop_assert!(o.state.is_terminal(), "job {} state {:?}", j.id, o.state);
            // Eligibility never precedes submission.
            prop_assert!(o.eligible >= j.submit);
            if let (Some(s), Some(e)) = (o.start, o.end) {
                prop_assert!(s >= o.eligible);
                prop_assert!(e >= s);
                // Never runs past the requested limit.
                prop_assert!(e - s <= j.walltime_secs);
                prop_assert_eq!(o.node_indices.len(), j.nodes as usize);
            } else {
                // Only pending cancellations never start.
                let pending_cancel = matches!(j.outcome, PlannedOutcome::CancelPending { .. });
                prop_assert!(pending_cancel, "job {} never started", j.id);
            }
        }
    }

    #[test]
    fn prop_no_oversubscription_at_any_instant(jobs in arb_stream()) {
        let total_nodes = 16u32;
        let sim = Simulator::new(SystemConfig::toy(total_nodes));
        let outcomes = sim.run(&jobs).unwrap();
        // Sweep events: allocation deltas must never exceed the machine.
        let mut events: Vec<(i64, i64)> = Vec::new();
        for (j, o) in jobs.iter().zip(&outcomes) {
            if let (Some(s), Some(e)) = (o.start, o.end) {
                events.push((s.0, i64::from(j.nodes)));
                events.push((e.0, -i64::from(j.nodes)));
            }
        }
        events.sort_unstable();
        let mut used = 0i64;
        for (_, delta) in events {
            used += delta;
            prop_assert!(used <= i64::from(total_nodes), "oversubscribed: {used}");
            prop_assert!(used >= 0);
        }
    }

    #[test]
    fn prop_node_allocations_never_overlap(jobs in arb_stream()) {
        let sim = Simulator::new(SystemConfig::toy(16));
        let outcomes = sim.run(&jobs).unwrap();
        // For every pair of time-overlapping jobs, node sets are disjoint.
        let placed: Vec<_> = jobs
            .iter()
            .zip(&outcomes)
            .filter_map(|(j, o)| Some((j.id, o.start?, o.end?, o.node_indices.clone())))
            .collect();
        for (i, a) in placed.iter().enumerate() {
            for b in placed.iter().skip(i + 1) {
                let overlap = a.1 < b.2 && b.1 < a.2;
                if overlap {
                    for n in &a.3 {
                        prop_assert!(
                            !b.3.contains(n),
                            "jobs {} and {} share node {n}",
                            a.0,
                            b.0
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn backfill_never_delays_the_highest_priority_job() {
    // Construct the classic scenario and check the EASY guarantee directly:
    // the blocked head starts no later under EASY than under FIFO.
    let t0 = Timestamp::from_ymd(2024, 1, 1);
    let jobs = vec![
        JobRequest::simple(1, t0, 12, 4000, 4000),
        JobRequest::simple(2, t0 + 10, 16, 4000, 1000), // blocked head
        JobRequest::simple(3, t0 + 20, 4, 3600, 3500),  // backfill candidate
        JobRequest::simple(4, t0 + 30, 2, 900, 800),    // small short candidate
    ];
    let run = |policy| {
        let mut system = SystemConfig::toy(16);
        system.backfill = policy;
        Simulator::new(system).run(&jobs).unwrap()
    };
    let fifo = run(BackfillPolicy::None);
    let easy = run(BackfillPolicy::Easy);
    assert!(
        easy[1].start.unwrap() <= fifo[1].start.unwrap(),
        "EASY delayed the reserved head: {:?} vs {:?}",
        easy[1].start,
        fifo[1].start
    );
    // And something actually backfilled.
    assert!(easy.iter().any(|o| o.backfilled));
}

#[test]
fn generated_workload_policy_dominance() {
    use rand::SeedableRng;
    use schedflow_tracegen::{synthesize_plans, UserPopulation, WorkloadProfile};
    let profile = WorkloadProfile::andes().truncated_days(14).scaled(0.3);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
    let pop = UserPopulation::generate(&profile, &mut rng);
    let jobs: Vec<JobRequest> = synthesize_plans(&profile, &pop, &mut rng)
        .into_iter()
        .map(|p| p.request)
        .collect();
    let mut mean_waits = Vec::new();
    for policy in [BackfillPolicy::None, BackfillPolicy::Easy] {
        let mut system = profile.system.clone();
        system.backfill = policy;
        let outcomes = Simulator::new(system).run(&jobs).unwrap();
        let m = metrics(&jobs, &outcomes, profile.system.total_nodes);
        mean_waits.push(m.mean_wait_secs);
    }
    assert!(
        mean_waits[1] <= mean_waits[0] * 1.05,
        "EASY should not worsen mean wait: fifo={} easy={}",
        mean_waits[0],
        mean_waits[1]
    );
}
