//! Property tests over the chart substrate: rendering and digesting must be
//! total — no panic for any series data (including NaN/∞, empty series,
//! negative values on log axes) — and outputs must stay structurally sound.

use proptest::prelude::*;
use schedflow_charts::{
    digest, render, Axis, BarChart, BarMode, Chart, Geometry, HeatmapChart, MarkerShape, Scale,
    ScatterChart, Series,
};

fn arb_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => -1e9f64..1e9,
        1 => Just(f64::NAN),
        1 => Just(f64::INFINITY),
        1 => Just(f64::NEG_INFINITY),
        1 => Just(0.0),
    ]
}

fn arb_series() -> impl Strategy<Value = Series> {
    (
        proptest::collection::vec(arb_value(), 0..200),
        any::<bool>(),
        0u8..3,
    )
        .prop_map(|(values, line, marker)| {
            let n = values.len() / 2;
            let mut s = Series::scatter("s", values[..n].to_vec(), values[n..2 * n].to_vec());
            s.line = line;
            s.marker = match marker {
                0 => MarkerShape::Dot,
                1 => MarkerShape::Plus,
                _ => MarkerShape::Square,
            };
            s
        })
}

fn arb_scatter() -> impl Strategy<Value = Chart> {
    (
        proptest::collection::vec(arb_series(), 0..4),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(series, log_x, log_y, diagonal)| {
            let mut c = ScatterChart::new(
                "prop chart",
                if log_x {
                    Axis::log("x")
                } else {
                    Axis::linear("x")
                },
                if log_y {
                    Axis::log("y")
                } else {
                    Axis::linear("y")
                },
            );
            for (i, mut s) in series.into_iter().enumerate() {
                s.name = format!("s{i}");
                c = c.with_series(s);
            }
            if diagonal {
                c = c.with_diagonal();
            }
            Chart::Scatter(c)
        })
}

fn arb_bar() -> impl Strategy<Value = Chart> {
    (1usize..12, 1usize..5, any::<bool>(), any::<bool>()).prop_flat_map(
        |(cats, stacks, stacked, log)| {
            proptest::collection::vec(
                proptest::collection::vec(-1e6f64..1e6, cats..=cats),
                stacks..=stacks,
            )
            .prop_map(move |data| {
                let mut c = BarChart::new(
                    "bars",
                    (0..cats).map(|i| format!("c{i}")).collect(),
                    "y",
                    if stacked {
                        BarMode::Stacked
                    } else {
                        BarMode::Grouped
                    },
                );
                for (i, values) in data.into_iter().enumerate() {
                    c = c.with_stack(&format!("k{i}"), values);
                }
                if log {
                    c.y_scale = Scale::Log10;
                }
                Chart::Bar(c)
            })
        },
    )
}

fn arb_heatmap() -> impl Strategy<Value = Chart> {
    (1usize..8, 1usize..26).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(arb_value(), rows * cols..=rows * cols).prop_map(move |values| {
            Chart::Heatmap(HeatmapChart::new(
                "heat",
                (0..cols).map(|i| i.to_string()).collect(),
                (0..rows).map(|i| i.to_string()).collect(),
                values,
            ))
        })
    })
}

fn assert_sound_svg(svg: &str) {
    assert!(svg.starts_with("<svg"), "starts with svg tag");
    assert!(svg.ends_with("</svg>"), "closed svg tag");
    assert_eq!(svg.matches("<svg").count(), 1);
    // No raw NaN leaked into coordinates.
    assert!(!svg.contains("NaN"), "NaN leaked into SVG");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_scatter_total(chart in arb_scatter()) {
        let svg = render(&chart, &Geometry::default());
        assert_sound_svg(&svg);
        let d = digest(&chart);
        // Digest serializes and round-trips.
        let json = d.to_json();
        let _back: schedflow_charts::ChartDigest = serde_json::from_str(&json).unwrap();
    }

    #[test]
    fn prop_bar_total(chart in arb_bar()) {
        let svg = render(&chart, &Geometry::default());
        assert_sound_svg(&svg);
        let _ = digest(&chart);
    }

    #[test]
    fn prop_heatmap_total(chart in arb_heatmap()) {
        let svg = render(&chart, &Geometry::default());
        assert_sound_svg(&svg);
        let _ = digest(&chart);
    }

    #[test]
    fn prop_html_wrapping_total(chart in arb_scatter()) {
        let html = schedflow_charts::to_html(&chart, &Geometry::default());
        prop_assert!(html.starts_with("<!DOCTYPE html>"));
        prop_assert!(html.contains("</html>"));
    }

    #[test]
    fn prop_analyst_total_on_random_charts(chart in arb_scatter()) {
        use schedflow_insight::Analyst;
        let d = digest(&chart);
        // The deterministic analyst must never fail on a scatter digest.
        let insight = schedflow_insight::RuleAnalyst::new().insight(&d).unwrap();
        prop_assert!(!insight.narrative.is_empty());
    }
}
