//! Integration: the full hybrid workflow (core crate) across systems — the
//! §4.3 portability property, artifact completeness, and determinism.

use schedflow_core::{run, System, WorkflowConfig};
use std::path::PathBuf;

fn config(system: System, tag: &str) -> WorkflowConfig {
    let base = std::env::temp_dir().join(format!(
        "schedflow-itest-{tag}-{}-{}",
        system.name(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&base);
    let mut cfg = WorkflowConfig::new(system);
    let months = cfg.months();
    cfg.from = months[0];
    cfg.to = months[2.min(months.len() - 1)];
    cfg.scale = 0.02;
    cfg.threads = 4;
    cfg.cache_dir = base.join("cache");
    cfg.data_dir = base.join("data");
    cfg
}

fn cleanup(cfg: &WorkflowConfig) {
    if let Some(parent) = cfg.cache_dir.parent() {
        let _ = std::fs::remove_dir_all(parent);
    }
}

#[test]
fn same_workflow_runs_unmodified_on_both_systems() {
    for system in [System::Frontier, System::Andes] {
        let cfg = config(system, "port");
        let outcome = run(&cfg).unwrap_or_else(|e| panic!("{}: {e}", system.name()));
        assert!(outcome.report.is_success());
        assert_eq!(
            outcome.insights.len(),
            schedflow_core::PLOT_STAGES.len(),
            "{}",
            system.name()
        );
        assert!(outcome.dashboard_index.exists());
        // Every month produced a curated CSV.
        for (y, m) in cfg.months() {
            let csv = cfg
                .data_dir
                .join("curated")
                .join(format!("{y:04}-{m:02}.csv"));
            assert!(csv.exists(), "missing {}", csv.display());
        }
        cleanup(&cfg);
    }
}

#[test]
fn dashboard_site_is_complete_and_servable() {
    let cfg = config(System::Andes, "dash");
    let outcome = run(&cfg).unwrap();
    let dash_dir: PathBuf = outcome.dashboard_index.parent().unwrap().to_path_buf();

    // All five panels exist and embed SVG.
    for stage in schedflow_core::PLOT_STAGES {
        let panel = dash_dir.join("panels").join(format!("{stage}.html"));
        let content = std::fs::read_to_string(&panel).unwrap();
        assert!(content.contains("<svg"), "{stage} panel lacks chart");
        assert!(
            content.contains("Automated insight"),
            "{stage} panel lacks insight"
        );
    }

    // Serve it over HTTP and fetch the index.
    let server = schedflow_dashboard::serve(&dash_dir, 0).unwrap();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    use std::io::{Read, Write};
    write!(stream, "GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut body = String::new();
    stream.read_to_string(&mut body).unwrap();
    assert!(body.starts_with("HTTP/1.1 200"));
    assert!(body.contains("panels/volume.html"));
    server.stop();
    cleanup(&cfg);
}

#[test]
fn runs_are_deterministic_given_seed() {
    let cfg_a = config(System::Andes, "det-a");
    let cfg_b = config(System::Andes, "det-b");
    let a = run(&cfg_a).unwrap();
    let b = run(&cfg_b).unwrap();
    assert_eq!(a.frame.height(), b.frame.height());
    // Insight narratives are identical: same trace, same deterministic analyst.
    for ((sa, ia), (sb, ib)) in a.insights.iter().zip(&b.insights) {
        assert_eq!(sa, sb);
        assert_eq!(ia.narrative, ib.narrative);
    }
    cleanup(&cfg_a);
    cleanup(&cfg_b);
}

#[test]
fn lifetime_tracking_drops_consumed_value_artifacts() {
    let cfg = config(System::Andes, "lifetime");
    let built = schedflow_core::build(&cfg);
    let wf = &built.workflow;

    // Partition value artifacts by expected post-run fate: consumed +
    // non-retained must be dropped after their last consumer; retained ones
    // must survive for the caller.
    let counts = wf.consumer_counts();
    let mut expect_dropped = Vec::new();
    let mut expect_kept = Vec::new();
    for id in wf.artifact_ids() {
        if wf.file_path(id).is_some() || counts[id.index()] == 0 {
            continue;
        }
        let name = wf.artifact_name(id).to_owned();
        if wf.is_retained(id) {
            expect_kept.push((id, name));
        } else {
            expect_dropped.push((id, name));
        }
    }
    assert!(
        expect_dropped.len() >= 10,
        "per-month frames, the store, charts, and digests are all consumed"
    );
    assert!(
        !expect_kept.is_empty(),
        "merged frame and insights are retained"
    );

    let runner = schedflow_dataflow::Runner::new(built.workflow).unwrap();
    let report = runner.run(&schedflow_core::run_options(&cfg));
    assert!(report.is_success());

    for (id, name) in &expect_dropped {
        assert!(
            runner.store().get_any(*id).is_none(),
            "value artifact {name:?} should have been dropped after its last consumer"
        );
    }
    for (id, name) in &expect_kept {
        assert!(
            runner.store().get_any(*id).is_some(),
            "retained artifact {name:?} must survive the run"
        );
    }

    // The data plane advertised frame sizes, so byte accounting is live.
    assert!(report.peak_resident_bytes > 0);
    assert!(report.total_bytes_out() > 0);
    assert!(
        report.total_bytes_in() >= report.total_bytes_out(),
        "the merged frame is read by several stages"
    );
    cleanup(&cfg);
}

#[test]
fn insights_md_mirrors_papers_published_analyses() {
    // The paper publishes its LLM outputs as markdown files; ours land in
    // insights.md with per-stage markers and quantitative stats.
    let cfg = config(System::Frontier, "md");
    let outcome = run(&cfg).unwrap();
    let md = std::fs::read_to_string(&outcome.insights_md).unwrap();
    assert!(md.contains("# Automated insights — frontier"));
    assert!(md.contains("**Statistics**"));
    assert!(md.contains("overestimating their walltime requests"));
    cleanup(&cfg);
}
