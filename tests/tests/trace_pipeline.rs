//! Integration: generator → simulator → sacct text → curation → analytics.
//!
//! Exercises the full data path the paper's static subworkflow covers, at
//! reduced scale, asserting the invariants each boundary must preserve.

use schedflow_model::state::JobState;
use schedflow_sacct::{
    parse_records, records_to_frame, write_records, AccountingStore, RenderOptions,
};
use schedflow_tracegen::{TraceGenerator, WorkloadProfile};

fn trace() -> Vec<schedflow_model::record::JobRecord> {
    TraceGenerator::new(WorkloadProfile::andes().truncated_days(21).scaled(0.25), 77).generate()
}

#[test]
fn generated_records_round_trip_through_sacct_text() {
    let records = trace();
    assert!(records.len() > 2000, "{}", records.len());

    let mut buf = Vec::new();
    write_records(&records, &mut buf, &RenderOptions::default()).unwrap();
    let (parsed, report) = parse_records(std::io::Cursor::new(buf)).unwrap();

    assert_eq!(parsed.len(), records.len());
    assert!(
        report.malformed.is_empty(),
        "{:?}",
        &report.malformed[..report.malformed.len().min(3)]
    );
    // Full fidelity: every job (with steps) survives the text format.
    for (a, b) in records.iter().zip(&parsed) {
        assert_eq!(a, b, "record {} diverged", a.id);
    }
}

#[test]
fn corruption_injection_matches_papers_curation_story() {
    let records = trace();
    let mut buf = Vec::new();
    // Paper: malformed records account for <0.002% — inject an order more
    // so the filter has real work at this scale.
    write_records(
        &records,
        &mut buf,
        &RenderOptions::default().with_corruption(0.005),
    )
    .unwrap();
    let (parsed, report) = parse_records(std::io::Cursor::new(buf)).unwrap();
    assert!(!report.malformed.is_empty());
    assert!(report.malformed_fraction() < 0.05);
    assert_eq!(
        parsed.len() + report.malformed.len() - report.steps_discarded(),
        records.len()
    );
}

trait StepsDiscarded {
    fn steps_discarded(&self) -> usize;
}

impl StepsDiscarded for schedflow_sacct::ParseReport {
    fn steps_discarded(&self) -> usize {
        // Corrupting a job line orphans its step lines; both are reported
        // malformed. Count the step-shaped malformed entries.
        self.malformed
            .iter()
            .filter(|(_, why)| why.contains("orphan"))
            .count()
    }
}

#[test]
fn scheduling_invariants_hold_over_the_whole_trace() {
    let records = trace();
    let mut started = 0;
    let mut backfilled = 0;
    for r in &records {
        r.validate().unwrap_or_else(|e| panic!("{e}"));
        if !r.start.is_unknown() {
            started += 1;
            // Eligible precedes start; wait is nonnegative by construction.
            assert!(r.wait_secs().unwrap() >= 0);
            // Timeout jobs ran exactly their limit.
            if r.state == JobState::Timeout {
                assert_eq!(Some(r.elapsed.0), r.requested_secs());
            }
            // Elapsed never exceeds the limit.
            if let Some(limit) = r.requested_secs() {
                assert!(r.elapsed.0 <= limit, "job {} over limit", r.id);
            }
            if r.is_backfilled() {
                backfilled += 1;
            }
        } else {
            assert_eq!(
                r.state,
                JobState::Cancelled,
                "only pending-cancels never start"
            );
            assert!(r.steps.is_empty());
        }
    }
    assert!(started > records.len() * 8 / 10);
    assert!(backfilled > 0, "a loaded system backfills");
}

#[test]
fn store_query_frames_match_direct_conversion() {
    let records = trace();
    let store = AccountingStore::new("andes", records.clone());
    let months = store.months();
    assert!(!months.is_empty());

    // Querying month by month and concatenating equals converting all at
    // once (modulo submit-order sorting, which the store guarantees).
    let mut total = 0;
    for (y, m) in &months {
        total += store.query_month(*y, *m).len();
    }
    assert_eq!(total, store.len());

    let frame = records_to_frame(store.records()).unwrap();
    assert_eq!(frame.height(), records.len());

    // Analytics run end to end on the frame.
    let vols = schedflow_analytics::yearly_volumes(&frame).unwrap();
    assert_eq!(vols.len(), 1);
    assert!(vols[0].steps_per_job() > 2.0);
    let waits = schedflow_analytics::wait_summary(&frame).unwrap();
    assert!(waits.iter().any(|w| w.state == "COMPLETED"));
    let backfill = schedflow_analytics::backfill::summarize(&frame).unwrap();
    assert!(backfill.overestimated_fraction > 0.5);
}
