//! Figure 4: queue wait times over the trace window, color-coded by final
//! job state.
//!
//! Each started job contributes one point: x = submit time, y = wait
//! seconds; state-colored series expose whether long waits correlate with
//! particular outcomes. The paper omits extreme outliers for clarity — we
//! expose that as a quantile clip option.

use schedflow_charts::{Axis, Chart, ScatterChart, Series};
use schedflow_dataflow::contract::FrameSchema;
use schedflow_frame::{col_i64, col_num, col_str, Frame, FrameError, LazyPlan};
use schedflow_model::TERMINAL_STATES;

/// Logical plan for the queue-wait analysis: rows with a measured wait,
/// narrowed to the three columns the scatter consumes. The clip-quantile
/// pool is every non-null wait, which is exactly this plan's output.
pub fn plan() -> LazyPlan {
    LazyPlan::scan()
        .filter(col_num("wait_s").is_not_null())
        .project(&[col_str("state"), col_i64("submit"), col_num("wait_s")])
}

/// Input columns this stage reads from the curated frame — its declared
/// [`TaskContract`](schedflow_dataflow::contract::TaskContract) requirement,
/// derived from [`plan`]'s typed column references.
pub fn required_schema() -> FrameSchema {
    plan().required_schema()
}

/// Options for the wait-time stage.
#[derive(Debug, Clone)]
pub struct WaitOptions {
    /// Clip waits above this quantile (the paper: "outliers are omitted for
    /// clarity"). `1.0` disables clipping.
    pub clip_quantile: f64,
}

impl Default for WaitOptions {
    fn default() -> Self {
        Self {
            clip_quantile: 0.999,
        }
    }
}

/// Per-state wait statistics (feeds EXPERIMENTS.md and the compare stage).
#[derive(Debug, Clone, PartialEq)]
pub struct WaitSummary {
    pub state: String,
    pub jobs: usize,
    pub mean_wait_s: f64,
    pub median_wait_s: f64,
    pub p95_wait_s: f64,
    pub max_wait_s: f64,
}

/// One per-state series: `(state, submit_epochs, wait_seconds)`.
pub type StateWaitSeries = (String, Vec<f64>, Vec<f64>);

/// Extract `(submit_epoch, wait_s)` per state.
pub fn waits_by_state(
    frame: &Frame,
    options: &WaitOptions,
) -> Result<Vec<StateWaitSeries>, FrameError> {
    let out = plan().execute_view(frame)?;
    let view = out.view();
    let mut state = view.str("state")?.cursor();
    let mut submit = view.i64("submit")?.cursor();
    let wait_col = view.column("wait_s")?;
    let mut wait = wait_col.cursor();

    // Clip threshold over all measured waits (the plan's filter).
    let mut all: Vec<f64> = {
        let mut cur = wait_col.cursor();
        (0..view.height()).filter_map(|i| cur.get_f64(i)).collect()
    };
    all.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let clip = if all.is_empty() || options.clip_quantile >= 1.0 {
        f64::INFINITY
    } else {
        let pos = (options.clip_quantile * (all.len() - 1) as f64).ceil() as usize;
        all[pos.min(all.len() - 1)]
    };

    let mut out: Vec<(String, Vec<f64>, Vec<f64>)> = TERMINAL_STATES
        .iter()
        .map(|s| (s.to_sacct().to_owned(), Vec::new(), Vec::new()))
        .collect();
    for i in 0..view.height() {
        let (Some(w), Some(s), Some(t)) = (wait.get_f64(i), state.get_str(i), submit.get_f64(i))
        else {
            continue;
        };
        if w > clip {
            continue;
        }
        if let Some(slot) = out.iter_mut().find(|(name, _, _)| name == s) {
            slot.1.push(t);
            slot.2.push(w);
        }
    }
    out.retain(|(_, xs, _)| !xs.is_empty());
    Ok(out)
}

/// Build the Figure 4 chart.
pub fn wait_chart(frame: &Frame, system: &str, options: &WaitOptions) -> Result<Chart, FrameError> {
    let mut chart = ScatterChart::new(
        &format!("Job queue wait times by final state — {system}"),
        Axis::linear("submit time (epoch seconds)"),
        Axis::log("wait time (seconds)"),
    );
    for (state, xs, ys) in waits_by_state(frame, options)? {
        // Log axis: floor zero waits at one second.
        let ys = ys.into_iter().map(|w| w.max(1.0)).collect();
        chart = chart.with_series(Series::scatter(&state, xs, ys));
    }
    Ok(Chart::Scatter(chart))
}

/// Wait statistics per state.
pub fn wait_summary(frame: &Frame) -> Result<Vec<WaitSummary>, FrameError> {
    let groups = waits_by_state(frame, &WaitOptions { clip_quantile: 1.0 })?;
    Ok(groups
        .into_iter()
        .map(|(state, _, mut ws)| {
            ws.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let q = |p: f64| -> f64 {
                if ws.is_empty() {
                    0.0
                } else {
                    ws[((p * (ws.len() - 1) as f64) as usize).min(ws.len() - 1)]
                }
            };
            WaitSummary {
                jobs: ws.len(),
                mean_wait_s: if ws.is_empty() {
                    0.0
                } else {
                    ws.iter().sum::<f64>() / ws.len() as f64
                },
                median_wait_s: q(0.5),
                p95_wait_s: q(0.95),
                max_wait_s: ws.last().copied().unwrap_or(0.0),
                state,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedflow_frame::Column;

    fn frame() -> Frame {
        Frame::new()
            .with(
                "state",
                Column::from_str(vec![
                    "COMPLETED".into(),
                    "FAILED".into(),
                    "COMPLETED".into(),
                    "CANCELLED".into(),
                ]),
            )
            .with("submit", Column::from_i64(vec![100, 200, 300, 400]))
            .with(
                "wait_s",
                Column::from_opt_i64(vec![Some(10), Some(1000), Some(50), None]),
            )
    }

    #[test]
    fn groups_by_state_skipping_null_waits() {
        let groups = waits_by_state(&frame(), &WaitOptions { clip_quantile: 1.0 }).unwrap();
        let completed = groups.iter().find(|g| g.0 == "COMPLETED").unwrap();
        assert_eq!(completed.2, vec![10.0, 50.0]);
        assert!(
            groups.iter().all(|g| g.0 != "CANCELLED"),
            "null wait dropped"
        );
    }

    #[test]
    fn clipping_removes_extreme_tail() {
        let groups = waits_by_state(&frame(), &WaitOptions { clip_quantile: 0.5 }).unwrap();
        let failed = groups.iter().find(|g| g.0 == "FAILED");
        assert!(failed.is_none(), "the 1000s wait is clipped");
    }

    #[test]
    fn chart_has_state_series_on_log_axis() {
        let c = wait_chart(&frame(), "frontier", &WaitOptions::default()).unwrap();
        match c {
            Chart::Scatter(s) => {
                assert_eq!(s.y_axis.scale, schedflow_charts::Scale::Log10);
                let names: Vec<&str> = s.series.iter().map(|x| x.name.as_str()).collect();
                assert!(names.contains(&"COMPLETED"));
                assert!(names.contains(&"FAILED"));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn multi_chunk_grouping_is_zero_copy() {
        use schedflow_frame::copycount;
        let f = Frame::vstack(&[frame(), frame(), frame()]).unwrap();
        copycount::reset();
        let groups = waits_by_state(&f, &WaitOptions { clip_quantile: 1.0 }).unwrap();
        assert_eq!(copycount::rows_copied(), 0);
        let completed = groups.iter().find(|g| g.0 == "COMPLETED").unwrap();
        assert_eq!(completed.2.len(), 6);
    }

    #[test]
    fn summary_statistics() {
        let s = wait_summary(&frame()).unwrap();
        let completed = s.iter().find(|x| x.state == "COMPLETED").unwrap();
        assert_eq!(completed.jobs, 2);
        assert_eq!(completed.mean_wait_s, 30.0);
        assert_eq!(completed.max_wait_s, 50.0);
    }
}
