//! Figure 1: total jobs and job-steps per year.
//!
//! "The plot shows that, while job submissions remained relatively stable
//! each year, the number of job-steps was significantly higher than the job
//! count," reflecting srun task parallelism.

use schedflow_charts::{BarChart, BarMode, Chart, Scale};
use schedflow_dataflow::contract::FrameSchema;
use schedflow_frame::{Agg, Frame, FrameError, LazyPlan};

/// Logical plan for the yearly volume analysis: group the curated frame by
/// year, counting jobs and summing job-steps, sorted by year.
pub fn plan() -> LazyPlan {
    LazyPlan::scan()
        .group_by(
            &["year"],
            &[("jobs", Agg::Count), ("steps", Agg::Sum("nsteps".into()))],
        )
        .sort("year", false)
}

/// Input columns this stage reads from the curated frame — its declared
/// [`TaskContract`](schedflow_dataflow::contract::TaskContract) requirement,
/// derived from [`plan`]'s typed column references.
pub fn required_schema() -> FrameSchema {
    plan().required_schema()
}

/// One year's volumes.
#[derive(Debug, Clone, PartialEq)]
pub struct YearVolume {
    pub year: i32,
    pub jobs: u64,
    pub steps: u64,
}

impl YearVolume {
    pub fn steps_per_job(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.steps as f64 / self.jobs as f64
        }
    }
}

/// Aggregate per-year job and step counts from the curated frame.
pub fn yearly_volumes(frame: &Frame) -> Result<Vec<YearVolume>, FrameError> {
    let g = plan().execute(frame)?;
    let years = g.i64("year")?;
    let jobs = g.i64("jobs")?;
    let steps = g.f64("steps")?;
    Ok((0..g.height())
        .map(|i| YearVolume {
            year: years.get_i64(i).unwrap_or(0) as i32,
            jobs: jobs.get_i64(i).unwrap_or(0) as u64,
            steps: steps.get_f64(i).unwrap_or(0.0) as u64,
        })
        .collect())
}

/// Build the Figure 1 grouped bar chart (log y, jobs vs steps per year).
pub fn volume_chart(frame: &Frame, system: &str) -> Result<Chart, FrameError> {
    let volumes = yearly_volumes(frame)?;
    let categories = volumes.iter().map(|v| v.year.to_string()).collect();
    let mut chart = BarChart::new(
        &format!("Jobs and job-steps per year — {system}"),
        categories,
        "count",
        BarMode::Grouped,
    )
    .with_stack("jobs", volumes.iter().map(|v| v.jobs as f64).collect())
    .with_stack(
        "job-steps",
        volumes.iter().map(|v| v.steps as f64).collect(),
    );
    chart.y_scale = Scale::Log10;
    Ok(Chart::Bar(chart))
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedflow_frame::Column;

    fn frame() -> Frame {
        Frame::new()
            .with("year", Column::from_i64(vec![2023, 2023, 2024, 2024, 2024]))
            .with("nsteps", Column::from_i64(vec![10, 20, 5, 5, 50]))
    }

    #[test]
    fn volumes_per_year() {
        let v = yearly_volumes(&frame()).unwrap();
        assert_eq!(v.len(), 2);
        assert_eq!(
            v[0],
            YearVolume {
                year: 2023,
                jobs: 2,
                steps: 30
            }
        );
        assert_eq!(
            v[1],
            YearVolume {
                year: 2024,
                jobs: 3,
                steps: 60
            }
        );
        assert_eq!(v[0].steps_per_job(), 15.0);
    }

    #[test]
    fn chart_is_grouped_log_bars() {
        let c = volume_chart(&frame(), "frontier").unwrap();
        match c {
            Chart::Bar(b) => {
                assert_eq!(b.mode, BarMode::Grouped);
                assert_eq!(b.y_scale, Scale::Log10);
                assert_eq!(b.categories, vec!["2023", "2024"]);
                assert_eq!(b.stacks.len(), 2);
                assert_eq!(b.stacks[1].1, vec![30.0, 60.0]);
            }
            _ => panic!("expected bars"),
        }
    }

    #[test]
    fn empty_frame_gives_empty_chart() {
        let f = Frame::new()
            .with("year", Column::from_i64(vec![]))
            .with("nsteps", Column::from_i64(vec![]));
        let v = yearly_volumes(&f).unwrap();
        assert!(v.is_empty());
    }
}
