//! Federated multi-cluster analytics — §6's second future-work item:
//! "multi-cluster and federated analytics, providing cross-facility
//! visibility into scheduling behaviors".
//!
//! Takes the curated frames of several systems and aligns their headline
//! metrics into one comparison frame (via the frame engine's joins), plus a
//! grouped chart for the dashboard.

use crate::{backfill, nodes_elapsed, states, waits};
use schedflow_charts::{BarChart, BarMode, Chart, Scale};
use schedflow_dataflow::contract::FrameSchema;
use schedflow_frame::{Agg, Column, Frame, FrameError, JoinKind, LazyPlan};

/// Two-source logical plan behind [`shared_users`]: aggregate each system's
/// per-user activity, then inner-join on the anonymized user handle.
pub fn shared_users_plan() -> LazyPlan {
    let per_user = || {
        LazyPlan::scan().group_by(
            &["user"],
            &[
                ("jobs", Agg::Count),
                ("mean_wait_s", Agg::Mean("wait_s".into())),
            ],
        )
    };
    per_user().join(per_user(), "user", JoinKind::Inner)
}

/// Input columns this stage reads from each curated frame — its declared
/// [`TaskContract`](schedflow_dataflow::contract::TaskContract) requirement,
/// derived as the union of [`shared_users_plan`] and the summarized
/// sub-stages' plans (later, more precisely typed references win).
pub fn required_schema() -> FrameSchema {
    let mut schema = shared_users_plan().required_schema();
    for sub in [
        nodes_elapsed::plan(),
        backfill::plan(),
        states::plan(),
        waits::plan(),
    ] {
        schema = schema.union(&sub.required_schema());
    }
    schema
}

/// Headline metrics of one system, as a single-row frame column set.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSummary {
    pub system: String,
    pub jobs: usize,
    pub median_wait_s: f64,
    pub p95_wait_s: f64,
    pub max_nodes: i64,
    pub small_short_fraction: f64,
    pub overestimated_fraction: f64,
    pub mean_over_factor: f64,
    pub failure_rate_mean: f64,
    pub failure_rate_stddev: f64,
}

/// Compute the summary for one curated frame.
pub fn summarize_system(frame: &Frame, system: &str) -> Result<SystemSummary, FrameError> {
    let ne = nodes_elapsed::summarize(frame)?;
    let bf = backfill::summarize(frame)?;
    let (fmean, fsd) = states::failure_dispersion(frame, 40)?;
    let wait = waits::wait_summary(frame)?;
    let completed = wait.iter().find(|w| w.state == "COMPLETED");
    Ok(SystemSummary {
        system: system.to_owned(),
        jobs: ne.jobs,
        median_wait_s: completed.map_or(0.0, |w| w.median_wait_s),
        p95_wait_s: completed.map_or(0.0, |w| w.p95_wait_s),
        max_nodes: ne.max_nodes,
        small_short_fraction: ne.small_short_fraction,
        overestimated_fraction: bf.overestimated_fraction,
        mean_over_factor: bf.mean_over_factor,
        failure_rate_mean: fmean,
        failure_rate_stddev: fsd,
    })
}

/// One metric row per system, aligned into a frame (`system` is the key).
pub fn federation_frame(summaries: &[SystemSummary]) -> Frame {
    Frame::new()
        .with(
            "system",
            Column::from_str(summaries.iter().map(|s| s.system.clone()).collect()),
        )
        .with(
            "jobs",
            Column::from_i64(summaries.iter().map(|s| s.jobs as i64).collect()),
        )
        .with(
            "median_wait_s",
            Column::from_f64(summaries.iter().map(|s| s.median_wait_s).collect()),
        )
        .with(
            "p95_wait_s",
            Column::from_f64(summaries.iter().map(|s| s.p95_wait_s).collect()),
        )
        .with(
            "max_nodes",
            Column::from_i64(summaries.iter().map(|s| s.max_nodes).collect()),
        )
        .with(
            "small_short_fraction",
            Column::from_f64(summaries.iter().map(|s| s.small_short_fraction).collect()),
        )
        .with(
            "overestimated_fraction",
            Column::from_f64(summaries.iter().map(|s| s.overestimated_fraction).collect()),
        )
        .with(
            "mean_over_factor",
            Column::from_f64(summaries.iter().map(|s| s.mean_over_factor).collect()),
        )
        .with(
            "failure_rate_mean",
            Column::from_f64(summaries.iter().map(|s| s.failure_rate_mean).collect()),
        )
        .with(
            "failure_rate_stddev",
            Column::from_f64(summaries.iter().map(|s| s.failure_rate_stddev).collect()),
        )
}

/// Join two systems' per-user activity on the (anonymized) user handle —
/// cross-facility visibility into shared users' behavior. Returns rows for
/// users active on *both* systems.
pub fn shared_users(a: &Frame, b: &Frame) -> Result<Frame, FrameError> {
    shared_users_plan().execute_multi(&[a, b])
}

/// Grouped bar chart contrasting normalized headline metrics per system.
pub fn federation_chart(summaries: &[SystemSummary]) -> Chart {
    let categories: Vec<String> = summaries.iter().map(|s| s.system.clone()).collect();
    let mut chart = BarChart::new(
        "Cross-facility scheduling profile",
        categories,
        "value",
        BarMode::Grouped,
    )
    .with_stack(
        "overestimation factor",
        summaries.iter().map(|s| s.mean_over_factor).collect(),
    )
    .with_stack(
        "small/short job share (%)",
        summaries
            .iter()
            .map(|s| s.small_short_fraction * 100.0)
            .collect(),
    )
    .with_stack(
        "failure-rate stddev (×100)",
        summaries
            .iter()
            .map(|s| s.failure_rate_stddev * 100.0)
            .collect(),
    );
    chart.y_scale = Scale::Linear;
    Chart::Bar(chart)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_frame(system_bias: f64) -> Frame {
        let n = 200usize;
        let users: Vec<String> = (0..n).map(|i| format!("u{:02}", i % 10)).collect();
        let states: Vec<String> = (0..n)
            .map(|i| if i % 7 == 0 { "FAILED" } else { "COMPLETED" }.to_owned())
            .collect();
        Frame::new()
            .with("user", Column::from_str(users))
            .with("state", Column::from_str(states))
            .with("submit", Column::from_i64((0..n as i64).collect()))
            .with(
                "start",
                Column::from_opt_i64((0..n as i64).map(Some).collect()),
            )
            .with(
                "wait_s",
                Column::from_opt_i64((0..n as i64).map(|i| Some(i * 10)).collect()),
            )
            .with("elapsed_s", Column::from_i64(vec![1000; n]))
            .with("elapsed_min", Column::from_f64(vec![1000.0 / 60.0; n]))
            .with(
                "timelimit_s",
                Column::from_opt_i64(vec![Some((4000.0 * system_bias) as i64); n]),
            )
            .with(
                "nnodes",
                Column::from_i64((0..n as i64).map(|i| i % 50 + 1).collect()),
            )
            .with("backfilled", Column::from_bool(vec![false; n]))
    }

    #[test]
    fn summaries_align_into_a_frame() {
        let a = summarize_system(&mini_frame(1.0), "frontier").unwrap();
        let b = summarize_system(&mini_frame(0.5), "andes").unwrap();
        assert!(a.mean_over_factor > b.mean_over_factor);
        let f = federation_frame(&[a, b]);
        assert_eq!(f.height(), 2);
        assert_eq!(
            f.str("system").unwrap().str_values(),
            &["frontier", "andes"]
        );
        assert!(f.column("mean_over_factor").unwrap().get_f64(0).unwrap() > 3.0);
    }

    #[test]
    fn shared_users_joins_across_systems() {
        let j = shared_users(&mini_frame(1.0), &mini_frame(0.5)).unwrap();
        assert_eq!(j.height(), 10, "all ten synthetic users overlap");
        assert!(j.has_column("jobs"));
        assert!(j.has_column("jobs_right"));
        assert!(j.has_column("mean_wait_s_right"));
    }

    #[test]
    fn chart_carries_one_group_per_metric() {
        let a = summarize_system(&mini_frame(1.0), "frontier").unwrap();
        let b = summarize_system(&mini_frame(0.5), "andes").unwrap();
        match federation_chart(&[a, b]) {
            Chart::Bar(c) => {
                assert_eq!(c.mode, BarMode::Grouped);
                assert_eq!(c.stacks.len(), 3);
                assert_eq!(c.categories.len(), 2);
            }
            _ => panic!(),
        }
    }
}
