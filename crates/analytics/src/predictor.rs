//! Walltime prediction — §6's first future-work item: "embedding
//! AI-predicted walltime estimation into job submission workflows".
//!
//! A per-user online predictor: for each submission it predicts the job's
//! runtime from the user's recent history (exponentially weighted mean of
//! actual runtimes, scaled by a safety quantile of the user's past
//! prediction errors), falling back to a global model for cold users. The
//! evaluation walks the trace in submit order, predicting each job *before*
//! observing it — no lookahead.

use schedflow_dataflow::contract::FrameSchema;
use schedflow_frame::{col_any, col_i64, col_num, col_str, lit_i64, Frame, FrameError, LazyPlan};
use std::collections::HashMap;

/// Logical plan for the predictor evaluation: started jobs with a known
/// user, a positive runtime, and a finite positive request, in submit
/// order. Filtering before the (stable) sort yields the same walk order as
/// the historical sort-then-skip loop, but as a zero-copy view.
pub fn plan() -> LazyPlan {
    LazyPlan::scan()
        .filter(
            col_any("start")
                .is_not_null()
                .and(col_str("user").is_not_null())
                .and(col_num("elapsed_s").gt(lit_i64(0)))
                .and(col_num("timelimit_s").gt(lit_i64(0))),
        )
        .sort("submit", false)
        .project(&[
            col_i64("submit"),
            col_str("user"),
            col_num("elapsed_s"),
            col_num("timelimit_s"),
        ])
}

/// Input columns this stage reads from the curated frame — its declared
/// [`TaskContract`](schedflow_dataflow::contract::TaskContract) requirement,
/// derived from [`plan`]'s typed column references.
pub fn required_schema() -> FrameSchema {
    plan().required_schema()
}

/// Configuration of the per-user EWMA predictor.
#[derive(Debug, Clone)]
pub struct PredictorConfig {
    /// EWMA smoothing factor for the per-user runtime estimate.
    pub alpha: f64,
    /// Multiplicative safety margin applied to predictions (requests must
    /// cover the runtime or the job times out).
    pub safety_factor: f64,
    /// Observations before a user's own model takes over from the global one.
    pub warmup: usize,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            alpha: 0.3,
            safety_factor: 1.5,
            warmup: 3,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct UserModel {
    ewma: f64,
    n: usize,
}

/// The online predictor.
#[derive(Debug, Clone)]
pub struct WalltimePredictor {
    config: PredictorConfig,
    users: HashMap<String, UserModel>,
    global: UserModel,
}

impl WalltimePredictor {
    pub fn new(config: PredictorConfig) -> Self {
        Self {
            config,
            users: HashMap::new(),
            global: UserModel::default(),
        }
    }

    /// Predict the requested walltime (seconds) for a job by `user`, before
    /// its runtime is known. Falls back to the global model, then to
    /// `fallback_secs`, when history is insufficient.
    pub fn predict(&self, user: &str, fallback_secs: i64) -> i64 {
        let model = self
            .users
            .get(user)
            .filter(|m| m.n >= self.config.warmup)
            .or(if self.global.n >= self.config.warmup {
                Some(&self.global)
            } else {
                None
            });
        match model {
            Some(m) => ((m.ewma * self.config.safety_factor) as i64).max(60),
            None => fallback_secs,
        }
    }

    /// Observe a finished job's actual runtime.
    pub fn observe(&mut self, user: &str, actual_secs: i64) {
        let a = self.config.alpha;
        for m in [
            self.users.entry(user.to_owned()).or_default(),
            &mut self.global,
        ] {
            m.ewma = if m.n == 0 {
                actual_secs as f64
            } else {
                a * actual_secs as f64 + (1.0 - a) * m.ewma
            };
            m.n += 1;
        }
    }
}

/// Evaluation of the predictor against the users' own requests.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorEvaluation {
    pub jobs: usize,
    /// Mean of predicted/actual (≥1 is covered; closer to 1 is tighter).
    pub mean_predicted_over_actual: f64,
    /// Mean of user-requested/actual on the same jobs.
    pub mean_requested_over_actual: f64,
    /// Fraction of jobs whose prediction covered the actual runtime
    /// (an uncovered prediction would have produced a timeout).
    pub coverage: f64,
    /// Total requested-but-unused hours under user requests.
    pub user_unused_hours: f64,
    /// Total requested-but-unused hours under predictions.
    pub predicted_unused_hours: f64,
}

/// Walk the curated frame in submit order, predicting each started job's
/// walltime before observing it, and compare against the users' requests.
pub fn evaluate(frame: &Frame, config: PredictorConfig) -> Result<PredictorEvaluation, FrameError> {
    let out = plan().execute_view(frame)?;
    let view = out.view();
    let user = view.str("user")?;
    let mut elapsed = view.column("elapsed_s")?.cursor();
    let mut requested = view.column("timelimit_s")?.cursor();

    let mut predictor = WalltimePredictor::new(config);
    let mut jobs = 0usize;
    let mut pred_ratio_sum = 0.0;
    let mut req_ratio_sum = 0.0;
    let mut covered = 0usize;
    let mut user_unused = 0.0;
    let mut pred_unused = 0.0;

    for i in 0..view.height() {
        let (Some(u), Some(actual), Some(req)) =
            (user.get_str(i), elapsed.get_i64(i), requested.get_i64(i))
        else {
            continue;
        };
        let predicted = predictor.predict(u, req);
        jobs += 1;
        pred_ratio_sum += predicted as f64 / actual as f64;
        req_ratio_sum += req as f64 / actual as f64;
        if predicted >= actual {
            covered += 1;
        }
        user_unused += (req - actual).max(0) as f64 / 3600.0;
        pred_unused += (predicted - actual).max(0) as f64 / 3600.0;
        predictor.observe(u, actual);
    }

    Ok(PredictorEvaluation {
        jobs,
        mean_predicted_over_actual: if jobs == 0 {
            0.0
        } else {
            pred_ratio_sum / jobs as f64
        },
        mean_requested_over_actual: if jobs == 0 {
            0.0
        } else {
            req_ratio_sum / jobs as f64
        },
        coverage: if jobs == 0 {
            0.0
        } else {
            covered as f64 / jobs as f64
        },
        user_unused_hours: user_unused,
        predicted_unused_hours: pred_unused,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedflow_frame::Column;

    #[test]
    fn cold_start_uses_fallback_then_learns() {
        let mut p = WalltimePredictor::new(PredictorConfig::default());
        assert_eq!(p.predict("u1", 7200), 7200, "no history: fallback");
        for _ in 0..3 {
            p.observe("u1", 1000);
        }
        let pred = p.predict("u1", 7200);
        assert!(
            (1400..=1600).contains(&pred),
            "≈1000 × 1.5 safety, got {pred}"
        );
    }

    #[test]
    fn global_model_serves_cold_users() {
        let mut p = WalltimePredictor::new(PredictorConfig::default());
        for _ in 0..5 {
            p.observe("veteran", 600);
        }
        // A new user benefits from the machine-wide pattern.
        let pred = p.predict("newcomer", 86_400);
        assert!(pred < 2000, "global model applied: {pred}");
    }

    #[test]
    fn ewma_tracks_shifts() {
        let mut p = WalltimePredictor::new(PredictorConfig {
            alpha: 0.5,
            safety_factor: 1.0,
            warmup: 1,
        });
        p.observe("u", 100);
        p.observe("u", 1000);
        let after_shift = p.predict("u", 0);
        assert!(after_shift > 100 && after_shift < 1000);
        for _ in 0..8 {
            p.observe("u", 1000);
        }
        assert!(p.predict("u", 0) > 900, "converges to the new regime");
    }

    fn eval_frame() -> Frame {
        // One user, consistent 1000s runtimes, 4x overestimated requests.
        let n = 40;
        Frame::new()
            .with("submit", Column::from_i64((0..n).collect()))
            .with(
                "user",
                Column::from_str((0..n).map(|_| "u1".to_owned()).collect()),
            )
            .with("elapsed_s", Column::from_i64(vec![1000; n as usize]))
            .with(
                "timelimit_s",
                Column::from_opt_i64(vec![Some(4000); n as usize]),
            )
            .with("start", Column::from_opt_i64((0..n).map(Some).collect()))
    }

    #[test]
    fn evaluation_beats_user_requests_on_consistent_workloads() {
        let e = evaluate(&eval_frame(), PredictorConfig::default()).unwrap();
        assert_eq!(e.jobs, 40);
        assert!((e.mean_requested_over_actual - 4.0).abs() < 1e-9);
        assert!(
            e.mean_predicted_over_actual < 2.5,
            "tighter than users: {}",
            e.mean_predicted_over_actual
        );
        assert!(
            e.coverage > 0.9,
            "but still covers runtimes: {}",
            e.coverage
        );
        assert!(e.predicted_unused_hours < e.user_unused_hours);
    }

    #[test]
    fn empty_frame_evaluates_cleanly() {
        let f = Frame::new()
            .with("submit", Column::from_i64(vec![]))
            .with("user", Column::from_str(vec![]))
            .with("elapsed_s", Column::from_i64(vec![]))
            .with("timelimit_s", Column::from_opt_i64(vec![]))
            .with("start", Column::from_opt_i64(vec![]));
        let e = evaluate(&f, PredictorConfig::default()).unwrap();
        assert_eq!(e.jobs, 0);
    }
}
