//! Frame selection helpers shared by the analysis stages.
//!
//! Each selection is declared as a [`LazyPlan`] — a logical filter over the
//! curated frame — and comes in two flavors: a zero-copy `*_view` form
//! returning a [`FrameView`] over the (possibly multi-chunk) merged frame,
//! and the historical eager form that materializes the view. Stages iterate
//! views through [`schedflow_frame::ViewCursor`]s so a scan over a year of
//! monthly chunks stays O(rows) instead of O(rows × chunks).
//!
//! Because the selections are plans, their input contract is derived from
//! the typed column references ([`required_schema`]) instead of being
//! written by hand.

use schedflow_dataflow::contract::FrameSchema;
use schedflow_frame::{
    col_any, col_i64, col_str, lit_i64, Frame, FrameError, FrameView, LazyPlan, PlanOutput,
};

/// Input columns this stage reads from the curated frame, derived from the
/// union of the selection plans' typed column references.
pub fn required_schema() -> FrameSchema {
    selection_plan().required_schema()
}

/// A plan touching every column the selection helpers can reference; the
/// literal values are placeholders — only the typed refs matter for the
/// derived contract.
pub fn selection_plan() -> LazyPlan {
    month_plan(0, 1)
        .filter(col_str("state").in_str(&[]))
        .filter(col_any("start").is_not_null())
}

/// Logical plan: rows submitted in the given year.
pub fn year_plan(year: i32) -> LazyPlan {
    LazyPlan::scan().filter(col_i64("year").eq(lit_i64(i64::from(year))))
}

/// Logical plan: rows submitted in the given month of the given year.
pub fn month_plan(year: i32, month: u8) -> LazyPlan {
    LazyPlan::scan().filter(
        col_i64("year")
            .eq(lit_i64(i64::from(year)))
            .and(col_i64("month").eq(lit_i64(i64::from(month)))),
    )
}

/// Logical plan: rows whose `state` is one of `states`.
pub fn states_plan(states: &[&str]) -> LazyPlan {
    LazyPlan::scan().filter(col_str("state").in_str(states))
}

/// Logical plan: rows that actually started (non-null `start`).
pub fn started_plan() -> LazyPlan {
    LazyPlan::scan().filter(col_any("start").is_not_null())
}

/// Run a pure-selection plan, returning the zero-copy view it produces.
fn view_of<'a>(plan: &LazyPlan, frame: &'a Frame) -> Result<FrameView<'a>, FrameError> {
    match plan.execute_view(frame)? {
        PlanOutput::View { view, .. } => Ok(view),
        PlanOutput::Owned(_) => Err(FrameError::Plan(
            "selection plan unexpectedly materialized".to_owned(),
        )),
    }
}

/// View of rows submitted in the given year. Zero-copy.
pub fn year_view(frame: &Frame, year: i32) -> Result<FrameView<'_>, FrameError> {
    view_of(&year_plan(year), frame)
}

/// Rows submitted in the given year.
pub fn filter_year(frame: &Frame, year: i32) -> Result<Frame, FrameError> {
    Ok(year_view(frame, year)?.materialize())
}

/// View of rows submitted in the given month of the given year. Zero-copy.
pub fn month_view(frame: &Frame, year: i32, month: u8) -> Result<FrameView<'_>, FrameError> {
    view_of(&month_plan(year, month), frame)
}

/// Rows submitted in the given month of the given year.
pub fn filter_month(frame: &Frame, year: i32, month: u8) -> Result<Frame, FrameError> {
    Ok(month_view(frame, year, month)?.materialize())
}

/// View of rows whose `state` is one of `states`. Zero-copy.
pub fn states_view<'a>(frame: &'a Frame, states: &[&str]) -> Result<FrameView<'a>, FrameError> {
    view_of(&states_plan(states), frame)
}

/// Rows whose `state` is one of `states`.
pub fn filter_states(frame: &Frame, states: &[&str]) -> Result<Frame, FrameError> {
    Ok(states_view(frame, states)?.materialize())
}

/// View of rows that actually started (non-null `start`). Zero-copy.
pub fn started_view(frame: &Frame) -> Result<FrameView<'_>, FrameError> {
    view_of(&started_plan(), frame)
}

/// Rows that actually started (non-null `start`).
pub fn filter_started(frame: &Frame) -> Result<Frame, FrameError> {
    Ok(started_view(frame)?.materialize())
}

/// Column as f64 vec, nulls dropped, paired with their row indices.
pub fn numeric_with_rows(frame: &Frame, name: &str) -> Result<(Vec<usize>, Vec<f64>), FrameError> {
    let col = frame.column(name)?;
    let mut cur = col.cursor();
    let mut rows = Vec::new();
    let mut vals = Vec::new();
    for i in 0..frame.height() {
        if let Some(v) = cur.get_f64(i) {
            rows.push(i);
            vals.push(v);
        }
    }
    Ok((rows, vals))
}

/// View-rank counterpart of [`numeric_with_rows`]: valid values of `name`
/// within the view, paired with *view* row indices.
pub fn view_numeric_with_rows(
    view: &FrameView<'_>,
    name: &str,
) -> Result<(Vec<usize>, Vec<f64>), FrameError> {
    let col = view.column(name)?;
    let mut cur = col.cursor();
    let mut rows = Vec::new();
    let mut vals = Vec::new();
    for i in 0..view.height() {
        if let Some(v) = cur.get_f64(i) {
            rows.push(i);
            vals.push(v);
        }
    }
    Ok((rows, vals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedflow_dataflow::contract::ColType;
    use schedflow_frame::{copycount, Column};

    fn frame() -> Frame {
        Frame::new()
            .with("year", Column::from_i64(vec![2023, 2024, 2024]))
            .with("month", Column::from_i64(vec![5, 1, 2]))
            .with(
                "state",
                Column::from_str(vec![
                    "COMPLETED".into(),
                    "FAILED".into(),
                    "COMPLETED".into(),
                ]),
            )
            .with(
                "start",
                Column::from_opt_i64(vec![Some(10), None, Some(30)]),
            )
            .with("wait_s", Column::from_opt_i64(vec![Some(5), None, Some(7)]))
    }

    #[test]
    fn year_and_month_filters() {
        let f = frame();
        assert_eq!(filter_year(&f, 2024).unwrap().height(), 2);
        assert_eq!(filter_month(&f, 2024, 2).unwrap().height(), 1);
        assert_eq!(filter_month(&f, 2022, 1).unwrap().height(), 0);
    }

    #[test]
    fn state_filter() {
        let f = filter_states(&frame(), &["COMPLETED"]).unwrap();
        assert_eq!(f.height(), 2);
    }

    #[test]
    fn started_filter() {
        assert_eq!(filter_started(&frame()).unwrap().height(), 2);
    }

    #[test]
    fn numeric_extraction_skips_nulls() {
        let (rows, vals) = numeric_with_rows(&frame(), "wait_s").unwrap();
        assert_eq!(rows, vec![0, 2]);
        assert_eq!(vals, vec![5.0, 7.0]);
    }

    #[test]
    fn derived_schema_covers_all_selection_columns() {
        let s = required_schema();
        assert_eq!(s.get("year").unwrap().ty, ColType::Int);
        assert_eq!(s.get("month").unwrap().ty, ColType::Int);
        assert_eq!(s.get("state").unwrap().ty, ColType::Str);
        assert_eq!(s.get("start").unwrap().ty, ColType::Any);
        assert!(s.get("start").unwrap().nullable);
    }

    #[test]
    fn views_select_without_copying_across_chunks() {
        let f = Frame::vstack(&[frame(), frame(), frame()]).unwrap();
        copycount::reset();
        let started = started_view(&f).unwrap();
        let y = year_view(&f, 2024).unwrap();
        let m = month_view(&f, 2024, 2).unwrap();
        let s = states_view(&f, &["COMPLETED"]).unwrap();
        assert_eq!(
            copycount::rows_copied(),
            0,
            "selection views must not copy rows"
        );
        assert_eq!(started.height(), 6);
        assert_eq!(y.height(), 6);
        assert_eq!(m.height(), 3);
        assert_eq!(s.height(), 6);
        let (rows, vals) = view_numeric_with_rows(&started, "wait_s").unwrap();
        assert_eq!(rows.len(), 6);
        assert_eq!(vals[0], 5.0);
        assert_eq!(vals[1], 7.0);
    }
}
