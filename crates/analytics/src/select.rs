//! Frame selection helpers shared by the analysis stages.

use schedflow_frame::{Frame, FrameError};

/// Rows submitted in the given year.
pub fn filter_year(frame: &Frame, year: i32) -> Result<Frame, FrameError> {
    let mask = frame
        .i64("year")?
        .mask_f64(|y| y as i32 == year);
    frame.filter(&mask)
}

/// Rows submitted in the given month of the given year.
pub fn filter_month(frame: &Frame, year: i32, month: u8) -> Result<Frame, FrameError> {
    let y = frame.i64("year")?;
    let m = frame.i64("month")?;
    let mask: Vec<bool> = (0..frame.height())
        .map(|i| {
            y.get_i64(i) == Some(i64::from(year)) && m.get_i64(i) == Some(i64::from(month))
        })
        .collect();
    frame.filter(&mask)
}

/// Rows whose `state` is one of `states`.
pub fn filter_states(frame: &Frame, states: &[&str]) -> Result<Frame, FrameError> {
    let mask = frame
        .str("state")?
        .mask_str(|s| states.contains(&s));
    frame.filter(&mask)
}

/// Rows that actually started (non-null `start`).
pub fn filter_started(frame: &Frame) -> Result<Frame, FrameError> {
    let col = frame.column("start")?;
    let mask: Vec<bool> = (0..frame.height()).map(|i| col.is_valid(i)).collect();
    frame.filter(&mask)
}

/// Column as f64 vec, nulls dropped, paired with their row indices.
pub fn numeric_with_rows(frame: &Frame, name: &str) -> Result<(Vec<usize>, Vec<f64>), FrameError> {
    let col = frame.column(name)?;
    let mut rows = Vec::new();
    let mut vals = Vec::new();
    for i in 0..frame.height() {
        if let Some(v) = col.get_f64(i) {
            rows.push(i);
            vals.push(v);
        }
    }
    Ok((rows, vals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedflow_frame::Column;

    fn frame() -> Frame {
        Frame::new()
            .with("year", Column::from_i64(vec![2023, 2024, 2024]))
            .with("month", Column::from_i64(vec![5, 1, 2]))
            .with(
                "state",
                Column::from_str(vec!["COMPLETED".into(), "FAILED".into(), "COMPLETED".into()]),
            )
            .with("start", Column::from_opt_i64(vec![Some(10), None, Some(30)]))
            .with("wait_s", Column::from_opt_i64(vec![Some(5), None, Some(7)]))
    }

    #[test]
    fn year_and_month_filters() {
        let f = frame();
        assert_eq!(filter_year(&f, 2024).unwrap().height(), 2);
        assert_eq!(filter_month(&f, 2024, 2).unwrap().height(), 1);
        assert_eq!(filter_month(&f, 2022, 1).unwrap().height(), 0);
    }

    #[test]
    fn state_filter() {
        let f = filter_states(&frame(), &["COMPLETED"]).unwrap();
        assert_eq!(f.height(), 2);
    }

    #[test]
    fn started_filter() {
        assert_eq!(filter_started(&frame()).unwrap().height(), 2);
    }

    #[test]
    fn numeric_extraction_skips_nulls() {
        let (rows, vals) = numeric_with_rows(&frame(), "wait_s").unwrap();
        assert_eq!(rows, vec![0, 2]);
        assert_eq!(vals, vec![5.0, 7.0]);
    }
}
