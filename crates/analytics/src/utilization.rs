//! System utilization over time: the "monitor system utilization trends"
//! use case §3.2 assigns to system administrators.
//!
//! Builds a node-occupancy time series from the curated frame's start/end
//! intervals (an event sweep, sampled daily) and a utilization summary.

use schedflow_charts::{Axis, Chart, ScatterChart, Series};
use schedflow_dataflow::contract::FrameSchema;
use schedflow_frame::{col_i64, Frame, FrameError, LazyPlan};

/// Logical plan for the node-occupancy analysis: jobs with a real interval
/// (`end > start`, which also demands both be non-null) and a node count,
/// narrowed to the sweep's three columns.
pub fn plan() -> LazyPlan {
    LazyPlan::scan()
        .filter(
            col_i64("end")
                .gt(col_i64("start"))
                .and(col_i64("nnodes").is_not_null()),
        )
        .project(&[col_i64("start"), col_i64("end"), col_i64("nnodes")])
}

/// Input columns this stage reads from the curated frame — its declared
/// [`TaskContract`](schedflow_dataflow::contract::TaskContract) requirement,
/// derived from [`plan`]'s typed column references.
pub fn required_schema() -> FrameSchema {
    plan().required_schema()
}

/// One sample of the occupancy series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancySample {
    /// Epoch seconds.
    pub t: i64,
    /// Nodes in use at `t`.
    pub nodes: f64,
}

/// Sweep the job intervals into an occupancy series sampled every
/// `step_secs`.
pub fn occupancy(frame: &Frame, step_secs: i64) -> Result<Vec<OccupancySample>, FrameError> {
    let out = plan().execute_view(frame)?;
    let view = out.view();
    let mut start = view.column("start")?.cursor();
    let mut end = view.column("end")?.cursor();
    let mut nodes = view.i64("nnodes")?.cursor();

    let mut deltas: Vec<(i64, i64)> = Vec::new();
    for i in 0..view.height() {
        let (Some(s), Some(e), Some(n)) = (start.get_i64(i), end.get_i64(i), nodes.get_i64(i))
        else {
            continue;
        };
        deltas.push((s, n));
        deltas.push((e, -n));
    }
    if deltas.is_empty() {
        return Ok(Vec::new());
    }
    deltas.sort_unstable();
    let (t0, t1) = (deltas[0].0, deltas[deltas.len() - 1].0);
    let step = step_secs.max(1);
    let mut out = Vec::with_capacity(((t1 - t0) / step + 2) as usize);
    let mut cur = 0i64;
    let mut di = 0usize;
    let mut t = t0;
    while t <= t1 {
        while di < deltas.len() && deltas[di].0 <= t {
            cur += deltas[di].1;
            di += 1;
        }
        out.push(OccupancySample {
            t,
            nodes: cur.max(0) as f64,
        });
        t += step;
    }
    Ok(out)
}

/// Utilization summary over the series, against a machine of `total_nodes`.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationSummary {
    pub samples: usize,
    pub mean_nodes: f64,
    pub peak_nodes: f64,
    /// mean_nodes / total_nodes.
    pub mean_utilization: f64,
    /// Fraction of samples above 90% of the machine.
    pub saturated_fraction: f64,
}

/// Compute the summary for a sampled series.
pub fn summarize(series: &[OccupancySample], total_nodes: u32) -> UtilizationSummary {
    if series.is_empty() {
        return UtilizationSummary {
            samples: 0,
            mean_nodes: 0.0,
            peak_nodes: 0.0,
            mean_utilization: 0.0,
            saturated_fraction: 0.0,
        };
    }
    let mean = series.iter().map(|s| s.nodes).sum::<f64>() / series.len() as f64;
    let peak = series.iter().map(|s| s.nodes).fold(0.0, f64::max);
    let cap = f64::from(total_nodes.max(1));
    let saturated = series.iter().filter(|s| s.nodes > 0.9 * cap).count();
    UtilizationSummary {
        samples: series.len(),
        mean_nodes: mean,
        peak_nodes: peak,
        mean_utilization: mean / cap,
        saturated_fraction: saturated as f64 / series.len() as f64,
    }
}

/// Build the utilization line chart (daily samples).
pub fn utilization_chart(frame: &Frame, system: &str) -> Result<Chart, FrameError> {
    let series = occupancy(frame, 86_400 / 4)?; // 6-hour samples
    let xs: Vec<f64> = series.iter().map(|s| s.t as f64).collect();
    let ys: Vec<f64> = series.iter().map(|s| s.nodes).collect();
    Ok(Chart::Scatter(
        ScatterChart::new(
            &format!("Allocated nodes over time — {system}"),
            Axis::linear("time (epoch seconds)"),
            Axis::linear("nodes in use"),
        )
        .with_series(Series::line("allocated nodes", xs, ys)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedflow_frame::Column;

    fn frame() -> Frame {
        // Two jobs: [0, 100)×4 nodes and [50, 150)×2 nodes.
        Frame::new()
            .with("start", Column::from_opt_i64(vec![Some(0), Some(50), None]))
            .with(
                "end",
                Column::from_opt_i64(vec![Some(100), Some(150), None]),
            )
            .with("nnodes", Column::from_i64(vec![4, 2, 8]))
    }

    #[test]
    fn occupancy_sweeps_intervals() {
        let s = occupancy(&frame(), 25).unwrap();
        // Samples at 0,25,50,75,100,125,150.
        assert_eq!(s.len(), 7);
        assert_eq!(s[0].nodes, 4.0);
        assert_eq!(s[2].nodes, 6.0, "overlap region");
        assert_eq!(s[4].nodes, 2.0, "first job ended");
        assert_eq!(s[6].nodes, 0.0);
    }

    #[test]
    fn never_started_jobs_ignored() {
        let s = occupancy(&frame(), 50).unwrap();
        assert!(s.iter().all(|x| x.nodes <= 6.0));
    }

    #[test]
    fn summary_statistics() {
        let s = occupancy(&frame(), 25).unwrap();
        let u = summarize(&s, 8);
        assert_eq!(u.peak_nodes, 6.0);
        assert!(u.mean_utilization > 0.0 && u.mean_utilization < 1.0);
        assert_eq!(u.saturated_fraction, 0.0);
        let empty = summarize(&[], 8);
        assert_eq!(empty.samples, 0);
    }

    #[test]
    fn saturation_detection() {
        let series = vec![
            OccupancySample { t: 0, nodes: 8.0 },
            OccupancySample { t: 1, nodes: 7.5 },
            OccupancySample { t: 2, nodes: 1.0 },
        ];
        let u = summarize(&series, 8);
        assert!((u.saturated_fraction - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn chart_is_a_line() {
        let c = utilization_chart(&frame(), "toy").unwrap();
        match c {
            Chart::Scatter(sc) => assert!(sc.series[0].line),
            _ => panic!(),
        }
    }

    #[test]
    fn multi_chunk_sweep_is_zero_copy() {
        use schedflow_frame::copycount;
        let f = Frame::vstack(&[frame(), frame()]).unwrap();
        copycount::reset();
        let s = occupancy(&f, 25).unwrap();
        assert_eq!(copycount::rows_copied(), 0);
        assert_eq!(s.len(), 7);
        assert_eq!(s[2].nodes, 12.0, "doubled overlap region");
    }

    #[test]
    fn empty_frame_is_fine() {
        let f = Frame::new()
            .with("start", Column::from_opt_i64(vec![]))
            .with("end", Column::from_opt_i64(vec![]))
            .with("nnodes", Column::from_i64(vec![]));
        assert!(occupancy(&f, 10).unwrap().is_empty());
    }
}
