//! Figures 3 and 7: allocated nodes versus job elapsed time.
//!
//! Log-log scatter over all started jobs — Frontier shows mass up to
//! thousands of nodes and day-long runtimes; Andes concentrates in the
//! small/short corner.

use crate::select::started_plan;
use schedflow_charts::{Axis, Chart, ScatterChart, Series};
use schedflow_dataflow::contract::FrameSchema;
use schedflow_frame::{col_f64, col_i64, lit_f64, lit_i64, Frame, FrameError, LazyPlan};

/// Logical plan for the nodes-vs-elapsed scatter: started jobs with a
/// positive duration and node count, narrowed to the two plotted columns.
pub fn plan() -> LazyPlan {
    started_plan()
        .filter(
            col_f64("elapsed_min")
                .gt(lit_f64(0.0))
                .and(col_i64("nnodes").gt(lit_i64(0))),
        )
        .project(&[col_f64("elapsed_min"), col_i64("nnodes")])
}

/// Input columns this stage reads from the curated frame — its declared
/// [`TaskContract`](schedflow_dataflow::contract::TaskContract) requirement,
/// derived from [`plan`]'s typed column references (including the `start`
/// null-check the old hand-written contract omitted).
pub fn required_schema() -> FrameSchema {
    plan().required_schema()
}

/// Summary numbers used by the shape checks in EXPERIMENTS.md.
#[derive(Debug, Clone, PartialEq)]
pub struct NodesElapsedSummary {
    pub jobs: usize,
    pub max_nodes: i64,
    pub median_nodes: f64,
    pub median_elapsed_min: f64,
    /// Fraction of jobs with ≤ 4 nodes and ≤ 60 minutes (the "small/short"
    /// corner that dominates Andes).
    pub small_short_fraction: f64,
}

/// Extract `(elapsed_minutes, nodes)` pairs for all started jobs. The plan
/// does the selection (pushed into the scan); this is a zero-copy cursor
/// walk over the surviving rows.
pub fn nodes_vs_elapsed(frame: &Frame) -> Result<(Vec<f64>, Vec<f64>), FrameError> {
    let out = plan().execute_view(frame)?;
    let view = out.view();
    let mut nodes = view.i64("nnodes")?.cursor();
    let mut elapsed = view.f64("elapsed_min")?.cursor();
    let mut xs = Vec::with_capacity(view.height());
    let mut ys = Vec::with_capacity(view.height());
    for i in 0..view.height() {
        let (Some(e), Some(n)) = (elapsed.get_f64(i), nodes.get_f64(i)) else {
            continue;
        };
        xs.push(e);
        ys.push(n);
    }
    Ok((xs, ys))
}

/// Build the Figure 3/7 chart.
pub fn nodes_elapsed_chart(frame: &Frame, system: &str) -> Result<Chart, FrameError> {
    let (xs, ys) = nodes_vs_elapsed(frame)?;
    Ok(Chart::Scatter(
        ScatterChart::new(
            &format!("Allocated nodes vs job duration — {system}"),
            Axis::log("elapsed time (minutes)"),
            Axis::log("allocated nodes"),
        )
        .with_series(Series::scatter("jobs", xs, ys)),
    ))
}

/// Compute the shape-check summary.
pub fn summarize(frame: &Frame) -> Result<NodesElapsedSummary, FrameError> {
    let (xs, ys) = nodes_vs_elapsed(frame)?;
    let jobs = xs.len();
    let median = |v: &[f64]| {
        let mut s = v.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if s.is_empty() {
            0.0
        } else {
            s[s.len() / 2]
        }
    };
    let small_short = xs
        .iter()
        .zip(&ys)
        .filter(|(&e, &n)| n <= 4.0 && e <= 60.0)
        .count();
    Ok(NodesElapsedSummary {
        jobs,
        max_nodes: ys.iter().copied().fold(0.0, f64::max) as i64,
        median_nodes: median(&ys),
        median_elapsed_min: median(&xs),
        small_short_fraction: if jobs == 0 {
            0.0
        } else {
            small_short as f64 / jobs as f64
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedflow_frame::Column;

    fn frame() -> Frame {
        Frame::new()
            .with(
                "start",
                Column::from_opt_i64(vec![Some(1), Some(2), None, Some(4)]),
            )
            .with("nnodes", Column::from_i64(vec![1, 1000, 5, 2]))
            .with(
                "elapsed_min",
                Column::from_f64(vec![30.0, 1200.0, 10.0, 45.0]),
            )
    }

    #[test]
    fn extracts_started_jobs_only() {
        let (xs, ys) = nodes_vs_elapsed(&frame()).unwrap();
        assert_eq!(xs.len(), 3);
        assert!(ys.contains(&1000.0));
        assert!(!ys.contains(&5.0), "never-started job excluded");
    }

    #[test]
    fn chart_axes_are_log_log() {
        let c = nodes_elapsed_chart(&frame(), "frontier").unwrap();
        match c {
            Chart::Scatter(s) => {
                assert_eq!(s.x_axis.scale, schedflow_charts::Scale::Log10);
                assert_eq!(s.y_axis.scale, schedflow_charts::Scale::Log10);
                assert_eq!(s.series[0].len(), 3);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn multi_chunk_extraction_is_zero_copy() {
        use schedflow_frame::copycount;
        let f = Frame::vstack(&[frame(), frame()]).unwrap();
        copycount::reset();
        let (xs, ys) = nodes_vs_elapsed(&f).unwrap();
        assert_eq!(copycount::rows_copied(), 0);
        assert_eq!(xs.len(), 6);
        assert_eq!(ys.iter().filter(|&&n| n == 1000.0).count(), 2);
    }

    #[test]
    fn summary_shape_quantities() {
        let s = summarize(&frame()).unwrap();
        assert_eq!(s.jobs, 3);
        assert_eq!(s.max_nodes, 1000);
        assert!((s.small_short_fraction - 2.0 / 3.0).abs() < 1e-9);
    }
}
