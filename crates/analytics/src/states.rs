//! Figures 5 and 8: job end states per user (stacked bars).
//!
//! The Frontier view shows a few users dominating failure counts (high
//! cross-user variance); Andes shows lower, more uniform failure rates —
//! the contrast §4.3 reads as a difference in workload style.

use schedflow_charts::{BarChart, BarMode, Chart, Scale};
use schedflow_dataflow::contract::FrameSchema;
use schedflow_frame::{col_str, Agg, Frame, FrameError, LazyPlan};
use schedflow_model::TERMINAL_STATES;
use std::collections::HashMap;

/// Logical plan for the per-user end-state analysis: keep rows with a known
/// user in a terminal state (null users and non-terminal states are never
/// plotted), then count jobs per `(user, state)`.
pub fn plan() -> LazyPlan {
    let terminal: Vec<&str> = TERMINAL_STATES.iter().map(|s| s.to_sacct()).collect();
    LazyPlan::scan()
        .filter(col_str("user").is_not_null())
        .filter(col_str("state").in_str(&terminal))
        .group_by(&["user", "state"], &[("n", Agg::Count)])
}

/// Input columns this stage reads from the curated frame — its declared
/// [`TaskContract`](schedflow_dataflow::contract::TaskContract) requirement,
/// derived from [`plan`]'s typed column references.
pub fn required_schema() -> FrameSchema {
    plan().required_schema()
}

/// Per-user state breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct UserStates {
    pub user: String,
    /// Counts aligned with [`TERMINAL_STATES`].
    pub counts: Vec<u64>,
}

impl UserStates {
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of this user's jobs that ended unsuccessfully.
    pub fn failure_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let ok: u64 = TERMINAL_STATES
            .iter()
            .zip(&self.counts)
            .filter(|(s, _)| !s.is_unsuccessful())
            .map(|(_, &c)| c)
            .sum();
        1.0 - ok as f64 / total as f64
    }
}

/// State counts for the `top_n` most active users, ordered by job count.
pub fn states_per_user(frame: &Frame, top_n: usize) -> Result<Vec<UserStates>, FrameError> {
    let g = plan().execute(frame)?;
    let users = g.str("user")?;
    let states = g.str("state")?;
    let counts = g.i64("n")?;

    let state_index: HashMap<&str, usize> = TERMINAL_STATES
        .iter()
        .enumerate()
        .map(|(i, s)| (s.to_sacct(), i))
        .collect();

    let mut per_user: HashMap<String, Vec<u64>> = HashMap::new();
    for i in 0..g.height() {
        let (Some(u), Some(s), Some(n)) = (users.get_str(i), states.get_str(i), counts.get_i64(i))
        else {
            continue;
        };
        let Some(&si) = state_index.get(s) else {
            continue; // non-terminal states are not plotted
        };
        per_user
            .entry(u.to_owned())
            .or_insert_with(|| vec![0; TERMINAL_STATES.len()])[si] += n as u64;
    }

    let mut rows: Vec<UserStates> = per_user
        .into_iter()
        .map(|(user, counts)| UserStates { user, counts })
        .collect();
    rows.sort_by(|a, b| b.total().cmp(&a.total()).then(a.user.cmp(&b.user)));
    rows.truncate(top_n);
    Ok(rows)
}

/// Build the Figure 5/8 stacked-bar chart for the top `top_n` users.
pub fn states_chart(frame: &Frame, system: &str, top_n: usize) -> Result<Chart, FrameError> {
    let rows = states_per_user(frame, top_n)?;
    let categories = rows.iter().map(|r| r.user.clone()).collect();
    let mut chart = BarChart::new(
        &format!("Job end states per user — {system}"),
        categories,
        "jobs",
        BarMode::Stacked,
    );
    for (si, state) in TERMINAL_STATES.iter().enumerate() {
        let values: Vec<f64> = rows.iter().map(|r| r.counts[si] as f64).collect();
        if values.iter().any(|&v| v > 0.0) {
            chart = chart.with_stack(state.to_sacct(), values);
        }
    }
    chart.y_scale = Scale::Linear;
    Ok(Chart::Bar(chart))
}

/// Cross-user failure-rate dispersion: `(mean, stddev)` of per-user failure
/// rates among the top `top_n` users — the Figure 5 vs 8 contrast statistic.
pub fn failure_dispersion(frame: &Frame, top_n: usize) -> Result<(f64, f64), FrameError> {
    let rows = states_per_user(frame, top_n)?;
    if rows.is_empty() {
        return Ok((0.0, 0.0));
    }
    let rates: Vec<f64> = rows.iter().map(UserStates::failure_rate).collect();
    let mean = rates.iter().sum::<f64>() / rates.len() as f64;
    let var = rates.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / rates.len() as f64;
    Ok((mean, var.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedflow_frame::Column;

    fn frame() -> Frame {
        let users = ["u1", "u1", "u1", "u2", "u2", "u3"];
        let states = [
            "COMPLETED",
            "FAILED",
            "FAILED",
            "COMPLETED",
            "COMPLETED",
            "CANCELLED",
        ];
        Frame::new()
            .with(
                "user",
                Column::from_str(users.iter().map(|s| s.to_string()).collect()),
            )
            .with(
                "state",
                Column::from_str(states.iter().map(|s| s.to_string()).collect()),
            )
    }

    #[test]
    fn per_user_counts_ordered_by_activity() {
        let rows = states_per_user(&frame(), 10).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].user, "u1");
        assert_eq!(rows[0].total(), 3);
        // u1: 1 completed, 2 failed.
        let completed_idx = 0;
        let failed_idx = 1;
        assert_eq!(rows[0].counts[completed_idx], 1);
        assert_eq!(rows[0].counts[failed_idx], 2);
    }

    #[test]
    fn top_n_truncates() {
        let rows = states_per_user(&frame(), 2).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].user, "u2");
    }

    #[test]
    fn failure_rates() {
        let rows = states_per_user(&frame(), 10).unwrap();
        assert!((rows[0].failure_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(rows[1].failure_rate(), 0.0);
        // Cancelled counts as unsuccessful.
        assert_eq!(rows[2].failure_rate(), 1.0);
    }

    #[test]
    fn chart_stacks_only_present_states() {
        let c = states_chart(&frame(), "andes", 10).unwrap();
        match c {
            Chart::Bar(b) => {
                assert_eq!(b.mode, BarMode::Stacked);
                let names: Vec<&str> = b.stacks.iter().map(|(n, _)| n.as_str()).collect();
                assert_eq!(names, vec!["COMPLETED", "FAILED", "CANCELLED"]);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn dispersion_reflects_skew() {
        let (mean, sd) = failure_dispersion(&frame(), 10).unwrap();
        assert!(mean > 0.0);
        assert!(sd > 0.0);
    }
}
