//! Figures 6 and 9: requested versus actual walltimes, with backfilled jobs
//! drawn as `+` and regular jobs as dots.
//!
//! "Many jobs, particularly backfilled ones, complete in less time than
//! requested, revealing underutilization and missed opportunities for
//! finer-grained resource scheduling."

use crate::select::started_plan;
use schedflow_charts::{Axis, Chart, MarkerShape, ScatterChart, Series};
use schedflow_dataflow::contract::FrameSchema;
use schedflow_frame::{col_bool, col_num, lit_i64, Frame, FrameError, LazyPlan};

/// Logical plan for the backfill analysis: started jobs with a finite
/// positive walltime request and a measured duration, narrowed to the three
/// plotted columns (UNLIMITED requests carry a null `timelimit_s`).
pub fn plan() -> LazyPlan {
    started_plan()
        .filter(
            col_num("timelimit_s")
                .gt(lit_i64(0))
                .and(col_num("elapsed_s").is_not_null()),
        )
        .project(&[
            col_num("timelimit_s"),
            col_num("elapsed_s"),
            col_bool("backfilled"),
        ])
}

/// Input columns this stage reads from the curated frame — its declared
/// [`TaskContract`](schedflow_dataflow::contract::TaskContract) requirement,
/// derived from [`plan`]'s typed column references (including the `start`
/// null-check the old hand-written contract omitted).
pub fn required_schema() -> FrameSchema {
    plan().required_schema()
}

/// Shape-check summary for the backfill figures.
#[derive(Debug, Clone, PartialEq)]
pub struct BackfillSummary {
    pub jobs: usize,
    pub backfilled: usize,
    /// Fraction of jobs whose actual < requested.
    pub overestimated_fraction: f64,
    /// Mean requested/actual ratio (≥ 1 means overestimation).
    pub mean_over_factor: f64,
    /// Same, backfilled jobs only.
    pub mean_over_factor_backfilled: f64,
    /// Total unused requested hours (the reclaimable gap).
    pub unused_hours: f64,
}

/// Extract `(requested_min, actual_min)` split into (regular, backfilled).
#[allow(clippy::type_complexity)]
pub fn requested_vs_actual(
    frame: &Frame,
) -> Result<((Vec<f64>, Vec<f64>), (Vec<f64>, Vec<f64>)), FrameError> {
    let out = plan().execute_view(frame)?;
    let view = out.view();
    let mut req = view.column("timelimit_s")?.cursor();
    let mut elapsed = view.column("elapsed_s")?.cursor();
    let mut bf = view.bool("backfilled")?.cursor();
    let mut regular = (Vec::new(), Vec::new());
    let mut backfilled = (Vec::new(), Vec::new());
    for i in 0..view.height() {
        let (Some(r), Some(e)) = (req.get_f64(i), elapsed.get_f64(i)) else {
            continue;
        };
        let slot = if bf.get_i64(i) == Some(1) {
            &mut backfilled
        } else {
            &mut regular
        };
        slot.0.push(r / 60.0);
        slot.1.push((e / 60.0).max(1.0 / 60.0));
    }
    Ok((regular, backfilled))
}

/// Build the Figure 6/9 chart.
pub fn backfill_chart(frame: &Frame, system: &str) -> Result<Chart, FrameError> {
    let ((rx, ry), (bx, by)) = requested_vs_actual(frame)?;
    Ok(Chart::Scatter(
        ScatterChart::new(
            &format!("Requested vs actual walltime — {system}"),
            Axis::log("requested walltime (minutes)"),
            Axis::log("actual duration (minutes)"),
        )
        .with_series(Series::scatter("regular", rx, ry).with_marker(MarkerShape::Dot))
        .with_series(Series::scatter("backfilled", bx, by).with_marker(MarkerShape::Plus))
        .with_diagonal(),
    ))
}

/// Compute the shape-check summary.
pub fn summarize(frame: &Frame) -> Result<BackfillSummary, FrameError> {
    let ((rx, ry), (bx, by)) = requested_vs_actual(frame)?;
    let all_req = rx.iter().chain(&bx);
    let all_act = ry.iter().chain(&by);
    let mut jobs = 0usize;
    let mut over = 0usize;
    let mut factor_sum = 0.0;
    let mut unused_min = 0.0;
    for (&r, &a) in all_req.zip(all_act) {
        jobs += 1;
        if a < r {
            over += 1;
        }
        factor_sum += r / a.max(1.0 / 60.0);
        unused_min += (r - a).max(0.0);
    }
    let bf_factor = if bx.is_empty() {
        0.0
    } else {
        bx.iter()
            .zip(&by)
            .map(|(&r, &a)| r / a.max(1.0 / 60.0))
            .sum::<f64>()
            / bx.len() as f64
    };
    Ok(BackfillSummary {
        jobs,
        backfilled: bx.len(),
        overestimated_fraction: if jobs == 0 {
            0.0
        } else {
            over as f64 / jobs as f64
        },
        mean_over_factor: if jobs == 0 {
            0.0
        } else {
            factor_sum / jobs as f64
        },
        mean_over_factor_backfilled: bf_factor,
        unused_hours: unused_min / 60.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedflow_frame::Column;

    fn frame() -> Frame {
        Frame::new()
            .with(
                "start",
                Column::from_opt_i64(vec![Some(1), Some(2), Some(3), None]),
            )
            .with(
                "timelimit_s",
                Column::from_opt_i64(vec![Some(7200), Some(3600), None, Some(600)]),
            )
            .with("elapsed_s", Column::from_i64(vec![3600, 600, 100, 0]))
            .with(
                "backfilled",
                Column::from_bool(vec![false, true, false, false]),
            )
    }

    #[test]
    fn splits_regular_and_backfilled() {
        let ((rx, _), (bx, by)) = requested_vs_actual(&frame()).unwrap();
        assert_eq!(rx.len(), 1, "unlimited + never-started dropped");
        assert_eq!(bx, vec![60.0]);
        assert_eq!(by, vec![10.0]);
    }

    #[test]
    fn chart_markers_distinguish_backfill() {
        let c = backfill_chart(&frame(), "frontier").unwrap();
        match c {
            Chart::Scatter(s) => {
                assert!(s.diagonal);
                assert_eq!(s.series[0].marker, MarkerShape::Dot);
                assert_eq!(s.series[1].marker, MarkerShape::Plus);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn summary_detects_overestimation() {
        let s = summarize(&frame()).unwrap();
        assert_eq!(s.jobs, 2);
        assert_eq!(s.backfilled, 1);
        assert_eq!(s.overestimated_fraction, 1.0);
        // (7200/3600 + 3600/600)/2 = (2 + 6)/2 = 4 in minutes space.
        assert!((s.mean_over_factor - 4.0).abs() < 1e-9);
        assert!((s.unused_hours - (60.0 + 50.0) / 60.0).abs() < 1e-9);
    }

    #[test]
    fn multi_chunk_frame_needs_no_compaction() {
        use schedflow_frame::copycount;
        let f = Frame::vstack(&[frame(), frame(), frame()]).unwrap();
        copycount::reset();
        let ((rx, _), (bx, by)) = requested_vs_actual(&f).unwrap();
        assert_eq!(
            copycount::rows_copied(),
            0,
            "stage must scan the view in place"
        );
        assert_eq!(rx.len(), 3);
        assert_eq!(bx, vec![60.0; 3]);
        assert_eq!(by, vec![10.0; 3]);
        let s = summarize(&f).unwrap();
        assert_eq!(s.jobs, 6);
        assert!((s.mean_over_factor - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_frame_summary() {
        let f = Frame::new()
            .with("start", Column::from_opt_i64(vec![]))
            .with("timelimit_s", Column::from_opt_i64(vec![]))
            .with("elapsed_s", Column::from_i64(vec![]))
            .with("backfilled", Column::from_bool(vec![]));
        let s = summarize(&f).unwrap();
        assert_eq!(s.jobs, 0);
        assert_eq!(s.mean_over_factor, 0.0);
    }
}
