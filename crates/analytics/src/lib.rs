//! # schedflow-analytics
//!
//! The field-specific analysis stages of the paper's static subworkflow:
//! each module turns the curated job frame into one of the evaluation
//! figures plus the summary statistics the shape checks and the analyst
//! consume.
//!
//! * [`volume`] — Figure 1: jobs & job-steps per year;
//! * [`nodes_elapsed`] — Figures 3/7: allocated nodes vs duration;
//! * [`waits`] — Figure 4: queue waits colored by final state;
//! * [`states`] — Figures 5/8: end states per user;
//! * [`backfill`] — Figures 6/9: requested vs actual walltime with backfill
//!   markers;
//! * [`select`] — shared frame filters (year/month/state/started);
//! * [`utilization`] — node-occupancy trends (the sysadmin use case of §3.2);
//! * [`predictor`] — per-user walltime prediction (§6 future work);
//! * [`federation`] — cross-facility comparison frames and charts (§6).

pub mod backfill;
pub mod dynamics;
pub mod federation;
pub mod nodes_elapsed;
pub mod predictor;
pub mod select;
pub mod states;
pub mod utilization;
pub mod volume;
pub mod waits;

pub use backfill::{backfill_chart, BackfillSummary};
pub use dynamics::{dynamics_chart, queue_dynamics, QueueDynamics};
pub use federation::{
    federation_chart, federation_frame, shared_users, summarize_system, SystemSummary,
};
pub use nodes_elapsed::{nodes_elapsed_chart, NodesElapsedSummary};
pub use predictor::{
    evaluate as evaluate_predictor, PredictorConfig, PredictorEvaluation, WalltimePredictor,
};
pub use states::{failure_dispersion, states_chart, states_per_user, UserStates};
pub use utilization::{occupancy, utilization_chart, OccupancySample, UtilizationSummary};
pub use volume::{volume_chart, yearly_volumes, YearVolume};
pub use waits::{wait_chart, wait_summary, WaitOptions, WaitSummary};
