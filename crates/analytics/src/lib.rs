//! # schedflow-analytics
//!
//! The field-specific analysis stages of the paper's static subworkflow:
//! each module turns the curated job frame into one of the evaluation
//! figures plus the summary statistics the shape checks and the analyst
//! consume.
//!
//! * [`volume`] — Figure 1: jobs & job-steps per year;
//! * [`nodes_elapsed`] — Figures 3/7: allocated nodes vs duration;
//! * [`waits`] — Figure 4: queue waits colored by final state;
//! * [`states`] — Figures 5/8: end states per user;
//! * [`backfill`] — Figures 6/9: requested vs actual walltime with backfill
//!   markers;
//! * [`select`] — shared frame filters (year/month/state/started);
//! * [`utilization`] — node-occupancy trends (the sysadmin use case of §3.2);
//! * [`predictor`] — per-user walltime prediction (§6 future work);
//! * [`federation`] — cross-facility comparison frames and charts (§6).

pub mod backfill;
pub mod dynamics;
pub mod federation;
pub mod nodes_elapsed;
pub mod predictor;
pub mod select;
pub mod states;
pub mod utilization;
pub mod volume;
pub mod waits;

/// The names of every analysis stage with a logical plan / input contract,
/// in pipeline order — the domain of [`stage_plan`] and [`stage_schema`].
pub const STAGES: [&str; 10] = [
    "volume",
    "nodes-elapsed",
    "waits",
    "states",
    "backfill",
    "utilization",
    "dynamics",
    "predictor",
    "federation",
    "select-month",
];

/// The logical plan of a named analysis stage, keyed by the task-name
/// fragments the core pipeline uses (`plot-waits` → `"waits"`). This is the
/// source of truth for both the stage's derived input contract and the
/// `schedflow explain` subcommand. Returns `None` for unknown stage names.
pub fn stage_plan(stage: &str) -> Option<schedflow_frame::LazyPlan> {
    Some(match stage {
        "volume" => volume::plan(),
        "nodes-elapsed" => nodes_elapsed::plan(),
        "waits" => waits::plan(),
        "states" => states::plan(),
        "backfill" => backfill::plan(),
        "utilization" => utilization::plan(),
        "dynamics" => dynamics::plan(),
        "predictor" => predictor::plan(),
        "federation" => federation::shared_users_plan(),
        "select-month" => select::selection_plan(),
        _ => return None,
    })
}

/// The input contract of a named analysis stage, derived from its logical
/// plan's typed column references (see [`stage_plan`]). Returns `None` for
/// unknown stage names so callers can stay contract-free for stages that
/// have no frame input.
pub fn stage_schema(stage: &str) -> Option<schedflow_dataflow::contract::FrameSchema> {
    Some(match stage {
        "volume" => volume::required_schema(),
        "nodes-elapsed" => nodes_elapsed::required_schema(),
        "waits" => waits::required_schema(),
        "states" => states::required_schema(),
        "backfill" => backfill::required_schema(),
        "utilization" => utilization::required_schema(),
        "dynamics" => dynamics::required_schema(),
        "predictor" => predictor::required_schema(),
        "federation" => federation::required_schema(),
        "select-month" => select::required_schema(),
        _ => return None,
    })
}

pub use backfill::{backfill_chart, BackfillSummary};
pub use dynamics::{dynamics_chart, queue_dynamics, QueueDynamics};
pub use federation::{
    federation_chart, federation_frame, shared_users, summarize_system, SystemSummary,
};
pub use nodes_elapsed::{nodes_elapsed_chart, NodesElapsedSummary};
pub use predictor::{
    evaluate as evaluate_predictor, PredictorConfig, PredictorEvaluation, WalltimePredictor,
};
pub use states::{failure_dispersion, states_chart, states_per_user, UserStates};
pub use utilization::{occupancy, utilization_chart, OccupancySample, UtilizationSummary};
pub use volume::{volume_chart, yearly_volumes, YearVolume};
pub use waits::{wait_chart, wait_summary, WaitOptions, WaitSummary};
