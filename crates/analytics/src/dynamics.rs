//! Queue dynamics: mean wait by day-of-week × hour-of-day (heatmap).
//!
//! §2's curated dataset exists to allow "deep exploration of queue dynamics
//! and system load patterns"; this stage exposes the temporal texture —
//! when during the week submissions queue longest — that the Figure 4
//! scatter can only hint at.

use schedflow_charts::{Chart, HeatmapChart};
use schedflow_dataflow::contract::FrameSchema;
use schedflow_frame::{col_i64, col_num, Frame, FrameError, LazyPlan};
use schedflow_model::time::{Timestamp, HOUR};

/// Logical plan for the queue-dynamics heatmap: submissions with a measured
/// wait, narrowed to the grid's two columns.
pub fn plan() -> LazyPlan {
    LazyPlan::scan()
        .filter(
            col_i64("submit")
                .is_not_null()
                .and(col_num("wait_s").is_not_null()),
        )
        .project(&[col_i64("submit"), col_num("wait_s")])
}

/// Input columns this stage reads from the curated frame — its declared
/// [`TaskContract`](schedflow_dataflow::contract::TaskContract) requirement,
/// derived from [`plan`]'s typed column references.
pub fn required_schema() -> FrameSchema {
    plan().required_schema()
}

/// Weekday labels, Monday-first (matching `Timestamp::weekday`).
pub const WEEKDAYS: [&str; 7] = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];

/// The 7×24 aggregation behind the heatmap.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueDynamics {
    /// Mean wait seconds per (weekday, hour); NaN where no submissions.
    pub mean_wait: Vec<f64>,
    /// Submission counts per (weekday, hour).
    pub submissions: Vec<u64>,
}

impl QueueDynamics {
    pub fn cell(&self, weekday: usize, hour: usize) -> f64 {
        self.mean_wait[weekday * 24 + hour]
    }

    pub fn submissions_at(&self, weekday: usize, hour: usize) -> u64 {
        self.submissions[weekday * 24 + hour]
    }

    /// `(weekday, hour)` with the longest mean wait, if any cell has data.
    pub fn worst_slot(&self) -> Option<(usize, usize)> {
        let mut best: Option<(usize, usize, f64)> = None;
        for w in 0..7 {
            for h in 0..24 {
                let v = self.cell(w, h);
                if v.is_finite() && best.map_or(true, |(_, _, b)| v > b) {
                    best = Some((w, h, v));
                }
            }
        }
        best.map(|(w, h, _)| (w, h))
    }
}

/// Aggregate wait times into the weekly 7×24 grid.
pub fn queue_dynamics(frame: &Frame) -> Result<QueueDynamics, FrameError> {
    let out = plan().execute_view(frame)?;
    let view = out.view();
    let mut submit = view.i64("submit")?.cursor();
    let mut wait = view.column("wait_s")?.cursor();
    let mut sums = vec![0.0f64; 7 * 24];
    let mut counts = vec![0u64; 7 * 24];
    for i in 0..view.height() {
        let (Some(t), Some(w)) = (submit.get_i64(i), wait.get_f64(i)) else {
            continue;
        };
        let ts = Timestamp(t);
        let idx = ts.weekday() as usize * 24 + (ts.seconds_of_day() / HOUR) as usize;
        sums[idx] += w;
        counts[idx] += 1;
    }
    let mean_wait = sums
        .iter()
        .zip(&counts)
        .map(|(&s, &c)| if c == 0 { f64::NAN } else { s / c as f64 })
        .collect();
    Ok(QueueDynamics {
        mean_wait,
        submissions: counts,
    })
}

/// Build the queue-dynamics heatmap chart.
pub fn dynamics_chart(frame: &Frame, system: &str) -> Result<Chart, FrameError> {
    let d = queue_dynamics(frame)?;
    let mut chart = HeatmapChart::new(
        &format!("Queue dynamics: mean wait by weekday and hour — {system}"),
        (0..24).map(|h| format!("{h:02}")).collect(),
        WEEKDAYS.iter().map(|s| s.to_string()).collect(),
        d.mean_wait,
    );
    chart.x_axis_label = "hour of submission".to_owned();
    chart.y_axis_label = "day of week".to_owned();
    chart.value_label = "mean wait (s)".to_owned();
    Ok(Chart::Heatmap(chart))
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedflow_frame::Column;

    fn frame() -> Frame {
        // Monday 2024-01-01: two submissions at 09:xx with waits 100/300,
        // one Saturday 03:xx with wait 10.
        let mon9a = Timestamp::from_civil(2024, 1, 1, 9, 5, 0).0;
        let mon9b = Timestamp::from_civil(2024, 1, 1, 9, 40, 0).0;
        let sat3 = Timestamp::from_civil(2024, 1, 6, 3, 0, 0).0;
        Frame::new()
            .with("submit", Column::from_i64(vec![mon9a, mon9b, sat3]))
            .with(
                "wait_s",
                Column::from_opt_i64(vec![Some(100), Some(300), Some(10)]),
            )
    }

    #[test]
    fn aggregates_by_weekday_and_hour() {
        let d = queue_dynamics(&frame()).unwrap();
        assert_eq!(d.cell(0, 9), 200.0, "Monday 09h mean of 100/300");
        assert_eq!(d.submissions_at(0, 9), 2);
        assert_eq!(d.cell(5, 3), 10.0, "Saturday 03h");
        assert!(d.cell(2, 12).is_nan(), "empty cells are NaN");
        assert_eq!(d.worst_slot(), Some((0, 9)));
    }

    #[test]
    fn chart_shape_is_7x24() {
        match dynamics_chart(&frame(), "toy").unwrap() {
            Chart::Heatmap(h) => {
                assert_eq!(h.y_labels.len(), 7);
                assert_eq!(h.x_labels.len(), 24);
                assert_eq!(h.values.len(), 168);
                assert_eq!(h.peak().map(|(r, c, _)| (r, c)), Some((0, 9)));
            }
            _ => panic!("expected heatmap"),
        }
    }

    #[test]
    fn multi_chunk_aggregation_matches_single_chunk() {
        let stacked = Frame::vstack(&[frame(), frame()]).unwrap();
        let d = queue_dynamics(&stacked).unwrap();
        assert_eq!(d.cell(0, 9), 200.0, "mean unchanged when counts double");
        assert_eq!(d.submissions_at(0, 9), 4);
    }

    #[test]
    fn null_waits_skipped() {
        let f = Frame::new()
            .with("submit", Column::from_i64(vec![0]))
            .with("wait_s", Column::from_opt_i64(vec![None]));
        let d = queue_dynamics(&f).unwrap();
        assert!(d.worst_slot().is_none());
    }
}
