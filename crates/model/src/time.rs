//! Slurm time formats: timestamps, elapsed durations, and time limits.
//!
//! Slurm accounting renders wall-clock instants as `YYYY-MM-DDTHH:MM:SS`
//! (site-local time, no zone suffix) and durations as `[DD-]HH:MM:SS[.mmm]`.
//! We model instants as seconds since the Unix epoch in a [`Timestamp`]
//! newtype and implement the civil-calendar conversions directly (no external
//! date crate), using the well-known days-from-civil algorithm.

use crate::error::ParseError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Seconds in one minute/hour/day, as `i64` for timestamp arithmetic.
pub const MINUTE: i64 = 60;
/// Seconds in one hour.
pub const HOUR: i64 = 3600;
/// Seconds in one day.
pub const DAY: i64 = 86_400;

/// An instant in time, as seconds since the Unix epoch (site-local civil time).
///
/// Slurm accounting records are written in the cluster's local time without a
/// zone marker; analyses only ever compare records from the same cluster, so a
/// plain epoch offset is sufficient and keeps arithmetic branch-free.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Timestamp(pub i64);

/// A civil (proleptic Gregorian) date-time, used for parsing and formatting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Civil {
    pub year: i32,
    pub month: u8,
    pub day: u8,
    pub hour: u8,
    pub minute: u8,
    pub second: u8,
}

/// Number of days from 1970-01-01 to the given civil date.
///
/// Howard Hinnant's `days_from_civil`; exact over the full `i32` year range.
pub fn days_from_civil(year: i32, month: u8, day: u8) -> i64 {
    let y = i64::from(year) - i64::from(month <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(month);
    let d = i64::from(day);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`]: civil date for a day offset from the epoch.
pub fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m as u8, d as u8)
}

/// True if `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in the given month.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("month out of range: {month}"),
    }
}

impl Civil {
    /// Construct, validating all components.
    pub fn new(
        year: i32,
        month: u8,
        day: u8,
        hour: u8,
        minute: u8,
        second: u8,
    ) -> Result<Self, ParseError> {
        let ok = (1..=12).contains(&month)
            && day >= 1
            && day <= days_in_month(year, month)
            && hour < 24
            && minute < 60
            && second < 60;
        if !ok {
            return Err(ParseError::with_detail(
                "civil date-time",
                &format!("{year}-{month:02}-{day:02}T{hour:02}:{minute:02}:{second:02}"),
                "component out of range",
            ));
        }
        Ok(Self {
            year,
            month,
            day,
            hour,
            minute,
            second,
        })
    }

    /// Midnight on the given date.
    pub fn date(year: i32, month: u8, day: u8) -> Result<Self, ParseError> {
        Self::new(year, month, day, 0, 0, 0)
    }

    /// Convert to an epoch timestamp.
    pub fn timestamp(&self) -> Timestamp {
        let days = days_from_civil(self.year, self.month, self.day);
        Timestamp(
            days * DAY
                + i64::from(self.hour) * HOUR
                + i64::from(self.minute) * MINUTE
                + i64::from(self.second),
        )
    }
}

impl Timestamp {
    /// The conventional "unknown" instant used by Slurm for jobs that never
    /// started (rendered as `Unknown` in sacct output).
    pub const UNKNOWN: Timestamp = Timestamp(i64::MIN);

    /// Construct from a civil date (midnight).
    pub fn from_ymd(year: i32, month: u8, day: u8) -> Self {
        Timestamp(days_from_civil(year, month, day) * DAY)
    }

    /// Construct from full civil components (panics on invalid input; use
    /// [`Civil::new`] for fallible construction).
    pub fn from_civil(year: i32, month: u8, day: u8, hour: u8, minute: u8, second: u8) -> Self {
        Civil::new(year, month, day, hour, minute, second)
            .expect("valid civil components")
            .timestamp()
    }

    /// Decompose into civil components.
    pub fn civil(&self) -> Civil {
        let days = self.0.div_euclid(DAY);
        let secs = self.0.rem_euclid(DAY);
        let (year, month, day) = civil_from_days(days);
        Civil {
            year,
            month,
            day,
            hour: (secs / HOUR) as u8,
            minute: ((secs % HOUR) / MINUTE) as u8,
            second: (secs % MINUTE) as u8,
        }
    }

    /// Year component (cheap path used by group-by-year analytics).
    pub fn year(&self) -> i32 {
        self.civil().year
    }

    /// `(year, month)` pair, used for monthly granularity queries.
    pub fn year_month(&self) -> (i32, u8) {
        let c = self.civil();
        (c.year, c.month)
    }

    /// Day-of-week, 0 = Monday … 6 = Sunday (1970-01-01 was a Thursday).
    pub fn weekday(&self) -> u8 {
        ((self.0.div_euclid(DAY) + 3).rem_euclid(7)) as u8
    }

    /// Seconds elapsed since local midnight.
    pub fn seconds_of_day(&self) -> i64 {
        self.0.rem_euclid(DAY)
    }

    /// True if this is the sentinel "unknown" instant.
    pub fn is_unknown(&self) -> bool {
        *self == Self::UNKNOWN
    }

    /// Saturating difference `self - earlier`, clamped at zero; `None` if
    /// either side is unknown. This is how queue waits are computed.
    pub fn since(&self, earlier: Timestamp) -> Option<i64> {
        if self.is_unknown() || earlier.is_unknown() {
            None
        } else {
            Some((self.0 - earlier.0).max(0))
        }
    }

    /// Render in sacct format `YYYY-MM-DDTHH:MM:SS`, or `Unknown`.
    pub fn to_sacct(&self) -> String {
        if self.is_unknown() {
            return "Unknown".to_owned();
        }
        let c = self.civil();
        format!(
            "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}",
            c.year, c.month, c.day, c.hour, c.minute, c.second
        )
    }

    /// Parse sacct format `YYYY-MM-DDTHH:MM:SS` (also accepts a space
    /// separator, `Unknown`, and `None`).
    pub fn parse_sacct(s: &str) -> Result<Self, ParseError> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("unknown") || s.eq_ignore_ascii_case("none") || s.is_empty() {
            return Ok(Self::UNKNOWN);
        }
        let err = || ParseError::new("timestamp", s);
        let bytes = s.as_bytes();
        if bytes.len() != 19 || (bytes[10] != b'T' && bytes[10] != b' ') {
            return Err(err());
        }
        let num = |range: std::ops::Range<usize>| -> Result<i64, ParseError> {
            s[range].parse::<i64>().map_err(|_| err())
        };
        let civil = Civil::new(
            num(0..4)? as i32,
            num(5..7)? as u8,
            num(8..10)? as u8,
            num(11..13)? as u8,
            num(14..16)? as u8,
            num(17..19)? as u8,
        )
        .map_err(|_| err())?;
        if bytes[4] != b'-' || bytes[7] != b'-' || bytes[13] != b':' || bytes[16] != b':' {
            return Err(err());
        }
        Ok(civil.timestamp())
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_sacct())
    }
}

impl std::ops::Add<i64> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: i64) -> Timestamp {
        Timestamp(self.0 + rhs)
    }
}

impl std::ops::Sub<Timestamp> for Timestamp {
    type Output = i64;
    fn sub(self, rhs: Timestamp) -> i64 {
        self.0 - rhs.0
    }
}

/// A duration in whole seconds, rendered in Slurm's `[DD-]HH:MM:SS` form.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Elapsed(pub i64);

impl Elapsed {
    pub const ZERO: Elapsed = Elapsed(0);

    pub fn from_secs(secs: i64) -> Self {
        Elapsed(secs.max(0))
    }

    pub fn from_minutes(minutes: i64) -> Self {
        Elapsed(minutes * MINUTE)
    }

    pub fn from_hours(hours: i64) -> Self {
        Elapsed(hours * HOUR)
    }

    pub fn as_secs(&self) -> i64 {
        self.0
    }

    /// Minutes, rounded to nearest (the paper converts raw seconds to minutes
    /// for readability in curation).
    pub fn as_minutes(&self) -> f64 {
        self.0 as f64 / 60.0
    }

    pub fn as_hours(&self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// Render in sacct format: `HH:MM:SS`, or `D-HH:MM:SS` when ≥ 1 day.
    pub fn to_sacct(&self) -> String {
        let total = self.0.max(0);
        let days = total / DAY;
        let h = (total % DAY) / HOUR;
        let m = (total % HOUR) / MINUTE;
        let s = total % MINUTE;
        if days > 0 {
            format!("{days}-{h:02}:{m:02}:{s:02}")
        } else {
            format!("{h:02}:{m:02}:{s:02}")
        }
    }

    /// Parse sacct format: `[DD-]HH:MM:SS[.fff]`, `MM:SS`, or bare minutes.
    pub fn parse_sacct(s: &str) -> Result<Self, ParseError> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(Elapsed::ZERO);
        }
        let err = || ParseError::new("elapsed", s);
        let (days, rest) = match s.split_once('-') {
            Some((d, rest)) => (d.parse::<i64>().map_err(|_| err())?, rest),
            None => (0, s),
        };
        // Strip fractional seconds (TotalCPU is reported with millisecond
        // precision, e.g. `00:01:02.123`).
        let rest = rest.split('.').next().unwrap_or(rest);
        let parts: Vec<&str> = rest.split(':').collect();
        let (h, m, sec) = match parts.as_slice() {
            [h, m, sec] => (
                h.parse::<i64>().map_err(|_| err())?,
                m.parse::<i64>().map_err(|_| err())?,
                sec.parse::<i64>().map_err(|_| err())?,
            ),
            [m, sec] => (
                0,
                m.parse::<i64>().map_err(|_| err())?,
                sec.parse::<i64>().map_err(|_| err())?,
            ),
            // Bare number: Slurm interprets a suffix-free time spec as whole
            // minutes, with no 0..60 constraint (e.g. `--time=90`).
            [m] => {
                let minutes = m.parse::<i64>().map_err(|_| err())?;
                if minutes < 0 || days < 0 {
                    return Err(err());
                }
                return Ok(Elapsed(days * DAY + minutes * MINUTE));
            }
            _ => return Err(err()),
        };
        if m >= 60 || sec >= 60 || h < 0 || m < 0 || sec < 0 || days < 0 {
            return Err(err());
        }
        Ok(Elapsed(days * DAY + h * HOUR + m * MINUTE + sec))
    }
}

impl fmt::Display for Elapsed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_sacct())
    }
}

/// A job time limit: a duration, `UNLIMITED`, or inherited from the partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimeLimit {
    /// Explicit limit.
    Limit(Elapsed),
    /// `UNLIMITED` in sacct output.
    Unlimited,
    /// `Partition_Limit` in sacct output.
    PartitionLimit,
}

impl TimeLimit {
    /// The effective limit in seconds, given the partition's own limit.
    pub fn effective_secs(&self, partition_limit: Elapsed) -> Option<i64> {
        match self {
            TimeLimit::Limit(e) => Some(e.0),
            TimeLimit::Unlimited => None,
            TimeLimit::PartitionLimit => Some(partition_limit.0),
        }
    }

    pub fn to_sacct(&self) -> String {
        match self {
            TimeLimit::Limit(e) => e.to_sacct(),
            TimeLimit::Unlimited => "UNLIMITED".to_owned(),
            TimeLimit::PartitionLimit => "Partition_Limit".to_owned(),
        }
    }

    pub fn parse_sacct(s: &str) -> Result<Self, ParseError> {
        let t = s.trim();
        if t.eq_ignore_ascii_case("unlimited") {
            Ok(TimeLimit::Unlimited)
        } else if t.eq_ignore_ascii_case("partition_limit") {
            Ok(TimeLimit::PartitionLimit)
        } else {
            Elapsed::parse_sacct(t).map(TimeLimit::Limit)
        }
    }
}

impl fmt::Display for TimeLimit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_sacct())
    }
}

/// Iterator over `(year, month)` pairs covering `[start, end]` inclusive —
/// the "monthly granularity" used by the obtain-data stage.
pub fn month_range(
    start: (i32, u8),
    end: (i32, u8),
) -> impl Iterator<Item = (i32, u8)> + Clone + std::fmt::Debug {
    let from = i64::from(start.0) * 12 + i64::from(start.1) - 1;
    let to = i64::from(end.0) * 12 + i64::from(end.1) - 1;
    (from..=to).map(|m| ((m.div_euclid(12)) as i32, (m.rem_euclid(12) + 1) as u8))
}

/// First instant of a month.
pub fn month_start(year: i32, month: u8) -> Timestamp {
    Timestamp::from_ymd(year, month, 1)
}

/// First instant of the month *after* the given one (exclusive end bound).
pub fn month_end_exclusive(year: i32, month: u8) -> Timestamp {
    if month == 12 {
        Timestamp::from_ymd(year + 1, 1, 1)
    } else {
        Timestamp::from_ymd(year, month + 1, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_is_1970() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates_round_trip() {
        // 2023-04-01 (Frontier production start in the paper).
        let t = Timestamp::from_ymd(2023, 4, 1);
        assert_eq!(t.civil().year, 2023);
        assert_eq!(t.civil().month, 4);
        assert_eq!(t.civil().day, 1);
        assert_eq!(t.to_sacct(), "2023-04-01T00:00:00");
    }

    #[test]
    fn weekday_of_known_days() {
        // 1970-01-01 was a Thursday (index 3 with Monday=0).
        assert_eq!(Timestamp::from_ymd(1970, 1, 1).weekday(), 3);
        // 2024-01-01 was a Monday.
        assert_eq!(Timestamp::from_ymd(2024, 1, 1).weekday(), 0);
        // 2023-04-02 was a Sunday.
        assert_eq!(Timestamp::from_ymd(2023, 4, 2).weekday(), 6);
    }

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2024));
        assert!(!is_leap_year(2023));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2000));
        assert_eq!(days_in_month(2024, 2), 29);
        assert_eq!(days_in_month(2023, 2), 28);
    }

    #[test]
    fn timestamp_parse_and_format() {
        let s = "2024-06-15T13:45:09";
        let t = Timestamp::parse_sacct(s).unwrap();
        assert_eq!(t.to_sacct(), s);
        // Space separator accepted.
        let t2 = Timestamp::parse_sacct("2024-06-15 13:45:09").unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn timestamp_unknown() {
        assert!(Timestamp::parse_sacct("Unknown").unwrap().is_unknown());
        assert!(Timestamp::parse_sacct("None").unwrap().is_unknown());
        assert_eq!(Timestamp::UNKNOWN.to_sacct(), "Unknown");
        assert_eq!(Timestamp::UNKNOWN.since(Timestamp(0)), None);
    }

    #[test]
    fn timestamp_rejects_garbage() {
        assert!(Timestamp::parse_sacct("2024-13-01T00:00:00").is_err());
        assert!(Timestamp::parse_sacct("2024-02-30T00:00:00").is_err());
        assert!(Timestamp::parse_sacct("yesterday").is_err());
        assert!(Timestamp::parse_sacct("2024-06-15T25:00:00").is_err());
    }

    #[test]
    fn since_clamps_and_propagates_unknown() {
        let a = Timestamp(100);
        let b = Timestamp(40);
        assert_eq!(a.since(b), Some(60));
        assert_eq!(b.since(a), Some(0));
        assert_eq!(a.since(Timestamp::UNKNOWN), None);
    }

    #[test]
    fn elapsed_formats() {
        assert_eq!(Elapsed(0).to_sacct(), "00:00:00");
        assert_eq!(Elapsed(59).to_sacct(), "00:00:59");
        assert_eq!(Elapsed(3661).to_sacct(), "01:01:01");
        assert_eq!(
            Elapsed(2 * DAY + 3 * HOUR + 4 * MINUTE + 5).to_sacct(),
            "2-03:04:05"
        );
    }

    #[test]
    fn elapsed_parses_all_forms() {
        assert_eq!(Elapsed::parse_sacct("01:01:01").unwrap().0, 3661);
        assert_eq!(
            Elapsed::parse_sacct("2-03:04:05").unwrap().0,
            2 * DAY + 3 * HOUR + 4 * MINUTE + 5
        );
        assert_eq!(Elapsed::parse_sacct("05:30").unwrap().0, 330);
        assert_eq!(Elapsed::parse_sacct("90").unwrap().0, 90 * MINUTE);
        assert_eq!(Elapsed::parse_sacct("00:01:02.123").unwrap().0, 62);
        assert_eq!(Elapsed::parse_sacct("").unwrap().0, 0);
    }

    #[test]
    fn elapsed_rejects_out_of_range_components() {
        assert!(Elapsed::parse_sacct("00:61:00").is_err());
        assert!(Elapsed::parse_sacct("00:00:75").is_err());
        assert!(Elapsed::parse_sacct("x-00:00:00").is_err());
    }

    #[test]
    fn time_limit_variants() {
        assert_eq!(
            TimeLimit::parse_sacct("UNLIMITED").unwrap(),
            TimeLimit::Unlimited
        );
        assert_eq!(
            TimeLimit::parse_sacct("Partition_Limit").unwrap(),
            TimeLimit::PartitionLimit
        );
        let l = TimeLimit::parse_sacct("1-00:00:00").unwrap();
        assert_eq!(l.effective_secs(Elapsed(10)), Some(DAY));
        assert_eq!(TimeLimit::Unlimited.effective_secs(Elapsed(10)), None);
        assert_eq!(
            TimeLimit::PartitionLimit.effective_secs(Elapsed(10)),
            Some(10)
        );
    }

    #[test]
    fn month_range_spans_year_boundary() {
        let months: Vec<_> = month_range((2023, 11), (2024, 2)).collect();
        assert_eq!(months, vec![(2023, 11), (2023, 12), (2024, 1), (2024, 2)]);
    }

    #[test]
    fn month_bounds() {
        assert_eq!(month_start(2024, 2).to_sacct(), "2024-02-01T00:00:00");
        assert_eq!(
            month_end_exclusive(2024, 2).to_sacct(),
            "2024-03-01T00:00:00"
        );
        assert_eq!(
            month_end_exclusive(2024, 12).to_sacct(),
            "2025-01-01T00:00:00"
        );
    }

    proptest! {
        #[test]
        fn prop_civil_round_trip(days in -1_000_000i64..1_000_000) {
            let (y, m, d) = civil_from_days(days);
            prop_assert_eq!(days_from_civil(y, m, d), days);
            prop_assert!((1..=12).contains(&m));
            prop_assert!(d >= 1 && d <= days_in_month(y, m));
        }

        #[test]
        fn prop_timestamp_round_trip(secs in -4_000_000_000i64..4_000_000_000i64) {
            let t = Timestamp(secs);
            let c = t.civil();
            prop_assert_eq!(c.timestamp(), t);
        }

        #[test]
        fn prop_timestamp_string_round_trip(secs in 0i64..4_000_000_000i64) {
            let t = Timestamp(secs);
            let s = t.to_sacct();
            prop_assert_eq!(Timestamp::parse_sacct(&s).unwrap(), t);
        }

        #[test]
        fn prop_elapsed_round_trip(secs in 0i64..10_000_000) {
            let e = Elapsed(secs);
            prop_assert_eq!(Elapsed::parse_sacct(&e.to_sacct()).unwrap(), e);
        }

        #[test]
        fn prop_weekday_advances(day in -500_000i64..500_000) {
            let today = Timestamp(day * DAY);
            let tomorrow = Timestamp((day + 1) * DAY);
            prop_assert_eq!((today.weekday() + 1) % 7, tomorrow.weekday());
        }
    }
}
