//! Trackable RESources (TRES) strings: `cpu=64,mem=512000M,node=1,billing=64,gres/gpu=8`.
//!
//! TRES strings appear in several curated fields (`TRESUsageInAve`, `AllocTRES`,
//! `ReqTRES`); the generator emits them and the curation stage parses them back.

use crate::error::ParseError;
use crate::units::{parse_bytes, parse_count};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One resource dimension within a TRES string.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TresKind {
    Cpu,
    /// Memory — value stored in bytes.
    Mem,
    Node,
    Billing,
    Energy,
    /// Generic resources, e.g. `gres/gpu`.
    Gres(String),
    /// Licenses, burst buffers, or anything else — preserved verbatim.
    Other(String),
}

impl TresKind {
    pub fn name(&self) -> String {
        match self {
            TresKind::Cpu => "cpu".to_owned(),
            TresKind::Mem => "mem".to_owned(),
            TresKind::Node => "node".to_owned(),
            TresKind::Billing => "billing".to_owned(),
            TresKind::Energy => "energy".to_owned(),
            TresKind::Gres(g) => format!("gres/{g}"),
            TresKind::Other(o) => o.clone(),
        }
    }

    fn parse(name: &str) -> TresKind {
        match name {
            "cpu" => TresKind::Cpu,
            "mem" => TresKind::Mem,
            "node" => TresKind::Node,
            "billing" => TresKind::Billing,
            "energy" => TresKind::Energy,
            other => match other.strip_prefix("gres/") {
                Some(g) => TresKind::Gres(g.to_owned()),
                None => TresKind::Other(other.to_owned()),
            },
        }
    }
}

/// A parsed TRES specification: ordered list of `(kind, amount)` pairs.
///
/// Memory amounts are normalized to bytes; everything else is a plain count.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Tres {
    pub entries: Vec<(TresKind, u64)>,
}

impl Tres {
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insert, replacing any existing entry of the same kind.
    pub fn with(mut self, kind: TresKind, amount: u64) -> Self {
        self.set(kind, amount);
        self
    }

    pub fn set(&mut self, kind: TresKind, amount: u64) {
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| *k == kind) {
            e.1 = amount;
        } else {
            self.entries.push((kind, amount));
        }
    }

    pub fn get(&self, kind: &TresKind) -> Option<u64> {
        self.entries
            .iter()
            .find(|(k, _)| k == kind)
            .map(|(_, v)| *v)
    }

    pub fn cpus(&self) -> u64 {
        self.get(&TresKind::Cpu).unwrap_or(0)
    }

    pub fn nodes(&self) -> u64 {
        self.get(&TresKind::Node).unwrap_or(0)
    }

    /// Memory in bytes.
    pub fn mem_bytes(&self) -> u64 {
        self.get(&TresKind::Mem).unwrap_or(0)
    }

    pub fn gpus(&self) -> u64 {
        self.get(&TresKind::Gres("gpu".to_owned())).unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render in sacct syntax. Memory is rendered with an `M` suffix in whole
    /// mebibytes (sacct's convention).
    pub fn to_sacct(&self) -> String {
        let mut parts = Vec::with_capacity(self.entries.len());
        for (kind, amount) in &self.entries {
            match kind {
                TresKind::Mem => {
                    parts.push(format!("mem={}M", amount / (1024 * 1024)));
                }
                k => parts.push(format!("{}={}", k.name(), amount)),
            }
        }
        parts.join(",")
    }

    /// Parse sacct TRES syntax. Empty input yields an empty spec.
    pub fn parse_sacct(s: &str) -> Result<Self, ParseError> {
        let s = s.trim();
        let mut tres = Tres::new();
        if s.is_empty() {
            return Ok(tres);
        }
        for pair in s.split(',') {
            let (name, value) = pair
                .split_once('=')
                .ok_or_else(|| ParseError::with_detail("tres", s, format!("bad pair {pair:?}")))?;
            let kind = TresKind::parse(name.trim());
            let amount = match kind {
                TresKind::Mem => parse_bytes(value.trim())
                    .map_err(|e| ParseError::with_detail("tres", s, e.to_string()))?,
                _ => parse_count(value.trim())
                    .map_err(|e| ParseError::with_detail("tres", s, e.to_string()))?,
            };
            tres.entries.push((kind, amount));
        }
        Ok(tres)
    }
}

impl fmt::Display for Tres {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_sacct())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1024 * 1024;

    #[test]
    fn parses_full_alloc_tres() {
        let t = Tres::parse_sacct("cpu=64,mem=512000M,node=1,billing=64,gres/gpu=8").unwrap();
        assert_eq!(t.cpus(), 64);
        assert_eq!(t.nodes(), 1);
        assert_eq!(t.gpus(), 8);
        assert_eq!(t.mem_bytes(), 512_000 * MIB);
        assert_eq!(t.get(&TresKind::Billing), Some(64));
    }

    #[test]
    fn round_trips_canonical_form() {
        let s = "cpu=128,mem=1024M,node=2,gres/gpu=16";
        let t = Tres::parse_sacct(s).unwrap();
        assert_eq!(t.to_sacct(), s);
    }

    #[test]
    fn empty_is_empty() {
        let t = Tres::parse_sacct("").unwrap();
        assert!(t.is_empty());
        assert_eq!(t.to_sacct(), "");
        assert_eq!(t.cpus(), 0);
    }

    #[test]
    fn builder_replaces_duplicates() {
        let t = Tres::new()
            .with(TresKind::Cpu, 8)
            .with(TresKind::Cpu, 16)
            .with(TresKind::Node, 1);
        assert_eq!(t.cpus(), 16);
        assert_eq!(t.entries.len(), 2);
    }

    #[test]
    fn unknown_kinds_survive() {
        let t = Tres::parse_sacct("license/matlab=2,fs/lustre=100").unwrap();
        assert_eq!(
            t.get(&TresKind::Other("license/matlab".to_owned())),
            Some(2)
        );
        assert!(t.to_sacct().contains("license/matlab=2"));
    }

    #[test]
    fn rejects_malformed_pairs() {
        assert!(Tres::parse_sacct("cpu").is_err());
        assert!(Tres::parse_sacct("cpu=abc").is_err());
    }

    #[test]
    fn gres_suffix_parsing() {
        let t = Tres::parse_sacct("gres/gpu=8,gres/nvme=1").unwrap();
        assert_eq!(t.gpus(), 8);
        assert_eq!(t.get(&TresKind::Gres("nvme".to_owned())), Some(1));
    }
}
