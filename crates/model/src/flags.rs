//! Scheduling flags (`Flags` column) — most importantly the backfill marker.
//!
//! sacct renders flags as a comma-separated list such as
//! `SchedBackfill` or `SchedMain,StartedOnSubmit`. The paper's "Special
//! Indicators" category extracts the backfill bit from this field.

use crate::error::ParseError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Bit positions for [`JobFlags`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum Flag {
    /// Started by the main (priority-order) scheduling pass.
    SchedMain = 1 << 0,
    /// Started by the backfill scheduler.
    SchedBackfill = 1 << 1,
    /// Job started the moment it was submitted (idle machine).
    StartedOnSubmit = 1 << 2,
    /// Job was submitted with a dependency clause.
    Dependent = 1 << 3,
    /// Job was requeued at least once.
    Requeued = 1 << 4,
    /// Job ran in a preemptible QOS.
    Preemptible = 1 << 5,
}

const ALL_FLAGS: [(Flag, &str); 6] = [
    (Flag::SchedMain, "SchedMain"),
    (Flag::SchedBackfill, "SchedBackfill"),
    (Flag::StartedOnSubmit, "StartedOnSubmit"),
    (Flag::Dependent, "Dependent"),
    (Flag::Requeued, "Requeued"),
    (Flag::Preemptible, "Preemptible"),
];

/// A set of scheduling flags.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize, PartialOrd, Ord,
)]
#[serde(transparent)]
pub struct JobFlags(pub u32);

impl JobFlags {
    pub const EMPTY: JobFlags = JobFlags(0);

    pub fn with(mut self, flag: Flag) -> Self {
        self.insert(flag);
        self
    }

    pub fn insert(&mut self, flag: Flag) {
        self.0 |= flag as u32;
    }

    pub fn remove(&mut self, flag: Flag) {
        self.0 &= !(flag as u32);
    }

    pub fn contains(&self, flag: Flag) -> bool {
        self.0 & (flag as u32) != 0
    }

    /// The paper's key special indicator: did the backfill pass start this job?
    pub fn is_backfilled(&self) -> bool {
        self.contains(Flag::SchedBackfill)
    }

    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    pub fn to_sacct(&self) -> String {
        let mut parts = Vec::new();
        for (flag, name) in ALL_FLAGS {
            if self.contains(flag) {
                parts.push(name);
            }
        }
        parts.join(",")
    }

    pub fn parse_sacct(s: &str) -> Result<Self, ParseError> {
        let mut flags = JobFlags::EMPTY;
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let found = ALL_FLAGS
                .iter()
                .find(|(_, name)| name.eq_ignore_ascii_case(part));
            match found {
                Some((flag, _)) => flags.insert(*flag),
                None => return Err(ParseError::new("job flags", s)),
            }
        }
        Ok(flags)
    }
}

impl fmt::Display for JobFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_sacct())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_flags() {
        let f = JobFlags::parse_sacct("").unwrap();
        assert!(f.is_empty());
        assert_eq!(f.to_sacct(), "");
        assert!(!f.is_backfilled());
    }

    #[test]
    fn backfill_detection() {
        let f = JobFlags::parse_sacct("SchedBackfill").unwrap();
        assert!(f.is_backfilled());
        let f = JobFlags::parse_sacct("SchedMain,StartedOnSubmit").unwrap();
        assert!(!f.is_backfilled());
        assert!(f.contains(Flag::StartedOnSubmit));
    }

    #[test]
    fn insert_remove() {
        let mut f = JobFlags::EMPTY
            .with(Flag::SchedBackfill)
            .with(Flag::Dependent);
        assert!(f.contains(Flag::Dependent));
        f.remove(Flag::Dependent);
        assert!(!f.contains(Flag::Dependent));
        assert!(f.is_backfilled());
    }

    #[test]
    fn round_trips_every_combination() {
        for bits in 0u32..(1 << 6) {
            let f = JobFlags(bits);
            let s = f.to_sacct();
            assert_eq!(JobFlags::parse_sacct(&s).unwrap(), f, "bits={bits:b} s={s}");
        }
    }

    #[test]
    fn rejects_unknown_flag() {
        assert!(JobFlags::parse_sacct("SchedBackfill,Bogus").is_err());
    }
}
