//! Job states and exit codes as recorded by Slurm accounting.

use crate::error::ParseError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Final (or current) state of a job or step, mirroring sacct's `State`.
///
/// Terminal states carry the semantics the paper's Figures 4/5/8 color-code:
/// completed, failed, cancelled, timeout, node-fail, out-of-memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum JobState {
    Completed,
    Failed,
    Cancelled,
    Timeout,
    NodeFail,
    OutOfMemory,
    Preempted,
    BootFail,
    Deadline,
    Requeued,
    Pending,
    Running,
    Suspended,
}

/// All terminal states in canonical presentation order (used for stacked-bar
/// legends so every figure orders states identically).
pub const TERMINAL_STATES: [JobState; 8] = [
    JobState::Completed,
    JobState::Failed,
    JobState::Cancelled,
    JobState::Timeout,
    JobState::NodeFail,
    JobState::OutOfMemory,
    JobState::Preempted,
    JobState::BootFail,
];

impl JobState {
    /// sacct's upper-case rendering.
    pub fn to_sacct(&self) -> &'static str {
        match self {
            JobState::Completed => "COMPLETED",
            JobState::Failed => "FAILED",
            JobState::Cancelled => "CANCELLED",
            JobState::Timeout => "TIMEOUT",
            JobState::NodeFail => "NODE_FAIL",
            JobState::OutOfMemory => "OUT_OF_MEMORY",
            JobState::Preempted => "PREEMPTED",
            JobState::BootFail => "BOOT_FAIL",
            JobState::Deadline => "DEADLINE",
            JobState::Requeued => "REQUEUED",
            JobState::Pending => "PENDING",
            JobState::Running => "RUNNING",
            JobState::Suspended => "SUSPENDED",
        }
    }

    /// Parse sacct's `State` column. Cancellations are frequently rendered as
    /// `CANCELLED by <uid>`; the suffix is accepted and dropped.
    pub fn parse_sacct(s: &str) -> Result<Self, ParseError> {
        let t = s.trim();
        let head = t.split_whitespace().next().unwrap_or("");
        let state = match head.to_ascii_uppercase().as_str() {
            "COMPLETED" | "CD" => JobState::Completed,
            "FAILED" | "F" => JobState::Failed,
            "CANCELLED" | "CA" => JobState::Cancelled,
            "TIMEOUT" | "TO" => JobState::Timeout,
            "NODE_FAIL" | "NF" => JobState::NodeFail,
            "OUT_OF_MEMORY" | "OOM" => JobState::OutOfMemory,
            "PREEMPTED" | "PR" => JobState::Preempted,
            "BOOT_FAIL" | "BF" => JobState::BootFail,
            "DEADLINE" | "DL" => JobState::Deadline,
            "REQUEUED" | "RQ" => JobState::Requeued,
            "PENDING" | "PD" => JobState::Pending,
            "RUNNING" | "R" => JobState::Running,
            "SUSPENDED" | "S" => JobState::Suspended,
            _ => return Err(ParseError::new("job state", s)),
        };
        Ok(state)
    }

    /// True once the job can no longer change state.
    pub fn is_terminal(&self) -> bool {
        !matches!(
            self,
            JobState::Pending | JobState::Running | JobState::Suspended | JobState::Requeued
        )
    }

    /// True for the states the paper treats as "unsuccessful" when discussing
    /// per-user failure/cancellation rates.
    pub fn is_unsuccessful(&self) -> bool {
        matches!(
            self,
            JobState::Failed
                | JobState::Cancelled
                | JobState::Timeout
                | JobState::NodeFail
                | JobState::OutOfMemory
                | JobState::BootFail
                | JobState::Deadline
        )
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.to_sacct())
    }
}

/// sacct `ExitCode`: `return_code:signal`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize, PartialOrd, Ord,
)]
pub struct ExitCode {
    pub code: u8,
    pub signal: u8,
}

impl ExitCode {
    pub const SUCCESS: ExitCode = ExitCode { code: 0, signal: 0 };

    pub fn new(code: u8, signal: u8) -> Self {
        Self { code, signal }
    }

    pub fn is_success(&self) -> bool {
        self.code == 0 && self.signal == 0
    }

    pub fn to_sacct(&self) -> String {
        format!("{}:{}", self.code, self.signal)
    }

    pub fn parse_sacct(s: &str) -> Result<Self, ParseError> {
        let t = s.trim();
        if t.is_empty() {
            return Ok(ExitCode::SUCCESS);
        }
        let (c, sig) = t
            .split_once(':')
            .ok_or_else(|| ParseError::new("exit code", s))?;
        Ok(ExitCode {
            code: c.parse().map_err(|_| ParseError::new("exit code", s))?,
            signal: sig.parse().map_err(|_| ParseError::new("exit code", s))?,
        })
    }
}

impl fmt::Display for ExitCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_sacct())
    }
}

/// Pending/hold reason recorded by the scheduler (`Reason` column subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PendingReason {
    None,
    Priority,
    Resources,
    Dependency,
    QosMaxJobsPerUser,
    ReqNodeNotAvail,
    BeginTime,
    JobHeldUser,
    JobHeldAdmin,
}

impl PendingReason {
    pub fn to_sacct(&self) -> &'static str {
        match self {
            PendingReason::None => "None",
            PendingReason::Priority => "Priority",
            PendingReason::Resources => "Resources",
            PendingReason::Dependency => "Dependency",
            PendingReason::QosMaxJobsPerUser => "QOSMaxJobsPerUserLimit",
            PendingReason::ReqNodeNotAvail => "ReqNodeNotAvail",
            PendingReason::BeginTime => "BeginTime",
            PendingReason::JobHeldUser => "JobHeldUser",
            PendingReason::JobHeldAdmin => "JobHeldAdmin",
        }
    }

    pub fn parse_sacct(s: &str) -> Result<Self, ParseError> {
        match s.trim() {
            "" | "None" => Ok(PendingReason::None),
            "Priority" => Ok(PendingReason::Priority),
            "Resources" => Ok(PendingReason::Resources),
            "Dependency" => Ok(PendingReason::Dependency),
            "QOSMaxJobsPerUserLimit" => Ok(PendingReason::QosMaxJobsPerUser),
            "ReqNodeNotAvail" => Ok(PendingReason::ReqNodeNotAvail),
            "BeginTime" => Ok(PendingReason::BeginTime),
            "JobHeldUser" => Ok(PendingReason::JobHeldUser),
            "JobHeldAdmin" => Ok(PendingReason::JobHeldAdmin),
            _ => Err(ParseError::new("pending reason", s)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_canonical_and_short_forms() {
        assert_eq!(
            JobState::parse_sacct("COMPLETED").unwrap(),
            JobState::Completed
        );
        assert_eq!(JobState::parse_sacct("CD").unwrap(), JobState::Completed);
        assert_eq!(JobState::parse_sacct("oom").unwrap(), JobState::OutOfMemory);
    }

    #[test]
    fn parses_cancelled_by_uid() {
        assert_eq!(
            JobState::parse_sacct("CANCELLED by 12345").unwrap(),
            JobState::Cancelled
        );
    }

    #[test]
    fn rejects_unknown_state() {
        assert!(JobState::parse_sacct("EXPLODED").is_err());
    }

    #[test]
    fn round_trips_all_states() {
        for s in [
            JobState::Completed,
            JobState::Failed,
            JobState::Cancelled,
            JobState::Timeout,
            JobState::NodeFail,
            JobState::OutOfMemory,
            JobState::Preempted,
            JobState::BootFail,
            JobState::Deadline,
            JobState::Requeued,
            JobState::Pending,
            JobState::Running,
            JobState::Suspended,
        ] {
            assert_eq!(JobState::parse_sacct(s.to_sacct()).unwrap(), s);
        }
    }

    #[test]
    fn terminality_and_success_classification() {
        assert!(JobState::Completed.is_terminal());
        assert!(!JobState::Completed.is_unsuccessful());
        assert!(JobState::Failed.is_unsuccessful());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Preempted.is_terminal());
        assert!(!JobState::Preempted.is_unsuccessful());
    }

    #[test]
    fn exit_codes() {
        assert_eq!(ExitCode::parse_sacct("0:0").unwrap(), ExitCode::SUCCESS);
        let e = ExitCode::parse_sacct("1:9").unwrap();
        assert_eq!(e.code, 1);
        assert_eq!(e.signal, 9);
        assert!(!e.is_success());
        assert_eq!(e.to_sacct(), "1:9");
        assert!(ExitCode::parse_sacct("1").is_err());
        assert_eq!(ExitCode::parse_sacct("").unwrap(), ExitCode::SUCCESS);
    }

    #[test]
    fn pending_reasons_round_trip() {
        for r in [
            PendingReason::None,
            PendingReason::Priority,
            PendingReason::Resources,
            PendingReason::Dependency,
            PendingReason::QosMaxJobsPerUser,
            PendingReason::ReqNodeNotAvail,
            PendingReason::BeginTime,
            PendingReason::JobHeldUser,
            PendingReason::JobHeldAdmin,
        ] {
            assert_eq!(PendingReason::parse_sacct(r.to_sacct()).unwrap(), r);
        }
    }
}
