//! Job, step, array, and user identifiers.
//!
//! sacct renders job identity in several shapes:
//!
//! * `123456`           — a plain job
//! * `123456_7`         — element 7 of array job 123456
//! * `123456.0`         — numbered step 0 of job 123456
//! * `123456.batch`     — the batch script step
//! * `123456.extern`    — the external (prolog/epilog) step
//! * `123456_7.12`      — a numbered step of an array element

use crate::error::ParseError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The numeric identity of a job (array membership included).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId {
    /// The base Slurm job id.
    pub id: u64,
    /// For array jobs: the task index within the array.
    pub array_task: Option<u32>,
}

impl JobId {
    pub fn plain(id: u64) -> Self {
        Self {
            id,
            array_task: None,
        }
    }

    pub fn array(id: u64, task: u32) -> Self {
        Self {
            id,
            array_task: Some(task),
        }
    }

    pub fn is_array_element(&self) -> bool {
        self.array_task.is_some()
    }

    pub fn to_sacct(&self) -> String {
        match self.array_task {
            Some(t) => format!("{}_{}", self.id, t),
            None => self.id.to_string(),
        }
    }

    pub fn parse_sacct(s: &str) -> Result<Self, ParseError> {
        let t = s.trim();
        let err = || ParseError::new("job id", s);
        match t.split_once('_') {
            Some((base, task)) => Ok(JobId {
                id: base.parse().map_err(|_| err())?,
                array_task: Some(task.parse().map_err(|_| err())?),
            }),
            None => Ok(JobId {
                id: t.parse().map_err(|_| err())?,
                array_task: None,
            }),
        }
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_sacct())
    }
}

/// Identity of a step within a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StepKind {
    /// `jobid.batch` — the batch script itself.
    Batch,
    /// `jobid.extern` — external step (prolog/epilog accounting).
    Extern,
    /// `jobid.interactive` — interactive allocation shell.
    Interactive,
    /// `jobid.N` — an srun launch.
    Numbered(u32),
}

impl StepKind {
    pub fn to_sacct(&self) -> String {
        match self {
            StepKind::Batch => "batch".to_owned(),
            StepKind::Extern => "extern".to_owned(),
            StepKind::Interactive => "interactive".to_owned(),
            StepKind::Numbered(n) => n.to_string(),
        }
    }

    pub fn parse_sacct(s: &str) -> Result<Self, ParseError> {
        match s.trim() {
            "batch" => Ok(StepKind::Batch),
            "extern" => Ok(StepKind::Extern),
            "interactive" => Ok(StepKind::Interactive),
            other => other
                .parse::<u32>()
                .map(StepKind::Numbered)
                .map_err(|_| ParseError::new("step kind", s)),
        }
    }
}

/// A fully qualified step id: `job[.step]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StepId {
    pub job: JobId,
    pub step: StepKind,
}

impl StepId {
    pub fn to_sacct(&self) -> String {
        format!("{}.{}", self.job.to_sacct(), self.step.to_sacct())
    }

    pub fn parse_sacct(s: &str) -> Result<Self, ParseError> {
        let t = s.trim();
        let (job_part, step_part) = t
            .split_once('.')
            .ok_or_else(|| ParseError::new("step id", s))?;
        Ok(StepId {
            job: JobId::parse_sacct(job_part)?,
            step: StepKind::parse_sacct(step_part)?,
        })
    }
}

impl fmt::Display for StepId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_sacct())
    }
}

/// Either a job line or a step line, as they interleave in sacct output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SacctId {
    Job(JobId),
    Step(StepId),
}

impl SacctId {
    /// The owning job, regardless of line kind.
    pub fn job(&self) -> JobId {
        match self {
            SacctId::Job(j) => *j,
            SacctId::Step(s) => s.job,
        }
    }

    pub fn to_sacct(&self) -> String {
        match self {
            SacctId::Job(j) => j.to_sacct(),
            SacctId::Step(s) => s.to_sacct(),
        }
    }

    pub fn parse_sacct(s: &str) -> Result<Self, ParseError> {
        if s.contains('.') {
            StepId::parse_sacct(s).map(SacctId::Step)
        } else {
            JobId::parse_sacct(s).map(SacctId::Job)
        }
    }
}

impl fmt::Display for SacctId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_sacct())
    }
}

/// An anonymized user handle. Real traces carry usernames; our generated
/// traces mint `u0001`-style handles, matching the paper's per-user figures
/// where identities are anonymized.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UserId(pub u32);

impl UserId {
    pub fn name(&self) -> String {
        format!("u{:04}", self.0)
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Project/allocation account, e.g. `stf007`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Account(pub String);

impl fmt::Display for Account {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_job_ids() {
        let id = JobId::parse_sacct("123456").unwrap();
        assert_eq!(id, JobId::plain(123456));
        assert_eq!(id.to_sacct(), "123456");
        assert!(!id.is_array_element());
    }

    #[test]
    fn array_job_ids() {
        let id = JobId::parse_sacct("123456_7").unwrap();
        assert_eq!(id, JobId::array(123456, 7));
        assert_eq!(id.to_sacct(), "123456_7");
        assert!(id.is_array_element());
    }

    #[test]
    fn step_ids_all_kinds() {
        for (s, kind) in [
            ("100.batch", StepKind::Batch),
            ("100.extern", StepKind::Extern),
            ("100.interactive", StepKind::Interactive),
            ("100.42", StepKind::Numbered(42)),
        ] {
            let id = StepId::parse_sacct(s).unwrap();
            assert_eq!(id.job, JobId::plain(100));
            assert_eq!(id.step, kind);
            assert_eq!(id.to_sacct(), s);
        }
    }

    #[test]
    fn array_element_step() {
        let id = StepId::parse_sacct("123456_7.12").unwrap();
        assert_eq!(id.job, JobId::array(123456, 7));
        assert_eq!(id.step, StepKind::Numbered(12));
    }

    #[test]
    fn sacct_id_dispatches() {
        assert!(matches!(
            SacctId::parse_sacct("55").unwrap(),
            SacctId::Job(_)
        ));
        assert!(matches!(
            SacctId::parse_sacct("55.batch").unwrap(),
            SacctId::Step(_)
        ));
        assert_eq!(
            SacctId::parse_sacct("55.3").unwrap().job(),
            JobId::plain(55)
        );
    }

    #[test]
    fn rejects_malformed() {
        assert!(JobId::parse_sacct("abc").is_err());
        assert!(JobId::parse_sacct("12_x").is_err());
        assert!(StepId::parse_sacct("100").is_err());
        assert!(StepId::parse_sacct("100.wat").is_err());
    }

    #[test]
    fn user_handles() {
        assert_eq!(UserId(7).name(), "u0007");
        assert_eq!(UserId(1234).to_string(), "u1234");
    }
}
