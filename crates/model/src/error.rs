//! Error type shared by all parsers in the domain model.

use std::fmt;

/// Error produced when a Slurm-format string cannot be parsed.
///
/// Carries the kind of value being parsed and the offending input so that
/// curation stages can report *which* field of *which* record was malformed
/// (the paper discards malformed records — <0.002% of the total — and we audit
/// exactly the same way).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What was being parsed, e.g. `"timestamp"` or `"tres"`.
    pub what: &'static str,
    /// The input that failed to parse (truncated to 128 bytes).
    pub input: String,
    /// Optional detail about the failure.
    pub detail: Option<String>,
}

impl ParseError {
    pub fn new(what: &'static str, input: &str) -> Self {
        Self {
            what,
            input: truncate(input),
            detail: None,
        }
    }

    pub fn with_detail(what: &'static str, input: &str, detail: impl Into<String>) -> Self {
        Self {
            what,
            input: truncate(input),
            detail: Some(detail.into()),
        }
    }
}

fn truncate(s: &str) -> String {
    if s.len() <= 128 {
        s.to_owned()
    } else {
        let mut end = 128;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &s[..end])
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {}: {:?}", self.what, self.input)?;
        if let Some(d) = &self.detail {
            write!(f, " ({d})")?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_input() {
        let e = ParseError::new("timestamp", "not-a-time");
        let s = e.to_string();
        assert!(s.contains("timestamp"));
        assert!(s.contains("not-a-time"));
    }

    #[test]
    fn detail_is_appended() {
        let e = ParseError::with_detail("tres", "cpu=", "missing value");
        assert!(e.to_string().contains("missing value"));
    }

    #[test]
    fn long_input_is_truncated_at_char_boundary() {
        let long = "é".repeat(200);
        let e = ParseError::new("state", &long);
        assert!(e.input.len() <= 132); // 128 bytes + ellipsis
        assert!(e.input.ends_with('…'));
    }
}
