//! Slurm hostlist expressions: `frontier[00001-00128,00200]`.
//!
//! The `NodeList` field compresses allocated node names into bracketed range
//! syntax. We implement compression (used when emitting sacct text from
//! simulated allocations) and expansion (used by curation and utilization
//! analytics).

use crate::error::ParseError;

/// Compress a sorted list of node indices into `prefix[ranges]` syntax.
///
/// `width` is the zero-padding width of the numeric suffix (Frontier uses 5).
pub fn compress(prefix: &str, indices: &[u32], width: usize) -> String {
    if indices.is_empty() {
        return String::new();
    }
    if indices.len() == 1 {
        return format!("{prefix}{:0width$}", indices[0]);
    }
    let mut sorted = indices.to_vec();
    sorted.sort_unstable();
    sorted.dedup();

    let mut ranges: Vec<(u32, u32)> = Vec::new();
    let mut start = sorted[0];
    let mut prev = sorted[0];
    for &i in &sorted[1..] {
        if i == prev + 1 {
            prev = i;
        } else {
            ranges.push((start, prev));
            start = i;
            prev = i;
        }
    }
    ranges.push((start, prev));

    let body: Vec<String> = ranges
        .iter()
        .map(|&(a, b)| {
            if a == b {
                format!("{a:0width$}")
            } else {
                format!("{a:0width$}-{b:0width$}")
            }
        })
        .collect();
    format!("{prefix}[{}]", body.join(","))
}

/// Expand `prefix[ranges]` (or a bare `prefixNNN`) into node indices.
///
/// Returns the prefix and the sorted indices.
pub fn expand(hostlist: &str) -> Result<(String, Vec<u32>), ParseError> {
    let s = hostlist.trim();
    if s.is_empty() {
        return Ok((String::new(), Vec::new()));
    }
    let err = || ParseError::new("hostlist", hostlist);
    match s.find('[') {
        None => {
            // Bare node name: split trailing digits.
            let digits_at = s
                .char_indices()
                .rev()
                .take_while(|(_, c)| c.is_ascii_digit())
                .last()
                .map(|(i, _)| i)
                .ok_or_else(err)?;
            let idx: u32 = s[digits_at..].parse().map_err(|_| err())?;
            Ok((s[..digits_at].to_owned(), vec![idx]))
        }
        Some(open) => {
            if !s.ends_with(']') {
                return Err(err());
            }
            let prefix = &s[..open];
            let body = &s[open + 1..s.len() - 1];
            let mut out = Vec::new();
            for part in body.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    return Err(err());
                }
                match part.split_once('-') {
                    Some((a, b)) => {
                        let a: u32 = a.parse().map_err(|_| err())?;
                        let b: u32 = b.parse().map_err(|_| err())?;
                        if b < a || b - a > 1_000_000 {
                            return Err(err());
                        }
                        out.extend(a..=b);
                    }
                    None => out.push(part.parse().map_err(|_| err())?),
                }
            }
            out.sort_unstable();
            out.dedup();
            Ok((prefix.to_owned(), out))
        }
    }
}

/// Count nodes in a hostlist without materializing the expansion.
pub fn count(hostlist: &str) -> Result<u64, ParseError> {
    let s = hostlist.trim();
    if s.is_empty() {
        return Ok(0);
    }
    let err = || ParseError::new("hostlist", hostlist);
    match s.find('[') {
        None => Ok(1),
        Some(open) => {
            if !s.ends_with(']') {
                return Err(err());
            }
            let body = &s[open + 1..s.len() - 1];
            let mut n: u64 = 0;
            for part in body.split(',') {
                match part.trim().split_once('-') {
                    Some((a, b)) => {
                        let a: u64 = a.trim().parse().map_err(|_| err())?;
                        let b: u64 = b.trim().parse().map_err(|_| err())?;
                        if b < a {
                            return Err(err());
                        }
                        n += b - a + 1;
                    }
                    None => {
                        let _: u64 = part.trim().parse().map_err(|_| err())?;
                        n += 1;
                    }
                }
            }
            Ok(n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_node() {
        assert_eq!(compress("frontier", &[7], 5), "frontier00007");
        let (p, idx) = expand("frontier00007").unwrap();
        assert_eq!(p, "frontier");
        assert_eq!(idx, vec![7]);
    }

    #[test]
    fn contiguous_range() {
        assert_eq!(
            compress("frontier", &[1, 2, 3, 4], 5),
            "frontier[00001-00004]"
        );
    }

    #[test]
    fn mixed_ranges_and_singletons() {
        let s = compress("andes", &[1, 2, 3, 7, 10, 11], 3);
        assert_eq!(s, "andes[001-003,007,010-011]");
        let (p, idx) = expand(&s).unwrap();
        assert_eq!(p, "andes");
        assert_eq!(idx, vec![1, 2, 3, 7, 10, 11]);
    }

    #[test]
    fn unsorted_input_with_duplicates() {
        let s = compress("n", &[5, 3, 4, 3], 1);
        assert_eq!(s, "n[3-5]");
    }

    #[test]
    fn empty_list() {
        assert_eq!(compress("n", &[], 3), "");
        assert_eq!(expand("").unwrap().1.len(), 0);
        assert_eq!(count("").unwrap(), 0);
    }

    #[test]
    fn count_without_expansion() {
        assert_eq!(count("frontier[00001-09408]").unwrap(), 9408);
        assert_eq!(count("frontier00001").unwrap(), 1);
        assert_eq!(count("n[1-3,9,20-21]").unwrap(), 6);
    }

    #[test]
    fn malformed_hostlists_rejected() {
        assert!(expand("frontier[1-").is_err());
        assert!(expand("frontier[3-1]").is_err());
        assert!(expand("frontier[a-b]").is_err());
        assert!(expand("noDigits").is_err());
        assert!(count("frontier[5-2]").is_err());
    }

    proptest! {
        #[test]
        fn prop_compress_expand_round_trip(
            mut indices in proptest::collection::vec(0u32..100_000, 1..50),
        ) {
            indices.sort_unstable();
            indices.dedup();
            let s = compress("frontier", &indices, 5);
            let (prefix, back) = expand(&s).unwrap();
            prop_assert_eq!(prefix, "frontier");
            prop_assert_eq!(back, indices.clone());
            prop_assert_eq!(count(&s).unwrap() as usize, indices.len());
        }
    }
}
