//! Unit handling for Slurm accounting values: suffixed counts (`1.5K`),
//! memory specifications (`4000Mn`, `2Gc`), byte rates, and energy.
//!
//! The paper's curation step normalizes exactly these: "certain fields
//! required unit conversions (e.g., node counts expressed as 'K' for
//! thousands)".

use crate::error::ParseError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Multipliers for Slurm's decimal suffixes on counts (`K`, `M`, `G`, `T`).
fn count_multiplier(suffix: u8) -> Option<f64> {
    match suffix.to_ascii_uppercase() {
        b'K' => Some(1e3),
        b'M' => Some(1e6),
        b'G' => Some(1e9),
        b'T' => Some(1e12),
        _ => None,
    }
}

/// Parse a count that may carry a decimal suffix: `32`, `1.5K`, `18M`.
///
/// Returns the value rounded to the nearest integer. Empty input parses to 0
/// (sacct leaves many count fields blank on steps).
pub fn parse_count(s: &str) -> Result<u64, ParseError> {
    let s = s.trim();
    if s.is_empty() {
        return Ok(0);
    }
    let err = || ParseError::new("count", s);
    let bytes = s.as_bytes();
    let last = *bytes.last().unwrap();
    if last.is_ascii_digit() {
        // Fast path: plain integer.
        if let Ok(v) = s.parse::<u64>() {
            return Ok(v);
        }
        // Plain float (sacct sometimes emits `123.0`).
        let f = s.parse::<f64>().map_err(|_| err())?;
        if f < 0.0 || !f.is_finite() {
            return Err(err());
        }
        return Ok(f.round() as u64);
    }
    let mult = count_multiplier(last).ok_or_else(err)?;
    let num: f64 = s[..s.len() - 1].trim().parse().map_err(|_| err())?;
    if num < 0.0 || !num.is_finite() {
        return Err(err());
    }
    Ok((num * mult).round() as u64)
}

/// Render a count with a suffix when large, matching sacct's display style.
pub fn format_count(v: u64) -> String {
    if v >= 10_000_000 {
        format!("{:.2}M", v as f64 / 1e6)
    } else if v >= 100_000 {
        format!("{:.2}K", v as f64 / 1e3)
    } else {
        v.to_string()
    }
}

/// Scope of a memory request: per node (`n` suffix) or per CPU (`c` suffix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemScope {
    /// `...n` — the amount applies to each allocated node.
    PerNode,
    /// `...c` — the amount applies to each allocated CPU.
    PerCpu,
    /// No scope suffix (total / unspecified).
    Total,
}

/// A memory quantity with its allocation scope, e.g. `ReqMem=4000Mn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemSpec {
    /// Amount in mebibytes.
    pub mib: u64,
    pub scope: MemScope,
}

impl MemSpec {
    pub fn per_node_mib(mib: u64) -> Self {
        Self {
            mib,
            scope: MemScope::PerNode,
        }
    }

    /// Total bytes given the allocation geometry.
    pub fn total_bytes(&self, nodes: u64, cpus: u64) -> u64 {
        let per = self.mib.saturating_mul(1024 * 1024);
        match self.scope {
            MemScope::PerNode => per.saturating_mul(nodes),
            MemScope::PerCpu => per.saturating_mul(cpus),
            MemScope::Total => per,
        }
    }

    /// sacct rendering, e.g. `4000Mn`, `2Gc`, `512000M`.
    pub fn to_sacct(&self) -> String {
        let (value, unit) = if self.mib >= 1024 && self.mib % 1024 == 0 {
            (self.mib / 1024, 'G')
        } else {
            (self.mib, 'M')
        };
        let scope = match self.scope {
            MemScope::PerNode => "n",
            MemScope::PerCpu => "c",
            MemScope::Total => "",
        };
        format!("{value}{unit}{scope}")
    }

    /// Parse sacct memory syntax: `<num>[K|M|G|T][n|c]`. A bare number is
    /// interpreted as mebibytes (Slurm's default memory unit).
    pub fn parse_sacct(s: &str) -> Result<Self, ParseError> {
        let s = s.trim();
        let err = || ParseError::new("memory spec", s);
        if s.is_empty() || s == "0" {
            return Ok(MemSpec {
                mib: 0,
                scope: MemScope::Total,
            });
        }
        let mut rest = s;
        let scope = match rest.as_bytes().last() {
            Some(b'n') | Some(b'N') => {
                rest = &rest[..rest.len() - 1];
                MemScope::PerNode
            }
            Some(b'c') | Some(b'C') => {
                rest = &rest[..rest.len() - 1];
                MemScope::PerCpu
            }
            _ => MemScope::Total,
        };
        let (num_str, mult_mib) = match rest.as_bytes().last() {
            Some(b'K') | Some(b'k') => (&rest[..rest.len() - 1], 1.0 / 1024.0),
            Some(b'M') | Some(b'm') => (&rest[..rest.len() - 1], 1.0),
            Some(b'G') | Some(b'g') => (&rest[..rest.len() - 1], 1024.0),
            Some(b'T') | Some(b't') => (&rest[..rest.len() - 1], 1024.0 * 1024.0),
            _ => (rest, 1.0),
        };
        let num: f64 = num_str.trim().parse().map_err(|_| err())?;
        if num < 0.0 || !num.is_finite() {
            return Err(err());
        }
        Ok(MemSpec {
            mib: (num * mult_mib).round() as u64,
            scope,
        })
    }
}

impl fmt::Display for MemSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_sacct())
    }
}

/// Parse a byte quantity with binary suffix (AveDiskRead et al.): `12.5M` →
/// bytes. Bare numbers are bytes.
pub fn parse_bytes(s: &str) -> Result<u64, ParseError> {
    let s = s.trim();
    if s.is_empty() {
        return Ok(0);
    }
    let err = || ParseError::new("byte size", s);
    let (num_str, mult) = match s.as_bytes().last() {
        Some(b'K') | Some(b'k') => (&s[..s.len() - 1], 1024.0),
        Some(b'M') | Some(b'm') => (&s[..s.len() - 1], 1024.0 * 1024.0),
        Some(b'G') | Some(b'g') => (&s[..s.len() - 1], 1024.0 * 1024.0 * 1024.0),
        Some(b'T') | Some(b't') => (&s[..s.len() - 1], 1024.0f64.powi(4)),
        _ => (s, 1.0),
    };
    let num: f64 = num_str.trim().parse().map_err(|_| err())?;
    if num < 0.0 || !num.is_finite() {
        return Err(err());
    }
    Ok((num * mult).round() as u64)
}

/// Format bytes with a binary suffix, two decimals (sacct style).
pub fn format_bytes(bytes: u64) -> String {
    const UNITS: [(&str, f64); 4] = [
        ("T", 1_099_511_627_776.0),
        ("G", 1_073_741_824.0),
        ("M", 1_048_576.0),
        ("K", 1024.0),
    ];
    let b = bytes as f64;
    for (suffix, scale) in UNITS {
        if b >= scale {
            return format!("{:.2}{suffix}", b / scale);
        }
    }
    bytes.to_string()
}

/// Parse `ConsumedEnergy` (joules, possibly suffixed).
pub fn parse_energy_joules(s: &str) -> Result<u64, ParseError> {
    parse_count(s).map_err(|mut e| {
        e.what = "energy";
        e
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn plain_counts() {
        assert_eq!(parse_count("0").unwrap(), 0);
        assert_eq!(parse_count("9408").unwrap(), 9408);
        assert_eq!(parse_count("").unwrap(), 0);
        assert_eq!(parse_count("123.0").unwrap(), 123);
    }

    #[test]
    fn suffixed_counts() {
        assert_eq!(parse_count("1.5K").unwrap(), 1500);
        assert_eq!(parse_count("18M").unwrap(), 18_000_000);
        assert_eq!(parse_count("2k").unwrap(), 2000);
        assert_eq!(parse_count("1G").unwrap(), 1_000_000_000);
    }

    #[test]
    fn bad_counts_rejected() {
        assert!(parse_count("-5").is_err());
        assert!(parse_count("12X").is_err());
        assert!(parse_count("K").is_err());
    }

    #[test]
    fn count_formatting_thresholds() {
        assert_eq!(format_count(9408), "9408");
        assert_eq!(format_count(150_000), "150.00K");
        assert_eq!(format_count(18_000_000), "18.00M");
    }

    #[test]
    fn memory_specs_parse() {
        let m = MemSpec::parse_sacct("4000Mn").unwrap();
        assert_eq!(m.mib, 4000);
        assert_eq!(m.scope, MemScope::PerNode);

        let m = MemSpec::parse_sacct("2Gc").unwrap();
        assert_eq!(m.mib, 2048);
        assert_eq!(m.scope, MemScope::PerCpu);

        let m = MemSpec::parse_sacct("512000M").unwrap();
        assert_eq!(m.mib, 512_000);
        assert_eq!(m.scope, MemScope::Total);

        let m = MemSpec::parse_sacct("1024").unwrap();
        assert_eq!(m.mib, 1024);
    }

    #[test]
    fn memory_total_bytes_respects_scope() {
        let per_node = MemSpec {
            mib: 1000,
            scope: MemScope::PerNode,
        };
        let per_cpu = MemSpec {
            mib: 10,
            scope: MemScope::PerCpu,
        };
        assert_eq!(per_node.total_bytes(4, 256), 4000 * 1024 * 1024);
        assert_eq!(per_cpu.total_bytes(4, 256), 2560 * 1024 * 1024);
    }

    #[test]
    fn memory_round_trips_display() {
        for s in ["4000Mn", "2Gc", "512000M", "1Gn"] {
            let m = MemSpec::parse_sacct(s).unwrap();
            let back = MemSpec::parse_sacct(&m.to_sacct()).unwrap();
            assert_eq!(m, back, "{s}");
        }
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(parse_bytes("1K").unwrap(), 1024);
        assert_eq!(parse_bytes("1.5M").unwrap(), 1_572_864);
        assert_eq!(parse_bytes("100").unwrap(), 100);
        assert_eq!(format_bytes(1_572_864), "1.50M");
        assert_eq!(format_bytes(512), "512");
    }

    proptest! {
        #[test]
        fn prop_count_round_trip_plain(v in 0u64..10_000_000_000) {
            // format_count may lossily round large values; parse of the plain
            // decimal must always round-trip.
            prop_assert_eq!(parse_count(&v.to_string()).unwrap(), v);
        }

        #[test]
        fn prop_format_count_parses_back_within_rounding(v in 0u64..10_000_000_000) {
            let s = format_count(v);
            let back = parse_count(&s).unwrap();
            // Two-decimal suffixes keep 3+ significant digits: error < 1%.
            let err = (back as f64 - v as f64).abs();
            prop_assert!(err <= v as f64 * 0.01 + 1.0, "{v} -> {s} -> {back}");
        }

        #[test]
        fn prop_memspec_round_trip(mib in 0u64..10_000_000, which in 0u8..3) {
            let scope = match which { 0 => MemScope::PerNode, 1 => MemScope::PerCpu, _ => MemScope::Total };
            let m = MemSpec { mib, scope };
            prop_assert_eq!(MemSpec::parse_sacct(&m.to_sacct()).unwrap(), m);
        }
    }
}
