//! The Slurm accounting field catalogue and the paper's curated selection.
//!
//! §2 of the paper: "From the 118 fields available in the Slurm accounting
//! database, a subset of 50+ fields was selected based on their relevance…
//! Redundant, sensitive, or less informative fields, such as those offering
//! duplicative time representations (e.g., Elapsed vs. ElapsedRaw), were
//! excluded." §3.1 pins the obtain-data query at 60 fields; we curate 60.
//!
//! Table 1 groups the curated fields into nine categories, reproduced by
//! [`Category`]. The full catalogue (118 fields) retains the non-selected
//! fields so the curation step has something real to exclude.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Table 1's field categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    JobIdentification,
    Timing,
    ResourceRequests,
    ResourceUsage,
    Io,
    JobState,
    SchedulingMetadata,
    SpecialIndicators,
    Misc,
}

impl Category {
    pub const ALL: [Category; 9] = [
        Category::JobIdentification,
        Category::Timing,
        Category::ResourceRequests,
        Category::ResourceUsage,
        Category::Io,
        Category::JobState,
        Category::SchedulingMetadata,
        Category::SpecialIndicators,
        Category::Misc,
    ];

    /// Table 1's row label.
    pub fn label(&self) -> &'static str {
        match self {
            Category::JobIdentification => "Job Identification",
            Category::Timing => "Timing Information",
            Category::ResourceRequests => "Resource Requests",
            Category::ResourceUsage => "Resource Usage",
            Category::Io => "IO Related",
            Category::JobState => "Job State",
            Category::SchedulingMetadata => "Scheduling Metadata",
            Category::SpecialIndicators => "Special Indicators",
            Category::Misc => "Misc",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a non-curated field was excluded, mirroring §2's rationale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Exclusion {
    /// Field duplicates another representation (e.g. `ElapsedRaw` vs `Elapsed`).
    Duplicative,
    /// Field carries sensitive site/user information.
    Sensitive,
    /// Field rarely populated or not informative for scheduling analysis.
    LowValue,
}

/// One entry of the accounting field catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldSpec {
    /// Field name as used in the sacct header line.
    pub name: &'static str,
    pub category: Category,
    /// `None` = curated (selected for the study); `Some(reason)` = excluded.
    pub excluded: Option<Exclusion>,
}

const fn keep(name: &'static str, category: Category) -> FieldSpec {
    FieldSpec {
        name,
        category,
        excluded: None,
    }
}

const fn drop(name: &'static str, category: Category, why: Exclusion) -> FieldSpec {
    FieldSpec {
        name,
        category,
        excluded: Some(why),
    }
}

use Category as C;
use Exclusion as E;

/// The full 118-field catalogue. Curated fields appear first, grouped per
/// Table 1, followed by the excluded remainder of the accounting schema.
pub const CATALOGUE: [FieldSpec; 118] = [
    // ---- Curated: Job Identification (Table 1 row 1 + identity extras) ----
    keep("JobID", C::JobIdentification),
    keep("Partition", C::JobIdentification),
    keep("Reservation", C::JobIdentification),
    keep("ReservationID", C::JobIdentification),
    keep("User", C::JobIdentification),
    keep("Account", C::JobIdentification),
    keep("JobName", C::JobIdentification),
    keep("UID", C::JobIdentification),
    keep("GID", C::JobIdentification),
    keep("Cluster", C::JobIdentification),
    // ---- Curated: Timing Information ----
    keep("SubmitTime", C::Timing),
    keep("StartTime", C::Timing),
    keep("EndTime", C::Timing),
    keep("Elapsed", C::Timing),
    keep("Timelimit", C::Timing),
    keep("CPUTime", C::Timing),
    // ---- Curated: Resource Requests ----
    keep("NNodes", C::ResourceRequests),
    keep("NCPUs", C::ResourceRequests),
    keep("NTasks", C::ResourceRequests),
    keep("ReqMem", C::ResourceRequests),
    keep("ReqGRES", C::ResourceRequests),
    keep("Layout", C::ResourceRequests),
    keep("AllocCPUS", C::ResourceRequests),
    keep("AllocNodes", C::ResourceRequests),
    keep("AllocTRES", C::ResourceRequests),
    keep("ReqCPUS", C::ResourceRequests),
    keep("ReqNodes", C::ResourceRequests),
    // ---- Curated: Resource Usage ----
    keep("VMSize", C::ResourceUsage),
    keep("AveCPU", C::ResourceUsage),
    keep("MaxRSS", C::ResourceUsage),
    keep("TotalCPU", C::ResourceUsage),
    keep("NodeList", C::ResourceUsage),
    keep("ConsumedEnergy", C::ResourceUsage),
    keep("AveRSS", C::ResourceUsage),
    keep("AveVMSize", C::ResourceUsage),
    // ---- Curated: IO Related ----
    keep("WorkDir", C::Io),
    keep("AveDiskRead", C::Io),
    keep("AveDiskWrite", C::Io),
    keep("MaxDiskRead", C::Io),
    keep("MaxDiskWrite", C::Io),
    // ---- Curated: Job State ----
    keep("State", C::JobState),
    keep("ExitCode", C::JobState),
    keep("Reason", C::JobState),
    keep("Suspended", C::JobState),
    keep("Restarts", C::JobState),
    keep("Constraints", C::JobState),
    // ---- Curated: Scheduling Metadata ----
    keep("Priority", C::SchedulingMetadata),
    keep("Eligible", C::SchedulingMetadata),
    keep("QOS", C::SchedulingMetadata),
    keep("QOSReq", C::SchedulingMetadata),
    keep("Flags", C::SchedulingMetadata),
    keep("TRESUsageInAve", C::SchedulingMetadata),
    keep("TRESReq", C::SchedulingMetadata),
    // ---- Curated: Special Indicators ----
    keep("Backfill", C::SpecialIndicators),
    keep("Dependency", C::SpecialIndicators),
    keep("ArrayJobID", C::SpecialIndicators),
    // ---- Curated: Misc ----
    keep("Comment", C::Misc),
    keep("SystemComment", C::Misc),
    keep("AdminComment", C::Misc),
    keep("SubmitLine", C::Misc),
    // ---- Excluded: duplicative time/ID representations ----
    drop("Submit", C::Timing, E::Duplicative),
    drop("Start", C::Timing, E::Duplicative),
    drop("End", C::Timing, E::Duplicative),
    drop("ElapsedRaw", C::Timing, E::Duplicative),
    drop("TimelimitRaw", C::Timing, E::Duplicative),
    drop("CPUTimeRAW", C::Timing, E::Duplicative),
    drop("ConsumedEnergyRaw", C::ResourceUsage, E::Duplicative),
    drop("JobIDRaw", C::JobIdentification, E::Duplicative),
    drop("QOSRAW", C::SchedulingMetadata, E::Duplicative),
    drop("ResvCPURAW", C::SchedulingMetadata, E::Duplicative),
    drop("DerivedExitCode", C::JobState, E::Duplicative),
    // ---- Excluded: sensitive ----
    drop("Group", C::JobIdentification, E::Sensitive),
    drop("McsLabel", C::JobIdentification, E::Sensitive),
    drop("WCKey", C::SchedulingMetadata, E::Sensitive),
    drop("WCKeyID", C::SchedulingMetadata, E::Sensitive),
    // ---- Excluded: low analytical value for scheduling studies ----
    drop("AssocID", C::SchedulingMetadata, E::LowValue),
    drop("DBIndex", C::SchedulingMetadata, E::LowValue),
    drop("BlockID", C::JobIdentification, E::LowValue),
    drop("AveCPUFreq", C::ResourceUsage, E::LowValue),
    drop("AvePages", C::ResourceUsage, E::LowValue),
    drop("MaxPages", C::ResourceUsage, E::LowValue),
    drop("MaxPagesNode", C::ResourceUsage, E::LowValue),
    drop("MaxPagesTask", C::ResourceUsage, E::LowValue),
    drop("MaxRSSNode", C::ResourceUsage, E::LowValue),
    drop("MaxRSSTask", C::ResourceUsage, E::LowValue),
    drop("MaxVMSize", C::ResourceUsage, E::Duplicative),
    drop("MaxVMSizeNode", C::ResourceUsage, E::LowValue),
    drop("MaxVMSizeTask", C::ResourceUsage, E::LowValue),
    drop("MinCPU", C::ResourceUsage, E::LowValue),
    drop("MinCPUNode", C::ResourceUsage, E::LowValue),
    drop("MinCPUTask", C::ResourceUsage, E::LowValue),
    drop("MaxDiskReadNode", C::Io, E::LowValue),
    drop("MaxDiskReadTask", C::Io, E::LowValue),
    drop("MaxDiskWriteNode", C::Io, E::LowValue),
    drop("MaxDiskWriteTask", C::Io, E::LowValue),
    drop("ReqCPUFreq", C::ResourceRequests, E::LowValue),
    drop("ReqCPUFreqMin", C::ResourceRequests, E::LowValue),
    drop("ReqCPUFreqMax", C::ResourceRequests, E::LowValue),
    drop("ReqCPUFreqGov", C::ResourceRequests, E::LowValue),
    drop("ResvCPU", C::SchedulingMetadata, E::LowValue),
    drop("Reserved", C::SchedulingMetadata, E::LowValue),
    drop("SystemCPU", C::ResourceUsage, E::Duplicative),
    drop("UserCPU", C::ResourceUsage, E::Duplicative),
    drop("TRESUsageInMax", C::ResourceUsage, E::LowValue),
    drop("TRESUsageInMaxNode", C::ResourceUsage, E::LowValue),
    drop("TRESUsageInMaxTask", C::ResourceUsage, E::LowValue),
    drop("TRESUsageInMin", C::ResourceUsage, E::LowValue),
    drop("TRESUsageInMinNode", C::ResourceUsage, E::LowValue),
    drop("TRESUsageInMinTask", C::ResourceUsage, E::LowValue),
    drop("TRESUsageInTot", C::ResourceUsage, E::Duplicative),
    drop("TRESUsageOutAve", C::ResourceUsage, E::LowValue),
    drop("TRESUsageOutMax", C::ResourceUsage, E::LowValue),
    drop("TRESUsageOutMaxNode", C::ResourceUsage, E::LowValue),
    drop("TRESUsageOutMaxTask", C::ResourceUsage, E::LowValue),
    drop("TRESUsageOutMin", C::ResourceUsage, E::LowValue),
    drop("TRESUsageOutMinNode", C::ResourceUsage, E::LowValue),
    drop("TRESUsageOutMinTask", C::ResourceUsage, E::LowValue),
    drop("TRESUsageOutTot", C::ResourceUsage, E::Duplicative),
];

/// Names of the curated fields, in sacct header order.
pub fn curated_fields() -> Vec<&'static str> {
    CATALOGUE
        .iter()
        .filter(|f| f.excluded.is_none())
        .map(|f| f.name)
        .collect()
}

/// Curated fields grouped per Table 1 category, in Table 1 row order.
pub fn curated_by_category() -> Vec<(Category, Vec<&'static str>)> {
    Category::ALL
        .iter()
        .map(|c| {
            (
                *c,
                CATALOGUE
                    .iter()
                    .filter(|f| f.excluded.is_none() && f.category == *c)
                    .map(|f| f.name)
                    .collect(),
            )
        })
        .collect()
}

/// Look up a field by (case-insensitive) name.
pub fn field(name: &str) -> Option<&'static FieldSpec> {
    CATALOGUE.iter().find(|f| f.name.eq_ignore_ascii_case(name))
}

/// Position of a curated field within the curated header, if curated.
pub fn curated_index(name: &str) -> Option<usize> {
    curated_fields()
        .iter()
        .position(|f| f.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalogue_has_118_fields_and_60_curated() {
        assert_eq!(CATALOGUE.len(), 118, "the accounting DB exposes 118 fields");
        assert_eq!(
            curated_fields().len(),
            60,
            "the obtain-data stage queries 60 curated fields"
        );
    }

    #[test]
    fn no_duplicate_names() {
        let names: HashSet<_> = CATALOGUE.iter().map(|f| f.name).collect();
        assert_eq!(names.len(), CATALOGUE.len());
    }

    #[test]
    fn table1_fields_are_all_curated() {
        // Every field named in the paper's Table 1 must be selected.
        let table1 = [
            "JobID",
            "Partition",
            "Reservation",
            "ReservationID",
            "SubmitTime",
            "StartTime",
            "EndTime",
            "Elapsed",
            "Timelimit",
            "NNodes",
            "NCPUs",
            "NTasks",
            "ReqMem",
            "ReqGRES",
            "Layout",
            "VMSize",
            "AveCPU",
            "MaxRSS",
            "TotalCPU",
            "NodeList",
            "ConsumedEnergy",
            "WorkDir",
            "AveDiskRead",
            "AveDiskWrite",
            "MaxDiskRead",
            "MaxDiskWrite",
            "State",
            "ExitCode",
            "Reason",
            "Suspended",
            "Restarts",
            "Constraints",
            "Priority",
            "Eligible",
            "QOS",
            "QOSReq",
            "Flags",
            "TRESUsageInAve",
            "TRESReq",
            "Backfill",
            "Dependency",
            "ArrayJobID",
            "Comment",
            "SystemComment",
            "AdminComment",
        ];
        for name in table1 {
            let f = field(name).unwrap_or_else(|| panic!("{name} missing from catalogue"));
            assert!(f.excluded.is_none(), "{name} must be curated");
        }
    }

    #[test]
    fn duplicative_time_fields_are_excluded() {
        // §2 explicitly calls out Elapsed vs ElapsedRaw.
        assert_eq!(
            field("ElapsedRaw").unwrap().excluded,
            Some(Exclusion::Duplicative)
        );
        assert!(field("Elapsed").unwrap().excluded.is_none());
    }

    #[test]
    fn categories_partition_the_curated_set() {
        let grouped = curated_by_category();
        let total: usize = grouped.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 60);
        for (cat, fields) in &grouped {
            assert!(!fields.is_empty(), "category {cat} has no curated fields");
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(field("jobid").is_some());
        assert!(field("JOBID").is_some());
        assert!(field("NoSuchField").is_none());
    }

    #[test]
    fn curated_index_matches_header_order() {
        assert_eq!(curated_index("JobID"), Some(0));
        let header = curated_fields();
        for (i, name) in header.iter().enumerate() {
            assert_eq!(curated_index(name), Some(i));
        }
        assert_eq!(curated_index("ElapsedRaw"), None);
    }
}
