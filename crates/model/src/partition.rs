//! Partitions and quality-of-service (QOS) descriptors.
//!
//! These are the policy objects the paper's analyses are meant to inform:
//! queue configurations, debug partitions for short interactive jobs,
//! preemptible queues, and near real-time QOS settings.

use crate::time::Elapsed;
use serde::{Deserialize, Serialize};

/// A scheduler partition (queue) and its admission limits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// Partition name as it appears in sacct, e.g. `batch`, `debug`.
    pub name: String,
    /// Nodes reachable from this partition.
    pub total_nodes: u32,
    /// Smallest allowed allocation.
    pub min_nodes: u32,
    /// Largest allowed allocation.
    pub max_nodes: u32,
    /// Partition wall-time ceiling (jobs with `Partition_Limit` inherit this).
    pub max_walltime: Elapsed,
    /// Base priority tier: higher tiers are scheduled first.
    pub priority_tier: u16,
    /// Whether jobs here may be preempted by higher-priority QOS jobs.
    pub preemptible: bool,
}

impl Partition {
    /// A general batch partition covering the full machine.
    pub fn batch(total_nodes: u32, max_walltime: Elapsed) -> Self {
        Self {
            name: "batch".to_owned(),
            total_nodes,
            min_nodes: 1,
            max_nodes: total_nodes,
            max_walltime,
            priority_tier: 1,
            preemptible: false,
        }
    }

    /// A small high-turnaround debug partition.
    pub fn debug(total_nodes: u32) -> Self {
        Self {
            name: "debug".to_owned(),
            total_nodes,
            min_nodes: 1,
            max_nodes: total_nodes,
            max_walltime: Elapsed::from_hours(2),
            priority_tier: 3,
            preemptible: false,
        }
    }

    /// Validate a request against this partition's limits.
    pub fn admits(&self, nodes: u32, walltime: Elapsed) -> bool {
        nodes >= self.min_nodes && nodes <= self.max_nodes && walltime <= self.max_walltime
    }
}

/// Quality-of-service level attached to a job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Qos {
    pub name: String,
    /// Additive priority weight contributed by this QOS.
    pub priority_weight: u32,
    /// Whether jobs in this QOS may preempt preemptible workloads
    /// (the "urgent" / "realtime" pattern from NERSC discussed in the paper).
    pub can_preempt: bool,
    /// Whether jobs submitted under this QOS can themselves be preempted.
    pub preemptible: bool,
    /// Cap on jobs a single user may have running under this QOS (0 = none).
    pub max_running_per_user: u32,
}

impl Qos {
    pub fn normal() -> Self {
        Self {
            name: "normal".to_owned(),
            priority_weight: 0,
            can_preempt: false,
            preemptible: false,
            max_running_per_user: 0,
        }
    }

    pub fn debug() -> Self {
        Self {
            name: "debug".to_owned(),
            priority_weight: 10_000,
            can_preempt: false,
            preemptible: false,
            max_running_per_user: 2,
        }
    }

    /// Low-priority preemptible backfill QOS.
    pub fn standby() -> Self {
        Self {
            name: "standby".to_owned(),
            priority_weight: 0,
            can_preempt: false,
            preemptible: true,
            max_running_per_user: 0,
        }
    }

    /// Near real-time QOS that may preempt standby work.
    pub fn urgent() -> Self {
        Self {
            name: "urgent".to_owned(),
            priority_weight: 100_000,
            can_preempt: true,
            preemptible: false,
            max_running_per_user: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_partition_admits_within_limits() {
        let p = Partition::batch(9408, Elapsed::from_hours(24));
        assert!(p.admits(1, Elapsed::from_hours(1)));
        assert!(p.admits(9408, Elapsed::from_hours(24)));
        assert!(!p.admits(9409, Elapsed::from_hours(1)));
        assert!(!p.admits(0, Elapsed::from_hours(1)));
        assert!(!p.admits(1, Elapsed::from_hours(25)));
    }

    #[test]
    fn debug_partition_is_short_and_high_priority() {
        let d = Partition::debug(64);
        assert!(d.priority_tier > Partition::batch(64, Elapsed::from_hours(24)).priority_tier);
        assert!(d.max_walltime <= Elapsed::from_hours(2));
    }

    #[test]
    fn qos_presets_are_consistent() {
        assert!(Qos::urgent().can_preempt);
        assert!(!Qos::urgent().preemptible);
        assert!(Qos::standby().preemptible);
        assert!(Qos::debug().priority_weight > Qos::normal().priority_weight);
    }
}
