//! # schedflow-model
//!
//! The Slurm accounting domain model underlying the `schedflow` workflow —
//! a Rust reproduction of *"An LLM-enabled Workflow for Understanding and
//! Evolving HPC Scheduling Practices"* (WISDOM 2025).
//!
//! This crate owns everything that defines what a job trace *is*:
//!
//! * [`record::JobRecord`] / [`record::StepRecord`] — typed sacct rows;
//! * [`fields`] — the 118-field accounting catalogue and the curated
//!   60-field selection of the paper's Table 1;
//! * [`time`], [`units`], [`tres`], [`nodes`] — Slurm's wire formats
//!   (timestamps, `D-HH:MM:SS` durations, `K`-suffixed counts, `4000Mn`
//!   memory specs, TRES strings, bracketed hostlists);
//! * [`state`], [`flags`], [`ids`], [`partition`] — job states, scheduling
//!   flags (including the backfill indicator), job/step/array identity, and
//!   the partition/QOS policy objects.
//!
//! Every parser accepts authentic sacct text and every formatter emits it, so
//! traces round-trip through the textual pipeline stage exactly as they do at
//! a real site.

pub mod error;
pub mod fields;
pub mod flags;
pub mod ids;
pub mod nodes;
pub mod partition;
pub mod record;
pub mod state;
pub mod time;
pub mod tres;
pub mod units;

pub use error::ParseError;
pub use fields::{Category, FieldSpec, CATALOGUE};
pub use flags::{Flag, JobFlags};
pub use ids::{Account, JobId, SacctId, StepId, StepKind, UserId};
pub use partition::{Partition, Qos};
pub use record::{JobRecord, JobRecordBuilder, Layout, StepRecord};
pub use state::{ExitCode, JobState, PendingReason, TERMINAL_STATES};
pub use time::{Elapsed, TimeLimit, Timestamp};
pub use tres::{Tres, TresKind};
pub use units::{MemScope, MemSpec};
