//! Typed job and step records — the in-memory form of one sacct row.
//!
//! A [`JobRecord`] carries the curated fields of Table 1 in native types;
//! [`StepRecord`] models the `srun` job-steps that the paper shows dominate
//! activity (Figure 1: job-steps outnumber jobs by an order of magnitude).

use crate::flags::JobFlags;
use crate::ids::{Account, JobId, StepId, UserId};
use crate::state::{ExitCode, JobState, PendingReason};
use crate::time::{Elapsed, TimeLimit, Timestamp};
use crate::tres::Tres;
use crate::units::MemSpec;
use serde::{Deserialize, Serialize};

/// Task layout across nodes (`Layout` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Layout {
    #[default]
    Block,
    Cyclic,
    Plane,
    Unknown,
}

impl Layout {
    pub fn to_sacct(&self) -> &'static str {
        match self {
            Layout::Block => "Block",
            Layout::Cyclic => "Cyclic",
            Layout::Plane => "Plane",
            Layout::Unknown => "Unknown",
        }
    }

    pub fn parse_sacct(s: &str) -> Layout {
        match s.trim().to_ascii_lowercase().as_str() {
            "block" => Layout::Block,
            "cyclic" => Layout::Cyclic,
            "plane" => Layout::Plane,
            _ => Layout::Unknown,
        }
    }
}

/// One accounted job (the job-level sacct line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    // Identification
    pub id: JobId,
    pub name: String,
    pub user: UserId,
    pub account: Account,
    pub cluster: String,
    pub partition: String,
    pub qos: String,
    pub reservation: Option<String>,
    pub reservation_id: Option<u64>,

    // Timing
    pub submit: Timestamp,
    /// When the job became eligible to run (dependencies satisfied, not held).
    pub eligible: Timestamp,
    pub start: Timestamp,
    pub end: Timestamp,
    pub elapsed: Elapsed,
    pub timelimit: TimeLimit,
    pub suspended: Elapsed,

    // Resource requests
    pub nnodes: u32,
    pub ncpus: u32,
    pub ntasks: u32,
    pub req_mem: MemSpec,
    /// Generic resource request string, e.g. `gpu:8`.
    pub req_gres: String,
    pub layout: Layout,
    pub alloc_tres: Tres,

    // Resource usage
    pub node_list: String,
    pub consumed_energy_j: u64,
    pub max_rss_bytes: u64,
    pub ave_vm_size_bytes: u64,
    pub total_cpu: Elapsed,

    // IO
    pub work_dir: String,
    pub ave_disk_read: u64,
    pub ave_disk_write: u64,
    pub max_disk_read: u64,
    pub max_disk_write: u64,

    // State
    pub state: JobState,
    pub exit_code: ExitCode,
    pub reason: PendingReason,
    pub restarts: u32,
    pub constraints: String,

    // Scheduling metadata
    pub priority: u32,
    pub flags: JobFlags,
    pub dependency: Option<JobId>,
    /// For array elements: the parent array job id.
    pub array_job_id: Option<u64>,

    // Misc
    pub comment: String,

    /// The job's steps, in launch order.
    pub steps: Vec<StepRecord>,
}

impl JobRecord {
    /// Queue wait: eligible → start. `None` for jobs that never started.
    ///
    /// This is the quantity plotted in Figures 4 (Frontier) — Slurm's
    /// convention measures from eligibility so held/dependent jobs don't
    /// inflate the wait.
    pub fn wait_secs(&self) -> Option<i64> {
        self.start.since(self.eligible)
    }

    /// Submit → start latency (includes hold/dependency time).
    pub fn submit_to_start_secs(&self) -> Option<i64> {
        self.start.since(self.submit)
    }

    /// Requested wall time in seconds, `None` for `UNLIMITED`.
    pub fn requested_secs(&self) -> Option<i64> {
        match self.timelimit {
            TimeLimit::Limit(e) => Some(e.0),
            TimeLimit::Unlimited => None,
            // Callers needing the partition ceiling resolve it via the system
            // profile; standalone records treat it as unknown.
            TimeLimit::PartitionLimit => None,
        }
    }

    /// Fraction of the requested walltime actually used (Figure 6's y/x).
    pub fn walltime_utilization(&self) -> Option<f64> {
        let req = self.requested_secs()?;
        if req <= 0 {
            return None;
        }
        Some(self.elapsed.0 as f64 / req as f64)
    }

    /// Unused requested walltime in seconds (the reclaimable gap of §4.2).
    pub fn unused_walltime_secs(&self) -> Option<i64> {
        Some((self.requested_secs()? - self.elapsed.0).max(0))
    }

    /// Did the backfill pass start this job (Figure 6's `+` marker)?
    pub fn is_backfilled(&self) -> bool {
        self.flags.is_backfilled()
    }

    /// Node-seconds consumed.
    pub fn node_seconds(&self) -> i64 {
        i64::from(self.nnodes) * self.elapsed.0
    }

    /// Core-hours consumed (standard allocation accounting unit).
    pub fn core_hours(&self) -> f64 {
        f64::from(self.ncpus) * self.elapsed.as_hours()
    }

    /// Number of accounted steps.
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Internal consistency: timestamps ordered, elapsed matches start→end,
    /// steps contained within the job window. Used by property tests and the
    /// curation malformed-record filter.
    pub fn validate(&self) -> Result<(), String> {
        if !self.submit.is_unknown() && !self.eligible.is_unknown() && self.eligible < self.submit {
            return Err(format!("{}: eligible before submit", self.id));
        }
        if !self.start.is_unknown() {
            if !self.eligible.is_unknown() && self.start < self.eligible {
                return Err(format!("{}: start before eligible", self.id));
            }
            if !self.end.is_unknown() {
                if self.end < self.start {
                    return Err(format!("{}: end before start", self.id));
                }
                let span = self.end - self.start;
                if (span - self.elapsed.0 - self.suspended.0).abs() > 1 {
                    return Err(format!(
                        "{}: elapsed {} + suspended {} != span {}",
                        self.id, self.elapsed.0, self.suspended.0, span
                    ));
                }
            }
        }
        if self.state.is_terminal() && self.state != JobState::Cancelled && self.start.is_unknown()
        {
            // Cancelled-while-pending jobs legitimately never start.
            return Err(format!(
                "{}: terminal {} without start",
                self.id, self.state
            ));
        }
        for s in &self.steps {
            if s.id.job != self.id {
                return Err(format!("{}: step {} belongs to another job", self.id, s.id));
            }
            if !s.start.is_unknown() && !self.start.is_unknown() && s.start < self.start {
                return Err(format!("{}: step {} starts before job", self.id, s.id));
            }
        }
        Ok(())
    }
}

/// One accounted job step (an `srun` launch, the batch script, or extern).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    pub id: StepId,
    pub name: String,
    pub start: Timestamp,
    pub end: Timestamp,
    pub elapsed: Elapsed,
    pub state: JobState,
    pub exit_code: ExitCode,
    pub nnodes: u32,
    pub ntasks: u32,
    pub ave_cpu: Elapsed,
    pub max_rss_bytes: u64,
    pub ave_disk_read: u64,
    pub ave_disk_write: u64,
    pub tres_usage_in_ave: Tres,
}

/// Builder with sane defaults so tests and the generator only set what they
/// care about.
#[derive(Debug, Clone)]
pub struct JobRecordBuilder {
    record: JobRecord,
}

impl JobRecordBuilder {
    pub fn new(id: u64) -> Self {
        let submit = Timestamp::from_ymd(2024, 1, 1);
        Self {
            record: JobRecord {
                id: JobId::plain(id),
                name: format!("job{id}"),
                user: UserId(0),
                account: Account("acct000".to_owned()),
                cluster: "frontier".to_owned(),
                partition: "batch".to_owned(),
                qos: "normal".to_owned(),
                reservation: None,
                reservation_id: None,
                submit,
                eligible: submit,
                start: submit,
                end: submit + 3600,
                elapsed: Elapsed(3600),
                timelimit: TimeLimit::Limit(Elapsed(7200)),
                suspended: Elapsed::ZERO,
                nnodes: 1,
                ncpus: 56,
                ntasks: 1,
                req_mem: MemSpec::per_node_mib(4000),
                req_gres: String::new(),
                layout: Layout::Block,
                alloc_tres: Tres::new(),
                node_list: "frontier00001".to_owned(),
                consumed_energy_j: 0,
                max_rss_bytes: 0,
                ave_vm_size_bytes: 0,
                total_cpu: Elapsed::ZERO,
                work_dir: "/lustre/orion/proj/scratch".to_owned(),
                ave_disk_read: 0,
                ave_disk_write: 0,
                max_disk_read: 0,
                max_disk_write: 0,
                state: JobState::Completed,
                exit_code: ExitCode::SUCCESS,
                reason: PendingReason::None,
                restarts: 0,
                constraints: String::new(),
                priority: 1000,
                flags: JobFlags::EMPTY,
                dependency: None,
                array_job_id: None,
                comment: String::new(),
                steps: Vec::new(),
            },
        }
    }

    pub fn user(mut self, u: u32) -> Self {
        self.record.user = UserId(u);
        self
    }

    pub fn times(mut self, submit: Timestamp, start: Timestamp, end: Timestamp) -> Self {
        self.record.submit = submit;
        self.record.eligible = submit;
        self.record.start = start;
        self.record.end = end;
        self.record.elapsed = Elapsed((end - start).max(0));
        self
    }

    pub fn nodes(mut self, n: u32) -> Self {
        self.record.nnodes = n;
        self
    }

    pub fn cpus(mut self, n: u32) -> Self {
        self.record.ncpus = n;
        self
    }

    pub fn state(mut self, s: JobState) -> Self {
        self.record.state = s;
        self
    }

    pub fn timelimit(mut self, t: TimeLimit) -> Self {
        self.record.timelimit = t;
        self
    }

    pub fn flags(mut self, f: JobFlags) -> Self {
        self.record.flags = f;
        self
    }

    pub fn partition(mut self, p: &str) -> Self {
        self.record.partition = p.to_owned();
        self
    }

    pub fn step(mut self, s: StepRecord) -> Self {
        self.record.steps.push(s);
        self
    }

    pub fn build(self) -> JobRecord {
        self.record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::Flag;

    fn sample() -> JobRecord {
        let t0 = Timestamp::from_ymd(2024, 3, 1);
        JobRecordBuilder::new(42)
            .times(t0, t0 + 600, t0 + 600 + 7200)
            .nodes(128)
            .cpus(128 * 56)
            .timelimit(TimeLimit::Limit(Elapsed::from_hours(4)))
            .build()
    }

    #[test]
    fn wait_is_eligible_to_start() {
        let j = sample();
        assert_eq!(j.wait_secs(), Some(600));
        assert_eq!(j.submit_to_start_secs(), Some(600));
    }

    #[test]
    fn walltime_utilization_and_unused() {
        let j = sample();
        assert_eq!(j.requested_secs(), Some(4 * 3600));
        let u = j.walltime_utilization().unwrap();
        assert!((u - 0.5).abs() < 1e-9);
        assert_eq!(j.unused_walltime_secs(), Some(2 * 3600));
    }

    #[test]
    fn unlimited_has_no_utilization() {
        let mut j = sample();
        j.timelimit = TimeLimit::Unlimited;
        assert_eq!(j.requested_secs(), None);
        assert_eq!(j.walltime_utilization(), None);
    }

    #[test]
    fn accounting_quantities() {
        let j = sample();
        assert_eq!(j.node_seconds(), 128 * 7200);
        assert!((j.core_hours() - (128.0 * 56.0 * 2.0)).abs() < 1e-9);
    }

    #[test]
    fn backfill_flag_propagates() {
        let j = JobRecordBuilder::new(1)
            .flags(JobFlags::EMPTY.with(Flag::SchedBackfill))
            .build();
        assert!(j.is_backfilled());
    }

    #[test]
    fn validate_accepts_consistent_record() {
        sample().validate().unwrap();
    }

    #[test]
    fn validate_rejects_end_before_start() {
        let t0 = Timestamp::from_ymd(2024, 3, 1);
        let mut j = sample();
        j.start = t0 + 100;
        j.end = t0 + 50;
        assert!(j.validate().is_err());
    }

    #[test]
    fn validate_rejects_elapsed_mismatch() {
        let mut j = sample();
        j.elapsed = Elapsed(1);
        assert!(j.validate().is_err());
    }

    #[test]
    fn validate_rejects_foreign_step() {
        use crate::ids::StepKind;
        let mut j = sample();
        j.steps.push(StepRecord {
            id: StepId {
                job: JobId::plain(999),
                step: StepKind::Numbered(0),
            },
            name: "orphan".to_owned(),
            start: j.start,
            end: j.end,
            elapsed: j.elapsed,
            state: JobState::Completed,
            exit_code: ExitCode::SUCCESS,
            nnodes: 1,
            ntasks: 1,
            ave_cpu: Elapsed::ZERO,
            max_rss_bytes: 0,
            ave_disk_read: 0,
            ave_disk_write: 0,
            tres_usage_in_ave: Tres::new(),
        });
        assert!(j.validate().is_err());
    }

    #[test]
    fn cancelled_while_pending_is_valid() {
        let mut j = sample();
        j.state = JobState::Cancelled;
        j.start = Timestamp::UNKNOWN;
        j.end = Timestamp::UNKNOWN;
        j.elapsed = Elapsed::ZERO;
        j.validate().unwrap();
        assert_eq!(j.wait_secs(), None);
    }

    #[test]
    fn layout_round_trip() {
        for l in [
            Layout::Block,
            Layout::Cyclic,
            Layout::Plane,
            Layout::Unknown,
        ] {
            assert_eq!(Layout::parse_sacct(l.to_sacct()), l);
        }
        assert_eq!(Layout::parse_sacct("weird"), Layout::Unknown);
    }
}
