//! Hosted-backend adapter: how a real LLM API slots into the [`Analyst`]
//! seam.
//!
//! The transport is a trait so the workflow can be exercised offline: tests
//! inject canned transports; production would implement [`Transport`] over
//! HTTPS to the chosen endpoint (Gemma 3 per the Table 2 selection). No
//! network code ships in this repository — the reproduction environment is
//! offline, and the substitution is documented in DESIGN.md.

use crate::analyst::{Analyst, AnalystError, Finding, Insight, Severity};
use crate::prompts::PromptRequest;
use schedflow_charts::ChartDigest;

/// The wire seam: send a prompt + attachments, get completion text back.
pub trait Transport: Send + Sync {
    fn complete(&self, request: &PromptRequest) -> Result<String, String>;
}

/// An [`Analyst`] that forwards to a hosted model via a [`Transport`].
pub struct ApiAnalyst<T: Transport> {
    backend_name: String,
    transport: T,
}

impl<T: Transport> ApiAnalyst<T> {
    pub fn new(backend_name: &str, transport: T) -> Self {
        Self {
            backend_name: backend_name.to_owned(),
            transport,
        }
    }

    fn ask(&self, subject: String, request: PromptRequest) -> Result<Insight, AnalystError> {
        let text = self
            .transport
            .complete(&request)
            .map_err(AnalystError::Backend)?;
        // Hosted models return free text; we wrap it as a single narrative
        // with one Info finding so downstream formatting is uniform.
        Ok(Insight {
            subject,
            narrative: text.clone(),
            findings: vec![Finding {
                severity: Severity::Info,
                text: format!("narrative produced by {}", self.backend_name),
            }],
            stats: Vec::new(),
        })
    }
}

impl<T: Transport> Analyst for ApiAnalyst<T> {
    fn name(&self) -> &str {
        &self.backend_name
    }

    fn insight(&self, digest: &ChartDigest) -> Result<Insight, AnalystError> {
        self.ask(digest.title().to_owned(), PromptRequest::insight(digest))
    }

    fn compare(&self, a: &ChartDigest, b: &ChartDigest) -> Result<Insight, AnalystError> {
        self.ask(
            format!("{} vs {}", a.title(), b.title()),
            PromptRequest::compare(a, b),
        )
    }
}

/// A transport that always fails — what a hosted backend looks like from an
/// air-gapped environment. Useful for testing failure handling in the
/// user-defined subworkflows.
pub struct OfflineTransport;

impl Transport for OfflineTransport {
    fn complete(&self, _request: &PromptRequest) -> Result<String, String> {
        Err("no network route to model endpoint (offline environment)".to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompts::{COMPARE_PROMPT, INSIGHT_PROMPT};
    use schedflow_charts::{digest, Axis, Chart, ScatterChart, Series};
    use std::sync::Mutex;

    struct Recording {
        requests: Mutex<Vec<PromptRequest>>,
        reply: String,
    }

    impl Transport for Recording {
        fn complete(&self, request: &PromptRequest) -> Result<String, String> {
            self.requests.lock().unwrap().push(request.clone());
            Ok(self.reply.clone())
        }
    }

    fn sample_digest() -> ChartDigest {
        digest(&Chart::Scatter(
            ScatterChart::new("waits", Axis::linear("t"), Axis::linear("w"))
                .with_series(Series::scatter("s", vec![1.0, 2.0], vec![3.0, 4.0])),
        ))
    }

    #[test]
    fn insight_sends_single_attachment_with_paper_prompt() {
        let t = Recording {
            requests: Mutex::new(Vec::new()),
            reply: "the chart shows things".into(),
        };
        let a = ApiAnalyst::new("gemma-3", t);
        let out = a.insight(&sample_digest()).unwrap();
        assert_eq!(out.narrative, "the chart shows things");
        assert!(out.findings[0].text.contains("gemma-3"));
        let reqs = a.transport.requests.lock().unwrap();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].prompt, INSIGHT_PROMPT);
        assert_eq!(reqs[0].attachments.len(), 1);
    }

    #[test]
    fn compare_sends_two_attachments() {
        let t = Recording {
            requests: Mutex::new(Vec::new()),
            reply: "a vs b".into(),
        };
        let a = ApiAnalyst::new("gemma-3", t);
        let d = sample_digest();
        a.compare(&d, &d).unwrap();
        let reqs = a.transport.requests.lock().unwrap();
        assert_eq!(reqs[0].prompt, COMPARE_PROMPT);
        assert_eq!(reqs[0].attachments.len(), 2);
    }

    #[test]
    fn offline_transport_surfaces_backend_error() {
        let a = ApiAnalyst::new("gemma-3", OfflineTransport);
        match a.insight(&sample_digest()) {
            Err(AnalystError::Backend(msg)) => assert!(msg.contains("offline")),
            other => panic!("expected backend error, got {other:?}"),
        }
    }
}
