//! Table 2: the LLM offering survey and the backend selection it motivates.
//!
//! The paper compares hosted model offerings on API availability, cost,
//! image input, and deployment friction, choosing Google's Gemma 3 for
//! (1) free unrestricted API access, (2) multimodal input, (3) low latency.
//! This module reproduces the survey rows and makes the selection criteria
//! an explicit scoring function.

use serde::{Deserialize, Serialize};

/// Access model of an offering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessModel {
    Free,
    Paid,
    Unclear,
}

/// One surveyed offering (a row of Table 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LlmOffering {
    pub provider: &'static str,
    pub version: &'static str,
    pub has_api: bool,
    pub access: AccessModel,
    pub image_input: bool,
    /// Usage limits on the free/API tier.
    pub usage_limited: bool,
    /// Geo-restricted or platform-locked.
    pub restricted: bool,
    /// Relative latency/footprint rank (lower is lighter/faster).
    pub latency_rank: u8,
    pub remarks: &'static str,
}

/// The Table 2 survey, row for row.
pub fn survey() -> Vec<LlmOffering> {
    vec![
        LlmOffering {
            provider: "OpenAI",
            version: "All Models",
            has_api: true,
            access: AccessModel::Paid,
            image_input: true,
            usage_limited: false,
            restricted: false,
            latency_rank: 3,
            remarks: "o3, o4, best for vision",
        },
        LlmOffering {
            provider: "Google",
            version: "Gemini 2.5 Flash",
            has_api: true,
            access: AccessModel::Free,
            image_input: true,
            usage_limited: false,
            restricted: false,
            latency_rank: 2,
            remarks: "No limit on usage",
        },
        LlmOffering {
            provider: "Google",
            version: "Gemma 3",
            has_api: true,
            access: AccessModel::Free,
            image_input: true,
            usage_limited: false,
            restricted: false,
            latency_rank: 1,
            remarks: "AI for \"developers\"",
        },
        LlmOffering {
            provider: "Anthropic",
            version: "All Models",
            has_api: true,
            access: AccessModel::Paid,
            image_input: true,
            usage_limited: false,
            restricted: false,
            latency_rank: 3,
            remarks: "Interoperable with other models",
        },
        LlmOffering {
            provider: "Apple",
            version: "All Models",
            has_api: false,
            access: AccessModel::Free,
            image_input: false,
            usage_limited: true,
            restricted: true,
            latency_rank: 2,
            remarks: "All LLMs must run locally on iOS devices",
        },
        LlmOffering {
            provider: "DeepSeek",
            version: "All Models",
            has_api: true,
            access: AccessModel::Paid,
            image_input: false,
            usage_limited: false,
            restricted: true,
            latency_rank: 3,
            remarks: "Geo-restricted",
        },
        LlmOffering {
            provider: "Mistral",
            version: "All Models",
            has_api: true,
            access: AccessModel::Paid,
            image_input: true,
            usage_limited: true,
            restricted: true,
            latency_rank: 2,
            remarks: "Restricted and limited free trial",
        },
        LlmOffering {
            provider: "Meta",
            version: "Llama",
            has_api: true,
            access: AccessModel::Unclear,
            image_input: true,
            usage_limited: true,
            restricted: true,
            latency_rank: 2,
            remarks: "Waitlist for API, cost unclear",
        },
        LlmOffering {
            provider: "Microsoft",
            version: "Copilot",
            has_api: true,
            access: AccessModel::Paid,
            image_input: true,
            usage_limited: false,
            restricted: true,
            latency_rank: 3,
            remarks: "Integrated into MS tools eg. Office suite",
        },
        LlmOffering {
            provider: "Github",
            version: "Copilot",
            has_api: false,
            access: AccessModel::Free,
            image_input: false,
            usage_limited: true,
            restricted: true,
            latency_rank: 2,
            remarks: "Built into IDE, limited req/month",
        },
    ]
}

/// Selection score per §3.2's criteria: API availability and image input are
/// hard requirements; then prefer free, unrestricted, unlimited, and
/// lightweight offerings.
pub fn score(offering: &LlmOffering) -> i32 {
    if !offering.has_api || !offering.image_input {
        return 0;
    }
    let mut s = 10;
    if offering.access == AccessModel::Free {
        s += 8;
    }
    if !offering.usage_limited {
        s += 4;
    }
    if !offering.restricted {
        s += 4;
    }
    s += i32::from(4 - offering.latency_rank.min(4)); // lighter is better
    s
}

/// The backend the criteria select.
pub fn select_backend() -> LlmOffering {
    survey()
        .into_iter()
        .max_by_key(score)
        .expect("survey nonempty")
}

/// Render the survey as aligned text rows (the Table 2 regenerator).
pub fn table2_text() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:<18} {:<4} {:<8} {:<6} Remarks\n",
        "LLM / AI", "Version", "API", "Access", "Image"
    ));
    for o in survey() {
        out.push_str(&format!(
            "{:<10} {:<18} {:<4} {:<8} {:<6} {}\n",
            o.provider,
            o.version,
            if o.has_api { "Yes" } else { "No" },
            match o.access {
                AccessModel::Free => "Free",
                AccessModel::Paid => "Paid",
                AccessModel::Unclear => "Unclear",
            },
            if o.image_input { "Yes" } else { "No" },
            o.remarks
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_has_ten_rows_like_table2() {
        assert_eq!(survey().len(), 10);
    }

    #[test]
    fn criteria_select_gemma3() {
        let chosen = select_backend();
        assert_eq!(chosen.provider, "Google");
        assert_eq!(chosen.version, "Gemma 3");
    }

    #[test]
    fn hard_requirements_zero_out() {
        let apple = survey()
            .into_iter()
            .find(|o| o.provider == "Apple")
            .unwrap();
        assert_eq!(score(&apple), 0, "no API -> ineligible");
        let github = survey()
            .into_iter()
            .find(|o| o.provider == "Github")
            .unwrap();
        assert_eq!(score(&github), 0);
    }

    #[test]
    fn free_beats_paid_all_else_equal() {
        let openai = survey()
            .into_iter()
            .find(|o| o.provider == "OpenAI")
            .unwrap();
        let gemini = survey()
            .into_iter()
            .find(|o| o.version == "Gemini 2.5 Flash")
            .unwrap();
        assert!(score(&gemini) > score(&openai));
    }

    #[test]
    fn table_text_contains_all_providers() {
        let t = table2_text();
        for p in [
            "OpenAI",
            "Google",
            "Anthropic",
            "Apple",
            "DeepSeek",
            "Mistral",
            "Meta",
            "Microsoft",
            "Github",
        ] {
            assert!(t.contains(p), "{p} missing");
        }
        assert!(t.contains("Gemma 3"));
    }
}
