//! The two prompts of §3.2, verbatim, and the request envelope a hosted
//! backend would receive.

use schedflow_charts::ChartDigest;
use serde::{Deserialize, Serialize};

/// §3.2 *LLM Insight*: the single-chart summarization prompt.
pub const INSIGHT_PROMPT: &str = "Act as a data scientist to summarize the chart and \
provide a quantitative analysis of the key trends, relationships, and statistics of \
the provided chart. Be specific and mention any notable patterns or outliers. \
Calculate meaningful statistics from the plot.";

/// §3.2 *LLM Compare*: the paired-chart comparison prompt.
pub const COMPARE_PROMPT: &str = "Act as a data scientist to compare and contrast the \
two provided charts. Provide a quantitative and qualitative analysis of the key \
trends, relationships, and statistics, highlighting similarities and differences. \
Be specific and mention any notable patterns or outliers. Calculate meaningful \
statistics from the plots.";

/// What would go over the wire to a hosted multimodal model: the prompt plus
/// one or two chart attachments (digests standing in for the PNGs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PromptRequest {
    pub prompt: String,
    /// JSON-serialized digests (the compact visual summaries).
    pub attachments: Vec<String>,
}

impl PromptRequest {
    /// Build a single-chart Insight request.
    pub fn insight(digest: &ChartDigest) -> Self {
        PromptRequest {
            prompt: INSIGHT_PROMPT.to_owned(),
            attachments: vec![digest.to_json()],
        }
    }

    /// Build a paired-chart Compare request.
    pub fn compare(a: &ChartDigest, b: &ChartDigest) -> Self {
        PromptRequest {
            prompt: COMPARE_PROMPT.to_owned(),
            attachments: vec![a.to_json(), b.to_json()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedflow_charts::{digest, Axis, Chart, ScatterChart, Series};

    fn chart_digest() -> ChartDigest {
        digest(&Chart::Scatter(
            ScatterChart::new("t", Axis::linear("x"), Axis::linear("y"))
                .with_series(Series::scatter("s", vec![1.0], vec![2.0])),
        ))
    }

    #[test]
    fn prompts_match_paper_text() {
        assert!(INSIGHT_PROMPT.starts_with("Act as a data scientist to summarize"));
        assert!(COMPARE_PROMPT.starts_with("Act as a data scientist to compare and contrast"));
        assert!(INSIGHT_PROMPT.ends_with("Calculate meaningful statistics from the plot."));
        assert!(COMPARE_PROMPT.ends_with("Calculate meaningful statistics from the plots."));
    }

    #[test]
    fn insight_request_has_one_attachment() {
        let r = PromptRequest::insight(&chart_digest());
        assert_eq!(r.attachments.len(), 1);
        assert_eq!(r.prompt, INSIGHT_PROMPT);
        // Attachment is valid digest JSON.
        let _: ChartDigest = serde_json::from_str(&r.attachments[0]).unwrap();
    }

    #[test]
    fn compare_request_has_two_attachments() {
        let d = chart_digest();
        let r = PromptRequest::compare(&d, &d);
        assert_eq!(r.attachments.len(), 2);
        assert_eq!(r.prompt, COMPARE_PROMPT);
    }
}
