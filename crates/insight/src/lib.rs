//! # schedflow-insight
//!
//! The AI interpretation layer of the workflow (§3.2 / §4.2 of the paper):
//!
//! * [`analyst::Analyst`] — the LLM seam: anything that can turn chart
//!   digests into narrated, quantified insights;
//! * [`rule::RuleAnalyst`] — a deterministic statistical analyst executing
//!   the semantics of the paper's two prompts (trends, relationships,
//!   outliers, statistics) with auditable numbers;
//! * [`prompts`] — the paper's *LLM Insight* and *LLM Compare* prompts,
//!   verbatim, plus the request envelope a hosted backend receives;
//! * [`api::ApiAnalyst`] — the hosted-backend adapter over a [`api::Transport`];
//! * [`fallback::FallbackAnalyst`] — degradation chaining: a flaky hosted
//!   backend falls back to the deterministic rule analyst instead of failing
//!   the workflow;
//! * [`registry`] — the Table 2 offering survey and the scoring that selects
//!   Gemma 3.

pub mod analyst;
pub mod api;
pub mod fallback;
pub mod prompts;
pub mod registry;
pub mod rule;

pub use analyst::{Analyst, AnalystError, Finding, Insight, Severity};
pub use api::{ApiAnalyst, OfflineTransport, Transport};
pub use fallback::FallbackAnalyst;
pub use prompts::{PromptRequest, COMPARE_PROMPT, INSIGHT_PROMPT};
pub use registry::{select_backend, survey, table2_text, AccessModel, LlmOffering};
pub use rule::RuleAnalyst;
