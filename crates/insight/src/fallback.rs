//! Fallback chaining over analysts: try the preferred (hosted) backend,
//! degrade to the next on backend failure.
//!
//! The hosted endpoint is the least reliable stage of the whole pipeline —
//! the paper's deployment talks to a remote model over the network. A
//! [`FallbackAnalyst`] keeps the insight stage alive through an outage by
//! degrading to the deterministic [`crate::rule::RuleAnalyst`] instead of
//! failing the workflow: a run completes with rule-derived narratives rather
//! than not completing at all.

use crate::analyst::{Analyst, AnalystError, Insight};
use schedflow_charts::ChartDigest;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// An [`Analyst`] that tries a chain of backends in order, returning the
/// first success. Only [`AnalystError::Backend`] failures trigger the next
/// link — [`AnalystError::UnsupportedChart`] means the *request* is at fault,
/// and every backend would reject it the same way.
pub struct FallbackAnalyst {
    name: String,
    chain: Vec<Arc<dyn Analyst>>,
    /// How many requests any primary link has failed over so far (for
    /// provenance: a dashboard built on fallbacks should say so).
    fallbacks_used: AtomicUsize,
}

impl FallbackAnalyst {
    /// Build a chain from preferred to last-resort. Panics on an empty chain
    /// — an insight stage with no analyst at all is a construction bug.
    pub fn new(chain: Vec<Arc<dyn Analyst>>) -> Self {
        assert!(!chain.is_empty(), "FallbackAnalyst needs at least one link");
        let name = chain
            .iter()
            .map(|a| a.name())
            .collect::<Vec<_>>()
            .join(" -> ");
        Self {
            name,
            chain,
            fallbacks_used: AtomicUsize::new(0),
        }
    }

    /// The common production chain: a hosted backend with the deterministic
    /// rule analyst as the last resort.
    pub fn with_rule_fallback(primary: Arc<dyn Analyst>) -> Self {
        Self::new(vec![primary, Arc::new(crate::rule::RuleAnalyst::new())])
    }

    /// Requests that were *not* served by the first link.
    pub fn fallbacks_used(&self) -> usize {
        self.fallbacks_used.load(Ordering::Relaxed)
    }

    fn run<F>(&self, call: F) -> Result<Insight, AnalystError>
    where
        F: Fn(&dyn Analyst) -> Result<Insight, AnalystError>,
    {
        let mut last = None;
        for (i, analyst) in self.chain.iter().enumerate() {
            match call(analyst.as_ref()) {
                Ok(mut insight) => {
                    if i > 0 {
                        self.fallbacks_used.fetch_add(1, Ordering::Relaxed);
                        insight.narrative = format!(
                            "(fallback: served by {} after upstream failure) {}",
                            analyst.name(),
                            insight.narrative
                        );
                    }
                    return Ok(insight);
                }
                Err(e @ AnalystError::UnsupportedChart(_)) => return Err(e),
                Err(e @ AnalystError::Backend(_)) => last = Some(e),
            }
        }
        Err(last.expect("chain is non-empty"))
    }
}

impl Analyst for FallbackAnalyst {
    fn name(&self) -> &str {
        &self.name
    }

    fn insight(&self, digest: &ChartDigest) -> Result<Insight, AnalystError> {
        self.run(|a| a.insight(digest))
    }

    fn compare(&self, a: &ChartDigest, b: &ChartDigest) -> Result<Insight, AnalystError> {
        self.run(|x| x.compare(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{ApiAnalyst, OfflineTransport};
    use crate::rule::RuleAnalyst;
    use schedflow_charts::{digest, Axis, Chart, ScatterChart, Series};

    fn sample_digest() -> ChartDigest {
        digest(&Chart::Scatter(
            ScatterChart::new("waits", Axis::linear("t"), Axis::linear("w"))
                .with_series(Series::scatter("s", vec![1.0, 2.0], vec![3.0, 4.0])),
        ))
    }

    struct AlwaysBackendError;
    impl Analyst for AlwaysBackendError {
        fn name(&self) -> &str {
            "broken"
        }
        fn insight(&self, _d: &ChartDigest) -> Result<Insight, AnalystError> {
            Err(AnalystError::Backend("down".into()))
        }
        fn compare(&self, _a: &ChartDigest, _b: &ChartDigest) -> Result<Insight, AnalystError> {
            Err(AnalystError::Backend("down".into()))
        }
    }

    struct Unsupported;
    impl Analyst for Unsupported {
        fn name(&self) -> &str {
            "picky"
        }
        fn insight(&self, _d: &ChartDigest) -> Result<Insight, AnalystError> {
            Err(AnalystError::UnsupportedChart("no".into()))
        }
        fn compare(&self, _a: &ChartDigest, _b: &ChartDigest) -> Result<Insight, AnalystError> {
            Err(AnalystError::UnsupportedChart("no".into()))
        }
    }

    #[test]
    fn offline_primary_falls_back_to_rule_analyst() {
        let primary: Arc<dyn Analyst> = Arc::new(ApiAnalyst::new("gemma-3", OfflineTransport));
        let f = FallbackAnalyst::with_rule_fallback(primary);
        let out = f.insight(&sample_digest()).unwrap();
        assert!(out.narrative.contains("fallback"), "{}", out.narrative);
        assert_eq!(f.fallbacks_used(), 1);
        assert!(f.name().contains("gemma-3"));
        assert!(f.name().contains("->"));
    }

    #[test]
    fn healthy_primary_is_used_directly() {
        let primary: Arc<dyn Analyst> = Arc::new(RuleAnalyst::new());
        let f = FallbackAnalyst::with_rule_fallback(primary);
        let out = f.insight(&sample_digest()).unwrap();
        assert!(!out.narrative.contains("fallback"));
        assert_eq!(f.fallbacks_used(), 0);
    }

    #[test]
    fn all_links_down_surfaces_last_backend_error() {
        let f = FallbackAnalyst::new(vec![
            Arc::new(AlwaysBackendError),
            Arc::new(AlwaysBackendError),
        ]);
        match f.insight(&sample_digest()) {
            Err(AnalystError::Backend(m)) => assert_eq!(m, "down"),
            other => panic!("expected backend error, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_chart_does_not_fall_through() {
        // A request-shape error would fail identically on every link; the
        // chain must not mask it as a fallback success.
        let f = FallbackAnalyst::new(vec![Arc::new(Unsupported), Arc::new(RuleAnalyst::new())]);
        match f.insight(&sample_digest()) {
            Err(AnalystError::UnsupportedChart(_)) => {}
            other => panic!("expected unsupported-chart error, got {other:?}"),
        }
    }

    #[test]
    fn compare_falls_back_too() {
        let primary: Arc<dyn Analyst> = Arc::new(ApiAnalyst::new("gemma-3", OfflineTransport));
        let f = FallbackAnalyst::with_rule_fallback(primary);
        let d = sample_digest();
        let out = f.compare(&d, &d).unwrap();
        assert!(out.narrative.contains("fallback"));
    }
}
