//! `RuleAnalyst`: a deterministic statistical analyst.
//!
//! Executes the semantics of the paper's two prompts — trends,
//! relationships, statistics, notable patterns, outliers — directly over
//! chart digests. Where the paper's hosted model narrates what it sees in a
//! PNG, this analyst computes the same observations from the digest and
//! narrates them reproducibly, which is exactly the "digital analyst"
//! role §4.2 describes (and, unlike the proof-of-concept LLM, its numbers
//! are auditable).

use crate::analyst::{Analyst, AnalystError, Finding, Insight, Severity};
use schedflow_charts::{ChartDigest, DensityGrid, SeriesDigest};

/// The deterministic rule-based analyst.
#[derive(Debug, Clone, Default)]
pub struct RuleAnalyst;

impl RuleAnalyst {
    pub fn new() -> Self {
        RuleAnalyst
    }
}

/// Human description of a duration in seconds.
fn human_secs(s: f64) -> String {
    if s >= 172_800.0 {
        format!("{:.1} days", s / 86_400.0)
    } else if s >= 7200.0 {
        format!("{:.1} hours", s / 3600.0)
    } else if s >= 120.0 {
        format!("{:.1} minutes", s / 60.0)
    } else {
        format!("{s:.0} seconds")
    }
}

/// Signed percent change from `from` to `to`.
fn pct_change(from: f64, to: f64) -> Option<f64> {
    if from.abs() < 1e-12 {
        None
    } else {
        Some((to - from) / from * 100.0)
    }
}

/// Verbal location of the density peak ("low x / low y corner").
fn peak_phrase(grid: &DensityGrid, x_label: &str, y_label: &str) -> String {
    let (row, col) = grid.peak();
    let third = |i: usize, n: usize| -> &'static str {
        if i < n / 3 {
            "low"
        } else if i >= n - n / 3 {
            "high"
        } else {
            "mid"
        }
    };
    let share = if grid.total() == 0 {
        0.0
    } else {
        *grid.counts.iter().max().unwrap_or(&0) as f64 / grid.total() as f64
    };
    format!(
        "the densest region sits at {}-{} / {}-{} ({:.0}% of points in one cell)",
        third(col, grid.cols),
        x_label,
        third(row, grid.rows),
        y_label,
        share * 100.0
    )
}

fn correlation_phrase(r: f64) -> String {
    let strength = match r.abs() {
        a if a >= 0.8 => "strong",
        a if a >= 0.5 => "moderate",
        a if a >= 0.2 => "weak",
        _ => "negligible",
    };
    let sign = if r >= 0.0 { "positive" } else { "negative" };
    format!("a {strength} {sign} relationship (r = {r:.2})")
}

fn mentions_walltime(x_label: &str, y_label: &str) -> bool {
    let l = format!("{x_label} {y_label}").to_lowercase();
    l.contains("request") && (l.contains("actual") || l.contains("duration"))
}

impl Analyst for RuleAnalyst {
    fn name(&self) -> &str {
        "rule-analyst"
    }

    fn insight(&self, digest: &ChartDigest) -> Result<Insight, AnalystError> {
        match digest {
            ChartDigest::Scatter {
                title,
                x_label,
                y_label,
                diagonal,
                series,
                density,
                ..
            } => Ok(scatter_insight(
                title, x_label, y_label, *diagonal, series, density,
            )),
            ChartDigest::Bar {
                title,
                y_label,
                stacks,
                category_cv,
                top_categories,
                categories,
                ..
            } => Ok(bar_insight(
                title,
                y_label,
                stacks,
                *category_cv,
                top_categories,
                *categories,
            )),
            ChartDigest::Heatmap {
                title,
                value_label,
                cells,
                peak,
                trough,
                row_means,
                ..
            } => Ok(heatmap_insight(
                title,
                value_label,
                cells,
                peak,
                trough,
                row_means,
            )),
        }
    }

    fn compare(&self, a: &ChartDigest, b: &ChartDigest) -> Result<Insight, AnalystError> {
        match (a, b) {
            (
                ChartDigest::Scatter {
                    title: ta,
                    series: sa,
                    y_label,
                    ..
                },
                ChartDigest::Scatter {
                    title: tb,
                    series: sb,
                    ..
                },
            ) => Ok(scatter_compare(ta, sa, tb, sb, y_label)),
            (
                ChartDigest::Bar {
                    title: ta,
                    stacks: ka,
                    category_cv: cva,
                    ..
                },
                ChartDigest::Bar {
                    title: tb,
                    stacks: kb,
                    category_cv: cvb,
                    ..
                },
            ) => Ok(bar_compare(ta, ka, *cva, tb, kb, *cvb)),
            _ => Err(AnalystError::UnsupportedChart(
                "compare requires two charts of the same kind".to_owned(),
            )),
        }
    }
}

fn heatmap_insight(
    title: &str,
    value_label: &str,
    cells: &Option<schedflow_charts::DimStats>,
    peak: &Option<(String, String, f64)>,
    trough: &Option<(String, String, f64)>,
    row_means: &[(String, f64)],
) -> Insight {
    let mut narrative = vec![format!(
        "The heatmap \"{title}\" maps {value_label} over the week."
    )];
    let mut findings = Vec::new();
    let mut stats: Vec<(String, f64)> = Vec::new();

    if let Some(c) = cells {
        stats.push(("cells".into(), c.n as f64));
        stats.push(("cell_median".into(), c.median));
        stats.push(("cell_max".into(), c.max));
    }
    if let (Some((pr, pc, pv)), Some((tr, tc, tv))) = (peak, trough) {
        narrative.push(format!(
            "The hottest slot is {pr} {pc}:00 ({pv:.0}); the coolest is {tr} {tc}:00 ({tv:.0})."
        ));
        if *tv > 0.0 && pv / tv > 5.0 {
            findings.push(Finding {
                severity: Severity::Actionable,
                text: format!(
                    "A {:.0}x spread between the week's hottest and coolest slots suggests \
                     time-of-week-aware policies (e.g. steering flexible work toward \
                     {tr} {tc}:00) could flatten the queue.",
                    pv / tv
                ),
            });
        }
    }
    // Weekday vs weekend contrast from row means.
    let mean_of = |rows: &[usize]| -> Option<f64> {
        let vals: Vec<f64> = rows
            .iter()
            .filter_map(|&r| row_means.get(r).map(|(_, m)| *m))
            .filter(|m| m.is_finite())
            .collect();
        (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64)
    };
    if let (Some(weekday), Some(weekend)) = (mean_of(&[0, 1, 2, 3, 4]), mean_of(&[5, 6])) {
        stats.push(("weekday_mean".into(), weekday));
        stats.push(("weekend_mean".into(), weekend));
        if weekend > 0.0 && weekday / weekend > 1.5 {
            narrative.push(format!(
                "Weekday slots average {:.0} against {:.0} on weekends — contention follows \
                 the working week.",
                weekday, weekend
            ));
        }
    }

    Insight {
        subject: title.to_owned(),
        narrative: narrative.join(" "),
        findings,
        stats,
    }
}

fn scatter_insight(
    title: &str,
    x_label: &str,
    y_label: &str,
    diagonal: bool,
    series: &[SeriesDigest],
    density: &Option<DensityGrid>,
) -> Insight {
    let total_n: usize = series.iter().map(|s| s.n).sum();
    let mut narrative = vec![format!(
        "The chart \"{title}\" plots {total_n} points across {} series ({x_label} vs {y_label}).",
        series.len()
    )];
    let mut findings = Vec::new();
    let mut stats: Vec<(String, f64)> = vec![("points".into(), total_n as f64)];

    if let Some(grid) = density {
        narrative.push(format!(
            "Spatially, {}.",
            peak_phrase(grid, x_label, y_label)
        ));
    }

    // Pooled diagonal relation — only meaningful when the chart itself drew
    // the y = x guide (both axes in the same units, requested-vs-actual).
    let mut below_n = 0.0;
    let mut pooled = 0.0;
    for s in series {
        if let Some(above) = s.frac_above_diagonal {
            below_n += (1.0 - above) * s.n as f64;
            pooled += s.n as f64;
        }
    }
    if diagonal && pooled > 0.0 {
        let below_frac = below_n / pooled;
        stats.push(("fraction_below_diagonal".into(), below_frac));
        if below_frac > 0.8 && mentions_walltime(x_label, y_label) {
            narrative.push(format!(
                "There is a consistent trend of users significantly overestimating their \
                 walltime requests: {:.0}% of jobs complete in less time than requested. \
                 This creates a systemic gap that reduces scheduling efficiency.",
                below_frac * 100.0
            ));
            findings.push(Finding {
                severity: Severity::Actionable,
                text: "The tight cluster of short-actual, long-requested jobs suggests \
                       implementing automated walltime prediction or adaptive rescheduling \
                       to reclaim unused time."
                    .to_owned(),
            });
        } else if !(0.2..=0.8).contains(&below_frac) {
            narrative.push(format!(
                "{:.0}% of points lie below the y = x line.",
                below_frac * 100.0
            ));
        }
    }

    for s in series {
        if let (Some(r), true) = (s.correlation, s.n >= 10) {
            narrative.push(format!(
                "Series \"{}\" shows {} between {x_label} and {y_label}.",
                s.name,
                correlation_phrase(r)
            ));
            stats.push((format!("r_{}", s.name), r));
        }
        if let Some(y) = &s.y {
            stats.push((format!("median_y_{}", s.name), y.median));
            stats.push((format!("max_y_{}", s.name), y.max));
        }
        if s.y_outliers > 0 {
            findings.push(Finding {
                severity: Severity::Notable,
                text: format!(
                    "Series \"{}\" carries {} outlier points far beyond its interquartile \
                     range — worth inspecting individually.",
                    s.name, s.y_outliers
                ),
            });
        }
    }

    // Two-series marker contrast (regular vs backfilled).
    if series.len() == 2 {
        if let (Some(a), Some(b)) = (&series[0].y, &series[1].y) {
            if b.median < a.median * 0.75 {
                narrative.push(format!(
                    "Jobs in \"{}\" run markedly shorter than \"{}\" (median {} vs {}), \
                     consistent with the scheduler slotting short jobs into gaps.",
                    series[1].name,
                    series[0].name,
                    human_secs(b.median * 60.0),
                    human_secs(a.median * 60.0)
                ));
            }
        }
    }

    Insight {
        subject: title.to_owned(),
        narrative: narrative.join(" "),
        findings,
        stats,
    }
}

fn bar_insight(
    title: &str,
    y_label: &str,
    stacks: &[schedflow_charts::StackDigest],
    category_cv: Option<f64>,
    top_categories: &[(String, f64)],
    categories: usize,
) -> Insight {
    let grand: f64 = stacks.iter().map(|s| s.total).sum();
    let mut narrative = vec![format!(
        "The chart \"{title}\" aggregates {grand:.0} {y_label} across {categories} categories \
         and {} groups.",
        stacks.len()
    )];
    let mut findings = Vec::new();
    let mut stats: Vec<(String, f64)> = vec![("total".into(), grand)];

    if let Some((name, share)) = stacks
        .iter()
        .map(|s| {
            (
                s.name.clone(),
                if grand > 0.0 { s.total / grand } else { 0.0 },
            )
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    {
        narrative.push(format!(
            "\"{name}\" dominates with {:.0}% of the total.",
            share * 100.0
        ));
        stats.push((format!("share_{name}"), share));
    }

    for s in stacks {
        stats.push((format!("total_{}", s.name), s.total));
        let concentrated = s.total > 0.0 && s.peak_value / s.total > 0.3;
        let unhappy = matches!(
            s.name.as_str(),
            "FAILED" | "CANCELLED" | "TIMEOUT" | "OUT_OF_MEMORY" | "NODE_FAIL"
        );
        if concentrated && unhappy {
            findings.push(Finding {
                severity: Severity::Notable,
                text: format!(
                    "{} jobs concentrate on \"{}\" ({:.0}% of all {}): targeted user \
                     support or training would have outsized impact.",
                    s.name,
                    s.peak_category,
                    s.peak_value / s.total * 100.0,
                    s.name
                ),
            });
        }
    }

    if let Some(cv) = category_cv {
        stats.push(("category_cv".into(), cv));
        let phrase = if cv > 1.0 {
            "activity is highly concentrated in a few categories"
        } else if cv > 0.5 {
            "activity is unevenly spread"
        } else {
            "activity is fairly uniform across categories"
        };
        narrative.push(format!(
            "Cross-category dispersion is {cv:.2} (coefficient of variation): {phrase}."
        ));
    }
    if let Some((top, v)) = top_categories.first() {
        narrative.push(format!("The largest category is \"{top}\" at {v:.0}."));
    }

    Insight {
        subject: title.to_owned(),
        narrative: narrative.join(" "),
        findings,
        stats,
    }
}

fn scatter_compare(
    title_a: &str,
    series_a: &[SeriesDigest],
    title_b: &str,
    series_b: &[SeriesDigest],
    y_label: &str,
) -> Insight {
    let mut narrative = vec![format!("Comparing \"{title_a}\" with \"{title_b}\".")];
    let mut findings = Vec::new();
    let mut stats = Vec::new();

    let na: usize = series_a.iter().map(|s| s.n).sum();
    let nb: usize = series_b.iter().map(|s| s.n).sum();
    stats.push(("points_a".into(), na as f64));
    stats.push(("points_b".into(), nb as f64));
    if let Some(dn) = pct_change(na as f64, nb as f64) {
        narrative.push(format!(
            "Volume changed by {dn:+.0}% ({na} to {nb} points)."
        ));
    }

    let is_wait = y_label.to_lowercase().contains("wait");
    for sa in series_a {
        let Some(sb) = series_b.iter().find(|s| s.name == sa.name) else {
            continue;
        };
        let (Some(ya), Some(yb)) = (&sa.y, &sb.y) else {
            continue;
        };
        stats.push((format!("median_a_{}", sa.name), ya.median));
        stats.push((format!("median_b_{}", sa.name), yb.median));
        if let Some(d) = pct_change(ya.median, yb.median) {
            if d.abs() >= 10.0 {
                let direction = if d < 0.0 { "shorter" } else { "longer" };
                if is_wait && sa.name == "COMPLETED" {
                    narrative.push(format!(
                        "The majority of jobs that completed successfully have {direction} wait \
                         times in {title_b} compared to {title_a} (median {} vs {}, {d:+.0}%), \
                         suggesting {} .",
                        human_secs(yb.median),
                        human_secs(ya.median),
                        if d < 0.0 {
                            "either a decrease in queue load or more efficient scheduling \
                             policies being implemented"
                        } else {
                            "increased queue congestion or stricter policy thresholds"
                        }
                    ));
                } else {
                    narrative.push(format!(
                        "Series \"{}\": median {y_label} is {direction} in {title_b} \
                         ({} vs {}, {d:+.0}%).",
                        sa.name,
                        human_secs(yb.median),
                        human_secs(ya.median)
                    ));
                }
            }
        }
        // Extended-tail contrast (the "waits exceeding 100,000 seconds"
        // observation generalizes to outlier density + max).
        if sa.y_outliers > 2 * sb.y_outliers.max(1) {
            findings.push(Finding {
                severity: Severity::Notable,
                text: format!(
                    "{title_a} has a higher density of extended-{y_label} points for \"{}\" \
                     ({} vs {} outliers; max {} vs {}), which could indicate batch congestion \
                     or policy thresholds being hit more frequently.",
                    sa.name,
                    sa.y_outliers,
                    sb.y_outliers,
                    human_secs(ya.max),
                    human_secs(yb.max)
                ),
            });
        }
    }

    Insight {
        subject: format!("{title_a} vs {title_b}"),
        narrative: narrative.join(" "),
        findings,
        stats,
    }
}

fn bar_compare(
    title_a: &str,
    stacks_a: &[schedflow_charts::StackDigest],
    cv_a: Option<f64>,
    title_b: &str,
    stacks_b: &[schedflow_charts::StackDigest],
    cv_b: Option<f64>,
) -> Insight {
    let mut narrative = vec![format!("Comparing \"{title_a}\" with \"{title_b}\".")];
    let mut stats = Vec::new();
    let mut findings = Vec::new();

    for sa in stacks_a {
        let Some(sb) = stacks_b.iter().find(|s| s.name == sa.name) else {
            continue;
        };
        stats.push((format!("total_a_{}", sa.name), sa.total));
        stats.push((format!("total_b_{}", sa.name), sb.total));
        if let Some(d) = pct_change(sa.total, sb.total) {
            if d.abs() >= 15.0 {
                narrative.push(format!(
                    "\"{}\" totals differ by {d:+.0}% ({:.0} vs {:.0}).",
                    sa.name, sa.total, sb.total
                ));
            }
        }
    }
    if let (Some(a), Some(b)) = (cv_a, cv_b) {
        stats.push(("category_cv_a".into(), a));
        stats.push(("category_cv_b".into(), b));
        if a > b * 1.3 {
            findings.push(Finding {
                severity: Severity::Notable,
                text: format!(
                    "Cross-category dispersion is markedly higher in {title_a} \
                     (CV {a:.2} vs {b:.2}): a few categories dominate there, while \
                     {title_b} behaves more uniformly."
                ),
            });
        } else if b > a * 1.3 {
            findings.push(Finding {
                severity: Severity::Notable,
                text: format!(
                    "Cross-category dispersion is markedly higher in {title_b} \
                     (CV {b:.2} vs {a:.2})."
                ),
            });
        }
    }

    Insight {
        subject: format!("{title_a} vs {title_b}"),
        narrative: narrative.join(" "),
        findings,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedflow_charts::{digest, Axis, BarChart, BarMode, Chart, ScatterChart, Series};

    fn walltime_chart(factor: f64) -> ChartDigest {
        // requested = factor × actual: below-diagonal mass when factor > 1.
        let actual: Vec<f64> = (1..200).map(|i| i as f64).collect();
        let requested: Vec<f64> = actual.iter().map(|a| a * factor).collect();
        digest(&Chart::Scatter(
            ScatterChart::new(
                "Requested vs actual walltime",
                Axis::linear("requested walltime (minutes)"),
                Axis::linear("actual duration (minutes)"),
            )
            .with_series(Series::scatter("regular", requested, actual))
            .with_diagonal(),
        ))
    }

    #[test]
    fn overestimation_yields_actionable_recommendation() {
        let insight = RuleAnalyst::new().insight(&walltime_chart(3.0)).unwrap();
        assert!(insight
            .narrative
            .contains("overestimating their walltime requests"));
        assert_eq!(insight.max_severity(), Some(Severity::Actionable));
        assert!(insight
            .findings
            .iter()
            .any(|f| f.text.contains("automated walltime prediction")));
        let below = insight
            .stats
            .iter()
            .find(|(n, _)| n == "fraction_below_diagonal")
            .unwrap()
            .1;
        assert!(below > 0.95);
    }

    #[test]
    fn no_false_overestimation_when_balanced() {
        let insight = RuleAnalyst::new().insight(&walltime_chart(1.0)).unwrap();
        assert!(!insight.narrative.contains("overestimating"));
    }

    fn wait_chart(title: &str, scale: f64, with_tail: bool) -> ChartDigest {
        let mut xs: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let mut ys: Vec<f64> = (0..300).map(|i| (50.0 + (i % 97) as f64) * scale).collect();
        if with_tail {
            for i in 0..8 {
                xs.push(1000.0 + i as f64);
                ys.push(150_000.0);
            }
        }
        digest(&Chart::Scatter(
            ScatterChart::new(
                title,
                Axis::linear("submit time"),
                Axis::linear("wait time (seconds)"),
            )
            .with_series(Series::scatter("COMPLETED", xs, ys)),
        ))
    }

    #[test]
    fn wait_comparison_mirrors_paper_quote() {
        let march = wait_chart("March", 3.0, true);
        let june = wait_chart("June", 1.0, false);
        let insight = RuleAnalyst::new().compare(&march, &june).unwrap();
        assert!(
            insight
                .narrative
                .contains("shorter wait times in June compared to March"),
            "{}",
            insight.narrative
        );
        assert!(insight.narrative.contains("more efficient scheduling"));
        assert!(
            insight
                .findings
                .iter()
                .any(|f| f.text.contains("extended-wait")),
            "tail finding expected: {:?}",
            insight.findings
        );
    }

    #[test]
    fn bar_insight_flags_failure_concentration() {
        let c = Chart::Bar(
            BarChart::new(
                "Job end states per user — frontier",
                (0..20).map(|i| format!("u{i:02}")).collect(),
                "jobs",
                BarMode::Stacked,
            )
            .with_stack("COMPLETED", (0..20).map(|i| 100.0 - i as f64).collect())
            .with_stack("FAILED", {
                let mut v = vec![3.0; 20];
                v[0] = 500.0; // one user dominates failures
                v
            }),
        );
        let insight = RuleAnalyst::new().insight(&digest(&c)).unwrap();
        assert!(insight
            .findings
            .iter()
            .any(|f| f.text.contains("FAILED") && f.text.contains("u00")));
        assert!(insight.narrative.contains("coefficient of variation"));
    }

    #[test]
    fn bar_comparison_contrasts_dispersion() {
        let skewed = Chart::Bar(
            BarChart::new(
                "frontier states",
                (0..10).map(|i| format!("u{i}")).collect(),
                "jobs",
                BarMode::Stacked,
            )
            .with_stack("FAILED", {
                let mut v = vec![2.0; 10];
                v[0] = 400.0;
                v
            }),
        );
        let uniform = Chart::Bar(
            BarChart::new(
                "andes states",
                (0..10).map(|i| format!("u{i}")).collect(),
                "jobs",
                BarMode::Stacked,
            )
            .with_stack("FAILED", vec![20.0; 10]),
        );
        let insight = RuleAnalyst::new()
            .compare(&digest(&skewed), &digest(&uniform))
            .unwrap();
        assert!(insight.findings.iter().any(|f| f
            .text
            .contains("dispersion is markedly higher in frontier states")));
    }

    #[test]
    fn mixed_kind_comparison_is_unsupported() {
        let s = walltime_chart(2.0);
        let b = digest(&Chart::Bar(BarChart::new(
            "b",
            vec![],
            "y",
            BarMode::Grouped,
        )));
        assert!(matches!(
            RuleAnalyst::new().compare(&s, &b),
            Err(AnalystError::UnsupportedChart(_))
        ));
    }

    #[test]
    fn heatmap_insight_names_hot_and_cool_slots() {
        use schedflow_charts::HeatmapChart;
        let mut values = vec![50.0; 168];
        values[9] = 5000.0; // Monday 09:00 spike
        values[5 * 24 + 3] = 10.0; // Saturday 03:00 trough
        let mut h = HeatmapChart::new(
            "Queue dynamics — frontier",
            (0..24).map(|i| format!("{i:02}")).collect(),
            ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            values,
        );
        h.value_label = "mean wait (s)".into();
        let insight = RuleAnalyst::new()
            .insight(&digest(&Chart::Heatmap(h)))
            .unwrap();
        assert!(
            insight.narrative.contains("Mon 09:00"),
            "{}",
            insight.narrative
        );
        assert!(insight.narrative.contains("Sat 03:00"));
        assert_eq!(insight.max_severity(), Some(Severity::Actionable));
        assert!(insight
            .findings
            .iter()
            .any(|f| f.text.contains("time-of-week-aware")));
    }

    #[test]
    fn human_durations() {
        assert_eq!(human_secs(45.0), "45 seconds");
        assert_eq!(human_secs(600.0), "10.0 minutes");
        assert_eq!(human_secs(7200.0), "2.0 hours");
        assert_eq!(human_secs(200_000.0), "2.3 days");
    }

    #[test]
    fn deterministic_output() {
        let a = RuleAnalyst::new().insight(&walltime_chart(3.0)).unwrap();
        let b = RuleAnalyst::new().insight(&walltime_chart(3.0)).unwrap();
        assert_eq!(a, b);
    }
}
