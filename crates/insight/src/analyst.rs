//! The analyst abstraction: the seam where an LLM plugs into the workflow.
//!
//! The paper's user-defined subworkflows send chart images to a hosted model
//! (Gemma 3) with one of two prompts. Here the same pipeline position is a
//! trait: anything that can turn chart digests into narrated findings. The
//! deterministic [`crate::rule::RuleAnalyst`] is the in-repo implementation;
//! [`crate::api::ApiAnalyst`] shows how a hosted endpoint would slot in.

use schedflow_charts::ChartDigest;
use serde::{Deserialize, Serialize};

/// How actionable a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Descriptive observation.
    Info,
    /// Pattern worth investigating.
    Notable,
    /// Inefficiency with a concrete policy lever.
    Actionable,
}

/// One discrete observation inside an insight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    pub severity: Severity,
    pub text: String,
}

/// The analyst's output for one request: a human-readable narrative plus the
/// quantitative statistics it was derived from (the prompts demand
/// "quantitative analysis … calculate meaningful statistics").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Insight {
    /// Which chart(s) this concerns.
    pub subject: String,
    /// Flowing prose summary.
    pub narrative: String,
    pub findings: Vec<Finding>,
    /// Named statistics backing the narrative.
    pub stats: Vec<(String, f64)>,
}

impl Insight {
    /// Highest severity across findings.
    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Render as markdown (the format the paper publishes its LLM analyses
    /// in — see the llm_analysis/*.md artifacts it links).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {}\n\n{}\n", self.subject, self.narrative);
        if !self.findings.is_empty() {
            out.push_str("\n**Findings**\n\n");
            for f in &self.findings {
                out.push_str(&format!("- [{:?}] {}\n", f.severity, f.text));
            }
        }
        if !self.stats.is_empty() {
            out.push_str("\n**Statistics**\n\n");
            for (name, value) in &self.stats {
                out.push_str(&format!("- {name}: {value:.4}\n"));
            }
        }
        out
    }
}

/// Errors an analyst can produce (network/API errors for hosted backends).
#[derive(Debug, Clone, PartialEq)]
pub enum AnalystError {
    /// Backend unreachable or declined the request.
    Backend(String),
    /// The digest lacked the structure this analyst needs.
    UnsupportedChart(String),
}

impl std::fmt::Display for AnalystError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalystError::Backend(m) => write!(f, "analyst backend error: {m}"),
            AnalystError::UnsupportedChart(m) => write!(f, "unsupported chart: {m}"),
        }
    }
}

impl std::error::Error for AnalystError {}

/// Anything that can interpret chart digests.
pub trait Analyst: Send + Sync {
    /// Backend name (for provenance in reports).
    fn name(&self) -> &str;

    /// The paper's *LLM Insight* stage: summarize one chart.
    fn insight(&self, digest: &ChartDigest) -> Result<Insight, AnalystError>;

    /// The paper's *LLM Compare* stage: contrast two related charts.
    fn compare(&self, a: &ChartDigest, b: &ChartDigest) -> Result<Insight, AnalystError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn insight() -> Insight {
        Insight {
            subject: "Wait times".into(),
            narrative: "Waits are long.".into(),
            findings: vec![
                Finding {
                    severity: Severity::Info,
                    text: "n=100".into(),
                },
                Finding {
                    severity: Severity::Actionable,
                    text: "reclaim walltime".into(),
                },
            ],
            stats: vec![("median_wait_s".into(), 120.0)],
        }
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Actionable > Severity::Notable);
        assert!(Severity::Notable > Severity::Info);
        assert_eq!(insight().max_severity(), Some(Severity::Actionable));
    }

    #[test]
    fn markdown_rendering() {
        let md = insight().to_markdown();
        assert!(md.contains("## Wait times"));
        assert!(md.contains("- [Actionable] reclaim walltime"));
        assert!(md.contains("median_wait_s: 120.0000"));
    }

    #[test]
    fn serde_round_trip() {
        let i = insight();
        let j = serde_json::to_string(&i).unwrap();
        let back: Insight = serde_json::from_str(&j).unwrap();
        assert_eq!(back, i);
    }
}
