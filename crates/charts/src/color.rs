//! Palette: colorblind-safe categorical colors and a fixed job-state map so
//! every figure colors COMPLETED/FAILED/CANCELLED identically.

/// Okabe–Ito colorblind-safe categorical palette.
pub const PALETTE: [&str; 8] = [
    "#0072B2", // blue
    "#E69F00", // orange
    "#009E73", // green
    "#D55E00", // vermilion
    "#CC79A7", // purple-pink
    "#56B4E9", // sky
    "#F0E442", // yellow
    "#000000", // black
];

/// Categorical color for series index `i` (wraps around).
pub fn categorical(i: usize) -> &'static str {
    PALETTE[i % PALETTE.len()]
}

/// Fixed color for a job state name, consistent across all figures.
pub fn state_color(state: &str) -> &'static str {
    match state {
        "COMPLETED" => "#009E73",
        "FAILED" => "#D55E00",
        "CANCELLED" => "#E69F00",
        "TIMEOUT" => "#CC79A7",
        "NODE_FAIL" => "#000000",
        "OUT_OF_MEMORY" => "#56B4E9",
        "PREEMPTED" => "#F0E442",
        _ => "#999999",
    }
}

/// Muted grid/axis gray.
pub const GRID: &str = "#dddddd";
/// Axis/label ink.
pub const INK: &str = "#333333";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorical_wraps() {
        assert_eq!(categorical(0), PALETTE[0]);
        assert_eq!(categorical(8), PALETTE[0]);
        assert_eq!(categorical(9), PALETTE[1]);
    }

    #[test]
    fn states_have_distinct_colors() {
        let states = [
            "COMPLETED",
            "FAILED",
            "CANCELLED",
            "TIMEOUT",
            "NODE_FAIL",
            "OUT_OF_MEMORY",
        ];
        let colors: std::collections::HashSet<_> = states.iter().map(|s| state_color(s)).collect();
        assert_eq!(colors.len(), states.len());
    }

    #[test]
    fn unknown_state_gets_gray() {
        assert_eq!(state_color("WEIRD"), "#999999");
    }
}
