//! SVG rendering of chart specs.
//!
//! Self-contained static rendering (no JS dependency): axes with nice ticks,
//! linear/log scales, point markers with native SVG hover titles, legends,
//! and density-preserving downsampling for large scatters (a 1.5M-point
//! figure would otherwise emit hundreds of MB of SVG).

use crate::color::{categorical, state_color, GRID, INK};
use crate::spec::{
    BarChart, BarMode, Chart, HeatmapChart, MarkerShape, Scale, ScatterChart, Series,
};
use std::fmt::Write as _;

/// Canvas geometry.
#[derive(Debug, Clone, Copy)]
pub struct Geometry {
    pub width: f64,
    pub height: f64,
    pub margin_left: f64,
    pub margin_right: f64,
    pub margin_top: f64,
    pub margin_bottom: f64,
}

impl Default for Geometry {
    fn default() -> Self {
        Geometry {
            width: 880.0,
            height: 540.0,
            margin_left: 80.0,
            margin_right: 160.0,
            margin_top: 50.0,
            margin_bottom: 60.0,
        }
    }
}

impl Geometry {
    fn plot_width(&self) -> f64 {
        self.width - self.margin_left - self.margin_right
    }

    fn plot_height(&self) -> f64 {
        self.height - self.margin_top - self.margin_bottom
    }
}

/// Maximum points drawn per series before grid downsampling kicks in.
pub const MAX_POINTS_PER_SERIES: usize = 20_000;

/// Generate "nice" tick positions covering `[min, max]`.
pub fn nice_ticks(min: f64, max: f64, target: usize) -> Vec<f64> {
    if !min.is_finite() || !max.is_finite() || target == 0 {
        return vec![];
    }
    if (max - min).abs() < f64::EPSILON {
        return vec![min];
    }
    let span = max - min;
    let raw_step = span / target as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = if norm < 1.5 {
        1.0
    } else if norm < 3.0 {
        2.0
    } else if norm < 7.0 {
        5.0
    } else {
        10.0
    } * mag;
    let first = (min / step).ceil() * step;
    let mut ticks = Vec::new();
    let mut t = first;
    while t <= max + step * 1e-9 {
        ticks.push(if t.abs() < step * 1e-9 { 0.0 } else { t });
        t += step;
    }
    ticks
}

/// Log-scale ticks: powers of ten within `[min, max]` (both > 0).
pub fn log_ticks(min: f64, max: f64) -> Vec<f64> {
    if min <= 0.0 || max <= min {
        return vec![];
    }
    let lo = min.log10().floor() as i32;
    let hi = max.log10().ceil() as i32;
    (lo..=hi)
        .map(|e| 10f64.powi(e))
        .filter(|&v| v >= min / 1.001 && v <= max * 1.001)
        .collect()
}

/// Compact tick label: `1.5M`, `100K`, `3`, `0.25`.
pub fn format_tick(v: f64) -> String {
    let a = v.abs();
    if a >= 1e9 {
        trim(format!("{:.2}", v / 1e9)) + "B"
    } else if a >= 1e6 {
        trim(format!("{:.2}", v / 1e6)) + "M"
    } else if a >= 1e4 {
        trim(format!("{:.1}", v / 1e3)) + "K"
    } else if a >= 1.0 || a == 0.0 {
        trim(format!("{v:.1}"))
    } else {
        format!("{v:.3}")
            .trim_end_matches('0')
            .trim_end_matches('.')
            .to_owned()
    }
}

fn trim(s: String) -> String {
    if s.contains('.') {
        s.trim_end_matches('0').trim_end_matches('.').to_owned()
    } else {
        s
    }
}

/// XML-escape text content.
pub fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

struct ScaleMap {
    scale: Scale,
    min: f64,
    max: f64,
    pix_lo: f64,
    pix_hi: f64,
}

impl ScaleMap {
    fn new(scale: Scale, min: f64, max: f64, pix_lo: f64, pix_hi: f64) -> Self {
        let (min, max) = match scale {
            Scale::Linear => {
                if (max - min).abs() < f64::EPSILON {
                    (min - 1.0, max + 1.0)
                } else {
                    (min, max)
                }
            }
            Scale::Log10 => {
                let min = min.max(1e-9);
                let max = if max <= min { min * 10.0 } else { max };
                (min, max)
            }
        };
        ScaleMap {
            scale,
            min,
            max,
            pix_lo,
            pix_hi,
        }
    }

    fn map(&self, v: f64) -> f64 {
        let t = match self.scale {
            Scale::Linear => (v - self.min) / (self.max - self.min),
            Scale::Log10 => {
                let v = v.max(self.min);
                (v.log10() - self.min.log10()) / (self.max.log10() - self.min.log10())
            }
        };
        self.pix_lo + t.clamp(0.0, 1.0) * (self.pix_hi - self.pix_lo)
    }

    fn ticks(&self) -> Vec<f64> {
        match self.scale {
            Scale::Linear => nice_ticks(self.min, self.max, 6),
            Scale::Log10 => log_ticks(self.min, self.max),
        }
    }
}

fn data_extent(series: &[Series], get: impl Fn(&Series) -> &[f64], log: bool) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for s in series {
        for &v in get(s) {
            if !v.is_finite() || (log && v <= 0.0) {
                continue;
            }
            min = min.min(v);
            max = max.max(v);
        }
    }
    if min > max {
        (0.0, 1.0)
    } else {
        (min, max)
    }
}

/// Grid-based downsampling: keep one representative per cell plus the cell's
/// multiplicity (encoded as marker opacity), preserving visual density.
fn downsample(xs: &[f64], ys: &[f64], keep: usize) -> Vec<usize> {
    if xs.len() <= keep {
        // Still drop non-finite points: they have no pixel position.
        return (0..xs.len())
            .filter(|&i| xs[i].is_finite() && ys[i].is_finite())
            .collect();
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for (&x, &y) in xs.iter().zip(ys) {
        if x.is_finite() && y.is_finite() {
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
    }
    let cells = (keep as f64).sqrt().ceil() as usize * 2;
    let mut seen = std::collections::HashSet::with_capacity(keep * 2);
    let mut out = Vec::with_capacity(keep * 2);
    for i in 0..xs.len() {
        let (x, y) = (xs[i], ys[i]);
        if !x.is_finite() || !y.is_finite() {
            continue;
        }
        let cx = (((x - xmin) / (xmax - xmin).max(1e-12)) * cells as f64) as usize;
        let cy = (((y - ymin) / (ymax - ymin).max(1e-12)) * cells as f64) as usize;
        if seen.insert((cx.min(cells), cy.min(cells))) {
            out.push(i);
        }
    }
    out
}

/// Render any chart to an SVG string.
pub fn render(chart: &Chart, geometry: &Geometry) -> String {
    match chart {
        Chart::Scatter(c) => render_scatter(c, geometry),
        Chart::Bar(c) => render_bars(c, geometry),
        Chart::Heatmap(c) => render_heatmap(c, geometry),
    }
}

/// Sequential color ramp for heatmap cells: white → deep blue.
fn heat_color(t: f64) -> String {
    let t = t.clamp(0.0, 1.0);
    // Interpolate white (255,255,255) → Okabe-Ito blue (0,114,178).
    let r = (255.0 + (0.0 - 255.0) * t) as u8;
    let g = (255.0 + (114.0 - 255.0) * t) as u8;
    let b = (255.0 + (178.0 - 255.0) * t) as u8;
    format!("#{r:02x}{g:02x}{b:02x}")
}

fn render_heatmap(c: &HeatmapChart, g: &Geometry) -> String {
    let mut out = String::with_capacity(1 << 14);
    svg_header(&mut out, g, &c.title);
    let rows = c.y_labels.len().max(1);
    let cols = c.x_labels.len().max(1);
    let x0 = g.margin_left;
    let y0 = g.margin_top;
    let cw = g.plot_width() / cols as f64;
    let ch = g.plot_height() / rows as f64;

    let finite: Vec<f64> = c.values.iter().copied().filter(|v| v.is_finite()).collect();
    let vmin = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let vmax = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let norm = |v: f64| -> f64 {
        if !v.is_finite() || vmax <= vmin {
            0.0
        } else {
            (v - vmin) / (vmax - vmin)
        }
    };

    for r in 0..rows {
        for col in 0..cols {
            let v = c.value(r, col);
            let fill = if v.is_finite() {
                heat_color(norm(v))
            } else {
                "#f2f2f2".to_owned()
            };
            let label = if v.is_finite() {
                format!(
                    "{}[{}, {}] = {}",
                    c.value_label,
                    c.y_labels[r],
                    c.x_labels[col],
                    format_tick(v)
                )
            } else {
                "no data".to_owned()
            };
            let _ = write!(
                out,
                r#"<rect x="{x:.1}" y="{y:.1}" width="{w:.1}" height="{h:.1}" fill="{fill}" stroke="white" stroke-width="0.5"><title>{t}</title></rect>"#,
                x = x0 + cw * col as f64,
                y = y0 + ch * r as f64,
                w = cw,
                h = ch,
                t = escape(&label)
            );
        }
        let _ = write!(
            out,
            r#"<text x="{tx:.1}" y="{ty:.1}" text-anchor="end" font-size="10" fill="{INK}">{t}</text>"#,
            tx = x0 - 6.0,
            ty = y0 + ch * (r as f64 + 0.5) + 3.0,
            t = escape(&c.y_labels[r])
        );
    }
    // Column labels: thin to at most 24 to stay readable.
    let stride = (cols / 24).max(1);
    for (col, label) in c.x_labels.iter().enumerate().step_by(stride) {
        let _ = write!(
            out,
            r#"<text x="{tx:.1}" y="{ty:.1}" text-anchor="middle" font-size="10" fill="{INK}">{t}</text>"#,
            tx = x0 + cw * (col as f64 + 0.5),
            ty = g.height - g.margin_bottom + 14.0,
            t = escape(label)
        );
    }
    // Color ramp legend.
    let lx = g.width - g.margin_right + 20.0;
    for i in 0..20 {
        let _ = write!(
            out,
            r#"<rect x="{lx}" y="{y:.1}" width="14" height="8" fill="{c}"/>"#,
            y = g.margin_top + (19 - i) as f64 * 8.0,
            c = heat_color(i as f64 / 19.0)
        );
    }
    if vmax > vmin {
        let _ = write!(
            out,
            r#"<text x="{tx}" y="{ty}" font-size="10" fill="{INK}">{hi}</text><text x="{tx}" y="{by}" font-size="10" fill="{INK}">{lo}</text>"#,
            tx = lx + 18.0,
            ty = g.margin_top + 8.0,
            by = g.margin_top + 164.0,
            hi = format_tick(vmax),
            lo = format_tick(vmin)
        );
    }
    let _ = write!(
        out,
        r#"<text x="{cx}" y="{by}" text-anchor="middle" font-size="13" fill="{INK}">{xl}</text>"#,
        cx = (x0 + g.width - g.margin_right) / 2.0,
        by = g.height - 12.0,
        xl = escape(&c.x_axis_label)
    );
    let _ = write!(
        out,
        r#"<text x="18" y="{cy}" text-anchor="middle" font-size="13" fill="{INK}" transform="rotate(-90 18 {cy})">{yl}</text>"#,
        cy = (y0 + g.height - g.margin_bottom) / 2.0,
        yl = escape(&c.y_axis_label)
    );
    out.push_str("</svg>");
    out
}

fn svg_header(out: &mut String, g: &Geometry, title: &str) {
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="Helvetica,Arial,sans-serif">"#,
        w = g.width,
        h = g.height
    );
    let _ = write!(
        out,
        r#"<rect width="{w}" height="{h}" fill="white"/><text x="{cx}" y="26" text-anchor="middle" font-size="16" fill="{INK}">{t}</text>"#,
        w = g.width,
        h = g.height,
        cx = g.width / 2.0,
        t = escape(title)
    );
}

fn axes_frame(out: &mut String, g: &Geometry, xm: &ScaleMap, ym: &ScaleMap, xl: &str, yl: &str) {
    let (x0, x1) = (g.margin_left, g.width - g.margin_right);
    let (y0, y1) = (g.margin_top, g.height - g.margin_bottom);
    let _ = write!(
        out,
        r#"<rect x="{x0}" y="{y0}" width="{pw}" height="{ph}" fill="none" stroke="{INK}"/>"#,
        pw = g.plot_width(),
        ph = g.plot_height()
    );
    for t in xm.ticks() {
        let px = xm.map(t);
        let _ = write!(
            out,
            r#"<line x1="{px}" y1="{y0}" x2="{px}" y2="{y1}" stroke="{GRID}"/><text x="{px}" y="{ty}" text-anchor="middle" font-size="11" fill="{INK}">{label}</text>"#,
            ty = y1 + 18.0,
            label = format_tick(t)
        );
    }
    for t in ym.ticks() {
        let py = ym.map(t);
        let _ = write!(
            out,
            r#"<line x1="{x0}" y1="{py}" x2="{x1}" y2="{py}" stroke="{GRID}"/><text x="{tx}" y="{typ}" text-anchor="end" font-size="11" fill="{INK}">{label}</text>"#,
            tx = x0 - 6.0,
            typ = py + 4.0,
            label = format_tick(t)
        );
    }
    let _ = write!(
        out,
        r#"<text x="{cx}" y="{by}" text-anchor="middle" font-size="13" fill="{INK}">{xl}</text>"#,
        cx = (x0 + x1) / 2.0,
        by = g.height - 12.0,
        xl = escape(xl)
    );
    let _ = write!(
        out,
        r#"<text x="18" y="{cy}" text-anchor="middle" font-size="13" fill="{INK}" transform="rotate(-90 18 {cy})">{yl}</text>"#,
        cy = (y0 + y1) / 2.0,
        yl = escape(yl)
    );
}

fn marker_svg(out: &mut String, shape: MarkerShape, x: f64, y: f64, color: &str, title: &str) {
    match shape {
        MarkerShape::Dot => {
            let _ = write!(
                out,
                r#"<circle cx="{x:.1}" cy="{y:.1}" r="2.2" fill="{color}" fill-opacity="0.55">"#
            );
        }
        MarkerShape::Plus => {
            let _ = write!(
                out,
                r#"<path d="M{x0:.1} {y:.1}H{x1:.1}M{x:.1} {y0:.1}V{y1:.1}" stroke="{color}" stroke-width="1.3" stroke-opacity="0.8">"#,
                x0 = x - 3.0,
                x1 = x + 3.0,
                y0 = y - 3.0,
                y1 = y + 3.0
            );
        }
        MarkerShape::Square => {
            let _ = write!(
                out,
                r#"<rect x="{:.1}" y="{:.1}" width="4" height="4" fill="{color}" fill-opacity="0.6">"#,
                x - 2.0,
                y - 2.0
            );
        }
    }
    if !title.is_empty() {
        let _ = write!(out, "<title>{}</title>", escape(title));
    }
    out.push_str(match shape {
        MarkerShape::Dot => "</circle>",
        MarkerShape::Plus => "</path>",
        MarkerShape::Square => "</rect>",
    });
}

fn legend(out: &mut String, g: &Geometry, entries: &[(String, String)]) {
    let lx = g.width - g.margin_right + 14.0;
    for (i, (name, color)) in entries.iter().enumerate() {
        let ly = g.margin_top + 14.0 + i as f64 * 18.0;
        let _ = write!(
            out,
            r#"<rect x="{lx}" y="{ry}" width="10" height="10" fill="{color}" class="legend" data-series="{i}"/><text x="{tx}" y="{ty}" font-size="12" fill="{INK}">{name}</text>"#,
            ry = ly - 9.0,
            tx = lx + 15.0,
            ty = ly,
            name = escape(name)
        );
    }
}

fn render_scatter(c: &ScatterChart, g: &Geometry) -> String {
    let mut out = String::with_capacity(1 << 16);
    svg_header(&mut out, g, &c.title);
    let log_x = c.x_axis.scale == Scale::Log10;
    let log_y = c.y_axis.scale == Scale::Log10;
    let (xmin, xmax) = data_extent(&c.series, |s| &s.x, log_x);
    let (ymin, ymax) = data_extent(&c.series, |s| &s.y, log_y);
    let xm = ScaleMap::new(
        c.x_axis.scale,
        xmin,
        xmax,
        g.margin_left,
        g.width - g.margin_right,
    );
    let ym = ScaleMap::new(
        c.y_axis.scale,
        ymin,
        ymax,
        g.height - g.margin_bottom,
        g.margin_top,
    );
    axes_frame(&mut out, g, &xm, &ym, &c.x_axis.label, &c.y_axis.label);

    if c.diagonal {
        let lo = xm.min.max(ym.min);
        let hi = xm.max.min(ym.max);
        if hi > lo {
            let _ = write!(
                out,
                r##"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#888" stroke-dasharray="5 4"/>"##,
                xm.map(lo),
                ym.map(lo),
                xm.map(hi),
                ym.map(hi)
            );
        }
    }

    let mut entries = Vec::new();
    for (si, s) in c.series.iter().enumerate() {
        let color = s
            .color
            .clone()
            .unwrap_or_else(|| state_or_categorical(&s.name, si));
        entries.push((s.name.clone(), color.clone()));
        let _ = write!(out, r#"<g class="series" data-series="{si}">"#);
        if s.line {
            let mut d = String::new();
            for (i, (&x, &y)) in s.x.iter().zip(&s.y).enumerate() {
                if !x.is_finite() || !y.is_finite() {
                    continue;
                }
                let _ = write!(
                    d,
                    "{}{:.1} {:.1}",
                    if i == 0 { "M" } else { "L" },
                    xm.map(x),
                    ym.map(y)
                );
            }
            let _ = write!(
                out,
                r#"<path d="{d}" fill="none" stroke="{color}" stroke-width="1.6"/>"#
            );
        } else {
            let idx = downsample(&s.x, &s.y, MAX_POINTS_PER_SERIES);
            for i in idx {
                marker_svg(
                    &mut out,
                    s.marker,
                    xm.map(s.x[i]),
                    ym.map(s.y[i]),
                    &color,
                    "",
                );
            }
        }
        out.push_str("</g>");
    }
    legend(&mut out, g, &entries);
    out.push_str("</svg>");
    out
}

fn state_or_categorical(name: &str, i: usize) -> String {
    let c = state_color(name);
    if c != "#999999" {
        c.to_owned()
    } else {
        categorical(i).to_owned()
    }
}

fn render_bars(c: &BarChart, g: &Geometry) -> String {
    let mut out = String::with_capacity(1 << 14);
    svg_header(&mut out, g, &c.title);
    let n = c.categories.len().max(1);
    let totals = c.category_totals();
    let ymax = match c.mode {
        BarMode::Stacked => totals.iter().copied().fold(0.0f64, f64::max),
        BarMode::Grouped => c
            .stacks
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(0.0f64, f64::max),
    }
    .max(1.0);
    let ym = ScaleMap::new(
        c.y_scale,
        if c.y_scale == Scale::Log10 { 1.0 } else { 0.0 },
        ymax,
        g.height - g.margin_bottom,
        g.margin_top,
    );
    // Frame + y ticks only (categorical x).
    let x0 = g.margin_left;
    let x1 = g.width - g.margin_right;
    let y1 = g.height - g.margin_bottom;
    let _ = write!(
        out,
        r#"<rect x="{x0}" y="{y0}" width="{pw}" height="{ph}" fill="none" stroke="{INK}"/>"#,
        y0 = g.margin_top,
        pw = g.plot_width(),
        ph = g.plot_height()
    );
    for t in ym.ticks() {
        let py = ym.map(t);
        let _ = write!(
            out,
            r#"<line x1="{x0}" y1="{py}" x2="{x1}" y2="{py}" stroke="{GRID}"/><text x="{tx}" y="{ty}" text-anchor="end" font-size="11" fill="{INK}">{label}</text>"#,
            tx = x0 - 6.0,
            ty = py + 4.0,
            label = format_tick(t)
        );
    }
    let _ = write!(
        out,
        r#"<text x="18" y="{cy}" text-anchor="middle" font-size="13" fill="{INK}" transform="rotate(-90 18 {cy})">{yl}</text>"#,
        cy = (g.margin_top + y1) / 2.0,
        yl = escape(&c.y_label)
    );

    let band = g.plot_width() / n as f64;
    let show_labels = n <= 40;
    let mut entries = Vec::new();
    for (si, (name, values)) in c.stacks.iter().enumerate() {
        let color = state_or_categorical(name, si);
        entries.push((name.clone(), color.clone()));
        let _ = write!(out, r#"<g class="series" data-series="{si}">"#);
        for (ci, &v) in values.iter().enumerate() {
            if v <= 0.0 {
                continue;
            }
            let (bx, bw, base) = match c.mode {
                BarMode::Grouped => {
                    let sub = band * 0.8 / c.stacks.len() as f64;
                    (
                        x0 + band * ci as f64 + band * 0.1 + sub * si as f64,
                        sub,
                        0.0,
                    )
                }
                BarMode::Stacked => {
                    let below: f64 = c.stacks[..si].iter().map(|(_, vs)| vs[ci]).sum();
                    (x0 + band * ci as f64 + band * 0.1, band * 0.8, below)
                }
            };
            let y_top = ym.map(base + v);
            let y_base = ym.map(if c.y_scale == Scale::Log10 && base == 0.0 {
                1.0
            } else {
                base
            });
            let _ = write!(
                out,
                r#"<rect x="{bx:.1}" y="{y_top:.1}" width="{bw:.1}" height="{bh:.1}" fill="{color}"><title>{t}</title></rect>"#,
                bh = (y_base - y_top).max(0.0),
                t = escape(&format!("{}[{}] = {}", name, c.categories[ci], v))
            );
        }
        out.push_str("</g>");
    }
    if show_labels {
        for (ci, cat) in c.categories.iter().enumerate() {
            let cx = x0 + band * (ci as f64 + 0.5);
            let _ = write!(
                out,
                r#"<text x="{cx:.1}" y="{ty}" text-anchor="middle" font-size="10" fill="{INK}">{t}</text>"#,
                ty = y1 + 16.0,
                t = escape(cat)
            );
        }
    }
    legend(&mut out, g, &entries);
    out.push_str("</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Axis;

    #[test]
    fn nice_ticks_cover_range() {
        let ticks = nice_ticks(0.0, 100.0, 5);
        assert!(ticks.contains(&0.0));
        assert!(ticks.contains(&100.0));
        assert!(ticks.len() >= 4 && ticks.len() <= 8);
        assert!(nice_ticks(3.0, 3.0, 5).len() == 1);
    }

    #[test]
    fn log_ticks_are_powers_of_ten() {
        let ticks = log_ticks(5.0, 50_000.0);
        assert_eq!(ticks, vec![10.0, 100.0, 1000.0, 10_000.0]);
        assert!(log_ticks(-1.0, 10.0).is_empty());
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(format_tick(1_500_000.0), "1.5M");
        assert_eq!(format_tick(100_000.0), "100K");
        assert_eq!(format_tick(42.0), "42");
        assert_eq!(format_tick(0.25), "0.25");
        assert_eq!(format_tick(0.0), "0");
    }

    #[test]
    fn scatter_svg_is_well_formed() {
        let c = Chart::Scatter(
            ScatterChart::new("Nodes vs elapsed", Axis::log("elapsed"), Axis::log("nodes"))
                .with_series(Series::scatter(
                    "jobs",
                    vec![10.0, 100.0, 1000.0],
                    vec![1.0, 8.0, 512.0],
                )),
        );
        let svg = render(&c, &Geometry::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("Nodes vs elapsed"));
        assert!(svg.contains("circle"));
        assert_eq!(svg.matches("<svg").count(), 1);
    }

    #[test]
    fn plus_markers_render_paths() {
        let c = Chart::Scatter(
            ScatterChart::new("bf", Axis::linear("x"), Axis::linear("y")).with_series(
                Series::scatter("backfilled", vec![1.0], vec![2.0]).with_marker(MarkerShape::Plus),
            ),
        );
        let svg = render(&c, &Geometry::default());
        assert!(svg.contains("<path"));
    }

    #[test]
    fn diagonal_guide_renders() {
        let c = Chart::Scatter(
            ScatterChart::new("req vs act", Axis::linear("x"), Axis::linear("y"))
                .with_series(Series::scatter("j", vec![1.0, 10.0], vec![2.0, 8.0]))
                .with_diagonal(),
        );
        assert!(render(&c, &Geometry::default()).contains("stroke-dasharray"));
    }

    #[test]
    fn stacked_bars_render_rects_with_titles() {
        let c = Chart::Bar(
            BarChart::new(
                "states per user",
                vec!["u1".into(), "u2".into()],
                "jobs",
                BarMode::Stacked,
            )
            .with_stack("COMPLETED", vec![10.0, 4.0])
            .with_stack("FAILED", vec![2.0, 6.0]),
        );
        let svg = render(&c, &Geometry::default());
        assert!(svg.matches("<rect").count() >= 5); // bg + frame + 4 bars
        assert!(svg.contains("COMPLETED[u1] = 10"));
        // State colors applied.
        assert!(svg.contains("#009E73"));
        assert!(svg.contains("#D55E00"));
    }

    #[test]
    fn grouped_bars_do_not_overlap() {
        let c = Chart::Bar(
            BarChart::new("fig1", vec!["2021".into()], "count", BarMode::Grouped)
                .with_stack("jobs", vec![10.0])
                .with_stack("steps", vec![100.0]),
        );
        let svg = render(&c, &Geometry::default());
        assert!(svg.contains("jobs[2021] = 10"));
        assert!(svg.contains("steps[2021] = 100"));
    }

    #[test]
    fn downsampling_caps_marker_count() {
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|i| (i % 1000) as f64).collect();
        let ys: Vec<f64> = (0..n).map(|i| (i / 1000) as f64).collect();
        let c = Chart::Scatter(
            ScatterChart::new("big", Axis::linear("x"), Axis::linear("y"))
                .with_series(Series::scatter("pts", xs, ys)),
        );
        let svg = render(&c, &Geometry::default());
        let markers = svg.matches("<circle").count();
        assert!(markers <= MAX_POINTS_PER_SERIES * 2, "markers={markers}");
        assert!(markers > 1000);
    }

    #[test]
    fn heatmap_renders_cells_and_legend() {
        let mut h = HeatmapChart::new(
            "queue dynamics",
            (0..24).map(|i| i.to_string()).collect(),
            ["Mon", "Tue", "Wed"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            (0..72).map(|i| i as f64).collect(),
        );
        h.value_label = "mean wait (s)".into();
        let svg = render(&Chart::Heatmap(h), &Geometry::default());
        assert!(svg.matches("<rect").count() > 72, "cells + legend + bg");
        assert!(svg.contains("mean wait (s)[Tue, 5]"));
        assert!(svg.contains("queue dynamics"));
        assert!(svg.ends_with("</svg>"));
    }

    #[test]
    fn heatmap_handles_nan_cells() {
        let h = HeatmapChart::new(
            "sparse",
            vec!["a".into(), "b".into()],
            vec!["r".into()],
            vec![f64::NAN, 2.0],
        );
        let svg = render(&Chart::Heatmap(h), &Geometry::default());
        assert!(svg.contains("no data"));
    }

    #[test]
    fn heat_ramp_endpoints() {
        assert_eq!(heat_color(0.0), "#ffffff");
        assert_eq!(heat_color(1.0), "#0072b2");
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
    }

    #[test]
    fn empty_series_render_without_panic() {
        let c = Chart::Scatter(ScatterChart::new(
            "empty",
            Axis::linear("x"),
            Axis::log("y"),
        ));
        let svg = render(&c, &Geometry::default());
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn line_series_renders_polyline_path() {
        let c = Chart::Scatter(
            ScatterChart::new("ts", Axis::linear("t"), Axis::linear("v")).with_series(
                Series::line("load", vec![0.0, 1.0, 2.0], vec![5.0, 3.0, 8.0]),
            ),
        );
        let svg = render(&c, &Geometry::default());
        assert!(svg.contains(r#"fill="none" stroke="#));
    }
}
