//! Self-contained interactive HTML wrapping of rendered charts.
//!
//! The paper's field-specific stages emit "interactive HTML charts that
//! support zooming and filtering". This wrapper embeds the SVG with a small
//! inline script providing series toggling (click legend entries), hover
//! tooltips (native SVG `<title>`), and wheel zoom — no external assets, so
//! the files work over `file://` like Plotly's offline mode.

use crate::spec::Chart;
use crate::svg::{render, Geometry};

/// Inline script: legend toggling + wheel zoom over the SVG viewBox.
const SCRIPT: &str = r#"
(function () {
  const svg = document.querySelector('svg');
  if (!svg) return;
  // Legend click toggles the matching series group.
  document.querySelectorAll('.legend').forEach(function (sw) {
    sw.style.cursor = 'pointer';
    sw.addEventListener('click', function () {
      const g = svg.querySelector('.series[data-series="' + sw.dataset.series + '"]');
      if (!g) return;
      const off = g.style.display === 'none';
      g.style.display = off ? '' : 'none';
      sw.style.opacity = off ? 1.0 : 0.25;
    });
  });
  // Wheel zoom about the cursor; double-click resets.
  const original = svg.getAttribute('viewBox');
  svg.addEventListener('wheel', function (ev) {
    ev.preventDefault();
    const vb = svg.viewBox.baseVal;
    const k = ev.deltaY < 0 ? 0.85 : 1.18;
    const pt = svg.createSVGPoint();
    pt.x = ev.clientX; pt.y = ev.clientY;
    const p = pt.matrixTransform(svg.getScreenCTM().inverse());
    vb.x = p.x - (p.x - vb.x) * k;
    vb.y = p.y - (p.y - vb.y) * k;
    vb.width *= k; vb.height *= k;
  }, { passive: false });
  svg.addEventListener('dblclick', function () {
    svg.setAttribute('viewBox', original);
  });
})();
"#;

/// Render a chart into a standalone HTML page.
pub fn to_html(chart: &Chart, geometry: &Geometry) -> String {
    let svg = render(chart, geometry);
    format!(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
         <title>{title}</title>\
         <style>body{{margin:20px;font-family:Helvetica,Arial,sans-serif;background:#fafafa}}\
         .wrap{{background:white;border:1px solid #e0e0e0;display:inline-block;padding:8px}}</style>\
         </head><body><div class=\"wrap\">{svg}</div>\
         <script>{script}</script></body></html>\n",
        title = crate::svg::escape(chart.title()),
        svg = svg,
        script = SCRIPT
    )
}

/// Write a chart to an HTML file, creating parent directories. The write
/// goes through the durable store's atomic protocol, and the checksum
/// footer rides along as an HTML comment — invisible in the rendered page.
pub fn write_html(
    chart: &Chart,
    geometry: &Geometry,
    path: &std::path::Path,
) -> std::io::Result<()> {
    schedflow_dataflow::store::ambient().write_atomic(path, to_html(chart, geometry).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Axis, ScatterChart, Series};

    fn chart() -> Chart {
        Chart::Scatter(
            ScatterChart::new("Wait times", Axis::linear("t"), Axis::log("wait")).with_series(
                Series::scatter("COMPLETED", vec![1.0, 2.0], vec![10.0, 100.0]),
            ),
        )
    }

    #[test]
    fn html_is_standalone() {
        let html = to_html(&chart(), &Geometry::default());
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"));
        assert!(html.contains("<script>"));
        // No external asset references (the xmlns URI is a namespace, not a
        // fetch): nothing is sourced or linked.
        assert!(!html.contains("src="), "no external scripts/images");
        assert!(!html.contains("href="), "no external stylesheets/links");
    }

    #[test]
    fn title_is_escaped() {
        let c = Chart::Scatter(ScatterChart::new(
            "a<b> & \"q\"",
            Axis::linear("x"),
            Axis::linear("y"),
        ));
        let html = to_html(&c, &Geometry::default());
        assert!(html.contains("<title>a&lt;b&gt; &amp; &quot;q&quot;</title>"));
    }

    #[test]
    fn write_html_creates_directories() {
        let dir = std::env::temp_dir().join(format!("schedflow-html-{}", std::process::id()));
        let path = dir.join("sub/chart.html");
        write_html(&chart(), &Geometry::default(), &path).unwrap();
        assert!(path.exists());
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("Wait times"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
