//! Chart specifications: the declarative model the analytics stages emit and
//! the renderers/digesters consume.

use serde::{Deserialize, Serialize};

/// Point marker shape. The paper's Figure 6/9 distinguish backfilled jobs
/// with `+` markers from regular jobs drawn as dots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MarkerShape {
    Dot,
    Plus,
    Square,
}

/// Axis scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    Linear,
    /// Base-10 logarithmic; values must be positive.
    Log10,
}

/// One axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Axis {
    pub label: String,
    pub scale: Scale,
}

impl Axis {
    pub fn linear(label: &str) -> Self {
        Axis {
            label: label.to_owned(),
            scale: Scale::Linear,
        }
    }

    pub fn log(label: &str) -> Self {
        Axis {
            label: label.to_owned(),
            scale: Scale::Log10,
        }
    }
}

/// A named point series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    pub name: String,
    pub x: Vec<f64>,
    pub y: Vec<f64>,
    /// CSS color; assigned from the palette when `None`.
    pub color: Option<String>,
    pub marker: MarkerShape,
    /// Connect points with a line (time series) instead of scatter.
    pub line: bool,
}

impl Series {
    pub fn scatter(name: &str, x: Vec<f64>, y: Vec<f64>) -> Self {
        assert_eq!(x.len(), y.len(), "series {name}: x/y length mismatch");
        Series {
            name: name.to_owned(),
            x,
            y,
            color: None,
            marker: MarkerShape::Dot,
            line: false,
        }
    }

    pub fn line(name: &str, x: Vec<f64>, y: Vec<f64>) -> Self {
        let mut s = Self::scatter(name, x, y);
        s.line = true;
        s
    }

    pub fn with_marker(mut self, marker: MarkerShape) -> Self {
        self.marker = marker;
        self
    }

    pub fn with_color(mut self, color: &str) -> Self {
        self.color = Some(color.to_owned());
        self
    }

    pub fn len(&self) -> usize {
        self.x.len()
    }

    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// A scatter/line chart (Figures 3, 4, 6, 7, 9).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScatterChart {
    pub title: String,
    pub x_axis: Axis,
    pub y_axis: Axis,
    pub series: Vec<Series>,
    /// Draw the y = x guide line (requested vs actual walltime charts).
    pub diagonal: bool,
}

impl ScatterChart {
    pub fn new(title: &str, x_axis: Axis, y_axis: Axis) -> Self {
        ScatterChart {
            title: title.to_owned(),
            x_axis,
            y_axis,
            series: Vec::new(),
            diagonal: false,
        }
    }

    pub fn with_series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    pub fn with_diagonal(mut self) -> Self {
        self.diagonal = true;
        self
    }

    pub fn total_points(&self) -> usize {
        self.series.iter().map(Series::len).sum()
    }
}

/// How multiple stacks relate in a bar chart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BarMode {
    /// Sub-bars side by side per category (Figure 1: jobs vs steps per year).
    Grouped,
    /// Sub-bars stacked per category (Figures 5/8: states per user).
    Stacked,
}

/// A bar chart over labeled categories.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BarChart {
    pub title: String,
    /// Category labels along x (years, user names).
    pub categories: Vec<String>,
    /// `(stack name, per-category values)`; each value vec matches
    /// `categories` in length.
    pub stacks: Vec<(String, Vec<f64>)>,
    pub y_label: String,
    pub mode: BarMode,
    pub y_scale: Scale,
}

impl BarChart {
    pub fn new(title: &str, categories: Vec<String>, y_label: &str, mode: BarMode) -> Self {
        BarChart {
            title: title.to_owned(),
            categories,
            stacks: Vec::new(),
            y_label: y_label.to_owned(),
            mode,
            y_scale: Scale::Linear,
        }
    }

    pub fn with_stack(mut self, name: &str, values: Vec<f64>) -> Self {
        assert_eq!(
            values.len(),
            self.categories.len(),
            "stack {name}: length mismatch"
        );
        self.stacks.push((name.to_owned(), values));
        self
    }

    /// Total per category across stacks.
    pub fn category_totals(&self) -> Vec<f64> {
        let mut totals = vec![0.0; self.categories.len()];
        for (_, values) in &self.stacks {
            for (t, v) in totals.iter_mut().zip(values) {
                *t += v;
            }
        }
        totals
    }
}

/// A heatmap over two categorical axes (queue-dynamics views: submissions
/// or waits by hour-of-day × day-of-week).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeatmapChart {
    pub title: String,
    /// Column labels (x), e.g. hours.
    pub x_labels: Vec<String>,
    /// Row labels (y), e.g. weekdays.
    pub y_labels: Vec<String>,
    /// Row-major `y_labels.len() × x_labels.len()` cell values; NaN = no data.
    pub values: Vec<f64>,
    pub x_axis_label: String,
    pub y_axis_label: String,
    /// Legend label for the cell value ("mean wait (s)").
    pub value_label: String,
}

impl HeatmapChart {
    pub fn new(
        title: &str,
        x_labels: Vec<String>,
        y_labels: Vec<String>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(
            values.len(),
            x_labels.len() * y_labels.len(),
            "heatmap {title}: values must be rows × cols"
        );
        HeatmapChart {
            title: title.to_owned(),
            x_labels,
            y_labels,
            values,
            x_axis_label: String::new(),
            y_axis_label: String::new(),
            value_label: String::new(),
        }
    }

    pub fn value(&self, row: usize, col: usize) -> f64 {
        self.values[row * self.x_labels.len() + col]
    }

    /// `(row, col, value)` of the largest finite cell, if any.
    pub fn peak(&self) -> Option<(usize, usize, f64)> {
        let mut best: Option<(usize, usize, f64)> = None;
        for r in 0..self.y_labels.len() {
            for c in 0..self.x_labels.len() {
                let v = self.value(r, c);
                if v.is_finite() && best.map_or(true, |(_, _, b)| v > b) {
                    best = Some((r, c, v));
                }
            }
        }
        best
    }
}

/// Any chart the workflow produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Chart {
    Scatter(ScatterChart),
    Bar(BarChart),
    Heatmap(HeatmapChart),
}

impl Chart {
    pub fn title(&self) -> &str {
        match self {
            Chart::Scatter(c) => &c.title,
            Chart::Bar(c) => &c.title,
            Chart::Heatmap(c) => &c.title,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_builder() {
        let c = ScatterChart::new("t", Axis::linear("x"), Axis::log("y"))
            .with_series(Series::scatter("a", vec![1.0, 2.0], vec![3.0, 4.0]))
            .with_series(Series::scatter("b", vec![1.0], vec![1.0]).with_marker(MarkerShape::Plus))
            .with_diagonal();
        assert_eq!(c.total_points(), 3);
        assert!(c.diagonal);
        assert_eq!(c.y_axis.scale, Scale::Log10);
        assert_eq!(c.series[1].marker, MarkerShape::Plus);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_panics() {
        Series::scatter("bad", vec![1.0], vec![1.0, 2.0]);
    }

    #[test]
    fn bar_totals() {
        let c = BarChart::new(
            "states",
            vec!["u1".into(), "u2".into()],
            "jobs",
            BarMode::Stacked,
        )
        .with_stack("COMPLETED", vec![10.0, 5.0])
        .with_stack("FAILED", vec![2.0, 1.0]);
        assert_eq!(c.category_totals(), vec![12.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_stack_panics() {
        BarChart::new("t", vec!["a".into()], "y", BarMode::Grouped).with_stack("s", vec![1.0, 2.0]);
    }

    #[test]
    fn chart_title_dispatch() {
        let c = Chart::Bar(BarChart::new("bars", vec![], "y", BarMode::Grouped));
        assert_eq!(c.title(), "bars");
    }

    #[test]
    fn heatmap_shape_and_peak() {
        let h = HeatmapChart::new(
            "waits",
            vec!["0".into(), "1".into(), "2".into()],
            vec!["Mon".into(), "Tue".into()],
            vec![1.0, 5.0, 2.0, f64::NAN, 0.5, 3.0],
        );
        assert_eq!(h.value(0, 1), 5.0);
        assert_eq!(h.value(1, 2), 3.0);
        assert_eq!(h.peak(), Some((0, 1, 5.0)));
    }

    #[test]
    #[should_panic(expected = "rows × cols")]
    fn heatmap_rejects_bad_shape() {
        HeatmapChart::new("h", vec!["a".into()], vec!["b".into()], vec![1.0, 2.0]);
    }

    #[test]
    fn serde_round_trip() {
        let c =
            Chart::Scatter(
                ScatterChart::new("t", Axis::linear("x"), Axis::linear("y"))
                    .with_series(Series::line("l", vec![0.0], vec![1.0])),
            );
        let json = serde_json::to_string(&c).unwrap();
        let back: Chart = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
