//! # schedflow-charts
//!
//! The visualization substrate (the Plotly stand-in): declarative chart
//! specs ([`spec`]), a colorblind-safe palette with fixed job-state colors
//! ([`color`]), static SVG rendering with density-preserving downsampling
//! ([`svg`]), self-contained interactive HTML output ([`html`]), and
//! [`digest::ChartDigest`] — the compact structured summary that replaces
//! the paper's HTML→PNG→vision-LLM hop with a lossless equivalent.

pub mod color;
pub mod digest;
pub mod html;
pub mod spec;
pub mod svg;

pub use digest::{digest, ChartDigest, DensityGrid, DimStats, SeriesDigest, StackDigest};
pub use html::{to_html, write_html};
pub use spec::{
    Axis, BarChart, BarMode, Chart, HeatmapChart, MarkerShape, Scale, ScatterChart, Series,
};
pub use svg::{render, Geometry};
