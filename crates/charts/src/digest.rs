//! Chart digests: the compact structured summary handed to the analyst.
//!
//! The paper converts HTML plots to PNG because "LLM tools … are not
//! well-suited to process large raw datasets directly. Instead, the plots
//! serve as compact visual summaries of the data." A [`ChartDigest`] is that
//! compact visual summary in structured form: axis ranges, per-series
//! statistics, a coarse density grid (what a vision model would "see"), and
//! outlier counts — everything the Insight/Compare prompts need, nothing of
//! the raw data's bulk.

use crate::spec::{BarChart, BarMode, Chart, HeatmapChart, Scale, ScatterChart};
use serde::{Deserialize, Serialize};

/// Descriptive statistics of one dimension of one series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DimStats {
    pub n: usize,
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub max: f64,
    pub mean: f64,
    pub stddev: f64,
}

impl DimStats {
    /// Compute from raw values (non-finite values skipped). `None` if empty.
    pub fn from(values: &[f64]) -> Option<DimStats> {
        let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return None;
        }
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = |p: f64| quantile_sorted(&v, p);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
        Some(DimStats {
            n: v.len(),
            min: v[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: v[v.len() - 1],
            mean,
            stddev: var.sqrt(),
        })
    }
}

fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
}

/// Summary of one scatter series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesDigest {
    pub name: String,
    pub n: usize,
    pub x: Option<DimStats>,
    pub y: Option<DimStats>,
    /// Pearson correlation between x and y.
    pub correlation: Option<f64>,
    /// Fraction of points with y ≥ x (meaningful on requested-vs-actual
    /// charts where the diagonal is the break-even; ties count as on/above
    /// so that `1 - frac` is *strict* overestimation).
    pub frac_above_diagonal: Option<f64>,
    /// Count of Tukey-fence outliers in y.
    pub y_outliers: usize,
}

/// Coarse 2D density of all points (row-major, `rows × cols`), the spatial
/// pattern a vision model would extract from the rendered image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensityGrid {
    pub rows: usize,
    pub cols: usize,
    pub counts: Vec<u64>,
    pub x_min: f64,
    pub x_max: f64,
    pub y_min: f64,
    pub y_max: f64,
}

impl DensityGrid {
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(row, col)` of the densest cell.
    pub fn peak(&self) -> (usize, usize) {
        let i = self
            .counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0);
        (i / self.cols, i % self.cols)
    }
}

/// Summary of one bar-chart stack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackDigest {
    pub name: String,
    pub total: f64,
    /// Category label with the largest value in this stack.
    pub peak_category: String,
    pub peak_value: f64,
}

/// The digest of a whole chart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChartDigest {
    Scatter {
        title: String,
        x_label: String,
        y_label: String,
        x_log: bool,
        y_log: bool,
        /// The chart drew the y = x guide line, i.e. both axes share units
        /// and the diagonal relation is meaningful (requested-vs-actual).
        diagonal: bool,
        series: Vec<SeriesDigest>,
        density: Option<DensityGrid>,
    },
    Bar {
        title: String,
        y_label: String,
        stacked: bool,
        categories: usize,
        stacks: Vec<StackDigest>,
        /// Per-category totals' coefficient of variation (whole-chart
        /// imbalance: Figure 5 vs 8's "variance across users").
        category_cv: Option<f64>,
        /// Top categories by total, `(label, total)`.
        top_categories: Vec<(String, f64)>,
    },
    Heatmap {
        title: String,
        value_label: String,
        rows: usize,
        cols: usize,
        /// Finite-cell statistics.
        cells: Option<DimStats>,
        /// `(row_label, col_label, value)` of the hottest cell.
        peak: Option<(String, String, f64)>,
        /// `(row_label, col_label, value)` of the coolest finite cell.
        trough: Option<(String, String, f64)>,
        /// Per-row means (marginal over columns), paired with row labels.
        row_means: Vec<(String, f64)>,
    },
}

impl ChartDigest {
    pub fn title(&self) -> &str {
        match self {
            ChartDigest::Scatter { title, .. }
            | ChartDigest::Bar { title, .. }
            | ChartDigest::Heatmap { title, .. } => title,
        }
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("digest serializes")
    }

    /// Stable 64-bit content identity of the digest — the workspace-shared
    /// FNV-1a ([`schedflow_dataflow::fnv`]) over the canonical JSON form,
    /// comparable against the determinism verifier's artifact digests.
    pub fn fingerprint(&self) -> u64 {
        schedflow_dataflow::fnv::fnv1a_str(&self.to_json())
    }
}

/// Grid resolution of the density summary.
pub const GRID: usize = 8;

/// Digest any chart.
pub fn digest(chart: &Chart) -> ChartDigest {
    match chart {
        Chart::Scatter(c) => digest_scatter(c),
        Chart::Bar(c) => digest_bar(c),
        Chart::Heatmap(c) => digest_heatmap(c),
    }
}

fn digest_heatmap(c: &HeatmapChart) -> ChartDigest {
    let finite: Vec<f64> = c.values.iter().copied().filter(|v| v.is_finite()).collect();
    let locate = |target: f64| -> Option<(String, String, f64)> {
        for r in 0..c.y_labels.len() {
            for col in 0..c.x_labels.len() {
                if c.value(r, col) == target {
                    return Some((c.y_labels[r].clone(), c.x_labels[col].clone(), target));
                }
            }
        }
        None
    };
    let peak = finite
        .iter()
        .copied()
        .fold(None::<f64>, |m, v| Some(m.map_or(v, |m| m.max(v))))
        .and_then(locate);
    let trough = finite
        .iter()
        .copied()
        .fold(None::<f64>, |m, v| Some(m.map_or(v, |m| m.min(v))))
        .and_then(locate);
    let row_means = c
        .y_labels
        .iter()
        .enumerate()
        .map(|(r, label)| {
            let vals: Vec<f64> = (0..c.x_labels.len())
                .map(|col| c.value(r, col))
                .filter(|v| v.is_finite())
                .collect();
            let mean = if vals.is_empty() {
                f64::NAN
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            };
            (label.clone(), mean)
        })
        .collect();
    ChartDigest::Heatmap {
        title: c.title.clone(),
        value_label: c.value_label.clone(),
        rows: c.y_labels.len(),
        cols: c.x_labels.len(),
        cells: DimStats::from(&finite),
        peak,
        trough,
        row_means,
    }
}

fn digest_scatter(c: &ScatterChart) -> ChartDigest {
    let series: Vec<SeriesDigest> = c
        .series
        .iter()
        .map(|s| {
            let pairs: Vec<(f64, f64)> =
                s.x.iter()
                    .zip(&s.y)
                    .filter(|(x, y)| x.is_finite() && y.is_finite())
                    .map(|(&x, &y)| (x, y))
                    .collect();
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let above = if pairs.is_empty() {
                None
            } else {
                Some(pairs.iter().filter(|(x, y)| y >= x).count() as f64 / pairs.len() as f64)
            };
            SeriesDigest {
                name: s.name.clone(),
                n: pairs.len(),
                x: DimStats::from(&xs),
                y: DimStats::from(&ys),
                correlation: pearson(&xs, &ys),
                frac_above_diagonal: above,
                y_outliers: tukey_outlier_count(&ys),
            }
        })
        .collect();

    // Density over all series combined, in (log-)scaled space to match what
    // the rendered figure shows.
    let log_x = c.x_axis.scale == Scale::Log10;
    let log_y = c.y_axis.scale == Scale::Log10;
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for s in &c.series {
        for (&x, &y) in s.x.iter().zip(&s.y) {
            if !x.is_finite() || !y.is_finite() || (log_x && x <= 0.0) || (log_y && y <= 0.0) {
                continue;
            }
            xs.push(if log_x { x.log10() } else { x });
            ys.push(if log_y { y.log10() } else { y });
        }
    }
    let density = density_grid(&xs, &ys);

    ChartDigest::Scatter {
        title: c.title.clone(),
        x_label: c.x_axis.label.clone(),
        y_label: c.y_axis.label.clone(),
        x_log: log_x,
        y_log: log_y,
        diagonal: c.diagonal,
        series,
        density,
    }
}

fn density_grid(xs: &[f64], ys: &[f64]) -> Option<DensityGrid> {
    if xs.is_empty() {
        return None;
    }
    let x_min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let x_max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let y_min = ys.iter().copied().fold(f64::INFINITY, f64::min);
    let y_max = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut counts = vec![0u64; GRID * GRID];
    for (&x, &y) in xs.iter().zip(ys) {
        let cx = (((x - x_min) / (x_max - x_min).max(1e-12)) * GRID as f64) as usize;
        let cy = (((y - y_min) / (y_max - y_min).max(1e-12)) * GRID as f64) as usize;
        counts[cy.min(GRID - 1) * GRID + cx.min(GRID - 1)] += 1;
    }
    Some(DensityGrid {
        rows: GRID,
        cols: GRID,
        counts,
        x_min,
        x_max,
        y_min,
        y_max,
    })
}

fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let mx = x.iter().sum::<f64>() / x.len() as f64;
    let my = y.iter().sum::<f64>() / y.len() as f64;
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        None
    } else {
        Some(sxy / (sxx.sqrt() * syy.sqrt()))
    }
}

fn tukey_outlier_count(values: &[f64]) -> usize {
    if values.len() < 4 {
        return 0;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q1 = quantile_sorted(&v, 0.25);
    let q3 = quantile_sorted(&v, 0.75);
    let iqr = q3 - q1;
    v.iter()
        .filter(|&&x| x < q1 - 1.5 * iqr || x > q3 + 1.5 * iqr)
        .count()
}

fn digest_bar(c: &BarChart) -> ChartDigest {
    let stacks: Vec<StackDigest> = c
        .stacks
        .iter()
        .map(|(name, values)| {
            let total: f64 = values.iter().sum();
            let (pi, pv) = values
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, &v)| (i, v))
                .unwrap_or((0, 0.0));
            StackDigest {
                name: name.clone(),
                total,
                peak_category: c.categories.get(pi).cloned().unwrap_or_default(),
                peak_value: pv,
            }
        })
        .collect();
    let totals = c.category_totals();
    let category_cv = if totals.len() > 1 {
        let mean = totals.iter().sum::<f64>() / totals.len() as f64;
        if mean > 0.0 {
            let var =
                totals.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / totals.len() as f64;
            Some(var.sqrt() / mean)
        } else {
            None
        }
    } else {
        None
    };
    let mut ranked: Vec<(String, f64)> = c
        .categories
        .iter()
        .cloned()
        .zip(totals.iter().copied())
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    ranked.truncate(5);

    ChartDigest::Bar {
        title: c.title.clone(),
        y_label: c.y_label.clone(),
        stacked: c.mode == BarMode::Stacked,
        categories: c.categories.len(),
        stacks,
        category_cv,
        top_categories: ranked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Axis, BarMode, Series};

    #[test]
    fn dim_stats_basics() {
        let s = DimStats::from(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!(DimStats::from(&[]).is_none());
        assert!(DimStats::from(&[f64::NAN]).is_none());
    }

    fn scatter() -> Chart {
        Chart::Scatter(
            ScatterChart::new(
                "req vs actual",
                Axis::linear("requested"),
                Axis::linear("actual"),
            )
            .with_series(Series::scatter(
                "regular",
                vec![100.0, 200.0, 300.0, 400.0],
                vec![50.0, 90.0, 150.0, 180.0],
            ))
            .with_series(Series::scatter("backfilled", vec![60.0], vec![10.0])),
        )
    }

    #[test]
    fn scatter_digest_captures_diagonal_relation() {
        let d = digest(&scatter());
        match d {
            ChartDigest::Scatter {
                series, density, ..
            } => {
                assert_eq!(series.len(), 2);
                // All points lie below the diagonal (overestimation).
                assert_eq!(series[0].frac_above_diagonal, Some(0.0));
                assert!(series[0].correlation.unwrap() > 0.9);
                let g = density.unwrap();
                assert_eq!(g.total(), 5);
            }
            _ => panic!("expected scatter digest"),
        }
    }

    #[test]
    fn log_scatter_density_uses_log_space() {
        let c =
            Chart::Scatter(
                ScatterChart::new("log", Axis::log("x"), Axis::log("y")).with_series(
                    Series::scatter("s", vec![1.0, 10.0, 100.0, -5.0], vec![1.0, 1.0, 1.0, 1.0]),
                ),
            );
        match digest(&c) {
            ChartDigest::Scatter { density, .. } => {
                let g = density.unwrap();
                // The -5 point is dropped in log space.
                assert_eq!(g.total(), 3);
                assert_eq!(g.x_min, 0.0);
                assert_eq!(g.x_max, 2.0);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn outliers_counted() {
        let mut ys: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        ys.push(1e6);
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let c = Chart::Scatter(
            ScatterChart::new("o", Axis::linear("x"), Axis::linear("y"))
                .with_series(Series::scatter("s", xs, ys)),
        );
        match digest(&c) {
            ChartDigest::Scatter { series, .. } => assert_eq!(series[0].y_outliers, 1),
            _ => unreachable!(),
        }
    }

    #[test]
    fn bar_digest_summarizes_imbalance() {
        let c = Chart::Bar(
            BarChart::new(
                "states per user",
                vec!["u1".into(), "u2".into(), "u3".into()],
                "jobs",
                BarMode::Stacked,
            )
            .with_stack("COMPLETED", vec![100.0, 90.0, 80.0])
            .with_stack("FAILED", vec![200.0, 5.0, 2.0]),
        );
        match digest(&c) {
            ChartDigest::Bar {
                stacks,
                category_cv,
                top_categories,
                ..
            } => {
                assert_eq!(stacks[1].name, "FAILED");
                assert_eq!(stacks[1].peak_category, "u1");
                assert_eq!(stacks[1].peak_value, 200.0);
                assert!(category_cv.unwrap() > 0.4, "imbalance visible");
                assert_eq!(top_categories[0].0, "u1");
            }
            _ => panic!("expected bar digest"),
        }
    }

    #[test]
    fn heatmap_digest_finds_extremes_and_marginals() {
        let mut h = HeatmapChart::new(
            "dynamics",
            vec!["h0".into(), "h1".into()],
            vec!["Mon".into(), "Sat".into()],
            vec![10.0, 30.0, f64::NAN, 2.0],
        );
        h.value_label = "mean wait".into();
        match digest(&Chart::Heatmap(h)) {
            ChartDigest::Heatmap {
                peak,
                trough,
                row_means,
                cells,
                ..
            } => {
                assert_eq!(peak, Some(("Mon".into(), "h1".into(), 30.0)));
                assert_eq!(trough, Some(("Sat".into(), "h1".into(), 2.0)));
                assert_eq!(row_means[0].1, 20.0);
                assert_eq!(row_means[1].1, 2.0, "NaN cells excluded");
                assert_eq!(cells.unwrap().n, 3);
            }
            _ => panic!("expected heatmap digest"),
        }
    }

    #[test]
    fn digest_json_round_trips() {
        let d = digest(&scatter());
        let json = d.to_json();
        let back: ChartDigest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn density_peak() {
        let g = DensityGrid {
            rows: 2,
            cols: 2,
            counts: vec![1, 5, 2, 0],
            x_min: 0.0,
            x_max: 1.0,
            y_min: 0.0,
            y_max: 1.0,
        };
        assert_eq!(g.peak(), (0, 1));
    }
}
