//! Scheduler-simulator throughput: submissions scheduled per second under
//! each backfill policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use schedflow_sim::{BackfillPolicy, Simulator};
use schedflow_tracegen::{synthesize_plans, UserPopulation, WorkloadProfile};

fn stream(days: i64) -> (WorkloadProfile, Vec<schedflow_sim::JobRequest>) {
    let profile = WorkloadProfile::frontier().truncated_days(days).scaled(0.3);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
    let pop = UserPopulation::generate(&profile, &mut rng);
    let jobs = synthesize_plans(&profile, &pop, &mut rng)
        .into_iter()
        .map(|p| p.request)
        .collect();
    (profile, jobs)
}

fn bench_policies(c: &mut Criterion) {
    let (profile, jobs) = stream(30);
    let mut group = c.benchmark_group("simulate_30d_frontier");
    group.throughput(Throughput::Elements(jobs.len() as u64));
    group.sample_size(10);
    for (name, policy) in [
        ("fifo", BackfillPolicy::None),
        ("easy", BackfillPolicy::Easy),
        ("conservative", BackfillPolicy::Conservative),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &p| {
            let mut system = profile.system.clone();
            system.backfill = p;
            let sim = Simulator::new(system);
            b.iter(|| sim.run(&jobs).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
