//! Frame-engine kernels: group-by aggregation (sequential vs parallel),
//! filtering, and sorting on trace-sized columns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schedflow_dataflow::par;
use schedflow_frame::{group_by, Agg, Column, Frame};

fn synthetic_frame(rows: usize) -> Frame {
    let users: Vec<String> = (0..rows).map(|i| format!("u{:04}", i % 997)).collect();
    let waits: Vec<i64> = (0..rows)
        .map(|i| ((i * 2654435761) % 100_000) as i64)
        .collect();
    let nodes: Vec<i64> = (0..rows).map(|i| ((i * 40503) % 1024 + 1) as i64).collect();
    Frame::new()
        .with("user", Column::from_str(users))
        .with("wait_s", Column::from_i64(waits))
        .with("nnodes", Column::from_i64(nodes))
}

fn bench_group_by(c: &mut Criterion) {
    let frame = synthetic_frame(400_000);
    let mut group = c.benchmark_group("group_by_user_mean_wait");
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            par::set_threads(t);
            b.iter(|| {
                group_by(
                    &frame,
                    &["user"],
                    &[("n", Agg::Count), ("mean", Agg::Mean("wait_s".into()))],
                )
                .unwrap()
            });
        });
    }
    par::set_threads(0);
    group.finish();
}

fn bench_filter_sort(c: &mut Criterion) {
    let frame = synthetic_frame(400_000);
    c.bench_function("filter_wait_gt_1h", |b| {
        b.iter(|| {
            let mask = frame.column("wait_s").unwrap().mask_f64(|w| w > 3600.0);
            frame.filter(&mask).unwrap()
        });
    });
    c.bench_function("sort_by_wait", |b| {
        b.iter(|| frame.sort_by("wait_s", true).unwrap());
    });
}

criterion_group!(benches, bench_group_by, bench_filter_sort);
criterion_main!(benches);
