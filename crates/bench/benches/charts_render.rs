//! Chart substrate: SVG rendering (with downsampling) and digest extraction
//! on figure-sized scatters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use schedflow_charts::{digest, render, Axis, Chart, Geometry, ScatterChart, Series};

fn big_scatter(n: usize) -> Chart {
    let xs: Vec<f64> = (0..n)
        .map(|i| ((i * 2654435761) % 100_000) as f64 / 100.0 + 1.0)
        .collect();
    let ys: Vec<f64> = (0..n).map(|i| ((i * 40503) % 9408 + 1) as f64).collect();
    Chart::Scatter(
        ScatterChart::new("bench", Axis::log("elapsed"), Axis::log("nodes"))
            .with_series(Series::scatter("jobs", xs, ys)),
    )
}

fn bench_charts(c: &mut Criterion) {
    let mut group = c.benchmark_group("chart_pipeline");
    for n in [10_000usize, 100_000] {
        let chart = big_scatter(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("render_svg", n), &chart, |b, ch| {
            b.iter(|| render(ch, &Geometry::default()));
        });
        group.bench_with_input(BenchmarkId::new("digest", n), &chart, |b, ch| {
            b.iter(|| digest(ch));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_charts);
criterion_main!(benches);
