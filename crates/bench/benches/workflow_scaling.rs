//! End-to-end workflow makespan vs `-n N` (the §3.3 concurrency knob) on a
//! fixed small configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schedflow_core::{run, System, WorkflowConfig};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("workflow_n_threads");
    group.sample_size(10);
    for n in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let base = std::env::temp_dir().join(format!("schedflow-bench-wf-{n}"));
            b.iter(|| {
                let _ = std::fs::remove_dir_all(&base);
                let mut cfg = WorkflowConfig::new(System::Andes);
                cfg.from = (2024, 1);
                cfg.to = (2024, 3);
                cfg.scale = 0.02;
                cfg.threads = n;
                cfg.use_cache = false;
                cfg.cache_dir = base.join("cache");
                cfg.data_dir = base.join("data");
                run(&cfg).expect("workflow runs")
            });
            let _ = std::fs::remove_dir_all(&base);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
