//! Dataflow-engine overhead: scheduling cost per task for graphs of trivial
//! tasks, and work-stealing pool job throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use schedflow_dataflow::{Artifact, RunOptions, Runner, StageKind, ThreadPool, Workflow};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn chain_workflow(n: usize) -> Workflow {
    let mut wf = Workflow::new();
    let mut prev: Option<Artifact<u64>> = None;
    for i in 0..n {
        let out = wf.value::<u64>(&format!("v{i}"));
        match prev {
            None => {
                wf.task(
                    &format!("t{i}"),
                    StageKind::Static,
                    [],
                    [out.id()],
                    move |ctx| ctx.put(out, 0),
                );
            }
            Some(p) => {
                wf.task(
                    &format!("t{i}"),
                    StageKind::Static,
                    [p.id()],
                    [out.id()],
                    move |ctx| {
                        let v = *ctx.get(p)?;
                        ctx.put(out, v + 1)
                    },
                );
            }
        }
        prev = Some(out);
    }
    wf
}

fn fanout_workflow(n: usize) -> Workflow {
    let mut wf = Workflow::new();
    let root = wf.value::<u64>("root");
    wf.task("root", StageKind::Static, [], [root.id()], move |ctx| {
        ctx.put(root, 1)
    });
    for i in 0..n {
        let out = wf.value::<u64>(&format!("leaf{i}"));
        wf.task(
            &format!("leaf{i}"),
            StageKind::Static,
            [root.id()],
            [out.id()],
            move |ctx| {
                let v = *ctx.get(root)?;
                ctx.put(out, v + 1)
            },
        );
    }
    wf
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_overhead");
    type Shape = (&'static str, fn(usize) -> Workflow);
    let shapes: [Shape; 2] = [("chain", chain_workflow), ("fanout", fanout_workflow)];
    for (name, build) in shapes {
        for n in [64usize, 512] {
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
                b.iter(|| {
                    let runner = Runner::new(build(n)).unwrap();
                    let report = runner.run(&RunOptions::with_threads(4));
                    assert!(report.is_success());
                });
            });
        }
    }
    group.finish();
}

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_throughput");
    group.throughput(Throughput::Elements(100_000));
    group.sample_size(10);
    group.bench_function("100k_trivial_jobs_8_workers", |b| {
        b.iter(|| {
            let pool = ThreadPool::new(8);
            let counter = Arc::new(AtomicU64::new(0));
            for _ in 0..100_000u64 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait_idle();
            assert_eq!(counter.load(Ordering::Relaxed), 100_000);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_engine, bench_pool);
criterion_main!(benches);
