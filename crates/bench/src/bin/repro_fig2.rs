//! Figure 2: the hybrid workflow's dataflow graph — static (blue) stages and
//! user-defined AI (orange) stages, with concurrency rows.

use schedflow_bench::{banner, check, out_dir};
use schedflow_core::{build, System, WorkflowConfig};

fn main() {
    banner("fig2", "Figure 2 — hybrid workflow dataflow diagram");
    schedflow_bench::lint_gate(&[]);
    let mut cfg = WorkflowConfig::new(System::Frontier);
    // Three months keeps the diagram readable, like the paper's sketch.
    cfg.from = (2023, 4);
    cfg.to = (2023, 6);
    let built = build(&cfg);
    let depths = built.workflow.validate().unwrap();

    let dot = schedflow_dataflow::to_dot(
        &built.workflow,
        &schedflow_dataflow::DotOptions {
            show_artifacts: false,
            title: "schedflow hybrid workflow (blue = static, orange = user-defined AI)".into(),
            ..Default::default()
        },
    )
    .unwrap();
    let path = out_dir().join("fig2_workflow.dot");
    std::fs::write(&path, &dot).unwrap();
    println!(
        "graph: {} ({} tasks)",
        path.display(),
        built.workflow.task_count()
    );
    println!("render with: dot -Tpng {} -o fig2.png", path.display());

    // Concurrency rows ("tasks in the same horizontal row may be executed
    // concurrently").
    let max_depth = *depths.iter().max().unwrap();
    println!("\nconcurrency rows:");
    for row in 0..=max_depth {
        let all_names = built.workflow.task_names();
        let names: Vec<&str> = (0..built.workflow.task_count())
            .filter(|&i| depths[i] == row)
            .map(|i| all_names[i])
            .collect();
        println!("  row {row}: {}", names.join(", "));
    }

    check("graph validates (acyclic, single-writer)", true);
    check(
        "both stage kinds present (blue + orange)",
        dot.contains("#cfe2f3") && dot.contains("#fce5cd"),
    );
    check(
        "per-month pipelines share a row (obtain stages concurrent)",
        (0..built.workflow.task_count())
            .filter(|&i| depths[i] == 1)
            .count()
            >= 3,
    );
}
