//! Data-plane micro-benchmarks: the zero-copy chunked column model against
//! the eager copy-on-every-op baseline it replaced.
//!
//! Three kernels, matching the workflow's hot path:
//!
//! * `vstack_merge` — multi-month merge: O(chunks) concat vs the old
//!   copy-stack (emulated by `compact()`);
//! * `filter_group_by` — an analytics stage: selection-view aggregation vs
//!   materialize-then-aggregate;
//! * `pipeline_slice` — `head`-style windowing: chunk slicing vs index-gather.
//!
//! Results land in `BENCH_frame.json` (override the directory with
//! `SCHEDFLOW_OUT`). `--test` runs a smoke-sized pass for CI.

use schedflow_bench::{banner, check, out_dir};
use schedflow_frame::{copycount, group_by, Agg, Frame};
use std::time::Instant;

struct BenchResult {
    name: &'static str,
    eager_ms: f64,
    zero_copy_ms: f64,
}

impl BenchResult {
    fn speedup(&self) -> f64 {
        self.eager_ms / self.zero_copy_ms.max(1e-9)
    }
}

/// Best-of-`reps` wall time in milliseconds.
fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    banner(
        "bench_frame",
        "data plane: zero-copy chunked ops vs eager copies",
    );

    // Per-month frames as curate produces them: single-chunk columns.
    let full = schedflow_bench::frontier_frame();
    let base = if smoke {
        full.head(600).compact()
    } else {
        full
    };
    let n_months = 12usize.min(base.height().max(1));
    let per = (base.height() / n_months).max(1);
    let months: Vec<Frame> = (0..n_months)
        .map(|i| {
            let lo = i * per;
            let len = if i == n_months - 1 {
                base.height() - lo
            } else {
                per
            };
            base.slice(lo, len).compact()
        })
        .collect();
    let reps = if smoke { 2 } else { 7 };
    println!(
        "rows {} across {} month frames, best of {reps}",
        base.height(),
        months.len()
    );

    // 1. Multi-month merge: chunk concat vs the pre-refactor copy-stack.
    let merge = BenchResult {
        name: "vstack_merge",
        eager_ms: time_ms(reps, || Frame::vstack(&months).unwrap().compact()),
        zero_copy_ms: time_ms(reps, || Frame::vstack(&months).unwrap()),
    };
    let merged = Frame::vstack(&months).unwrap();
    copycount::reset();
    let _ = Frame::vstack(&months).unwrap();
    let merge_copies = copycount::rows_copied();

    // 2. Analytics stage (waits-style): filter started jobs, aggregate per
    //    user — view-driven aggregation vs materialize-then-aggregate.
    let mask = merged.column("wait_s").unwrap().mask_f64(|w| w >= 0.0);
    let aggs = [
        ("jobs", Agg::Count),
        ("mean_wait", Agg::Mean("wait_s".to_owned())),
        ("max_wait", Agg::Max("wait_s".to_owned())),
    ];
    let stage = BenchResult {
        name: "filter_group_by",
        eager_ms: time_ms(reps, || {
            let started = merged.filter(&mask).unwrap();
            group_by(&started, &["user"], &aggs).unwrap()
        }),
        zero_copy_ms: time_ms(reps, || {
            let view = merged.view().filter(&mask).unwrap();
            view.group_by(&["user"], &aggs).unwrap()
        }),
    };

    // 3. Pipeline slice: head as chunk windows vs index-gather.
    let k = merged.height() / 2;
    let idx: Vec<usize> = (0..k).collect();
    let slice = BenchResult {
        name: "pipeline_slice",
        eager_ms: time_ms(reps, || merged.take(&idx)),
        zero_copy_ms: time_ms(reps, || merged.head(k)),
    };

    let results = [merge, stage, slice];
    for r in &results {
        println!(
            "{:<16} eager {:>10.3} ms   zero-copy {:>10.3} ms   speedup {:>6.1}x",
            r.name,
            r.eager_ms,
            r.zero_copy_ms,
            r.speedup()
        );
    }

    // Manual JSON keeps the artifact dependency-free.
    let entries: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"eager_ms\": {:.6}, \"zero_copy_ms\": {:.6}, \"speedup\": {:.3}}}",
                r.name,
                r.eager_ms,
                r.zero_copy_ms,
                r.speedup()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"frame\",\n  \"rows\": {},\n  \"months\": {},\n  \"vstack_rows_copied\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        base.height(),
        months.len(),
        merge_copies,
        entries.join(",\n")
    );
    let path = out_dir().join("BENCH_frame.json");
    std::fs::write(&path, json).expect("write BENCH_frame.json");
    println!("json: {}", path.display());

    check("vstack performs zero row copies", merge_copies == 0);
    check(
        "merge and slice results agree with the eager path",
        Frame::vstack(&months).unwrap() == Frame::vstack(&months).unwrap().compact()
            && merged.head(k) == merged.take(&idx),
    );
    if !smoke {
        // The acceptance bar: merge and one analytics stage at least 2x.
        check("multi-month merge ≥ 2x faster", results[0].speedup() >= 2.0);
        check("analytics stage ≥ 2x faster", results[1].speedup() >= 2.0);
    }
}
