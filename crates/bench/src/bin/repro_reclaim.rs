//! What-if from §4.2/§6: AI-predicted walltime estimates — clamp requests
//! toward actual runtimes and measure the queueing benefit.

use rand::SeedableRng;
use schedflow_analytics::{PredictorConfig, WalltimePredictor};
use schedflow_bench::{banner, check, scale, seed};
use schedflow_sim::{metrics, JobRequest, Simulator};
use schedflow_tracegen::{synthesize_plans, UserPopulation, WorkloadProfile};

fn main() {
    banner(
        "reclaim",
        "walltime reclamation what-if (AI-predicted estimates)",
    );
    schedflow_bench::lint_gate(&["predictor"]);
    let profile = WorkloadProfile::frontier()
        .truncated_days(90)
        .scaled(scale() * 3.0);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed());
    let pop = UserPopulation::generate(&profile, &mut rng);
    let jobs: Vec<_> = synthesize_plans(&profile, &pop, &mut rng)
        .into_iter()
        .map(|p| p.request)
        .collect();
    println!(
        "\n{} submissions; tightening requests toward actual runtimes\n",
        jobs.len()
    );
    println!(
        "{:<22} {:>11} {:>12} {:>8}",
        "request accuracy", "mean wait", "p95 wait", "util"
    );
    let mut waits = Vec::new();
    for (name, tighten) in [
        ("as submitted", 1.0f64),
        ("50% tighter", 0.5),
        ("perfect prediction", 0.0),
    ] {
        let adjusted: Vec<JobRequest> = jobs
            .iter()
            .map(|j| {
                let mut j = j.clone();
                // Tighten toward the actual runtime but never exceed the
                // original request (which partition limits already admit):
                // timeout-bound jobs simply stay timeout-bound.
                let slack = (j.walltime_secs - j.actual_secs).max(0) as f64;
                let w = j.actual_secs + (slack * tighten) as i64;
                j.walltime_secs = ((w + 299) / 300 * 300).clamp(300, j.walltime_secs.max(300));
                j
            })
            .collect();
        let outcomes = Simulator::new(profile.system.clone())
            .run(&adjusted)
            .expect("valid");
        let m = metrics(&adjusted, &outcomes, profile.system.total_nodes);
        println!(
            "{:<22} {:>10.0}s {:>11.0}s {:>7.1}%",
            name,
            m.mean_wait_secs,
            m.p95_wait_secs,
            m.utilization * 100.0
        );
        waits.push(m.mean_wait_secs);
    }
    check(
        "tighter requests reduce mean queue wait",
        waits[2] <= waits[0],
    );

    // §6's concrete proposal: an actual online predictor (per-user EWMA with
    // a safety margin) replacing user estimates at submission time.
    let mut predictor = WalltimePredictor::new(PredictorConfig::default());
    let mut timeouts_risked = 0usize;
    let predicted: Vec<JobRequest> = jobs
        .iter()
        .map(|j| {
            let mut j = j.clone();
            let user = format!("u{}", j.user);
            let pred = predictor.predict(&user, j.walltime_secs);
            // Observe what the scheduler would have seen: runtime capped at
            // the (original) limit.
            predictor.observe(&user, j.actual_secs.min(j.walltime_secs));
            let w = ((pred + 299) / 300 * 300).clamp(300, j.walltime_secs.max(300));
            if w < j.actual_secs {
                timeouts_risked += 1;
            }
            j.walltime_secs = w;
            j
        })
        .collect();
    let outcomes = Simulator::new(profile.system.clone())
        .run(&predicted)
        .expect("valid");
    let m = metrics(&predicted, &outcomes, profile.system.total_nodes);
    println!(
        "{:<22} {:>10.0}s {:>11.0}s {:>7.1}%   ({} jobs at timeout risk)",
        "EWMA predictor",
        m.mean_wait_secs,
        m.p95_wait_secs,
        m.utilization * 100.0,
        timeouts_risked
    );
    println!(
        "note: under-predictions convert to timeouts (work lost); a deployed\n\
         predictor would requeue with a doubled estimate, trading a restart\n\
         for the queueing gain shown here."
    );
    check(
        "the online predictor improves queueing over user estimates",
        m.mean_wait_secs <= waits[0] * 1.02,
    );

    println!("\naccurate estimates let backfill prove more holes safe — the gap the");
    println!("paper proposes reclaiming with AI-predicted walltimes (§4.2, §6).");
}
