//! Table 1: the curated accounting fields, grouped by category, selected
//! from the 118-field accounting schema.

use schedflow_bench::{banner, check};
use schedflow_model::fields::{curated_by_category, curated_fields, CATALOGUE};

fn main() {
    banner(
        "table1",
        "Table 1 — selected Slurm accounting fields by category",
    );
    schedflow_bench::lint_gate(&[]);
    println!();
    for (category, fields) in curated_by_category() {
        println!("{:<22} {}", category.label(), fields.join(", "));
    }
    println!(
        "\ncurated {} of {} accounting fields",
        curated_fields().len(),
        CATALOGUE.len()
    );
    let excluded_dup = CATALOGUE
        .iter()
        .filter(|f| f.excluded == Some(schedflow_model::fields::Exclusion::Duplicative))
        .count();
    println!("excluded as duplicative (e.g. ElapsedRaw vs Elapsed): {excluded_dup}");

    check("catalogue exposes 118 fields", CATALOGUE.len() == 118);
    check(
        "60 fields curated (the obtain-data query width)",
        curated_fields().len() == 60,
    );
    check(
        "every Table 1 category is populated",
        curated_by_category().iter().all(|(_, f)| !f.is_empty()),
    );
}
