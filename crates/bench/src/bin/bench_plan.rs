//! Query-layer benchmark: every analytics stage's logical plan executed
//! through the optimizer (projection pruning, predicate pushdown, filter
//! fusion, subplan memoization) against the eager unoptimized interpreter
//! it replaced — same plans, same Frontier trace, byte-identical outputs.
//!
//! Per stage, the two legs are timed and the optimizer's own accounting
//! (bytes scanned vs. the eager full-width scan) is captured from the
//! plan-stats tally. Results land in `BENCH_plan.json` (override the
//! directory with `SCHEDFLOW_OUT`). `--test` runs a smoke-sized pass for CI.

use schedflow_analytics as analytics;
use schedflow_bench::{banner, check, out_dir};
use schedflow_dataflow::fnv::fnv1a_str;
use schedflow_frame::{planstats, Frame};
use std::time::Instant;

struct StageResult {
    stage: &'static str,
    eager_ms: f64,
    optimized_ms: f64,
    bytes_eager: u64,
    bytes_scanned: u64,
    digests_match: bool,
}

impl StageResult {
    fn speedup(&self) -> f64 {
        self.eager_ms / self.optimized_ms.max(1e-9)
    }

    fn scan_reduction(&self) -> f64 {
        if self.bytes_scanned == 0 {
            return 1.0;
        }
        self.bytes_eager as f64 / self.bytes_scanned as f64
    }
}

/// Best-of-`reps` wall time in milliseconds.
fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Content digest of a result frame — the per-leg artifact identity.
/// Serialization densifies chunked columns, so two logically equal frames
/// digest identically whatever their chunk layout.
fn digest(frame: &Frame) -> u64 {
    fnv1a_str(&serde_json::to_string(frame).expect("frame serializes"))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    banner(
        "bench_plan",
        "query layer: optimized logical plans vs eager execution",
    );
    schedflow_bench::lint_gate(&analytics::STAGES);

    let full = schedflow_bench::frontier_frame();
    let frame = if smoke {
        full.head(600).compact()
    } else {
        full
    };
    let reps = if smoke { 2 } else { 5 };
    println!("rows {}, best of {reps}", frame.height());

    let mut results = Vec::new();
    for stage in analytics::STAGES {
        let plan = analytics::stage_plan(stage).expect("registry covers STAGES");
        // The federation plan reads two systems; feed it the same trace twice.
        let sources: Vec<&Frame> = (0..plan.source_count()).map(|_| &frame).collect();

        planstats::reset();
        let optimized_out = plan.execute_multi(&sources).expect(stage);
        let stats = planstats::snapshot();
        let eager_out = plan.execute_eager_multi(&sources).expect(stage);

        let optimized_ms = time_ms(reps, || plan.execute_multi(&sources).unwrap());
        let eager_ms = time_ms(reps, || plan.execute_eager_multi(&sources).unwrap());

        let r = StageResult {
            stage,
            eager_ms,
            optimized_ms,
            bytes_eager: stats.bytes_eager,
            bytes_scanned: stats.bytes_scanned,
            digests_match: digest(&optimized_out) == digest(&eager_out),
        };
        println!(
            "{:<14} eager {:>9.3} ms   optimized {:>9.3} ms   speedup {:>5.1}x   scan {:>6.1}x less   digests {}",
            r.stage,
            r.eager_ms,
            r.optimized_ms,
            r.speedup(),
            r.scan_reduction(),
            if r.digests_match { "match" } else { "DIFFER" }
        );
        results.push(r);
    }

    let bytes_eager: u64 = results.iter().map(|r| r.bytes_eager).sum();
    let bytes_scanned: u64 = results.iter().map(|r| r.bytes_scanned).sum();
    let total_reduction = bytes_eager as f64 / bytes_scanned.max(1) as f64;
    println!(
        "total: {bytes_scanned} bytes scanned vs {bytes_eager} eager ({total_reduction:.1}x reduction)"
    );

    // Manual JSON keeps the artifact dependency-free.
    let entries: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"stage\": \"{}\", \"eager_ms\": {:.6}, \"optimized_ms\": {:.6}, \
                 \"speedup\": {:.3}, \"bytes_eager\": {}, \"bytes_scanned\": {}, \
                 \"scan_reduction\": {:.3}, \"digests_match\": {}}}",
                r.stage,
                r.eager_ms,
                r.optimized_ms,
                r.speedup(),
                r.bytes_eager,
                r.bytes_scanned,
                r.scan_reduction(),
                r.digests_match
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"plan\",\n  \"rows\": {},\n  \"bytes_eager\": {},\n  \"bytes_scanned\": {},\n  \"scan_reduction\": {:.3},\n  \"results\": [\n{}\n  ]\n}}\n",
        frame.height(),
        bytes_eager,
        bytes_scanned,
        total_reduction,
        entries.join(",\n")
    );
    let path = out_dir().join("BENCH_plan.json");
    std::fs::write(&path, json).expect("write BENCH_plan.json");
    println!("json: {}", path.display());

    check(
        "optimized and eager outputs digest identically on every stage",
        results.iter().all(|r| r.digests_match),
    );
    // The acceptance bar: projection pruning + pushdown must at least halve
    // the bytes the pipeline's plans touch. The ratio is data-volume
    // independent, so the smoke pass enforces it too.
    check(
        "bytes scanned reduced ≥ 2x vs eager",
        total_reduction >= 2.0,
    );
}
