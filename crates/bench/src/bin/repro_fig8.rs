//! Figure 8: job end states per user on Andes 2024 — lower failure rates and
//! more uniform user behavior than Frontier's Figure 5.

use schedflow_analytics::{failure_dispersion, states_chart};
use schedflow_bench::{andes_frame, banner, check, frontier_frame, save_chart};

fn main() {
    banner(
        "fig8",
        "Figure 8 — end states per user, Andes 2024 (vs Frontier)",
    );
    schedflow_bench::lint_gate(&["states"]);
    let andes = andes_frame();
    save_chart(
        &states_chart(&andes, "andes", 40).unwrap(),
        "fig8_states_andes",
    );
    let (am, asd) = failure_dispersion(&andes, 40).unwrap();
    let (fm, fsd) = failure_dispersion(&frontier_frame(), 40).unwrap();
    println!(
        "\n{:<10} {:>18} {:>20}",
        "system", "mean failure rate", "failure-rate stddev"
    );
    println!("{:<10} {:>18.3} {:>20.3}", "frontier", fm, fsd);
    println!("{:<10} {:>18.3} {:>20.3}", "andes", am, asd);
    check("Andes users fail less overall", am < fm);
    check(
        "Andes failure rates more uniform (lower variance)",
        asd < fsd,
    );
}
