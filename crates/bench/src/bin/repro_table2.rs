//! Table 2: the LLM offering survey and the backend selection.

use schedflow_bench::{banner, check};
use schedflow_insight::{select_backend, survey, table2_text};

fn main() {
    banner(
        "table2",
        "Table 2 — LLM offerings: API, access, image input",
    );
    schedflow_bench::lint_gate(&[]);
    println!("\n{}", table2_text());
    let chosen = select_backend();
    println!("selected backend: {} {}", chosen.provider, chosen.version);
    println!("rationale: free API access without usage restrictions, multimodal");
    println!("input, low latency / lightweight footprint (§3.2).");

    check(
        "survey reproduces all ten Table 2 rows",
        survey().len() == 10,
    );
    check(
        "selection criteria choose Google Gemma 3",
        chosen.provider == "Google" && chosen.version == "Gemma 3",
    );
}
