//! §4.2, quote 2: the LLM Insight stage on the requested-vs-actual chart
//! ("consistent trend of users significantly overestimating…").

use schedflow_analytics::backfill_chart;
use schedflow_bench::{banner, check, frontier_frame};
use schedflow_charts::digest;
use schedflow_insight::{Analyst, RuleAnalyst, Severity};

fn main() {
    banner(
        "llm2",
        "§4.2 LLM Insight — walltime overestimation narrative",
    );
    schedflow_bench::lint_gate(&["backfill"]);
    let frame = frontier_frame();
    let chart = backfill_chart(&frame, "frontier").unwrap();
    let insight = RuleAnalyst::new().insight(&digest(&chart)).unwrap();
    println!("\n{}", insight.to_markdown());

    check(
        "insight states the overestimation trend",
        insight
            .narrative
            .contains("overestimating their walltime requests"),
    );
    check(
        "insight recommends automated prediction / adaptive rescheduling",
        insight.findings.iter().any(|f| {
            f.severity == Severity::Actionable && f.text.contains("automated walltime prediction")
        }),
    );
}
