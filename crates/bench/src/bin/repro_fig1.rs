//! Figure 1: total jobs and job-steps per year on Frontier, 2021–2024
//! (acceptance/hero era + production era).

use schedflow_analytics::{volume_chart, yearly_volumes};
use schedflow_bench::{banner, check, save_chart, scale, seed};
use schedflow_sacct::records_to_frame;
use schedflow_tracegen::{generate_segments, WorkloadProfile};

fn main() {
    banner(
        "fig1",
        "Figure 1 — jobs & job-steps per year, Frontier 2021–2024",
    );
    schedflow_bench::lint_gate(&["volume"]);
    let segments = [
        WorkloadProfile::frontier_early().scaled(scale()),
        WorkloadProfile::frontier().scaled(scale()),
    ];
    let records = generate_segments(&segments, seed());
    let frame = records_to_frame(&records).expect("curated frame");
    let volumes = yearly_volumes(&frame).unwrap();

    println!(
        "\n{:<6} {:>10} {:>12} {:>8}",
        "year", "jobs", "job-steps", "ratio"
    );
    for v in &volumes {
        println!(
            "{:<6} {:>10} {:>12} {:>7.1}x",
            v.year,
            v.jobs,
            v.steps,
            v.steps_per_job()
        );
    }

    save_chart(&volume_chart(&frame, "frontier").unwrap(), "fig1_volume");

    // Shape checks (DESIGN.md).
    check(
        "steps outnumber jobs by ~an order of magnitude every year",
        volumes.iter().all(|v| v.steps_per_job() > 5.0),
    );
    check(
        "figure covers 2021 through 2024",
        volumes.first().map(|v| v.year) == Some(2021)
            && volumes.last().map(|v| v.year) == Some(2024),
    );
    let production: Vec<_> = volumes.iter().filter(|v| v.year >= 2023).collect();
    check(
        "production-era submissions are roughly stable year over year",
        production.len() == 2 && {
            let a = production[0].jobs as f64;
            let b = production[1].jobs as f64;
            // 2023 covers only 9 production months; compare monthly rates.
            let rate_a = a / 12.0; // early + production months
            let rate_b = b / 12.0;
            (rate_a / rate_b).max(rate_b / rate_a) < 2.5
        },
    );
}
