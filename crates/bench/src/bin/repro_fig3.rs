//! Figure 3: allocated nodes vs job duration, Frontier Apr 2023–Dec 2024.

use schedflow_analytics::nodes_elapsed;
use schedflow_bench::{banner, check, frontier_frame, save_chart};

fn main() {
    banner(
        "fig3",
        "Figure 3 — allocated nodes vs elapsed time, Frontier",
    );
    schedflow_bench::lint_gate(&["nodes-elapsed"]);
    let frame = frontier_frame();
    let chart = nodes_elapsed::nodes_elapsed_chart(&frame, "frontier").unwrap();
    save_chart(&chart, "fig3_nodes_elapsed_frontier");
    let s = nodes_elapsed::summarize(&frame).unwrap();
    println!(
        "\n{} jobs | widest {} nodes | median {} nodes, {:.0} min | small/short corner {:.0}%",
        s.jobs,
        s.max_nodes,
        s.median_nodes,
        s.median_elapsed_min,
        s.small_short_fraction * 100.0
    );
    check(
        "both small short jobs and massively parallel long jobs present",
        s.max_nodes > 1000 && s.small_short_fraction > 0.1,
    );
    check(
        "capability-class tail: jobs beyond half the machine exist",
        s.max_nodes as f64 > 9408.0 * 0.5,
    );
}
