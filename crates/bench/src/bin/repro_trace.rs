//! Trace-contract regeneration: certify the observability layer's
//! determinism contract — on the trimmed Frontier pipeline, critical path ≤
//! wall clock ≤ Σ per-task times, the structural span digest is identical at
//! 1 and 4 worker threads, and tracing costs under 3% of wall clock versus
//! `--no-trace`. Evidence lands in `repro_out/BENCH_trace.json`.
//!
//! ```text
//! cargo run --release --bin repro_trace
//! ```

fn main() {
    schedflow_bench::banner(
        "repro_trace",
        "trace determinism contract (spans, critical path, overhead)",
    );
    schedflow_bench::lint_gate(&[]);
    schedflow_bench::trace_gate();
    schedflow_bench::check("trace ordering/determinism/overhead invariants hold", true);
}
