//! Ablation: FIFO vs EASY vs conservative backfill on one submission stream —
//! the quantitative backing for the paper's policy-evolution motivation.

use rand::SeedableRng;
use schedflow_bench::{banner, check, scale, seed};
use schedflow_sim::{metrics, BackfillPolicy, Simulator};
use schedflow_tracegen::{synthesize_plans, UserPopulation, WorkloadProfile};

fn main() {
    banner(
        "ablation",
        "backfill policy ablation (FIFO / EASY / conservative)",
    );
    schedflow_bench::lint_gate(&[]);
    let profile = WorkloadProfile::frontier()
        .truncated_days(90)
        .scaled(scale() * 3.0);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed());
    let pop = UserPopulation::generate(&profile, &mut rng);
    let jobs: Vec<_> = synthesize_plans(&profile, &pop, &mut rng)
        .into_iter()
        .map(|p| p.request)
        .collect();
    println!("\nreplaying {} submissions over 90 days\n", jobs.len());
    println!(
        "{:<14} {:>11} {:>12} {:>12} {:>8} {:>11}",
        "policy", "mean wait", "median wait", "p95 wait", "util", "backfilled"
    );
    let mut results = Vec::new();
    for (name, policy) in [
        ("fifo", BackfillPolicy::None),
        ("easy", BackfillPolicy::Easy),
        ("conservative", BackfillPolicy::Conservative),
    ] {
        let mut system = profile.system.clone();
        system.backfill = policy;
        let outcomes = Simulator::new(system).run(&jobs).expect("valid stream");
        let m = metrics(&jobs, &outcomes, profile.system.total_nodes);
        println!(
            "{:<14} {:>10.0}s {:>11.0}s {:>11.0}s {:>7.1}% {:>10.1}%",
            name,
            m.mean_wait_secs,
            m.median_wait_secs,
            m.p95_wait_secs,
            m.utilization * 100.0,
            m.backfill_fraction * 100.0
        );
        results.push((name, m));
    }
    let fifo = &results[0].1;
    let easy = &results[1].1;
    check(
        "EASY backfilling reduces mean wait vs FIFO",
        easy.mean_wait_secs <= fifo.mean_wait_secs,
    );
    check(
        "EASY improves or preserves utilization",
        easy.utilization >= fifo.utilization * 0.98,
    );
    check(
        "backfill actually fires under EASY",
        easy.backfill_fraction > 0.0,
    );
}
