//! §4.2, quote 1: the LLM Compare stage on two monthly wait-time charts
//! ("shorter wait times in June compared to March…").

use schedflow_analytics::{select, wait_chart, WaitOptions};
use schedflow_bench::{banner, check, frontier_frame};
use schedflow_charts::digest;
use schedflow_insight::{Analyst, RuleAnalyst};

fn main() {
    banner("llm1", "§4.2 LLM Compare — monthly wait-time comparison");
    schedflow_bench::lint_gate(&["waits", "select-month"]);
    let frame = frontier_frame();
    let options = WaitOptions::default();
    let march = select::filter_month(&frame, 2024, 3).unwrap();
    let june = select::filter_month(&frame, 2024, 6).unwrap();
    let chart_march = wait_chart(&march, "March", &options).unwrap();
    let chart_june = wait_chart(&june, "June", &options).unwrap();

    let insight = RuleAnalyst::new()
        .compare(&digest(&chart_march), &digest(&chart_june))
        .unwrap();
    println!("\n{}", insight.to_markdown());

    check(
        "comparison names both months and quantifies the contrast",
        insight.narrative.contains("March") && insight.narrative.contains("June"),
    );
    check(
        "medians for COMPLETED jobs computed for both charts",
        insight.stats.iter().any(|(n, _)| n == "median_a_COMPLETED")
            && insight.stats.iter().any(|(n, _)| n == "median_b_COMPLETED"),
    );
}
