//! §3.3: the `-n N` physical-concurrency knob — workflow makespan vs worker
//! count on a fixed configuration.

use schedflow_bench::{banner, check};
use schedflow_core::{run, System, WorkflowConfig};

fn main() {
    banner("scale", "§3.3 — workflow scaling with -n N workers");
    schedflow_bench::lint_gate(&[]);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host offers {cores} core(s); wall-clock gains require >1 — the");
    println!("structural checks below hold regardless of host parallelism.\n");
    let base = std::env::temp_dir().join(format!("schedflow-scaling-{}", std::process::id()));
    let mut makespans = Vec::new();
    let mut concurrency = Vec::new();
    println!(
        "{:>4} {:>12} {:>18} {:>12}",
        "N", "makespan", "max concurrency", "overlap≥"
    );
    for n in [1usize, 2, 4, 8] {
        let mut cfg = WorkflowConfig::new(System::Andes);
        cfg.from = (2024, 1);
        cfg.to = (2024, 6);
        cfg.scale = 0.05;
        cfg.threads = n;
        cfg.use_cache = false; // measure full work each time
        cfg.cache_dir = base.join(format!("cache-{n}"));
        cfg.data_dir = base.join(format!("data-{n}"));
        let outcome = run(&cfg).expect("workflow runs");
        println!(
            "{:>4} {:>10.2}s {:>18} {:>11.1}x",
            n,
            outcome.report.makespan_ms / 1000.0,
            outcome.report.max_concurrency(),
            outcome.report.speedup()
        );
        makespans.push(outcome.report.makespan_ms);
        concurrency.push(outcome.report.max_concurrency());
    }
    check(
        "engine exposes more concurrency as N grows",
        concurrency[0] <= 1 && concurrency[2] >= 3,
    );
    check(
        "scheduling overhead stays bounded (N=4 within 2x of N=1 even on one core)",
        makespans[2] < makespans[0] * 2.0,
    );
    if cores > 1 {
        check(
            "multi-core host: parallelism reduces makespan vs a single worker",
            makespans[2] < makespans[0],
        );
    } else {
        println!("[SKIP] wall-clock speedup check (single-core host)");
    }
    let _ = std::fs::remove_dir_all(&base);
}
