//! Policy-verdict regeneration: certify that the SF09xx scheduling-policy
//! analyzer's static verdicts agree with the simulator — preset profiles are
//! policy-clean, deliberately broken configurations produce findings whose
//! witness queues reproduce in the scheduler, identically at 1 and 4 replay
//! threads.
//!
//! ```text
//! cargo run --release --bin repro_policy
//! ```

fn main() {
    schedflow_bench::banner(
        "repro_policy",
        "scheduling-policy verdict soundness (SF09xx cross-check)",
    );
    schedflow_bench::policy_gate();
    schedflow_bench::check("static policy verdicts confirmed by witness replay", true);
}
