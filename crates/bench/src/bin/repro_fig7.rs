//! Figure 7: allocated nodes vs job duration on Andes 2024, contrasted with
//! Frontier's Figure 3.

use schedflow_analytics::nodes_elapsed;
use schedflow_bench::{andes_frame, banner, check, frontier_frame, save_chart};

fn main() {
    banner(
        "fig7",
        "Figure 7 — nodes vs duration, Andes 2024 (vs Frontier)",
    );
    schedflow_bench::lint_gate(&["nodes-elapsed"]);
    let andes = andes_frame();
    save_chart(
        &nodes_elapsed::nodes_elapsed_chart(&andes, "andes").unwrap(),
        "fig7_nodes_elapsed_andes",
    );
    let a = nodes_elapsed::summarize(&andes).unwrap();
    let f = nodes_elapsed::summarize(&frontier_frame()).unwrap();
    println!(
        "\n{:<10} {:>8} {:>12} {:>14} {:>18}",
        "system", "jobs", "max nodes", "median nodes", "small/short corner"
    );
    println!(
        "{:<10} {:>8} {:>12} {:>14.1} {:>17.0}%",
        "frontier",
        f.jobs,
        f.max_nodes,
        f.median_nodes,
        f.small_short_fraction * 100.0
    );
    println!(
        "{:<10} {:>8} {:>12} {:>14.1} {:>17.0}%",
        "andes",
        a.jobs,
        a.max_nodes,
        a.median_nodes,
        a.small_short_fraction * 100.0
    );
    check(
        "Andes concentrates smaller jobs than Frontier",
        a.max_nodes < f.max_nodes && a.median_nodes <= f.median_nodes,
    );
    check(
        "Andes small/short corner denser than Frontier's",
        a.small_short_fraction > f.small_short_fraction,
    );
}
