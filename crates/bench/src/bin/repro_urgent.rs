//! Extension experiment (paper §1/§5 urgent-computing motivation): route a
//! slice of the workload through a preempting `urgent` QOS backed by
//! preemptible `standby` capacity, and measure the turnaround contrast —
//! the NERSC "realtime" pattern the paper cites as the exception that
//! should become the norm.

use rand::SeedableRng;
use schedflow_bench::{banner, check, scale, seed};
use schedflow_sim::Simulator;
use schedflow_tracegen::{synthesize_plans, UserPopulation, WorkloadProfile};

fn main() {
    banner(
        "urgent",
        "urgent-computing QOS: preemption-backed turnaround",
    );
    schedflow_bench::lint_gate(&[]);
    let profile = WorkloadProfile::frontier()
        .truncated_days(60)
        .scaled((scale() * 20.0).min(1.0)) // urgent value shows under contention
        .with_urgent_computing(0.03, 0.25);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed());
    let pop = UserPopulation::generate(&profile, &mut rng);
    let plans = synthesize_plans(&profile, &pop, &mut rng);
    let jobs: Vec<_> = plans.into_iter().map(|p| p.request).collect();
    let outcomes = Simulator::new(profile.system.clone()).run(&jobs).unwrap();

    let wait_stats = |qos: &str| {
        let mut waits: Vec<f64> = jobs
            .iter()
            .zip(&outcomes)
            .filter(|(j, _)| j.qos == qos)
            .filter_map(|(_, o)| o.wait_secs().map(|w| w as f64))
            .collect();
        waits.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = waits.len();
        let mean = if n == 0 {
            0.0
        } else {
            waits.iter().sum::<f64>() / n as f64
        };
        let p95 = if n == 0 {
            0.0
        } else {
            waits[(n - 1) * 95 / 100]
        };
        (n, mean, p95)
    };

    println!("\nreplayed {} submissions over 60 days\n", jobs.len());
    println!(
        "{:<10} {:>8} {:>12} {:>12}",
        "qos", "jobs", "mean wait", "p95 wait"
    );
    for qos in ["urgent", "normal", "standby"] {
        let (n, mean, p95) = wait_stats(qos);
        println!("{:<10} {:>8} {:>11.0}s {:>11.0}s", qos, n, mean, p95);
    }
    let preempted = outcomes
        .iter()
        .filter(|o| o.state == schedflow_model::state::JobState::Preempted)
        .count();
    println!("\nstandby jobs preempted to serve urgent work: {preempted}");

    let (un, umean, _) = wait_stats("urgent");
    let (_, nmean, _) = wait_stats("normal");
    check("urgent jobs were generated and scheduled", un > 0);
    check("urgent turnaround beats normal QOS", umean <= nmean);
    check(
        "preemption is exercised (or the machine never saturated)",
        preempted > 0 || nmean < 1.0,
    );
}
