//! Figure 9: requested vs actual walltimes on Andes 2024 — overestimation
//! persists but clusters tighter than Frontier's Figure 6.

use schedflow_analytics::backfill;
use schedflow_bench::{andes_frame, banner, check, frontier_frame, save_chart};

fn main() {
    banner(
        "fig9",
        "Figure 9 — requested vs actual walltime, Andes 2024 (vs Frontier)",
    );
    schedflow_bench::lint_gate(&["backfill"]);
    let andes = andes_frame();
    save_chart(
        &backfill::backfill_chart(&andes, "andes").unwrap(),
        "fig9_backfill_andes",
    );
    let a = backfill::summarize(&andes).unwrap();
    let f = backfill::summarize(&frontier_frame()).unwrap();
    println!(
        "\n{:<10} {:>8} {:>14} {:>18} {:>14}",
        "system", "jobs", "overestimated", "mean req/actual", "backfilled"
    );
    println!(
        "{:<10} {:>8} {:>13.0}% {:>17.1}x {:>13.1}%",
        "frontier",
        f.jobs,
        f.overestimated_fraction * 100.0,
        f.mean_over_factor,
        f.backfilled as f64 / f.jobs.max(1) as f64 * 100.0
    );
    println!(
        "{:<10} {:>8} {:>13.0}% {:>17.1}x {:>13.1}%",
        "andes",
        a.jobs,
        a.overestimated_fraction * 100.0,
        a.mean_over_factor,
        a.backfilled as f64 / a.jobs.max(1) as f64 * 100.0
    );
    check(
        "overestimation persists on Andes",
        a.overestimated_fraction > 0.8,
    );
    check(
        "Andes overestimation range tighter than Frontier",
        a.mean_over_factor < f.mean_over_factor,
    );
}
