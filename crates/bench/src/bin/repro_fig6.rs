//! Figure 6: requested vs actual walltime with backfill markers, Frontier.

use schedflow_analytics::backfill;
use schedflow_bench::{banner, check, frontier_frame, save_chart};

fn main() {
    banner(
        "fig6",
        "Figure 6 — requested vs actual walltime (+ = backfilled), Frontier",
    );
    schedflow_bench::lint_gate(&["backfill"]);
    let frame = frontier_frame();
    save_chart(
        &backfill::backfill_chart(&frame, "frontier").unwrap(),
        "fig6_backfill_frontier",
    );
    let s = backfill::summarize(&frame).unwrap();
    println!(
        "\n{} started jobs | {} backfilled ({:.0}%) | {:.0}% overestimated\n\
         mean request/actual {:.1}x (backfilled {:.1}x) | {:.0} hours requested-but-unused",
        s.jobs,
        s.backfilled,
        s.backfilled as f64 / s.jobs.max(1) as f64 * 100.0,
        s.overestimated_fraction * 100.0,
        s.mean_over_factor,
        s.mean_over_factor_backfilled,
        s.unused_hours
    );
    check(
        "most jobs complete in less time than requested",
        s.overestimated_fraction > 0.8,
    );
    check(
        "backfilled jobs exist and skew to larger overestimation",
        s.backfilled > 0 && s.mean_over_factor_backfilled >= s.mean_over_factor * 0.8,
    );
    check("systemic reclaimable gap exists", s.unused_hours > 0.0);
}
