//! Figure 4: queue wait times by final job state, Frontier Apr 2023–Dec 2024.

use schedflow_analytics::{wait_chart, wait_summary, WaitOptions};
use schedflow_bench::{banner, check, frontier_frame, save_chart};

fn main() {
    banner(
        "fig4",
        "Figure 4 — job wait times color-coded by final state, Frontier",
    );
    schedflow_bench::lint_gate(&["waits"]);
    let frame = frontier_frame();
    save_chart(
        &wait_chart(&frame, "frontier", &WaitOptions::default()).unwrap(),
        "fig4_waits_frontier",
    );
    let summary = wait_summary(&frame).unwrap();
    println!(
        "\n{:<14} {:>8} {:>12} {:>12} {:>12}",
        "state", "jobs", "median wait", "p95 wait", "max wait"
    );
    for w in &summary {
        println!(
            "{:<14} {:>8} {:>11.0}s {:>11.0}s {:>11.0}s",
            w.state, w.jobs, w.median_wait_s, w.p95_wait_s, w.max_wait_s
        );
    }
    let completed = summary.iter().find(|w| w.state == "COMPLETED").unwrap();
    // Scale-robust stratification: the far tail dwarfs the typical wait
    // (at reduced SCHEDFLOW_SCALE the median collapses toward zero because
    // the machine is underloaded, but bursts still produce the strata).
    check(
        "wait distribution is stratified (max >> typical wait)",
        completed.max_wait_s > (completed.median_wait_s + 60.0) * 5.0,
    );
    check(
        "extended-wait tail present (paper shows waits beyond 1e5 s at full scale)",
        summary.iter().any(|w| w.max_wait_s > 10_000.0),
    );
    check(
        "all major end states carry wait samples",
        summary.len() >= 4,
    );
}
