//! Figure 5: job end states per user, Frontier.

use schedflow_analytics::{failure_dispersion, states_chart, states_per_user};
use schedflow_bench::{banner, check, frontier_frame, save_chart};

fn main() {
    banner("fig5", "Figure 5 — job end states per user, Frontier");
    schedflow_bench::lint_gate(&["states"]);
    let frame = frontier_frame();
    save_chart(
        &states_chart(&frame, "frontier", 40).unwrap(),
        "fig5_states_frontier",
    );
    let rows = states_per_user(&frame, 10).unwrap();
    println!("\ntop users by activity:");
    for r in &rows {
        println!(
            "  {:<6} {:>7} jobs  failure rate {:.2}",
            r.user,
            r.total(),
            r.failure_rate()
        );
    }
    let (mean, sd) = failure_dispersion(&frame, 40).unwrap();
    println!("\ntop-40 users: mean failure rate {mean:.3}, stddev {sd:.3}");
    check(
        "some users show disproportionately high failure rates",
        rows.iter().any(|r| r.failure_rate() > mean * 1.5),
    );
    check(
        "cross-user failure variance is substantial on Frontier",
        sd > mean * 0.3,
    );
}
