//! Extension experiment (§6 future work): federated multi-cluster analytics —
//! one comparison frame and chart across Frontier and Andes, plus
//! cross-facility visibility into users active on both systems.

use schedflow_analytics::federation;
use schedflow_bench::{andes_frame, banner, check, frontier_frame, save_chart};

fn main() {
    banner("federation", "§6 — multi-cluster / federated analytics");
    schedflow_bench::lint_gate(&["federation"]);
    let frontier = frontier_frame();
    let andes = andes_frame();
    let fa = federation::summarize_system(&frontier, "frontier").unwrap();
    let an = federation::summarize_system(&andes, "andes").unwrap();

    let table = federation::federation_frame(&[fa.clone(), an.clone()]);
    println!("\ncross-facility comparison frame:");
    let mut csv = Vec::new();
    schedflow_frame::write_csv(&table, &mut csv).unwrap();
    println!("{}", String::from_utf8(csv).unwrap());

    save_chart(
        &federation::federation_chart(&[fa.clone(), an.clone()]),
        "federation_profile",
    );

    // Shared-user visibility: the anonymized handles coincide numerically
    // across our generated systems, standing in for federated identity.
    let shared = federation::shared_users(&frontier, &andes).unwrap();
    println!("users active on both systems: {}", shared.height());

    check(
        "both systems summarized into one frame",
        table.height() == 2,
    );
    check(
        "the frame preserves the portability contrasts (Figures 7–9)",
        fa.max_nodes > an.max_nodes
            && fa.mean_over_factor > an.mean_over_factor
            && fa.failure_rate_stddev > an.failure_rate_stddev,
    );
    check(
        "cross-facility user join produces rows",
        shared.height() > 0,
    );
}
