//! Estimate-soundness regeneration: certify that the static cost analysis'
//! per-stage row intervals contain the cardinalities the default Frontier
//! pipeline actually produces, at 1 and at 4 worker threads.
//!
//! ```text
//! cargo run --release --bin repro_soundness
//! ```

fn main() {
    schedflow_bench::banner(
        "repro_soundness",
        "static cost-estimate soundness (SF08xx cross-check)",
    );
    schedflow_bench::soundness_gate();
    schedflow_bench::check("estimate intervals contain actual cardinalities", true);
}
