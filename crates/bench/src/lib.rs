//! Shared harness for the experiment-regeneration binaries (`repro_*`) and
//! the criterion benches.
//!
//! Every figure and table of the paper has a binary here that regenerates it
//! from a freshly simulated trace; see DESIGN.md's experiment index and
//! EXPERIMENTS.md for the paper-vs-measured record. Scale is controlled by
//! `SCHEDFLOW_SCALE` (1.0 = the paper's ~0.5M-job volume; default 0.05 keeps
//! every binary under a few seconds).

use schedflow_frame::Frame;
use schedflow_model::record::JobRecord;
use schedflow_sacct::records_to_frame;
use schedflow_sim::SimMetrics;
use schedflow_tracegen::{TraceGenerator, WorkloadProfile};
use std::path::PathBuf;

/// Volume scale for regenerated traces (`SCHEDFLOW_SCALE`, default 0.05).
pub fn scale() -> f64 {
    std::env::var("SCHEDFLOW_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05)
}

/// Deterministic seed shared by all experiments (`SCHEDFLOW_SEED`).
pub fn seed() -> u64 {
    std::env::var("SCHEDFLOW_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Output directory for regenerated artifacts.
pub fn out_dir() -> PathBuf {
    let dir = std::env::var("SCHEDFLOW_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("repro_out"));
    std::fs::create_dir_all(&dir).expect("create output dir");
    dir
}

/// Generate a trace for a profile at the configured scale/seed.
pub fn generate(profile: WorkloadProfile) -> (Vec<JobRecord>, SimMetrics) {
    let generator = TraceGenerator::new(profile.scaled(scale()), seed());
    let mut records = Vec::new();
    let metrics = generator.generate_each(|r| records.push(r));
    (records, metrics)
}

/// The Frontier production trace (Apr 2023–Dec 2024) as an analysis frame.
pub fn frontier_frame() -> Frame {
    let (records, _) = generate(WorkloadProfile::frontier());
    records_to_frame(&records).expect("curated frame")
}

/// The Andes 2024 trace as an analysis frame.
pub fn andes_frame() -> Frame {
    let (records, _) = generate(WorkloadProfile::andes());
    records_to_frame(&records).expect("curated frame")
}

/// Print the experiment banner.
pub fn banner(id: &str, paper_artifact: &str) {
    println!("==============================================================");
    println!("{id}: regenerating {paper_artifact}");
    println!("scale {} (SCHEDFLOW_SCALE), seed {}", scale(), seed());
    println!("==============================================================");
}

/// Statically lint the dataflow an experiment is about to execute, and
/// refuse to run it when the linter finds errors.
///
/// `stages` names the analytics stages the binary exercises (keys of
/// [`schedflow_analytics::stage_schema`]). The gate models the binary's
/// real dataflow — trace generation producing the curated frame, then each
/// stage consuming it under its declared [`TaskContract`] — and lints that
/// workflow. With an empty `stages` list the binary runs the core pipeline
/// itself, so the gate lints the default Frontier workflow instead.
///
/// [`TaskContract`]: schedflow_dataflow::contract::TaskContract
pub fn lint_gate(stages: &[&str]) {
    use schedflow_dataflow::contract::{SchemaEffect, TaskContract};
    use schedflow_dataflow::{StageKind, Workflow};

    let report = if stages.is_empty() {
        let cfg = schedflow_core::WorkflowConfig::new(schedflow_core::System::Frontier);
        let built = schedflow_core::build(&cfg);
        schedflow_lint::lint_workflow(&built.workflow)
    } else {
        let mut wf = Workflow::new();
        let trace = wf.value::<u32>("trace");
        let frame = wf.value::<u32>("frame");
        wf.task("generate", StageKind::Static, [], [trace.id()], |_| Ok(()));
        let curate_task = wf.task(
            "curate",
            StageKind::Static,
            [trace.id()],
            [frame.id()],
            |_| Ok(()),
        );
        wf.with_contract(
            curate_task,
            TaskContract::new().effect(
                frame.id(),
                SchemaEffect::Produces(schedflow_sacct::curated_schema()),
            ),
        );
        for stage in stages {
            let out = wf.value::<u32>(&format!("{stage}-out"));
            let task = wf.task(
                &format!("stage-{stage}"),
                StageKind::Static,
                [frame.id()],
                [out.id()],
                |_| Ok(()),
            );
            wf.retain(out.id());
            let required = schedflow_analytics::stage_schema(stage)
                .unwrap_or_else(|| panic!("unknown analytics stage {stage:?}"));
            wf.with_contract(task, TaskContract::new().require(frame.id(), required));
        }
        schedflow_lint::lint_workflow(&wf)
    };

    if report.has_errors() {
        print!("{}", report.render());
        eprintln!("lint gate: refusing to run — fix the schema contract errors above");
        std::process::exit(1);
    }
    println!("lint gate: clean ({} warning(s))", report.warnings());
    determinism_gate();
}

/// Digest every artifact of a small tracked workflow executed at the given
/// thread count ([`determinism_gate`]'s probe).
fn probe_digests(threads: usize) -> Vec<(String, Option<String>)> {
    use schedflow_dataflow::{RunOptions, Runner, StageKind, Workflow};

    let mut wf = Workflow::new();
    let parts: Vec<_> = (0..6)
        .map(|i| wf.value::<u64>(&format!("part-{i}")))
        .collect();
    for (i, part) in parts.iter().enumerate() {
        let part = *part;
        wf.task(
            &format!("make-{i}"),
            StageKind::Static,
            [],
            [part.id()],
            move |ctx| ctx.put(part, (i as u64 + 1).wrapping_mul(0x9E37_79B9)),
        );
        wf.track_digest(part);
    }
    let sum = wf.value::<u64>("sum");
    let inputs: Vec<_> = parts.iter().map(|p| p.id()).collect();
    let parts_for_body = parts.clone();
    wf.task("sum", StageKind::Static, inputs, [sum.id()], move |ctx| {
        let mut total = 0u64;
        for p in &parts_for_body {
            total = total.wrapping_add(*ctx.get(*p)?);
        }
        ctx.put(sum, total)
    });
    wf.retain(sum.id());
    wf.track_digest(sum);

    let runner = Runner::new(wf).expect("probe workflow is structurally valid");
    let report = runner.run(&RunOptions::with_threads(threads));
    assert!(report.is_success(), "determinism probe failed to execute");
    report
        .artifacts
        .iter()
        .map(|a| (a.name.clone(), a.digest.clone()))
        .collect()
}

/// Determinism gate: before an experiment regenerates a paper artifact, prove
/// the engine it runs on schedules deterministically — execute a small
/// digest-tracked workflow serially and on four workers and require identical
/// per-artifact content digests. A mismatch means task scheduling leaks into
/// results, which would make every regenerated figure unreproducible; the
/// binary refuses to continue. Called by [`lint_gate`], so every `repro_*`
/// binary certifies this alongside its schema contracts.
pub fn determinism_gate() {
    let serial = probe_digests(1);
    let parallel = probe_digests(4);
    if serial != parallel {
        eprintln!("determinism gate: artifact digests differ between 1 and 4 threads:");
        for ((name, s), (_, p)) in serial.iter().zip(&parallel) {
            if s != p {
                eprintln!("  {name}: {s:?} (serial) != {p:?} (parallel)");
            }
        }
        eprintln!("determinism gate: refusing to run — the engine is not replay-stable");
        std::process::exit(1);
    }
    println!(
        "determinism gate: {} artifact digest(s) identical at 1 and 4 threads",
        serial.len()
    );
}

/// One thread-count leg of the estimate soundness check: run the default
/// Frontier pipeline (trimmed to its first two months, sandboxed under a
/// private temp dir) and compare every single-plan stage's actual output
/// cardinality against its static estimate. Returns `(stages compared,
/// violations)`.
fn soundness_leg(threads: usize) -> (usize, Vec<String>) {
    let base = std::env::temp_dir().join(format!(
        "schedflow-soundness-{}-{threads}t",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&base);
    let mut cfg = schedflow_core::WorkflowConfig::new(schedflow_core::System::Frontier);
    // Two months: every stage kind (including the two-month compare) still
    // runs, and the trace stays small.
    let (y, m) = cfg.from;
    cfg.to = if m == 12 { (y + 1, 1) } else { (y, m + 1) };
    cfg.scale = scale().min(0.02);
    cfg.threads = threads;
    cfg.cache_dir = base.join("cache");
    cfg.data_dir = base.join("data");
    let outcome = match schedflow_core::run(&cfg) {
        Ok(o) => o,
        Err(e) => {
            let _ = std::fs::remove_dir_all(&base);
            return (
                0,
                vec![format!("pipeline failed at {threads} thread(s): {e}")],
            );
        }
    };
    let mut compared = 0;
    let mut violations = Vec::new();
    for t in &outcome.report.tasks {
        // Comparable only when the stage executed exactly one plan, so the
        // per-task scanned-row tally is the estimate's `n`.
        let (Some(est), Some(plan)) = (&t.estimate, &t.plan) else {
            continue;
        };
        if plan.plans != 1 {
            continue;
        }
        compared += 1;
        if !est.contains_rows(plan.rows_in, plan.rows_out) {
            let (lo, hi) = est.rows_interval(plan.rows_in);
            violations.push(format!(
                "{}: {} rows outside predicted [{lo}, {hi}] (scanned {}, {} thread(s))",
                t.name, plan.rows_out, plan.rows_in, threads
            ));
        }
    }
    let _ = std::fs::remove_dir_all(&base);
    (compared, violations)
}

/// Soundness gate for the static cost analysis: run the default Frontier
/// pipeline at 1 and at 4 worker threads and require every single-plan
/// stage's actual output cardinality to lie inside its statically predicted
/// row interval (the [`PlanEstimate`] the pipeline attaches per stage). Any
/// cardinality outside its interval means the abstract interpreter's
/// transfer rules are wrong — the binary refuses to continue.
///
/// [`PlanEstimate`]: schedflow_dataflow::PlanEstimate
pub fn soundness_gate() {
    for threads in [1usize, 4] {
        let (compared, violations) = soundness_leg(threads);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("soundness gate: {v}");
            }
            eprintln!("soundness gate: refusing to run — the static cost bounds are unsound");
            std::process::exit(1);
        }
        if compared == 0 {
            eprintln!("soundness gate: no estimated stages to check at {threads} thread(s)");
            std::process::exit(1);
        }
        println!(
            "soundness gate: {compared} stage estimate(s) contain their actual \
             cardinalities at {threads} thread(s)"
        );
    }
}

/// The scheduling-policy probe matrix: `(label, profile, expected SF09xx
/// codes)`. An empty expectation means the profile must be policy-clean.
fn policy_cases() -> Vec<(&'static str, WorkloadProfile, Vec<&'static str>)> {
    let toy = {
        let mut p = WorkloadProfile::andes();
        p.system = schedflow_sim::SystemConfig::toy(64);
        p.debug_fraction = 0.0;
        p.size_buckets.retain(|b| b.max_nodes <= 64);
        p
    };
    let inert = {
        let mut p = WorkloadProfile::frontier();
        p.system.weights.age = 0.0;
        p.system.backfill = schedflow_sim::BackfillPolicy::None;
        p
    };
    let tight = {
        let mut p = WorkloadProfile::frontier();
        p.system.backfill = schedflow_sim::BackfillPolicy::Conservative;
        p.system.bf_max_job_test = 4;
        p
    };
    vec![
        ("frontier", WorkloadProfile::frontier(), vec![]),
        ("andes", WorkloadProfile::andes(), vec![]),
        ("toy", toy, vec![]),
        ("frontier-inert-age", inert, vec!["SF0902", "SF0904"]),
        ("frontier-tight-backfill", tight, vec!["SF0904"]),
    ]
}

/// One thread-count leg of the policy gate: statically analyze every probe
/// profile, then replay each emitted witness queue through the real
/// scheduler on a pool of `threads` worker threads. Returns `(sorted
/// verdict lines, failures)` — a failure is a missing expected finding, an
/// unexpected finding on a clean profile, or a witness whose predicted
/// misbehavior the simulator did not reproduce.
fn policy_leg(threads: usize) -> (Vec<String>, Vec<String>) {
    use std::sync::Mutex;

    let mut verdicts: Vec<String> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let mut units: Vec<(
        &'static str,
        schedflow_sim::SystemConfig,
        schedflow_sim::PolicyWitness,
    )> = Vec::new();
    for (label, profile, expected) in policy_cases() {
        let analysis = schedflow_lint::lint_policy(&profile);
        verdicts.push(format!(
            "{label}: {} error(s), {} warning(s)",
            analysis.report.errors(),
            analysis.report.warnings()
        ));
        for code in &expected {
            if analysis.report.with_code(code).is_empty() {
                failures.push(format!("{label}: expected {code}, not emitted"));
            }
        }
        if expected.is_empty() && !analysis.is_clean() {
            failures.push(format!(
                "{label}: expected policy-clean, got {} finding(s)",
                analysis.report.errors() + analysis.report.warnings()
            ));
        }
        for w in analysis.witnesses {
            units.push((label, profile.system.clone(), w));
        }
    }

    // Fan the witness replays out over `threads` workers pulling from a
    // shared queue; the final sort restores a deterministic order so the
    // 1-thread and 4-thread legs are comparable line for line.
    let queue = Mutex::new(units);
    let results: Mutex<Vec<(String, bool)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..threads.max(1) {
            s.spawn(|| loop {
                let unit = queue.lock().expect("queue lock").pop();
                let Some((label, sys, w)) = unit else {
                    break;
                };
                let (line, ok) = match schedflow_sim::replay(&sys, &w) {
                    Ok(r) if r.holds => (format!("{label}/{}: witness confirmed", r.code), true),
                    Ok(r) => (
                        format!(
                            "{label}/{}: witness DID NOT reproduce ({})",
                            r.code, r.detail
                        ),
                        false,
                    ),
                    Err(e) => (
                        format!("{label}/{}: witness queue rejected ({e})", w.code),
                        false,
                    ),
                };
                results.lock().expect("results lock").push((line, ok));
            });
        }
    });
    for (line, ok) in results.into_inner().expect("results") {
        if !ok {
            failures.push(line.clone());
        }
        verdicts.push(line);
    }
    verdicts.sort();
    (verdicts, failures)
}

/// Policy gate for the SF09xx scheduling-policy analyzer: prove the preset
/// profiles (Frontier, Andes, toy) are policy-clean, prove deliberately
/// broken configurations (inert age weight + no backfill; a starved
/// conservative-backfill budget) produce SF0902/SF0904 whose witness queues
/// reproduce the predicted overtaking/blocking in the simulator, and require
/// the full verdict set to be identical when the replays run on 1 and on 4
/// worker threads. Any divergence means the static verdicts and the runtime
/// disagree — the binary refuses to continue.
pub fn policy_gate() {
    let (serial, serial_failures) = policy_leg(1);
    let (parallel, parallel_failures) = policy_leg(4);
    for f in serial_failures.iter().chain(&parallel_failures) {
        eprintln!("policy gate: {f}");
    }
    if !serial_failures.is_empty() || !parallel_failures.is_empty() {
        eprintln!("policy gate: refusing to run — static policy verdicts are unsound");
        std::process::exit(1);
    }
    if serial != parallel {
        eprintln!("policy gate: verdicts differ between 1 and 4 replay threads:");
        for line in serial.iter().filter(|l| !parallel.contains(l)) {
            eprintln!("  only at 1 thread: {line}");
        }
        for line in parallel.iter().filter(|l| !serial.contains(l)) {
            eprintln!("  only at 4 threads: {line}");
        }
        eprintln!("policy gate: refusing to run — witness replay is not replay-stable");
        std::process::exit(1);
    }
    for line in &serial {
        println!("policy gate: {line}");
    }
    println!(
        "policy gate: {} verdict(s) identical at 1 and 4 replay threads",
        serial.len()
    );
}

/// One run of the trace benchmark's pipeline: the default Frontier workflow
/// trimmed to its first two months, sandboxed under a private temp dir so a
/// warm cache never hides tracing cost or changes the executed span set.
/// Returns the wall-clock milliseconds and the run's telemetry
/// (default-empty when `trace` is off).
fn trace_run(
    threads: usize,
    trace: bool,
    rep: usize,
) -> Result<(f64, schedflow_dataflow::Telemetry), String> {
    let base = std::env::temp_dir().join(format!(
        "schedflow-trace-{}-{threads}t-{}-{rep}",
        std::process::id(),
        if trace { "on" } else { "off" }
    ));
    let _ = std::fs::remove_dir_all(&base);
    let mut cfg = schedflow_core::WorkflowConfig::new(schedflow_core::System::Frontier);
    // Two months: every stage kind (including the two-month compare) still
    // runs, and the trace stays small.
    let (y, m) = cfg.from;
    cfg.to = if m == 12 { (y + 1, 1) } else { (y, m + 1) };
    cfg.scale = scale().min(0.02);
    cfg.seed = seed();
    cfg.threads = threads;
    cfg.trace = trace;
    cfg.cache_dir = base.join("cache");
    cfg.data_dir = base.join("data");
    let outcome = schedflow_core::run(&cfg);
    let _ = std::fs::remove_dir_all(&base);
    let outcome = outcome.map_err(|e| format!("pipeline failed at {threads} thread(s): {e}"))?;
    Ok((outcome.report.makespan_ms, outcome.report.telemetry))
}

/// Median of a small sample (odd sample sizes pick the true middle).
fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// One thread count's worth of trace-gate evidence.
struct TraceLeg {
    threads: usize,
    traced_ms: f64,
    untraced_ms: f64,
    spans: u64,
    critical_ms: f64,
    digest: u64,
}

/// Trace gate for the observability layer: run the trimmed Frontier pipeline
/// traced and untraced, 3 repetitions each at 1 and at 4 worker threads, and
/// require
///
/// 1. **ordering** — on every traced run, critical path ≤ wall clock and
///    wall clock ≤ Σ per-task times (with scheduling slack), the sandwich
///    that certifies both span timestamps and the dependency edges;
/// 2. **determinism** — the structural span digest is identical across every
///    traced run at both thread counts (seeded span identities, no
///    timing-derived structure);
/// 3. **overhead** — the median traced wall clock is within 3% (+100ms
///    measurement noise floor) of the median untraced wall clock.
///
/// Evidence is recorded to `repro_out/BENCH_trace.json`; any violated
/// invariant makes the binary refuse to continue.
pub fn trace_gate() {
    const REPS: usize = 3;
    let mut failures: Vec<String> = Vec::new();
    let mut legs: Vec<TraceLeg> = Vec::new();
    for threads in [1usize, 4] {
        let mut traced = Vec::new();
        let mut untraced = Vec::new();
        let mut leg: Option<TraceLeg> = None;
        for rep in 0..REPS {
            let (wall, t) = match trace_run(threads, true, rep) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("trace gate: {e}");
                    std::process::exit(1);
                }
            };
            traced.push(wall);
            let cp = schedflow_dataflow::critical_path(&t);
            let sum = t.sum_of_task_times_ms();
            // ε absorbs the sub-ms skew between the engine's makespan clock
            // and the span clock; the sum side gets scheduling slack.
            if cp.length_ms > wall + 5.0 {
                failures.push(format!(
                    "{threads}t rep {rep}: critical path {:.1}ms exceeds wall {wall:.1}ms",
                    cp.length_ms
                ));
            }
            if wall > sum * 1.10 + 250.0 {
                failures.push(format!(
                    "{threads}t rep {rep}: wall {wall:.1}ms exceeds Σ task times {sum:.1}ms \
                     beyond scheduling slack"
                ));
            }
            let digest = schedflow_dataflow::structural_digest(&t);
            if let Some(prev) = &leg {
                if prev.digest != digest {
                    failures.push(format!(
                        "{threads}t rep {rep}: structural digest {digest:016x} differs from \
                         {:016x} within the same thread count",
                        prev.digest
                    ));
                }
            }
            leg = Some(TraceLeg {
                threads,
                traced_ms: 0.0,
                untraced_ms: 0.0,
                spans: t.counters.spans,
                critical_ms: cp.length_ms,
                digest,
            });
            match trace_run(threads, false, rep) {
                Ok((wall, _)) => untraced.push(wall),
                Err(e) => {
                    eprintln!("trace gate: {e}");
                    std::process::exit(1);
                }
            }
        }
        let mut leg = leg.unwrap_or_else(|| unreachable!("REPS > 0"));
        leg.traced_ms = median_ms(&mut traced);
        leg.untraced_ms = median_ms(&mut untraced);
        if leg.traced_ms > leg.untraced_ms * 1.03 + 100.0 {
            failures.push(format!(
                "{threads}t: traced median {:.1}ms exceeds untraced {:.1}ms + 3% overhead budget",
                leg.traced_ms, leg.untraced_ms
            ));
        }
        println!(
            "trace gate: {threads} thread(s): traced {:.1}ms vs untraced {:.1}ms \
             ({:+.1}%), {} span(s), critical path {:.1}ms, digest {:016x}",
            leg.traced_ms,
            leg.untraced_ms,
            (leg.traced_ms / leg.untraced_ms - 1.0) * 100.0,
            leg.spans,
            leg.critical_ms,
            leg.digest
        );
        legs.push(leg);
    }
    if let [a, b] = legs.as_slice() {
        if a.digest != b.digest {
            failures.push(format!(
                "structural digest differs across thread counts: {:016x} (1t) vs {:016x} (4t)",
                a.digest, b.digest
            ));
        }
    }
    let body: Vec<String> = legs
        .iter()
        .map(|l| {
            format!(
                "    {{\"threads\": {}, \"traced_ms\": {:.1}, \"untraced_ms\": {:.1}, \
                 \"overhead_pct\": {:.2}, \"spans\": {}, \"critical_path_ms\": {:.1}, \
                 \"digest\": \"{:016x}\"}}",
                l.threads,
                l.traced_ms,
                l.untraced_ms,
                (l.traced_ms / l.untraced_ms - 1.0) * 100.0,
                l.spans,
                l.critical_ms,
                l.digest
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"repro_trace\",\n  \"scale\": {},\n  \"seed\": {},\n  \
         \"reps\": {REPS},\n  \"legs\": [\n{}\n  ]\n}}\n",
        scale().min(0.02),
        seed(),
        body.join(",\n")
    );
    let path = out_dir().join("BENCH_trace.json");
    std::fs::write(&path, json).expect("write BENCH_trace.json");
    println!("evidence: {}", path.display());
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("trace gate: {f}");
        }
        eprintln!("trace gate: refusing to pass — the trace contract is violated");
        std::process::exit(1);
    }
    println!("trace gate: ordering, determinism and overhead invariants hold at 1 and 4 threads");
}

/// Write a chart to `repro_out/<name>.html` and report the path.
pub fn save_chart(chart: &schedflow_charts::Chart, name: &str) {
    let path = out_dir().join(format!("{name}.html"));
    schedflow_charts::write_html(chart, &schedflow_charts::Geometry::default(), &path)
        .expect("write chart");
    println!("chart: {}", path.display());
}

/// A PASS/FAIL shape-check line.
pub fn check(label: &str, ok: bool) {
    println!("[{}] {label}", if ok { "PASS" } else { "FAIL" });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        assert!(scale() > 0.0);
        assert!(out_dir().exists());
    }

    #[test]
    fn determinism_probe_digests_match_across_thread_counts() {
        let serial = probe_digests(1);
        assert_eq!(serial.len(), 7, "6 parts + sum");
        assert_eq!(serial, probe_digests(4));
    }

    #[test]
    fn soundness_leg_finds_no_violations() {
        let (compared, violations) = soundness_leg(2);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(
            compared >= 7,
            "all plotting stages compared, got {compared}"
        );
    }

    #[test]
    fn policy_leg_verdicts_are_sound_and_stable() {
        let (serial, failures) = policy_leg(1);
        assert!(failures.is_empty(), "{failures:?}");
        // 5 static verdict lines + 3 witness replays (SF0902 + 2× SF0904).
        assert_eq!(serial.len(), 8, "{serial:?}");
        let (parallel, failures) = policy_leg(2);
        assert!(failures.is_empty(), "{failures:?}");
        assert_eq!(serial, parallel);
    }

    #[test]
    fn frames_have_analysis_columns() {
        // Tiny inline generation to keep the test quick.
        let profile = WorkloadProfile::andes().truncated_days(5).scaled(0.2);
        let records = TraceGenerator::new(profile, 1).generate();
        let frame = records_to_frame(&records).unwrap();
        for col in ["nnodes", "wait_s", "state", "backfilled", "nsteps", "year"] {
            assert!(frame.has_column(col), "{col}");
        }
    }
}
