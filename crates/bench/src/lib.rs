//! Shared harness for the experiment-regeneration binaries (`repro_*`) and
//! the criterion benches.
//!
//! Every figure and table of the paper has a binary here that regenerates it
//! from a freshly simulated trace; see DESIGN.md's experiment index and
//! EXPERIMENTS.md for the paper-vs-measured record. Scale is controlled by
//! `SCHEDFLOW_SCALE` (1.0 = the paper's ~0.5M-job volume; default 0.05 keeps
//! every binary under a few seconds).

use schedflow_frame::Frame;
use schedflow_model::record::JobRecord;
use schedflow_sacct::records_to_frame;
use schedflow_sim::SimMetrics;
use schedflow_tracegen::{TraceGenerator, WorkloadProfile};
use std::path::PathBuf;

/// Volume scale for regenerated traces (`SCHEDFLOW_SCALE`, default 0.05).
pub fn scale() -> f64 {
    std::env::var("SCHEDFLOW_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05)
}

/// Deterministic seed shared by all experiments (`SCHEDFLOW_SEED`).
pub fn seed() -> u64 {
    std::env::var("SCHEDFLOW_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Output directory for regenerated artifacts.
pub fn out_dir() -> PathBuf {
    let dir = std::env::var("SCHEDFLOW_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("repro_out"));
    std::fs::create_dir_all(&dir).expect("create output dir");
    dir
}

/// Generate a trace for a profile at the configured scale/seed.
pub fn generate(profile: WorkloadProfile) -> (Vec<JobRecord>, SimMetrics) {
    let generator = TraceGenerator::new(profile.scaled(scale()), seed());
    let mut records = Vec::new();
    let metrics = generator.generate_each(|r| records.push(r));
    (records, metrics)
}

/// The Frontier production trace (Apr 2023–Dec 2024) as an analysis frame.
pub fn frontier_frame() -> Frame {
    let (records, _) = generate(WorkloadProfile::frontier());
    records_to_frame(&records).expect("curated frame")
}

/// The Andes 2024 trace as an analysis frame.
pub fn andes_frame() -> Frame {
    let (records, _) = generate(WorkloadProfile::andes());
    records_to_frame(&records).expect("curated frame")
}

/// Print the experiment banner.
pub fn banner(id: &str, paper_artifact: &str) {
    println!("==============================================================");
    println!("{id}: regenerating {paper_artifact}");
    println!("scale {} (SCHEDFLOW_SCALE), seed {}", scale(), seed());
    println!("==============================================================");
}

/// Statically lint the dataflow an experiment is about to execute, and
/// refuse to run it when the linter finds errors.
///
/// `stages` names the analytics stages the binary exercises (keys of
/// [`schedflow_analytics::stage_schema`]). The gate models the binary's
/// real dataflow — trace generation producing the curated frame, then each
/// stage consuming it under its declared [`TaskContract`] — and lints that
/// workflow. With an empty `stages` list the binary runs the core pipeline
/// itself, so the gate lints the default Frontier workflow instead.
///
/// [`TaskContract`]: schedflow_dataflow::contract::TaskContract
pub fn lint_gate(stages: &[&str]) {
    use schedflow_dataflow::contract::{SchemaEffect, TaskContract};
    use schedflow_dataflow::{StageKind, Workflow};

    let report = if stages.is_empty() {
        let cfg = schedflow_core::WorkflowConfig::new(schedflow_core::System::Frontier);
        let built = schedflow_core::build(&cfg);
        schedflow_lint::lint_workflow(&built.workflow)
    } else {
        let mut wf = Workflow::new();
        let trace = wf.value::<u32>("trace");
        let frame = wf.value::<u32>("frame");
        wf.task("generate", StageKind::Static, [], [trace.id()], |_| Ok(()));
        let curate_task = wf.task(
            "curate",
            StageKind::Static,
            [trace.id()],
            [frame.id()],
            |_| Ok(()),
        );
        wf.with_contract(
            curate_task,
            TaskContract::new().effect(
                frame.id(),
                SchemaEffect::Produces(schedflow_sacct::curated_schema()),
            ),
        );
        for stage in stages {
            let out = wf.value::<u32>(&format!("{stage}-out"));
            let task = wf.task(
                &format!("stage-{stage}"),
                StageKind::Static,
                [frame.id()],
                [out.id()],
                |_| Ok(()),
            );
            wf.retain(out.id());
            let required = schedflow_analytics::stage_schema(stage)
                .unwrap_or_else(|| panic!("unknown analytics stage {stage:?}"));
            wf.with_contract(task, TaskContract::new().require(frame.id(), required));
        }
        schedflow_lint::lint_workflow(&wf)
    };

    if report.has_errors() {
        print!("{}", report.render());
        eprintln!("lint gate: refusing to run — fix the schema contract errors above");
        std::process::exit(1);
    }
    println!("lint gate: clean ({} warning(s))", report.warnings());
    determinism_gate();
}

/// Digest every artifact of a small tracked workflow executed at the given
/// thread count ([`determinism_gate`]'s probe).
fn probe_digests(threads: usize) -> Vec<(String, Option<String>)> {
    use schedflow_dataflow::{RunOptions, Runner, StageKind, Workflow};

    let mut wf = Workflow::new();
    let parts: Vec<_> = (0..6)
        .map(|i| wf.value::<u64>(&format!("part-{i}")))
        .collect();
    for (i, part) in parts.iter().enumerate() {
        let part = *part;
        wf.task(
            &format!("make-{i}"),
            StageKind::Static,
            [],
            [part.id()],
            move |ctx| ctx.put(part, (i as u64 + 1).wrapping_mul(0x9E37_79B9)),
        );
        wf.track_digest(part);
    }
    let sum = wf.value::<u64>("sum");
    let inputs: Vec<_> = parts.iter().map(|p| p.id()).collect();
    let parts_for_body = parts.clone();
    wf.task("sum", StageKind::Static, inputs, [sum.id()], move |ctx| {
        let mut total = 0u64;
        for p in &parts_for_body {
            total = total.wrapping_add(*ctx.get(*p)?);
        }
        ctx.put(sum, total)
    });
    wf.retain(sum.id());
    wf.track_digest(sum);

    let runner = Runner::new(wf).expect("probe workflow is structurally valid");
    let report = runner.run(&RunOptions::with_threads(threads));
    assert!(report.is_success(), "determinism probe failed to execute");
    report
        .artifacts
        .iter()
        .map(|a| (a.name.clone(), a.digest.clone()))
        .collect()
}

/// Determinism gate: before an experiment regenerates a paper artifact, prove
/// the engine it runs on schedules deterministically — execute a small
/// digest-tracked workflow serially and on four workers and require identical
/// per-artifact content digests. A mismatch means task scheduling leaks into
/// results, which would make every regenerated figure unreproducible; the
/// binary refuses to continue. Called by [`lint_gate`], so every `repro_*`
/// binary certifies this alongside its schema contracts.
pub fn determinism_gate() {
    let serial = probe_digests(1);
    let parallel = probe_digests(4);
    if serial != parallel {
        eprintln!("determinism gate: artifact digests differ between 1 and 4 threads:");
        for ((name, s), (_, p)) in serial.iter().zip(&parallel) {
            if s != p {
                eprintln!("  {name}: {s:?} (serial) != {p:?} (parallel)");
            }
        }
        eprintln!("determinism gate: refusing to run — the engine is not replay-stable");
        std::process::exit(1);
    }
    println!(
        "determinism gate: {} artifact digest(s) identical at 1 and 4 threads",
        serial.len()
    );
}

/// Write a chart to `repro_out/<name>.html` and report the path.
pub fn save_chart(chart: &schedflow_charts::Chart, name: &str) {
    let path = out_dir().join(format!("{name}.html"));
    schedflow_charts::write_html(chart, &schedflow_charts::Geometry::default(), &path)
        .expect("write chart");
    println!("chart: {}", path.display());
}

/// A PASS/FAIL shape-check line.
pub fn check(label: &str, ok: bool) {
    println!("[{}] {label}", if ok { "PASS" } else { "FAIL" });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        assert!(scale() > 0.0);
        assert!(out_dir().exists());
    }

    #[test]
    fn determinism_probe_digests_match_across_thread_counts() {
        let serial = probe_digests(1);
        assert_eq!(serial.len(), 7, "6 parts + sum");
        assert_eq!(serial, probe_digests(4));
    }

    #[test]
    fn frames_have_analysis_columns() {
        // Tiny inline generation to keep the test quick.
        let profile = WorkloadProfile::andes().truncated_days(5).scaled(0.2);
        let records = TraceGenerator::new(profile, 1).generate();
        let frame = records_to_frame(&records).unwrap();
        for col in ["nnodes", "wait_s", "state", "backfilled", "nsteps", "year"] {
            assert!(frame.has_column(col), "{col}");
        }
    }
}
