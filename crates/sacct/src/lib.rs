//! # schedflow-sacct
//!
//! sacct emulation: the textual interface between the scheduler's accounting
//! database and the analysis workflow.
//!
//! * [`render`] — emit records as authentic `sacct -P` pipe-separated text
//!   (curated 60-field header, step lines interleaved after their jobs),
//!   with optional deterministic corruption to exercise curation;
//! * [`parse`] — read that text back, discarding malformed lines into a
//!   [`parse::ParseReport`];
//! * [`store`] — an in-memory accounting database queryable by date range;
//! * [`fetch`] — the parameterized obtain-data stage: monthly/yearly
//!   granularity, on-disk caching, parallel multi-period fan-out (the GNU
//!   Parallel substitute);
//! * [`curate`] — the curate stage: raw text → cleaned typed frame → CSV.

pub mod curate;
pub mod fetch;
pub mod parse;
pub mod render;
pub mod store;

pub use curate::{
    curate_file, curate_file_cached, curate_reader, curated_schema, records_to_frame, CurateError,
    CurationResult,
};
pub use fetch::{
    clear_cache, obtain_data, FetchError, FetchResult, FetchSpec, Granularity, Period,
};
pub use parse::{parse_records, ParseReport};
pub use render::{header, job_line, step_line, write_records, RenderOptions};
pub use store::AccountingStore;
