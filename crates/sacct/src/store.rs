//! The accounting store: an in-memory stand-in for the Slurm accounting
//! database (slurmdbd) that the obtain-data stage queries.

use schedflow_model::record::JobRecord;
use schedflow_model::time::{month_end_exclusive, month_start, Timestamp};

/// Records indexed by submit time, queryable by date range.
pub struct AccountingStore {
    /// Sorted by (submit, id).
    records: Vec<JobRecord>,
    /// Cluster name (all records in one store belong to one cluster).
    cluster: String,
}

impl AccountingStore {
    /// Build a store; records are sorted internally.
    pub fn new(cluster: &str, mut records: Vec<JobRecord>) -> Self {
        records.sort_by_key(|r| (r.submit, r.id.id, r.id.array_task));
        AccountingStore {
            records,
            cluster: cluster.to_owned(),
        }
    }

    pub fn cluster(&self) -> &str {
        &self.cluster
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Jobs submitted in `[start, end)`.
    pub fn query(&self, start: Timestamp, end: Timestamp) -> &[JobRecord] {
        let lo = self.records.partition_point(|r| r.submit < start);
        let hi = self.records.partition_point(|r| r.submit < end);
        &self.records[lo..hi]
    }

    /// Jobs submitted in the given month.
    pub fn query_month(&self, year: i32, month: u8) -> &[JobRecord] {
        self.query(month_start(year, month), month_end_exclusive(year, month))
    }

    /// Jobs submitted in the given year.
    pub fn query_year(&self, year: i32) -> &[JobRecord] {
        self.query(
            Timestamp::from_ymd(year, 1, 1),
            Timestamp::from_ymd(year + 1, 1, 1),
        )
    }

    /// `(first, last)` submit times, if nonempty.
    pub fn span(&self) -> Option<(Timestamp, Timestamp)> {
        Some((self.records.first()?.submit, self.records.last()?.submit))
    }

    /// Distinct `(year, month)` pairs covered, in order.
    pub fn months(&self) -> Vec<(i32, u8)> {
        let mut out: Vec<(i32, u8)> = Vec::new();
        for r in &self.records {
            let ym = r.submit.year_month();
            if out.last() != Some(&ym) {
                out.push(ym);
            }
        }
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedflow_model::record::JobRecordBuilder;

    fn store() -> AccountingStore {
        let mk = |id: u64, y: i32, m: u8, d: u8| {
            let t = Timestamp::from_ymd(y, m, d);
            JobRecordBuilder::new(id).times(t, t + 60, t + 3660).build()
        };
        AccountingStore::new(
            "frontier",
            vec![
                mk(3, 2024, 2, 10),
                mk(1, 2024, 1, 5),
                mk(2, 2024, 1, 20),
                mk(4, 2024, 3, 1),
            ],
        )
    }

    #[test]
    fn records_are_sorted_by_submit() {
        let s = store();
        let ids: Vec<u64> = s.records().iter().map(|r| r.id.id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4]);
    }

    #[test]
    fn month_queries() {
        let s = store();
        assert_eq!(s.query_month(2024, 1).len(), 2);
        assert_eq!(s.query_month(2024, 2).len(), 1);
        assert_eq!(s.query_month(2024, 4).len(), 0);
    }

    #[test]
    fn year_queries() {
        let s = store();
        assert_eq!(s.query_year(2024).len(), 4);
        assert_eq!(s.query_year(2023).len(), 0);
    }

    #[test]
    fn half_open_range() {
        let s = store();
        let jan20 = Timestamp::from_ymd(2024, 1, 20);
        assert_eq!(s.query(Timestamp::from_ymd(2024, 1, 1), jan20).len(), 1);
        assert_eq!(s.query(jan20, Timestamp::from_ymd(2024, 4, 1)).len(), 3);
    }

    #[test]
    fn months_enumeration() {
        assert_eq!(store().months(), vec![(2024, 1), (2024, 2), (2024, 3)]);
    }

    #[test]
    fn span_and_empty() {
        let s = store();
        let (a, b) = s.span().unwrap();
        assert_eq!(a, Timestamp::from_ymd(2024, 1, 5));
        assert_eq!(b, Timestamp::from_ymd(2024, 3, 1));
        let empty = AccountingStore::new("x", vec![]);
        assert!(empty.span().is_none());
        assert!(empty.is_empty());
    }
}
