//! Rendering job records into sacct's pipe-separated text format.
//!
//! The obtain-data stage of the paper queries the Slurm accounting database
//! for the curated 60 fields and writes pipe-separated text. This module is
//! the emitting half of that wire format: a header line of field names, one
//! line per job, and one line per step interleaved after its job (exactly how
//! `sacct -P` output is shaped).

use schedflow_model::fields::curated_fields;
use schedflow_model::record::{JobRecord, StepRecord};
use schedflow_model::time::Elapsed;
use std::io::Write;

/// The pipe separator used by `sacct -P`.
pub const SEP: char = '|';

/// Render the curated header line.
pub fn header() -> String {
    curated_fields().join("|")
}

/// Value of one curated field for a *job* line.
pub fn job_field(record: &JobRecord, field: &str) -> String {
    match field {
        "JobID" => record.id.to_sacct(),
        "Partition" => record.partition.clone(),
        "Reservation" => record.reservation.clone().unwrap_or_default(),
        "ReservationID" => record
            .reservation_id
            .map(|i| i.to_string())
            .unwrap_or_default(),
        "User" => record.user.name(),
        "Account" => record.account.0.clone(),
        "JobName" => record.name.clone(),
        "UID" => (10_000 + record.user.0).to_string(),
        "GID" => "9000".to_owned(),
        "Cluster" => record.cluster.clone(),
        "SubmitTime" => record.submit.to_sacct(),
        "StartTime" => record.start.to_sacct(),
        "EndTime" => record.end.to_sacct(),
        "Eligible" => record.eligible.to_sacct(),
        "Elapsed" => record.elapsed.to_sacct(),
        "Timelimit" => record.timelimit.to_sacct(),
        "Suspended" => record.suspended.to_sacct(),
        "CPUTime" => Elapsed(record.elapsed.0 * i64::from(record.ncpus)).to_sacct(),
        "NNodes" => record.nnodes.to_string(),
        "NCPUs" => record.ncpus.to_string(),
        "NTasks" => record.ntasks.to_string(),
        "ReqMem" => record.req_mem.to_sacct(),
        "ReqGRES" => record.req_gres.clone(),
        "Layout" => record.layout.to_sacct().to_owned(),
        "AllocCPUS" => record.ncpus.to_string(),
        "AllocNodes" => record.nnodes.to_string(),
        "AllocTRES" => record.alloc_tres.to_sacct(),
        "ReqCPUS" => record.ncpus.to_string(),
        "ReqNodes" => record.nnodes.to_string(),
        "VMSize" => record.ave_vm_size_bytes.to_string(),
        "AveCPU" => String::new(), // step-level quantity
        "MaxRSS" => record.max_rss_bytes.to_string(),
        "TotalCPU" => record.total_cpu.to_sacct(),
        "NodeList" => record.node_list.clone(),
        "ConsumedEnergy" => record.consumed_energy_j.to_string(),
        "AveRSS" => (record.max_rss_bytes * 7 / 10).to_string(),
        "AveVMSize" => record.ave_vm_size_bytes.to_string(),
        "WorkDir" => record.work_dir.clone(),
        "AveDiskRead" => record.ave_disk_read.to_string(),
        "AveDiskWrite" => record.ave_disk_write.to_string(),
        "MaxDiskRead" => record.max_disk_read.to_string(),
        "MaxDiskWrite" => record.max_disk_write.to_string(),
        "State" => record.state.to_sacct().to_owned(),
        "ExitCode" => record.exit_code.to_sacct(),
        "Reason" => record.reason.to_sacct().to_owned(),
        "Restarts" => record.restarts.to_string(),
        "Constraints" => record.constraints.clone(),
        "Priority" => record.priority.to_string(),
        "QOS" => record.qos.clone(),
        "QOSReq" => record.qos.clone(),
        "Flags" => record.flags.to_sacct(),
        "TRESUsageInAve" => String::new(), // step-level quantity
        "TRESReq" => record.alloc_tres.to_sacct(),
        "Backfill" => if record.is_backfilled() { "1" } else { "0" }.to_owned(),
        "Dependency" => record
            .dependency
            .map(|d| format!("afterany:{d}"))
            .unwrap_or_default(),
        "ArrayJobID" => record
            .array_job_id
            .map(|a| a.to_string())
            .unwrap_or_default(),
        "Comment" => record.comment.clone(),
        "SystemComment" => String::new(),
        "AdminComment" => String::new(),
        "SubmitLine" => format!("sbatch {}.sl", record.name),
        other => panic!("unmapped curated field {other:?}"),
    }
}

/// Value of one curated field for a *step* line (sacct leaves most job-level
/// fields blank on steps).
pub fn step_field(step: &StepRecord, field: &str) -> String {
    match field {
        "JobID" => step.id.to_sacct(),
        "JobName" => step.name.clone(),
        "StartTime" => step.start.to_sacct(),
        "EndTime" => step.end.to_sacct(),
        "Elapsed" => step.elapsed.to_sacct(),
        "NNodes" => step.nnodes.to_string(),
        "NTasks" => step.ntasks.to_string(),
        "AveCPU" => step.ave_cpu.to_sacct(),
        "MaxRSS" => step.max_rss_bytes.to_string(),
        "AveDiskRead" => step.ave_disk_read.to_string(),
        "AveDiskWrite" => step.ave_disk_write.to_string(),
        "State" => step.state.to_sacct().to_owned(),
        "ExitCode" => step.exit_code.to_sacct(),
        "TRESUsageInAve" => step.tres_usage_in_ave.to_sacct(),
        _ => String::new(),
    }
}

/// Render one job line.
pub fn job_line(record: &JobRecord) -> String {
    let fields = curated_fields();
    let mut out = String::with_capacity(fields.len() * 12);
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(SEP);
        }
        out.push_str(&job_field(record, f));
    }
    out
}

/// Render one step line.
pub fn step_line(step: &StepRecord) -> String {
    let fields = curated_fields();
    let mut out = String::with_capacity(fields.len() * 6);
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(SEP);
        }
        out.push_str(&step_field(step, f));
    }
    out
}

/// Options for [`write_records`].
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Include step lines after each job line.
    pub with_steps: bool,
    /// Deterministically corrupt about this fraction of job lines (hardware
    /// write errors in real accounting archives; the paper reports <0.002%
    /// malformed records that curation must discard).
    pub corrupt_fraction: f64,
}

impl Default for RenderOptions {
    fn default() -> Self {
        Self {
            with_steps: true,
            corrupt_fraction: 0.0,
        }
    }
}

impl RenderOptions {
    pub fn with_corruption(mut self, fraction: f64) -> Self {
        self.corrupt_fraction = fraction;
        self
    }

    pub fn jobs_only(mut self) -> Self {
        self.with_steps = false;
        self
    }
}

/// Write header + records (+ steps) to `writer`.
pub fn write_records(
    records: &[JobRecord],
    writer: &mut impl Write,
    options: &RenderOptions,
) -> std::io::Result<()> {
    writeln!(writer, "{}", header())?;
    // Deterministic corruption: hash of the job id decides.
    let threshold = (options.corrupt_fraction.clamp(0.0, 1.0) * u32::MAX as f64) as u32;
    for r in records {
        let mut line = job_line(r);
        if threshold > 0 && cheap_hash(r.id.id) < threshold {
            // Truncate mid-field: the classic torn-write artifact.
            let cut = line.len() / 3;
            line.truncate(cut.max(1));
        }
        writeln!(writer, "{line}")?;
        if options.with_steps {
            for s in &r.steps {
                writeln!(writer, "{}", step_line(s))?;
            }
        }
    }
    Ok(())
}

fn cheap_hash(x: u64) -> u32 {
    // splitmix64 finalizer.
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedflow_model::record::JobRecordBuilder;

    #[test]
    fn header_has_60_fields() {
        assert_eq!(header().split('|').count(), 60);
        assert!(header().starts_with("JobID|"));
    }

    #[test]
    fn job_line_has_60_fields() {
        let r = JobRecordBuilder::new(42).build();
        assert_eq!(job_line(&r).split('|').count(), 60);
    }

    #[test]
    fn every_curated_field_is_mapped() {
        let r = JobRecordBuilder::new(1).build();
        for f in curated_fields() {
            let _ = job_field(&r, f); // panics on unmapped fields
        }
    }

    #[test]
    fn backfill_indicator_derives_from_flags() {
        use schedflow_model::flags::{Flag, JobFlags};
        let r = JobRecordBuilder::new(1)
            .flags(JobFlags::EMPTY.with(Flag::SchedBackfill))
            .build();
        assert_eq!(job_field(&r, "Backfill"), "1");
        let r2 = JobRecordBuilder::new(2).build();
        assert_eq!(job_field(&r2, "Backfill"), "0");
    }

    #[test]
    fn write_records_interleaves_steps() {
        let r = JobRecordBuilder::new(5).build();
        let mut buf = Vec::new();
        write_records(&[r], &mut buf, &RenderOptions::default()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2); // header + job (no steps built)
    }

    #[test]
    fn corruption_is_deterministic_and_partial() {
        let records: Vec<_> = (0..1000)
            .map(|i| JobRecordBuilder::new(i).build())
            .collect();
        let render = || {
            let mut buf = Vec::new();
            write_records(
                &records,
                &mut buf,
                &RenderOptions::default().with_corruption(0.01),
            )
            .unwrap();
            String::from_utf8(buf).unwrap()
        };
        let a = render();
        let b = render();
        assert_eq!(a, b, "corruption must be deterministic");
        let bad = a
            .lines()
            .skip(1)
            .filter(|l| l.split('|').count() != 60)
            .count();
        assert!(bad > 0 && bad < 50, "bad={bad}");
    }
}
