//! The obtain-data stage: parameterized, cached, parallel trace retrieval.
//!
//! Mirrors §3.1 of the paper: "users can define the desired date range,
//! choose the data granularity (yearly or monthly), and indicate whether
//! previously cached data should be used. … For large-scale retrievals
//! across many months or years, GNU Parallel is employed to execute multiple
//! database queries concurrently." Here the database is an
//! [`AccountingStore`], the cache is a directory of pipe-separated text
//! files, and the concurrency comes from scoped threads.

use crate::render::{write_records, RenderOptions};
use crate::store::AccountingStore;
use schedflow_dataflow::store::FileCheck;
use schedflow_model::time::month_range;
use std::path::{Path, PathBuf};

/// Query granularity: one output file per month or per year.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    Monthly,
    Yearly,
}

/// One period to fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Period {
    Month(i32, u8),
    Year(i32),
}

impl Period {
    pub fn file_stem(&self) -> String {
        match self {
            Period::Month(y, m) => format!("{y:04}-{m:02}"),
            Period::Year(y) => format!("{y:04}"),
        }
    }
}

/// Parameters of one obtain-data invocation (the workflow's `date_spec`,
/// `dates`, `cache` arguments).
#[derive(Debug, Clone)]
pub struct FetchSpec {
    /// Inclusive month range `(from, to)` as `(year, month)`.
    pub from: (i32, u8),
    pub to: (i32, u8),
    pub granularity: Granularity,
    /// Cache directory; files land in `<dir>/<cluster>/<period>.txt`.
    pub cache_dir: PathBuf,
    /// Refetch even when a cache file exists.
    pub force: bool,
    /// Rendering knobs (step inclusion, corruption injection).
    pub render: RenderOptions,
    /// Attempts per period, including the first (clamped to at least 1).
    /// Real `sacct` calls against a busy slurmdbd fail transiently; each
    /// period is retried independently with exponential backoff.
    pub max_attempts: u32,
    /// Backoff before retry k (1-based) is `backoff_ms * 2^(k-1)`.
    pub backoff_ms: u64,
}

impl FetchSpec {
    pub fn monthly(from: (i32, u8), to: (i32, u8), cache_dir: impl Into<PathBuf>) -> Self {
        FetchSpec {
            from,
            to,
            granularity: Granularity::Monthly,
            cache_dir: cache_dir.into(),
            force: false,
            render: RenderOptions::default(),
            max_attempts: 3,
            backoff_ms: 10,
        }
    }

    /// The periods this spec expands to.
    pub fn periods(&self) -> Vec<Period> {
        match self.granularity {
            Granularity::Monthly => month_range(self.from, self.to)
                .map(|(y, m)| Period::Month(y, m))
                .collect(),
            Granularity::Yearly => (self.from.0..=self.to.0).map(Period::Year).collect(),
        }
    }
}

/// Outcome of fetching one period.
#[derive(Debug, Clone)]
pub struct FetchResult {
    pub period: Period,
    pub path: PathBuf,
    /// Served from cache without touching the store.
    pub cached: bool,
    /// Jobs written (0 when cached).
    pub jobs_written: usize,
    /// Non-fatal observations (e.g. a checksum-corrupt cache file that was
    /// quarantined and refetched). A silent refetch would hide the evidence
    /// that the cache directory is rotting.
    pub warnings: Vec<String>,
}

/// Errors from the fetch stage.
#[derive(Debug)]
pub enum FetchError {
    /// An I/O failure, annotated with the period and path being fetched when
    /// known — "fetch io error: permission denied" is undebuggable across a
    /// 24-month fan-out without them.
    Io {
        period: Option<String>,
        path: Option<PathBuf>,
        source: std::io::Error,
    },
}

impl FetchError {
    fn io_for<'a>(
        period: &'a Period,
        path: &'a Path,
    ) -> impl FnOnce(std::io::Error) -> FetchError + 'a {
        move |source| FetchError::Io {
            period: Some(period.file_stem()),
            path: Some(path.to_path_buf()),
            source,
        }
    }
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::Io {
                period,
                path,
                source,
            } => {
                write!(f, "fetch io error")?;
                if let Some(p) = period {
                    write!(f, " for period {p}")?;
                }
                if let Some(p) = path {
                    write!(f, " at {}", p.display())?;
                }
                write!(f, ": {source}")
            }
        }
    }
}

impl std::error::Error for FetchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FetchError::Io { source, .. } => Some(source),
        }
    }
}

impl From<std::io::Error> for FetchError {
    fn from(source: std::io::Error) -> Self {
        FetchError::Io {
            period: None,
            path: None,
            source,
        }
    }
}

/// A cache file is trustworthy only if it is non-empty and newline-terminated
/// — `write_records` always ends with `\n`, so anything else is a torn write
/// from a crashed fetch (or external truncation) and must be treated as a
/// cache miss, not parsed into silently short data.
fn cache_file_valid(path: &Path) -> bool {
    use std::io::{Read, Seek, SeekFrom};
    let Ok(mut f) = std::fs::File::open(path) else {
        return false;
    };
    let Ok(len) = f.seek(SeekFrom::End(0)) else {
        return false;
    };
    if len == 0 {
        return false;
    }
    if f.seek(SeekFrom::End(-1)).is_err() {
        return false;
    }
    let mut last = [0u8; 1];
    f.read_exact(&mut last).is_ok() && last[0] == b'\n'
}

/// Fetch every period of `spec` from `store`, concurrently, reusing fresh
/// cache files unless `force` is set. Results are in period order.
pub fn obtain_data(
    store: &AccountingStore,
    spec: &FetchSpec,
) -> Result<Vec<FetchResult>, FetchError> {
    let dir = spec.cache_dir.join(store.cluster());
    std::fs::create_dir_all(&dir)?;
    let periods = spec.periods();

    let durable = schedflow_dataflow::store::ambient();
    let fetch_once = |period: &Period| -> Result<FetchResult, FetchError> {
        let path = dir.join(format!("{}.txt", period.file_stem()));
        let mut warnings = Vec::new();
        // A cache hit requires a *valid* file. A checksum-verified file is
        // trusted outright; a legacy footerless file falls back to the
        // newline heuristic (truncated or empty = torn write = miss). A
        // checksum *mismatch* is not a mere miss: the file is quarantined to
        // `<name>.corrupt` and the refetch is reported as a warning.
        if !spec.force && path.exists() {
            match durable.check_file(&path) {
                Ok(FileCheck::Verified) => {
                    return Ok(FetchResult {
                        period: *period,
                        path,
                        cached: true,
                        jobs_written: 0,
                        warnings,
                    });
                }
                Ok(FileCheck::Unchecksummed) if cache_file_valid(&path) => {
                    return Ok(FetchResult {
                        period: *period,
                        path,
                        cached: true,
                        jobs_written: 0,
                        warnings,
                    });
                }
                Ok(FileCheck::Corrupt) => {
                    let _ = durable.quarantine(&path);
                    warnings.push(format!(
                        "cache file {} failed checksum verification; quarantined to \
                         {}.corrupt and refetched",
                        path.display(),
                        path.display()
                    ));
                }
                _ => {} // legacy-invalid or unreadable: a plain miss
            }
        }
        let records = match period {
            Period::Month(y, m) => store.query_month(*y, *m),
            Period::Year(y) => store.query_year(*y),
        };
        // Land through the durable store (temp file → fsync → rename →
        // dir-fsync, checksum footer), so a crashed fetch never leaves a
        // half-written file that a later run trusts as cache.
        let mut buf = Vec::new();
        write_records(records, &mut buf, &spec.render)
            .map_err(FetchError::io_for(period, &path))?;
        durable
            .write_atomic(&path, &buf)
            .map_err(FetchError::io_for(period, &path))?;
        Ok(FetchResult {
            period: *period,
            path,
            cached: false,
            jobs_written: records.len(),
            warnings,
        })
    };

    // Retry each period independently with exponential backoff; periods are
    // isolated, so one flaky month never costs the others their work.
    let fetch_one = |period: &Period| -> Result<FetchResult, FetchError> {
        let attempts = spec.max_attempts.max(1);
        let mut last_err = None;
        for attempt in 1..=attempts {
            match fetch_once(period) {
                Ok(r) => return Ok(r),
                Err(e) => {
                    if attempt < attempts && spec.backoff_ms > 0 {
                        let delay = spec
                            .backoff_ms
                            .saturating_mul(1u64 << (attempt - 1).min(20));
                        std::thread::sleep(std::time::Duration::from_millis(delay));
                    }
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.expect("at least one attempt ran"))
    };

    // Parallel fan-out over periods (the GNU Parallel substitute).
    let threads = schedflow_dataflow::par::threads().min(periods.len().max(1));
    let ranges = schedflow_dataflow::par::split_ranges(periods.len(), threads);
    let mut results: Vec<Option<Result<FetchResult, FetchError>>> =
        (0..periods.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for range in ranges {
            let periods = &periods;
            let fetch_one = &fetch_one;
            joins.push(scope.spawn(move || {
                range
                    .clone()
                    .map(|i| (i, fetch_one(&periods[i])))
                    .collect::<Vec<_>>()
            }));
        }
        for j in joins {
            for (i, r) in j.join().expect("fetch worker panicked") {
                results[i] = Some(r);
            }
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("all periods fetched"))
        .collect()
}

/// Remove cached files for a cluster (used by `--force`-style workflows).
pub fn clear_cache(cache_dir: &Path, cluster: &str) -> std::io::Result<()> {
    let dir = cache_dir.join(cluster);
    if dir.exists() {
        std::fs::remove_dir_all(&dir)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedflow_model::record::JobRecordBuilder;
    use schedflow_model::time::Timestamp;

    fn store() -> AccountingStore {
        let mut records = Vec::new();
        let mut id = 0;
        for m in 1..=4u8 {
            for d in [3, 12, 25] {
                let t = Timestamp::from_ymd(2024, m, d);
                id += 1;
                records.push(JobRecordBuilder::new(id).times(t, t + 30, t + 3630).build());
            }
        }
        AccountingStore::new("testclus", records)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("schedflow-fetch-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn monthly_fetch_writes_one_file_per_month() {
        let dir = temp_dir("monthly");
        let spec = FetchSpec::monthly((2024, 1), (2024, 4), &dir);
        let results = obtain_data(&store(), &spec).unwrap();
        assert_eq!(results.len(), 4);
        for r in &results {
            assert!(!r.cached);
            assert_eq!(r.jobs_written, 3);
            assert!(r.path.exists());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_fetch_hits_cache() {
        let dir = temp_dir("cache");
        let spec = FetchSpec::monthly((2024, 1), (2024, 2), &dir);
        let s = store();
        let first = obtain_data(&s, &spec).unwrap();
        assert!(first.iter().all(|r| !r.cached));
        let second = obtain_data(&s, &spec).unwrap();
        assert!(second.iter().all(|r| r.cached));
        // Force overrides the cache.
        let mut forced = spec.clone();
        forced.force = true;
        let third = obtain_data(&s, &forced).unwrap();
        assert!(third.iter().all(|r| !r.cached));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn yearly_granularity() {
        let dir = temp_dir("yearly");
        let mut spec = FetchSpec::monthly((2024, 1), (2024, 12), &dir);
        spec.granularity = Granularity::Yearly;
        let results = obtain_data(&store(), &spec).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].jobs_written, 12);
        assert!(results[0].path.ends_with("testclus/2024.txt"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn written_files_parse_back() {
        let dir = temp_dir("parse");
        let spec = FetchSpec::monthly((2024, 2), (2024, 2), &dir);
        let results = obtain_data(&store(), &spec).unwrap();
        let payload = schedflow_dataflow::store::ambient()
            .read_verified(&results[0].path)
            .unwrap()
            .into_bytes();
        let (records, report) = crate::parse::parse_records(std::io::Cursor::new(payload)).unwrap();
        assert_eq!(records.len(), 3);
        assert!(report.malformed.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_cache_removes_files() {
        let dir = temp_dir("clear");
        let spec = FetchSpec::monthly((2024, 1), (2024, 1), &dir);
        obtain_data(&store(), &spec).unwrap();
        clear_cache(&dir, "testclus").unwrap();
        assert!(!dir.join("testclus").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn period_stems() {
        assert_eq!(Period::Month(2024, 3).file_stem(), "2024-03");
        assert_eq!(Period::Year(2023).file_stem(), "2023");
    }

    #[test]
    fn truncated_cache_file_is_refetched() {
        let dir = temp_dir("truncated");
        let spec = FetchSpec::monthly((2024, 1), (2024, 1), &dir);
        let s = store();
        let first = obtain_data(&s, &spec).unwrap();
        assert!(!first[0].cached);
        let path = &first[0].path;

        // Chop the file mid-line (no trailing newline): torn write.
        let full = std::fs::read(path).unwrap();
        std::fs::write(path, &full[..full.len() / 2]).unwrap();
        let second = obtain_data(&s, &spec).unwrap();
        assert!(!second[0].cached, "truncated cache must be a miss");
        assert_eq!(std::fs::read(path).unwrap(), full, "refetch restores it");

        // Empty file: also a miss.
        std::fs::write(path, b"").unwrap();
        let third = obtain_data(&s, &spec).unwrap();
        assert!(!third[0].cached, "empty cache must be a miss");

        // Intact file: a hit.
        let fourth = obtain_data(&s, &spec).unwrap();
        assert!(fourth[0].cached);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_is_quarantined_with_warning_not_silently_refetched() {
        let dir = temp_dir("corrupt");
        let spec = FetchSpec::monthly((2024, 1), (2024, 1), &dir);
        let s = store();
        let first = obtain_data(&s, &spec).unwrap();
        let path = first[0].path.clone();

        // Flip one payload byte, keeping the checksum footer: the file now
        // fails verification rather than the newline heuristic.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let second = obtain_data(&s, &spec).unwrap();
        assert!(!second[0].cached, "corrupt cache refetched");
        assert_eq!(second[0].warnings.len(), 1, "refetch carries a warning");
        assert!(second[0].warnings[0].contains("quarantined"));
        let corrupt = path.with_file_name("2024-01.txt.corrupt");
        assert!(corrupt.exists(), "damaged evidence kept: {corrupt:?}");

        // The refetched file verifies again and hits on the next pass.
        let third = obtain_data(&s, &spec).unwrap();
        assert!(third[0].cached);
        assert!(third[0].warnings.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn io_errors_carry_period_and_path_context() {
        let dir = temp_dir("errctx");
        std::fs::create_dir_all(dir.join("testclus")).unwrap();
        // Make the period's cache path a *directory* so the rename fails.
        std::fs::create_dir_all(dir.join("testclus/2024-01.txt")).unwrap();
        let spec = FetchSpec::monthly((2024, 1), (2024, 1), &dir);
        let err = obtain_data(&store(), &spec).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("2024-01"), "period in message: {msg}");
        assert!(msg.contains("2024-01.txt"), "path in message: {msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retries_are_bounded() {
        // A permanently failing period errors out after max_attempts rather
        // than looping; with backoff_ms=0 this is fast.
        let dir = temp_dir("bounded");
        std::fs::create_dir_all(dir.join("testclus")).unwrap();
        std::fs::create_dir_all(dir.join("testclus/2024-01.txt")).unwrap();
        let mut spec = FetchSpec::monthly((2024, 1), (2024, 1), &dir);
        spec.max_attempts = 5;
        spec.backoff_ms = 0;
        assert!(obtain_data(&store(), &spec).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
