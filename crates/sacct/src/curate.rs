//! The curate stage: raw pipe-separated sacct text → cleaned, typed, CSV.
//!
//! Reproduces §3.1's "Curate Data": removes malformed entries, performs the
//! unit conversions §2 describes (raw seconds → minutes for readability,
//! suffixed counts → plain integers), derives analysis columns (queue wait,
//! walltime utilization, backfill indicator), and reformats from
//! pipe-separated text to CSV "for compatibility with analysis libraries".

use crate::parse::{parse_records, ParseReport};
use schedflow_dataflow::contract::{ColType, FrameSchema};
use schedflow_frame::{Column, Frame, FrameError};
use schedflow_model::record::JobRecord;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::SystemTime;

/// Errors from the curate stage, with enough context to name the failing
/// column instead of panicking mid-frame-build.
#[derive(Debug)]
pub enum CurateError {
    /// Reading the raw file or writing the CSV side product failed.
    Io(std::io::Error),
    /// Assembling one analysis column into the frame failed.
    Column {
        column: &'static str,
        rows: usize,
        source: FrameError,
    },
}

impl std::fmt::Display for CurateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CurateError::Io(e) => write!(f, "curate io error: {e}"),
            CurateError::Column {
                column,
                rows,
                source,
            } => write!(f, "curate column `{column}` ({rows} rows): {source}"),
        }
    }
}

impl std::error::Error for CurateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CurateError::Io(e) => Some(e),
            CurateError::Column { source, .. } => Some(source),
        }
    }
}

impl From<std::io::Error> for CurateError {
    fn from(e: std::io::Error) -> Self {
        CurateError::Io(e)
    }
}

/// Result of curating one raw file.
pub struct CurationResult {
    /// Job-level analysis frame.
    pub frame: Frame,
    /// Parse/discard accounting.
    pub report: ParseReport,
}

/// The static schema of the curated job-level frame — the root fact the
/// lint layer propagates through the analysis DAG. Must match
/// [`records_to_frame`] column for column (a unit test enforces this).
pub fn curated_schema() -> FrameSchema {
    FrameSchema::new()
        .with("job_id", ColType::Str)
        .with("user", ColType::Str)
        .with("account", ColType::Str)
        .with("partition", ColType::Str)
        .with("qos", ColType::Str)
        .with("state", ColType::Str)
        .with("submit", ColType::Int)
        .with("eligible", ColType::Int)
        .with_nullable("start", ColType::Int)
        .with_nullable("end", ColType::Int)
        .with_nullable("wait_s", ColType::Int)
        .with("elapsed_s", ColType::Int)
        .with("elapsed_min", ColType::Float)
        .with_nullable("timelimit_s", ColType::Int)
        .with_nullable("walltime_util", ColType::Float)
        .with("nnodes", ColType::Int)
        .with("ncpus", ColType::Int)
        .with("ntasks", ColType::Int)
        .with("backfilled", ColType::Bool)
        .with("dependent", ColType::Bool)
        .with("is_array", ColType::Bool)
        .with("nsteps", ColType::Int)
        .with("year", ColType::Int)
        .with("month", ColType::Int)
        .with("energy_j", ColType::Int)
        .with("node_hours", ColType::Float)
}

/// Build the job-level analysis frame from typed records.
///
/// One row per job; step detail is aggregated into `nsteps` (the figure-1
/// quantity). Column types are chosen for direct consumption by the
/// analytics stages.
pub fn records_to_frame(records: &[JobRecord]) -> Result<Frame, CurateError> {
    let n = records.len();
    let mut job_id = Vec::with_capacity(n);
    let mut user = Vec::with_capacity(n);
    let mut account = Vec::with_capacity(n);
    let mut partition = Vec::with_capacity(n);
    let mut qos = Vec::with_capacity(n);
    let mut state = Vec::with_capacity(n);
    let mut submit = Vec::with_capacity(n);
    let mut eligible = Vec::with_capacity(n);
    let mut start = Vec::with_capacity(n);
    let mut end = Vec::with_capacity(n);
    let mut wait_s = Vec::with_capacity(n);
    let mut elapsed_s = Vec::with_capacity(n);
    let mut elapsed_min = Vec::with_capacity(n);
    let mut timelimit_s = Vec::with_capacity(n);
    let mut walltime_util = Vec::with_capacity(n);
    let mut nnodes = Vec::with_capacity(n);
    let mut ncpus = Vec::with_capacity(n);
    let mut ntasks = Vec::with_capacity(n);
    let mut backfilled = Vec::with_capacity(n);
    let mut dependent = Vec::with_capacity(n);
    let mut is_array = Vec::with_capacity(n);
    let mut nsteps = Vec::with_capacity(n);
    let mut year = Vec::with_capacity(n);
    let mut month = Vec::with_capacity(n);
    let mut energy_j = Vec::with_capacity(n);
    let mut node_hours = Vec::with_capacity(n);

    for r in records {
        job_id.push(r.id.to_sacct());
        user.push(r.user.name());
        account.push(r.account.0.clone());
        partition.push(r.partition.clone());
        qos.push(r.qos.clone());
        state.push(r.state.to_sacct().to_owned());
        submit.push(r.submit.0);
        eligible.push(r.eligible.0);
        start.push((!r.start.is_unknown()).then_some(r.start.0));
        end.push((!r.end.is_unknown()).then_some(r.end.0));
        wait_s.push(r.wait_secs());
        elapsed_s.push(r.elapsed.0);
        elapsed_min.push(r.elapsed.as_minutes());
        timelimit_s.push(r.requested_secs());
        walltime_util.push(r.walltime_utilization());
        nnodes.push(i64::from(r.nnodes));
        ncpus.push(i64::from(r.ncpus));
        ntasks.push(i64::from(r.ntasks));
        backfilled.push(r.is_backfilled());
        dependent.push(r.dependency.is_some());
        is_array.push(r.array_job_id.is_some());
        nsteps.push(r.step_count() as i64);
        let (y, m) = r.submit.year_month();
        year.push(i64::from(y));
        month.push(i64::from(m));
        energy_j.push(r.consumed_energy_j as i64);
        node_hours.push(f64::from(r.nnodes) * r.elapsed.as_hours());
    }

    let mut frame = Frame::new();
    let add = |frame: &mut Frame, name: &'static str, col: Column| {
        frame
            .add_column(name, col)
            .map_err(|source| CurateError::Column {
                column: name,
                rows: n,
                source,
            })
    };
    add(&mut frame, "job_id", Column::from_str(job_id))?;
    add(&mut frame, "user", Column::from_str(user))?;
    add(&mut frame, "account", Column::from_str(account))?;
    add(&mut frame, "partition", Column::from_str(partition))?;
    add(&mut frame, "qos", Column::from_str(qos))?;
    add(&mut frame, "state", Column::from_str(state))?;
    add(&mut frame, "submit", Column::from_i64(submit))?;
    add(&mut frame, "eligible", Column::from_i64(eligible))?;
    add(&mut frame, "start", Column::from_opt_i64(start))?;
    add(&mut frame, "end", Column::from_opt_i64(end))?;
    add(&mut frame, "wait_s", Column::from_opt_i64(wait_s))?;
    add(&mut frame, "elapsed_s", Column::from_i64(elapsed_s))?;
    add(&mut frame, "elapsed_min", Column::from_f64(elapsed_min))?;
    add(&mut frame, "timelimit_s", Column::from_opt_i64(timelimit_s))?;
    add(
        &mut frame,
        "walltime_util",
        Column::from_opt_f64(walltime_util),
    )?;
    add(&mut frame, "nnodes", Column::from_i64(nnodes))?;
    add(&mut frame, "ncpus", Column::from_i64(ncpus))?;
    add(&mut frame, "ntasks", Column::from_i64(ntasks))?;
    add(&mut frame, "backfilled", Column::from_bool(backfilled))?;
    add(&mut frame, "dependent", Column::from_bool(dependent))?;
    add(&mut frame, "is_array", Column::from_bool(is_array))?;
    add(&mut frame, "nsteps", Column::from_i64(nsteps))?;
    add(&mut frame, "year", Column::from_i64(year))?;
    add(&mut frame, "month", Column::from_i64(month))?;
    add(&mut frame, "energy_j", Column::from_i64(energy_j))?;
    add(&mut frame, "node_hours", Column::from_f64(node_hours))?;
    Ok(frame)
}

/// Curate one raw sacct text file into an analysis frame.
pub fn curate_reader(reader: impl std::io::BufRead) -> Result<CurationResult, CurateError> {
    let (records, report) = parse_records(reader)?;
    Ok(CurationResult {
        frame: records_to_frame(&records)?,
        report,
    })
}

/// Curate a raw file on disk; optionally write the cleaned CSV next to it.
/// The raw file is read through the durable store: its checksum footer (when
/// present) is verified and stripped rather than parsed as a malformed line,
/// and a corrupt file is quarantined instead of curated.
pub fn curate_file(raw: &Path, csv_out: Option<&Path>) -> Result<CurationResult, CurateError> {
    let payload = schedflow_dataflow::store::ambient()
        .read_verified(raw)?
        .into_bytes();
    let result = curate_reader(std::io::Cursor::new(payload))?;
    if let Some(out) = csv_out {
        schedflow_frame::write_csv_path(&result.frame, out)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
    }
    Ok(result)
}

/// `(len, mtime)` identity of a raw file — the same freshness signal the
/// fetch cache trusts; atomic rename on refetch always bumps it.
type RawStamp = (u64, SystemTime);

type ParseMemo = Mutex<HashMap<PathBuf, (RawStamp, Arc<CurationResult>)>>;

static PARSE_MEMO: OnceLock<ParseMemo> = OnceLock::new();

fn memo() -> &'static ParseMemo {
    PARSE_MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

fn raw_stamp(path: &Path) -> std::io::Result<RawStamp> {
    let meta = std::fs::metadata(path)?;
    Ok((meta.len(), meta.modified()?))
}

/// [`curate_file`] with warm-cache memoization: when the raw file's stamp is
/// unchanged since the last parse, the previously built frame is returned as
/// shared chunks (`Arc`-cloned, zero rows re-parsed or copied). One entry is
/// kept per path, so the memo is bounded by the number of distinct periods.
pub fn curate_file_cached(
    raw: &Path,
    csv_out: Option<&Path>,
) -> Result<Arc<CurationResult>, CurateError> {
    let stamp = raw_stamp(raw)?;
    let hit = memo()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(raw)
        .filter(|(s, _)| *s == stamp)
        .map(|(_, cached)| Arc::clone(cached));
    if let Some(cached) = hit {
        // The CSV side product must still exist for downstream file tasks.
        if let Some(out) = csv_out {
            if !out.exists() {
                schedflow_frame::write_csv_path(&cached.frame, out)
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
            }
        }
        return Ok(cached);
    }
    let result = Arc::new(curate_file(raw, csv_out)?);
    memo()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(raw.to_path_buf(), (stamp, Arc::clone(&result)));
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::{write_records, RenderOptions};
    use schedflow_model::record::JobRecordBuilder;
    use schedflow_model::state::JobState;
    use schedflow_model::time::Timestamp;

    fn sample_records() -> Vec<JobRecord> {
        let t = Timestamp::from_ymd(2024, 5, 10);
        vec![
            JobRecordBuilder::new(1)
                .times(t, t + 120, t + 120 + 3600)
                .nodes(64)
                .build(),
            JobRecordBuilder::new(2)
                .times(t + 50, t + 500, t + 500 + 60)
                .state(JobState::Failed)
                .build(),
        ]
    }

    #[test]
    fn frame_has_expected_shape_and_derivations() {
        let f = records_to_frame(&sample_records()).unwrap();
        assert_eq!(f.height(), 2);
        assert!(f.width() >= 25);
        assert_eq!(f.column("wait_s").unwrap().get_i64(0), Some(120));
        assert_eq!(f.column("wait_s").unwrap().get_i64(1), Some(450));
        assert_eq!(f.column("year").unwrap().get_i64(0), Some(2024));
        assert_eq!(f.column("month").unwrap().get_i64(0), Some(5));
        // elapsed_min is the §2 minutes conversion.
        assert_eq!(f.column("elapsed_min").unwrap().get_f64(0), Some(60.0));
        assert_eq!(f.column("node_hours").unwrap().get_f64(0), Some(64.0));
    }

    #[test]
    fn never_started_jobs_have_null_wait() {
        let mut r = JobRecordBuilder::new(9).build();
        r.state = JobState::Cancelled;
        r.start = Timestamp::UNKNOWN;
        r.end = Timestamp::UNKNOWN;
        r.elapsed = schedflow_model::time::Elapsed::ZERO;
        let f = records_to_frame(&[r]).unwrap();
        assert_eq!(f.column("wait_s").unwrap().get_i64(0), None);
        assert_eq!(f.column("start").unwrap().get_i64(0), None);
    }

    #[test]
    fn curation_pipeline_end_to_end() {
        let records = sample_records();
        let mut buf = Vec::new();
        write_records(&records, &mut buf, &RenderOptions::default()).unwrap();
        let result = curate_reader(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(result.frame.height(), 2);
        assert!(result.report.malformed.is_empty());
    }

    #[test]
    fn malformed_lines_are_dropped_from_frame() {
        let records: Vec<_> = (0..300).map(|i| JobRecordBuilder::new(i).build()).collect();
        let mut buf = Vec::new();
        write_records(
            &records,
            &mut buf,
            &RenderOptions::default().with_corruption(0.03),
        )
        .unwrap();
        let result = curate_reader(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(result.frame.height() + result.report.malformed.len(), 300);
        assert!(!result.report.malformed.is_empty());
    }

    #[test]
    fn warm_cache_reuses_parsed_chunks() {
        let dir = std::env::temp_dir().join(format!("schedflow-memo-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("raw.txt");
        let csv = dir.join("curated.csv");
        let mut f = std::fs::File::create(&raw).unwrap();
        write_records(&sample_records(), &mut f, &RenderOptions::default()).unwrap();
        drop(f);

        let first = curate_file_cached(&raw, Some(&csv)).unwrap();
        let second = curate_file_cached(&raw, Some(&csv)).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "unchanged raw file must be served from the memo"
        );

        // A missing CSV side product is rewritten from the memoized frame.
        std::fs::remove_file(&csv).unwrap();
        let third = curate_file_cached(&raw, Some(&csv)).unwrap();
        assert!(Arc::ptr_eq(&first, &third));
        assert!(csv.exists());

        // Rewriting the raw file (different length) invalidates the entry.
        let mut f = std::fs::File::create(&raw).unwrap();
        let longer: Vec<_> = (0..5).map(|i| JobRecordBuilder::new(i).build()).collect();
        write_records(&longer, &mut f, &RenderOptions::default()).unwrap();
        drop(f);
        let fourth = curate_file_cached(&raw, None).unwrap();
        assert!(!Arc::ptr_eq(&first, &fourth), "stale memo entry must miss");
        assert_eq!(fourth.frame.height(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn curated_schema_matches_built_frame() {
        let f = records_to_frame(&sample_records()).unwrap();
        let declared = curated_schema();
        let actual = f.schema();
        assert_eq!(
            declared.names().collect::<Vec<_>>(),
            actual.names().collect::<Vec<_>>(),
            "curated_schema() column order must match records_to_frame()"
        );
        for spec in actual.columns() {
            let d = declared.get(&spec.name).unwrap();
            assert_eq!(d.ty, spec.ty, "dtype of `{}`", spec.name);
            // Declared nullability must cover observed nulls.
            assert!(
                d.nullable || !spec.nullable,
                "column `{}` holds nulls but is declared non-nullable",
                spec.name
            );
        }
    }

    #[test]
    fn csv_round_trip_through_disk() {
        let dir = std::env::temp_dir().join(format!("schedflow-curate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("raw.txt");
        let csv = dir.join("curated.csv");
        let mut f = std::fs::File::create(&raw).unwrap();
        write_records(&sample_records(), &mut f, &RenderOptions::default()).unwrap();
        drop(f);
        let result = curate_file(&raw, Some(&csv)).unwrap();
        assert!(csv.exists());
        let back =
            schedflow_frame::infer_types(&schedflow_frame::read_csv_path(&csv).unwrap()).unwrap();
        assert_eq!(back.height(), result.frame.height());
        assert_eq!(back.column("nnodes").unwrap().get_i64(0), Some(64));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
