//! Parsing sacct pipe-separated text back into typed records.
//!
//! This is the input half of the paper's curate stage: malformed lines
//! (torn writes, truncated fields — "mostly associated with hardware errors
//! and accounting for less than 0.002% of the total") are collected into a
//! [`ParseReport`] and discarded rather than aborting the run.

use schedflow_model::fields::curated_fields;
use schedflow_model::flags::JobFlags;
use schedflow_model::ids::{Account, JobId, SacctId, UserId};
use schedflow_model::record::{JobRecord, Layout, StepRecord};
use schedflow_model::state::{ExitCode, JobState, PendingReason};
use schedflow_model::time::{Elapsed, TimeLimit, Timestamp};
use schedflow_model::tres::Tres;
use schedflow_model::units::MemSpec;
use std::collections::HashMap;
use std::io::BufRead;

/// Outcome summary of one parse run.
#[derive(Debug, Clone, Default)]
pub struct ParseReport {
    pub total_lines: usize,
    pub jobs: usize,
    pub steps: usize,
    /// `(line_number, reason)` of each discarded line.
    pub malformed: Vec<(usize, String)>,
}

impl ParseReport {
    /// Fraction of lines discarded.
    pub fn malformed_fraction(&self) -> f64 {
        if self.total_lines == 0 {
            0.0
        } else {
            self.malformed.len() as f64 / self.total_lines as f64
        }
    }
}

/// Parse sacct text (as produced by [`crate::render::write_records`] or real
/// `sacct -P` with the curated field list) into job records with attached
/// steps.
pub fn parse_records(reader: impl BufRead) -> std::io::Result<(Vec<JobRecord>, ParseReport)> {
    let mut report = ParseReport::default();
    let mut records: Vec<JobRecord> = Vec::new();

    let mut lines = reader.lines();
    let header = match lines.next() {
        Some(h) => h?,
        None => return Ok((records, report)),
    };
    let index: HashMap<&str, usize> = header.split('|').enumerate().map(|(i, f)| (f, i)).collect();
    // Position of every curated field in this file (sites may reorder).
    let col = |name: &str| -> Option<usize> { index.get(name).copied() };
    let expected = index.len();
    let missing: Vec<&str> = curated_fields()
        .iter()
        .filter(|f| col(f).is_none())
        .copied()
        .collect();
    if !missing.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("header missing curated fields: {missing:?}"),
        ));
    }

    for (line_no, line) in lines.enumerate() {
        let line = line?;
        let line_no = line_no + 2; // 1-based, after header
        if line.trim().is_empty() {
            continue;
        }
        report.total_lines += 1;
        let fields: Vec<&str> = line.split('|').collect();
        if fields.len() != expected {
            report.malformed.push((
                line_no,
                format!("expected {expected} fields, got {}", fields.len()),
            ));
            continue;
        }
        let row = Row {
            fields: &fields,
            index: &index,
        };

        let job_id_field = match row.get("JobID") {
            Ok(v) => v,
            Err(reason) => {
                report.malformed.push((line_no, reason));
                continue;
            }
        };
        match SacctId::parse_sacct(job_id_field) {
            Ok(SacctId::Job(_)) => match parse_job(&row) {
                Ok(job) => {
                    records.push(job);
                    report.jobs += 1;
                }
                Err(reason) => report.malformed.push((line_no, reason)),
            },
            Ok(SacctId::Step(step_id)) => {
                let attach = records.last_mut().filter(|j| j.id == step_id.job);
                match attach {
                    Some(job) => match parse_step(step_id, &row) {
                        Ok(step) => {
                            job.steps.push(step);
                            report.steps += 1;
                        }
                        Err(reason) => report.malformed.push((line_no, reason)),
                    },
                    None => report
                        .malformed
                        .push((line_no, format!("orphan step {step_id}"))),
                }
            }
            Err(e) => report.malformed.push((line_no, e.to_string())),
        }
    }
    Ok((records, report))
}

/// One data line with its header index: field access by name.
struct Row<'a, 'h> {
    fields: &'a [&'a str],
    index: &'a HashMap<&'h str, usize>,
}

impl Row<'_, '_> {
    /// Field value by header name. `Err` names the missing field — reachable
    /// only when a parser asks for a field outside the validated header, so
    /// the line is reported malformed instead of panicking the whole parse.
    fn get(&self, name: &str) -> Result<&str, String> {
        match self.index.get(name) {
            Some(&i) => Ok(self.fields[i].trim()),
            None => Err(format!("field {name:?} not in curated header")),
        }
    }
}

fn parse_job(row: &Row<'_, '_>) -> Result<JobRecord, String> {
    let get = |name: &str| row.get(name);
    let e = |what: &str, err: String| format!("{what}: {err}");
    let id = JobId::parse_sacct(get("JobID")?).map_err(|x| e("JobID", x.to_string()))?;
    let user_name = get("User")?;
    let user = user_name
        .strip_prefix('u')
        .and_then(|s| s.parse::<u32>().ok())
        .ok_or_else(|| format!("User: bad handle {user_name:?}"))?;
    let parse_u32 = |name: &str| -> Result<u32, String> {
        let v = get(name)?;
        if v.is_empty() {
            Ok(0)
        } else {
            v.parse().map_err(|_| format!("{name}: bad integer {v:?}"))
        }
    };
    let parse_u64 = |name: &str| -> Result<u64, String> {
        let v = get(name)?;
        if v.is_empty() {
            Ok(0)
        } else {
            schedflow_model::units::parse_count(v).map_err(|x| e(name, x.to_string()))
        }
    };
    let ts = |name: &str| -> Result<Timestamp, String> {
        Timestamp::parse_sacct(get(name)?).map_err(|x| e(name, x.to_string()))
    };

    Ok(JobRecord {
        id,
        name: get("JobName")?.to_owned(),
        user: UserId(user),
        account: Account(get("Account")?.to_owned()),
        cluster: get("Cluster")?.to_owned(),
        partition: get("Partition")?.to_owned(),
        qos: get("QOS")?.to_owned(),
        reservation: {
            let r = get("Reservation")?;
            (!r.is_empty()).then(|| r.to_owned())
        },
        reservation_id: {
            let r = get("ReservationID")?;
            if r.is_empty() {
                None
            } else {
                Some(r.parse().map_err(|_| format!("ReservationID: {r:?}"))?)
            }
        },
        submit: ts("SubmitTime")?,
        eligible: ts("Eligible")?,
        start: ts("StartTime")?,
        end: ts("EndTime")?,
        elapsed: Elapsed::parse_sacct(get("Elapsed")?).map_err(|x| e("Elapsed", x.to_string()))?,
        timelimit: TimeLimit::parse_sacct(get("Timelimit")?)
            .map_err(|x| e("Timelimit", x.to_string()))?,
        suspended: Elapsed::parse_sacct(get("Suspended")?)
            .map_err(|x| e("Suspended", x.to_string()))?,
        nnodes: parse_u32("NNodes")?,
        ncpus: parse_u32("NCPUs")?,
        ntasks: parse_u32("NTasks")?,
        req_mem: MemSpec::parse_sacct(get("ReqMem")?).map_err(|x| e("ReqMem", x.to_string()))?,
        req_gres: get("ReqGRES")?.to_owned(),
        layout: Layout::parse_sacct(get("Layout")?),
        alloc_tres: Tres::parse_sacct(get("AllocTRES")?)
            .map_err(|x| e("AllocTRES", x.to_string()))?,
        node_list: get("NodeList")?.to_owned(),
        consumed_energy_j: parse_u64("ConsumedEnergy")?,
        max_rss_bytes: parse_u64("MaxRSS")?,
        ave_vm_size_bytes: parse_u64("AveVMSize")?,
        total_cpu: Elapsed::parse_sacct(get("TotalCPU")?)
            .map_err(|x| e("TotalCPU", x.to_string()))?,
        work_dir: get("WorkDir")?.to_owned(),
        ave_disk_read: parse_u64("AveDiskRead")?,
        ave_disk_write: parse_u64("AveDiskWrite")?,
        max_disk_read: parse_u64("MaxDiskRead")?,
        max_disk_write: parse_u64("MaxDiskWrite")?,
        state: JobState::parse_sacct(get("State")?).map_err(|x| e("State", x.to_string()))?,
        exit_code: ExitCode::parse_sacct(get("ExitCode")?)
            .map_err(|x| e("ExitCode", x.to_string()))?,
        reason: PendingReason::parse_sacct(get("Reason")?)
            .map_err(|x| e("Reason", x.to_string()))?,
        restarts: parse_u32("Restarts")?,
        constraints: get("Constraints")?.to_owned(),
        priority: parse_u32("Priority")?,
        flags: JobFlags::parse_sacct(get("Flags")?).map_err(|x| e("Flags", x.to_string()))?,
        dependency: {
            let d = get("Dependency")?;
            if d.is_empty() {
                None
            } else {
                let id_part = d.rsplit(':').next().unwrap_or(d);
                Some(JobId::parse_sacct(id_part).map_err(|x| e("Dependency", x.to_string()))?)
            }
        },
        array_job_id: {
            let a = get("ArrayJobID")?;
            if a.is_empty() {
                None
            } else {
                Some(a.parse().map_err(|_| format!("ArrayJobID: {a:?}"))?)
            }
        },
        comment: get("Comment")?.to_owned(),
        steps: Vec::new(),
    })
}

fn parse_step(id: schedflow_model::ids::StepId, row: &Row<'_, '_>) -> Result<StepRecord, String> {
    let get = |name: &str| row.get(name);
    let e = |what: &str, err: String| format!("step {what}: {err}");
    let parse_u64 = |name: &str| -> Result<u64, String> {
        let v = get(name)?;
        if v.is_empty() {
            Ok(0)
        } else {
            v.parse().map_err(|_| format!("step {name}: {v:?}"))
        }
    };
    Ok(StepRecord {
        id,
        name: get("JobName")?.to_owned(),
        start: Timestamp::parse_sacct(get("StartTime")?)
            .map_err(|x| e("StartTime", x.to_string()))?,
        end: Timestamp::parse_sacct(get("EndTime")?).map_err(|x| e("EndTime", x.to_string()))?,
        elapsed: Elapsed::parse_sacct(get("Elapsed")?).map_err(|x| e("Elapsed", x.to_string()))?,
        state: JobState::parse_sacct(get("State")?).map_err(|x| e("State", x.to_string()))?,
        exit_code: ExitCode::parse_sacct(get("ExitCode")?)
            .map_err(|x| e("ExitCode", x.to_string()))?,
        nnodes: {
            let v = get("NNodes")?;
            v.parse().map_err(|_| e("NNodes", v.to_owned()))?
        },
        ntasks: {
            let v = get("NTasks")?;
            v.parse().map_err(|_| e("NTasks", v.to_owned()))?
        },
        ave_cpu: Elapsed::parse_sacct(get("AveCPU")?).map_err(|x| e("AveCPU", x.to_string()))?,
        max_rss_bytes: parse_u64("MaxRSS")?,
        ave_disk_read: parse_u64("AveDiskRead")?,
        ave_disk_write: parse_u64("AveDiskWrite")?,
        tres_usage_in_ave: Tres::parse_sacct(get("TRESUsageInAve")?)
            .map_err(|x| e("TRESUsageInAve", x.to_string()))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::{write_records, RenderOptions};
    use schedflow_model::record::JobRecordBuilder;

    fn round_trip(records: &[JobRecord], options: &RenderOptions) -> (Vec<JobRecord>, ParseReport) {
        let mut buf = Vec::new();
        write_records(records, &mut buf, options).unwrap();
        parse_records(std::io::Cursor::new(buf)).unwrap()
    }

    #[test]
    fn simple_record_round_trips() {
        let r = JobRecordBuilder::new(42).user(7).nodes(16).build();
        let (parsed, report) = round_trip(std::slice::from_ref(&r), &RenderOptions::default());
        assert_eq!(report.jobs, 1);
        assert!(report.malformed.is_empty());
        assert_eq!(parsed[0], r);
    }

    #[test]
    fn empty_input_is_empty() {
        let (records, report) = parse_records(std::io::Cursor::new("")).unwrap();
        assert!(records.is_empty());
        assert_eq!(report.total_lines, 0);
    }

    #[test]
    fn missing_header_fields_rejected() {
        let err = parse_records(std::io::Cursor::new("JobID|State\n1|COMPLETED\n"));
        assert!(err.is_err());
    }

    #[test]
    fn corrupted_lines_are_reported_not_fatal() {
        let records: Vec<_> = (0..500).map(|i| JobRecordBuilder::new(i).build()).collect();
        let (parsed, report) =
            round_trip(&records, &RenderOptions::default().with_corruption(0.02));
        assert!(!report.malformed.is_empty());
        assert_eq!(parsed.len() + report.malformed.len(), 500);
        assert!(report.malformed_fraction() > 0.0);
    }

    #[test]
    fn orphan_steps_are_malformed() {
        let r = JobRecordBuilder::new(10).build();
        let mut buf = Vec::new();
        write_records(&[r], &mut buf, &RenderOptions::default()).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        // Append a step line for a different job.
        let ncols = crate::render::header().split('|').count();
        let mut step_line = vec![""; ncols];
        step_line[0] = "99.batch";
        text.push_str(&step_line.join("|"));
        text.push('\n');
        let (_, report) = parse_records(std::io::Cursor::new(text.into_bytes())).unwrap();
        assert_eq!(report.malformed.len(), 1);
        assert!(report.malformed[0].1.contains("orphan"));
    }
}
