//! The hybrid workflow: the paper's Figure 2 as an executable dataflow graph.
//!
//! Static stages (blue): simulate/obtain → curate (per month, concurrent) →
//! merge → five field-specific plotting stages → dashboard. User-defined
//! stages (orange): per-chart digest (the HTML2PNG substitute) → LLM Insight,
//! plus the two-month LLM Compare, and an insight collector. The stages are
//! declared as an apparently linear list; the engine infers the DAG from the
//! artifact references and runs independent stages concurrently — the §3.3
//! "parallel pipelines" model.

use crate::config::{InsightBackend, WorkflowConfig};
use schedflow_analytics as analytics;
use schedflow_charts::{digest as chart_digest, to_html, Chart, ChartDigest, Geometry};
use schedflow_dataflow::contract::{SchemaEffect, TaskContract};
use schedflow_dataflow::{Artifact, StageKind, Workflow};
use schedflow_frame::Frame;
use schedflow_insight::{
    Analyst, ApiAnalyst, FallbackAnalyst, Insight, OfflineTransport, RuleAnalyst,
};
use schedflow_sacct::{AccountingStore, ParseReport, RenderOptions};
use schedflow_tracegen::TraceGenerator;
use std::path::PathBuf;
use std::sync::Arc;

/// The field-specific plotting stages of the static subworkflow: the five
/// behind the paper's figures plus the utilization trend (§3.2's sysadmin
/// use case).
pub const PLOT_STAGES: [&str; 7] = [
    "volume",
    "nodes-elapsed",
    "waits",
    "states",
    "backfill",
    "utilization",
    "dynamics",
];

/// Per-plotting-stage handles: `(stage, chart, digest, insight)`.
pub type StageHandles = (
    String,
    Artifact<Chart>,
    Artifact<ChartDigest>,
    Artifact<Insight>,
);

/// Artifact handles needed to collect results after the run.
pub struct Handles {
    pub store: Artifact<AccountingStore>,
    pub merged: Artifact<Frame>,
    pub reports: Vec<Artifact<ParseReport>>,
    /// `(stage, chart, digest, insight)` per plotting stage.
    pub stages: Vec<StageHandles>,
    pub compare: Option<Artifact<Insight>>,
    pub dashboard_index: PathBuf,
    pub insights_md: PathBuf,
}

/// A built (not yet executed) workflow.
pub struct BuiltWorkflow {
    pub workflow: Workflow,
    pub handles: Handles,
}

/// The analyst serving every insight stage of one built workflow (shared so
/// a fallback chain's degradation counter spans the whole run).
fn make_analyst(backend: InsightBackend) -> Arc<dyn Analyst> {
    match backend {
        InsightBackend::Rule => Arc::new(RuleAnalyst::new()),
        InsightBackend::HostedWithFallback => Arc::new(FallbackAnalyst::with_rule_fallback(
            Arc::new(ApiAnalyst::new("gemma-3", OfflineTransport)),
        )),
    }
}

/// Construct the full hybrid workflow for a configuration.
pub fn build(cfg: &WorkflowConfig) -> BuiltWorkflow {
    let mut wf = Workflow::new();
    let system = cfg.system.name().to_owned();
    let charts_dir = cfg.data_dir.join("charts");
    let insights_dir = cfg.data_dir.join("insights");
    let dashboard_dir = cfg.data_dir.join("dashboard");
    let analyst = make_analyst(cfg.insight_backend);

    // ---- Static: simulate the system (the accounting database). ----
    let store_art = wf.value::<AccountingStore>("accounting-store");
    {
        let profile = cfg.profile();
        let seed = cfg.seed;
        let system = system.clone();
        wf.task(
            "simulate-trace",
            StageKind::Static,
            [],
            [store_art.id()],
            move |ctx| {
                let records = TraceGenerator::new(profile.clone(), seed).generate();
                ctx.put(store_art, AccountingStore::new(&system, records))
            },
        );
    }

    // ---- Static: obtain + curate, one parallel pipeline per month. ----
    let mut frame_arts: Vec<Artifact<Frame>> = Vec::new();
    let mut report_arts: Vec<Artifact<ParseReport>> = Vec::new();
    for (year, month) in cfg.months() {
        let stem = format!("{year:04}-{month:02}");
        let raw = wf.file(cfg.cache_dir.join(&system).join(format!("{stem}.txt")));
        let csv = wf.file(cfg.data_dir.join("curated").join(format!("{stem}.csv")));
        let frame_art = wf.value::<Frame>(&format!("frame-{stem}"));
        let report_art = wf.value::<ParseReport>(&format!("curation-report-{stem}"));
        frame_arts.push(frame_art);
        report_arts.push(report_art);

        // Obtain: query the accounting store for one month, write raw text.
        // Honors the cache knob itself (its input is a value artifact, so
        // the engine's file-freshness shortcut does not apply).
        {
            let raw = raw.clone();
            let use_cache = cfg.use_cache;
            let corrupt = cfg.corrupt_fraction;
            wf.task(
                &format!("obtain-{stem}"),
                StageKind::Static,
                [store_art.id()],
                [raw.id()],
                move |ctx| {
                    let path = ctx.path(&raw)?;
                    if use_cache && path.exists() {
                        return Ok(()); // cached raw data reused
                    }
                    let store = ctx.get(store_art)?;
                    let records = store.query_month(year, month);
                    // Render in memory, land atomically through the durable
                    // store: a crash mid-obtain leaves no torn raw file for a
                    // later cached run to trust.
                    let mut buf = Vec::new();
                    schedflow_sacct::write_records(
                        records,
                        &mut buf,
                        &RenderOptions::default().with_corruption(corrupt),
                    )
                    .map_err(|e| e.to_string())?;
                    schedflow_dataflow::store::ambient()
                        .write_atomic(path, &buf)
                        .map_err(|e| e.to_string())
                },
            );
        }

        // Curate: raw text → cleaned frame + CSV, malformed lines reported.
        // Its contract roots the schema dataflow: the monthly frame carries
        // exactly the curated schema.
        {
            let raw = raw.clone();
            let csv = csv.clone();
            let curate_task = wf.task(
                &format!("curate-{stem}"),
                StageKind::Static,
                [raw.id()],
                [csv.id(), frame_art.id(), report_art.id()],
                move |ctx| {
                    let raw_path = ctx.path(&raw)?;
                    let csv_path = ctx.path(&csv)?;
                    // Warm-cache memoization: an unchanged raw file yields the
                    // previously parsed frame as shared chunks (no re-parse).
                    let result = schedflow_sacct::curate_file_cached(raw_path, Some(csv_path))
                        .map_err(|e| e.to_string())?;
                    let bytes = result.frame.estimated_bytes() as u64;
                    ctx.put_sized(frame_art, result.frame.clone(), bytes)?;
                    ctx.put(report_art, result.report.clone())
                },
            );
            wf.with_contract(
                curate_task,
                TaskContract::new().produces(frame_art.id(), schedflow_sacct::curated_schema()),
            );
        }
    }

    // ---- Static: merge curated months into the analysis frame. ----
    let merged = wf.value::<Frame>("merged-frame");
    {
        let inputs: Vec<_> = frame_arts.iter().map(|a| a.id()).collect();
        let frame_arts2 = frame_arts.clone();
        let merge_task = wf.task(
            "merge-curated",
            StageKind::Static,
            inputs,
            [merged.id()],
            move |ctx| {
                // Frame clones share chunk Arcs, and vstack appends chunk
                // descriptors, so the merge is O(chunks) with zero row copies.
                let frames: Vec<Frame> = frame_arts2
                    .iter()
                    .map(|a| ctx.get(*a).map(|f| (*f).clone()))
                    .collect::<Result<_, _>>()?;
                let stacked = Frame::vstack(&frames).map_err(|e| e.to_string())?;
                let bytes = stacked.estimated_bytes() as u64;
                ctx.put_sized(merged, stacked, bytes)
            },
        );
        // vstack demands every month carry the full curated schema, and the
        // merged frame passes it through unchanged.
        let mut contract = TaskContract::new();
        for a in &frame_arts {
            contract = contract.require(a.id(), schedflow_sacct::curated_schema());
        }
        if let Some(first) = frame_arts.first() {
            contract = contract.effect(merged.id(), SchemaEffect::passthrough(first.id()));
        }
        wf.with_contract(merge_task, contract);
    }

    // ---- Static: field-specific plotting stages (concurrent). ----
    let mut stages = Vec::new();
    for stage in PLOT_STAGES {
        let chart_art = wf.value::<Chart>(&format!("chart-{stage}"));
        let html = wf.file(charts_dir.join(format!("{stage}.html")));
        {
            let html = html.clone();
            let sys = system.clone();
            let top_users = cfg.top_users;
            let stage_name = stage.to_owned();
            let plot_task = wf.task(
                &format!("plot-{stage}"),
                StageKind::Static,
                [merged.id()],
                [chart_art.id(), html.id()],
                move |ctx| {
                    // Bracket the stage body so the optimizer accounting of
                    // every plan it executes lands on this task's report.
                    schedflow_frame::planstats::reset();
                    let frame = ctx.get(merged)?;
                    let chart = build_stage_chart(&stage_name, &frame, &sys, top_users)
                        .map_err(|e| e.to_string())?;
                    schedflow_charts::write_html(&chart, &Geometry::default(), ctx.path(&html)?)
                        .map_err(|e| e.to_string())?;
                    ctx.record_plan_stats(schedflow_frame::planstats::snapshot());
                    ctx.put(chart_art, chart)
                },
            );
            // Each plotting stage requires exactly the columns its analytics
            // module reads from the merged frame — derived from the stage's
            // logical plan, whose fingerprint also joins the checkpoint
            // identity (a plan change invalidates the cached stage).
            if let Some(required) = analytics::stage_schema(stage) {
                wf.with_contract(
                    plot_task,
                    TaskContract::new().require(merged.id(), required),
                );
            }
            if let Some(plan) = analytics::stage_plan(stage) {
                wf.with_plan_fingerprint(plot_task, plan.fingerprint());
                // Static cost analysis of the same plan: the estimate rides
                // on the task (for estimated-vs-actual reporting) and the
                // plan itself on an opaque payload the lint cost pass walks.
                let analysis = schedflow_frame::cost::analyze(&plan);
                wf.with_plan_estimate(plot_task, analysis.estimate);
                wf.with_plan_payload(plot_task, Arc::new(plan));
            }
        }

        // ---- User-defined: digest (HTML2PNG substitute) + LLM Insight. ----
        let digest_art = wf.value::<ChartDigest>(&format!("digest-{stage}"));
        wf.task(
            &format!("digest-{stage}"),
            StageKind::UserDefined,
            [chart_art.id()],
            [digest_art.id()],
            move |ctx| {
                let chart = ctx.get(chart_art)?;
                ctx.put(digest_art, chart_digest(&chart))
            },
        );

        let insight_art = wf.value::<Insight>(&format!("insight-{stage}"));
        let insight_md = wf.file(insights_dir.join(format!("{stage}.md")));
        {
            let insight_md = insight_md.clone();
            let analyst = Arc::clone(&analyst);
            wf.task(
                &format!("llm-insight-{stage}"),
                StageKind::UserDefined,
                [digest_art.id()],
                [insight_art.id(), insight_md.id()],
                move |ctx| {
                    let digest = ctx.get(digest_art)?;
                    let insight = analyst.insight(&digest).map_err(|e| e.to_string())?;
                    let path = ctx.path(&insight_md)?;
                    schedflow_dataflow::store::ambient()
                        .write_atomic(path, insight.to_markdown().as_bytes())
                        .map_err(|e| e.to_string())?;
                    ctx.put(insight_art, insight)
                },
            );
        }

        stages.push((stage.to_owned(), chart_art, digest_art, insight_art));
    }

    // ---- User-defined: two-month wait-time comparison (LLM Compare). ----
    let compare = cfg.compare_months().map(|(ma, mb)| {
        let mut month_digests = Vec::new();
        for (year, month) in [ma, mb] {
            let label = format!("{year:04}-{month:02}");
            let chart_art = wf.value::<Chart>(&format!("wait-chart-{label}"));
            {
                let sys = system.clone();
                let label2 = label.clone();
                let wait_task = wf.task(
                    &format!("wait-chart-{label}"),
                    StageKind::UserDefined,
                    [merged.id()],
                    [chart_art.id()],
                    move |ctx| {
                        schedflow_frame::planstats::reset();
                        let frame = ctx.get(merged)?;
                        let monthly = analytics::select::filter_month(&frame, year, month)
                            .map_err(|e| e.to_string())?;
                        let chart = analytics::wait_chart(
                            &monthly,
                            &format!("{sys} {label2}"),
                            &analytics::WaitOptions::default(),
                        )
                        .map_err(|e| e.to_string())?;
                        ctx.record_plan_stats(schedflow_frame::planstats::snapshot());
                        ctx.put(chart_art, chart)
                    },
                );
                // The task is the waits analysis composed over the month
                // selection; deriving the contract from that composition
                // keeps it exactly as wide as the columns the two plans
                // read, and its fingerprint (which covers the year/month
                // literals) keys the checkpoint per compared month.
                let composed =
                    analytics::waits::plan().compose(analytics::select::month_plan(year, month));
                wf.with_contract(
                    wait_task,
                    TaskContract::new().require(merged.id(), composed.required_schema()),
                );
                wf.with_plan_fingerprint(wait_task, composed.fingerprint());
                // The composed plan feeds the cost pass; no estimate is
                // attached because the stage body executes two plans (the
                // wait analysis plus the month selection), so no single
                // interval describes its scan-to-output cardinality.
                wf.with_plan_payload(wait_task, Arc::new(composed));
            }
            let digest_art = wf.value::<ChartDigest>(&format!("wait-digest-{label}"));
            wf.task(
                &format!("digest-wait-{label}"),
                StageKind::UserDefined,
                [chart_art.id()],
                [digest_art.id()],
                move |ctx| {
                    let chart = ctx.get(chart_art)?;
                    ctx.put(digest_art, chart_digest(&chart))
                },
            );
            month_digests.push(digest_art);
        }

        let compare_art = wf.value::<Insight>("compare-insight");
        let compare_md = wf.file(insights_dir.join("wait-compare.md"));
        {
            let (da, db) = (month_digests[0], month_digests[1]);
            let compare_md = compare_md.clone();
            let analyst = Arc::clone(&analyst);
            wf.task(
                "llm-compare-waits",
                StageKind::UserDefined,
                [da.id(), db.id()],
                [compare_art.id(), compare_md.id()],
                move |ctx| {
                    let a = ctx.get(da)?;
                    let b = ctx.get(db)?;
                    let insight = analyst.compare(&a, &b).map_err(|e| e.to_string())?;
                    let path = ctx.path(&compare_md)?;
                    schedflow_dataflow::store::ambient()
                        .write_atomic(path, insight.to_markdown().as_bytes())
                        .map_err(|e| e.to_string())?;
                    ctx.put(compare_art, insight)
                },
            );
        }
        compare_art
    });

    // ---- User-defined: collect all insights into one report. ----
    let insights_md_file = wf.file(cfg.data_dir.join("insights.md"));
    {
        let mut inputs: Vec<_> = stages.iter().map(|(_, _, _, i)| i.id()).collect();
        if let Some(c) = compare {
            inputs.push(c.id());
        }
        let insight_arts: Vec<(String, Artifact<Insight>)> = stages
            .iter()
            .map(|(name, _, _, i)| (name.clone(), *i))
            .collect();
        let insights_md_file2 = insights_md_file.clone();
        let sys = system.clone();
        wf.task(
            "collect-insights",
            StageKind::UserDefined,
            inputs,
            [insights_md_file.id()],
            move |ctx| {
                let mut out = format!("# Automated insights — {sys}\n\n");
                for (name, art) in &insight_arts {
                    let insight = ctx.get(*art)?;
                    out.push_str(&format!("<!-- stage: {name} -->\n"));
                    out.push_str(&insight.to_markdown());
                    out.push('\n');
                }
                if let Some(c) = compare {
                    let insight = ctx.get(c)?;
                    out.push_str("<!-- stage: compare -->\n");
                    out.push_str(&insight.to_markdown());
                }
                let path = ctx.path(&insights_md_file2)?;
                schedflow_dataflow::store::ambient()
                    .write_atomic(path, out.as_bytes())
                    .map_err(|e| e.to_string())
            },
        );
    }

    // ---- Static: dashboard consolidating all plots (+ commentary). ----
    // The dashboard tolerates upstream failures: when a plotting or insight
    // task failed, its tab is emitted as a placeholder explaining why, so a
    // partially failed run still produces a complete, navigable site.
    let dashboard_index = wf.file(dashboard_dir.join("index.html"));
    {
        let mut inputs: Vec<_> = Vec::new();
        for (_, chart, _, insight) in &stages {
            inputs.push(chart.id());
            inputs.push(insight.id());
        }
        let stage_arts: Vec<(String, Artifact<Chart>, Artifact<Insight>)> = stages
            .iter()
            .map(|(n, c, _, i)| (n.clone(), *c, *i))
            .collect();
        let out_dir = dashboard_dir.clone();
        let sys = system.clone();
        let dash_task = wf.task(
            "dashboard",
            StageKind::Static,
            inputs,
            [dashboard_index.id()],
            move |ctx| {
                let mut dash = schedflow_dashboard::Dashboard::new(&format!(
                    "HPC scheduling analytics — {sys}"
                ));
                for (name, chart_art, insight_art) in &stage_arts {
                    let chart = ctx.get_opt(*chart_art)?;
                    let insight = ctx.get_opt(*insight_art)?;
                    let panel = match chart {
                        Some(chart) => schedflow_dashboard::Panel {
                            id: name.clone(),
                            title: chart.title().to_owned(),
                            chart_html: to_html(&chart, &Geometry::default()),
                            insight_md: insight.map(|i| i.to_markdown()).unwrap_or_default(),
                            group: sys.clone(),
                        },
                        None => schedflow_dashboard::Panel::placeholder(
                            name,
                            &format!("{name} (unavailable)"),
                            &sys,
                            &format!("the plot-{name} stage failed upstream"),
                        ),
                    };
                    dash.add_panel(panel)?;
                }
                // Sidebar slot for the run report. The page body is rewritten
                // by `run::run` once per-task timings and data-plane byte
                // accounting exist (i.e. after this very workflow finishes).
                dash.add_panel(schedflow_dashboard::Panel {
                    id: "run-report".to_owned(),
                    title: "Run report".to_owned(),
                    chart_html: "<div style=\"max-width:860px\"><p>The run report \
                         (per-task timings, data-plane bytes, peak resident memory) \
                         is written when the workflow finishes.</p></div>"
                        .to_owned(),
                    insight_md: String::new(),
                    group: "Engine".to_owned(),
                })?;
                // Sidebar slot for the SF09xx policy verdict, also rewritten
                // by `run::run` (the witness replays run post-workflow).
                dash.add_panel(schedflow_dashboard::Panel {
                    id: "policy".to_owned(),
                    title: "Policy analysis".to_owned(),
                    chart_html: "<div style=\"max-width:860px\"><p>The scheduling-policy \
                         analysis (SF09xx verdicts and witness replays) is written \
                         when the workflow finishes.</p></div>"
                        .to_owned(),
                    insight_md: String::new(),
                    group: "Engine".to_owned(),
                })?;
                // Sidebar slot for the span-waterfall timeline, rewritten by
                // `run::run` once the trace exists (it records this very run).
                dash.add_panel(schedflow_dashboard::Panel {
                    id: "timeline".to_owned(),
                    title: "Timeline".to_owned(),
                    chart_html: "<div style=\"max-width:860px\"><p>The span waterfall \
                         (queue-wait / run / retry spans, critical path, headroom) \
                         is written when the workflow finishes.</p></div>"
                        .to_owned(),
                    insight_md: String::new(),
                    group: "Engine".to_owned(),
                })?;
                dash.write(&out_dir).map_err(|e| e.to_string())?;
                Ok(())
            },
        );
        wf.tolerate_failures(dash_task);
    }

    // The artifacts `run::run` reads after the engine finishes must outlive
    // their last in-graph consumer; everything else (per-month frames, charts,
    // digests, the accounting store) is dropped by the lifetime tracker as
    // soon as its final consumer resolves.
    wf.retain(merged.id());
    for r in &report_arts {
        wf.retain(r.id());
    }
    for (_, _, _, insight) in &stages {
        wf.retain(insight.id());
    }
    if let Some(c) = compare {
        wf.retain(c.id());
    }

    // Determinism verifier: register content digests for the analysis
    // products, so `schedflow verify-run` can certify that reruns at any
    // thread count (and under seeded chaos) produce identical bytes. File
    // artifacts are digested unconditionally by the engine; value artifacts
    // are digested only when registered here.
    wf.track_digest(merged);
    for (_, chart, digest, insight) in &stages {
        wf.track_digest(*chart);
        wf.track_digest(*digest);
        wf.track_digest(*insight);
    }
    if let Some(c) = compare {
        wf.track_digest(c);
    }

    BuiltWorkflow {
        workflow: wf,
        handles: Handles {
            store: store_art,
            merged,
            reports: report_arts,
            stages,
            compare,
            dashboard_index: dashboard_dir.join("index.html"),
            insights_md: cfg.data_dir.join("insights.md"),
        },
    }
}

/// Dispatch one plotting stage by name.
fn build_stage_chart(
    stage: &str,
    frame: &Frame,
    system: &str,
    top_users: usize,
) -> Result<Chart, schedflow_frame::FrameError> {
    match stage {
        "volume" => analytics::volume_chart(frame, system),
        "nodes-elapsed" => analytics::nodes_elapsed_chart(frame, system),
        "waits" => analytics::wait_chart(frame, system, &analytics::WaitOptions::default()),
        "states" => analytics::states_chart(frame, system, top_users),
        "backfill" => analytics::backfill_chart(frame, system),
        "utilization" => analytics::utilization_chart(frame, system),
        "dynamics" => analytics::dynamics_chart(frame, system),
        other => unreachable!("unknown stage {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::System;

    fn tiny_config(tag: &str) -> WorkflowConfig {
        let base =
            std::env::temp_dir().join(format!("schedflow-core-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let mut cfg = WorkflowConfig::new(System::Andes);
        cfg.from = (2024, 1);
        cfg.to = (2024, 2);
        cfg.scale = 0.02;
        cfg.threads = 4;
        cfg.cache_dir = base.join("cache");
        cfg.data_dir = base.join("data");
        cfg
    }

    #[test]
    fn graph_validates_and_has_expected_shape() {
        let cfg = tiny_config("shape");
        let built = build(&cfg);
        let depths = built.workflow.validate().unwrap();
        // 1 simulate + 2 months × 2 (obtain+curate) + merge + 7 plots +
        // 7 digests + 7 insights + compare chain (2 charts + 2 digests + 1
        // compare) + collect + dashboard = 34
        assert_eq!(built.workflow.task_count(), 34);
        // Rows exist at several depths (Figure 2's structure).
        let max_depth = depths.iter().max().unwrap();
        assert!(*max_depth >= 5, "deep pipeline, got {max_depth}");
    }

    #[test]
    fn plot_and_wait_tasks_carry_plan_fingerprints() {
        let cfg = tiny_config("planfp");
        let built = build(&cfg);
        let mut fps = Vec::new();
        for stage in PLOT_STAGES {
            let id = built.workflow.task_id(&format!("plot-{stage}")).unwrap();
            let fp = built.workflow.plan_fingerprint(id);
            assert!(fp.is_some(), "plot-{stage} has no plan fingerprint");
            fps.push(fp.unwrap());
        }
        // Distinct stages fingerprint distinctly.
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), PLOT_STAGES.len());
        // The two compare months differ only in their literals — which the
        // fingerprint covers, keying each month's checkpoint separately.
        let a = built.workflow.task_id("wait-chart-2024-01").unwrap();
        let b = built.workflow.task_id("wait-chart-2024-02").unwrap();
        assert_ne!(
            built.workflow.plan_fingerprint(a).unwrap(),
            built.workflow.plan_fingerprint(b).unwrap()
        );
        // Tasks that execute no analytics plans carry none.
        let merge = built.workflow.task_id("merge-curated").unwrap();
        assert!(built.workflow.plan_fingerprint(merge).is_none());
    }

    #[test]
    fn plot_tasks_carry_estimates_and_plan_payloads() {
        let cfg = tiny_config("planest");
        let built = build(&cfg);
        for stage in PLOT_STAGES {
            let id = built.workflow.task_id(&format!("plot-{stage}")).unwrap();
            let est = built
                .workflow
                .plan_estimate(id)
                .unwrap_or_else(|| panic!("plot-{stage} has no estimate"));
            // Plot plans never invent rows: the upper bound at n rows is ≤ n.
            let (lo, hi) = est.rows_interval(1000);
            assert!(lo <= hi && hi <= 1000, "plot-{stage}: [{lo}, {hi}]");
            let payload = built
                .workflow
                .task_plan_payload(id)
                .unwrap_or_else(|| panic!("plot-{stage} has no plan payload"));
            assert!(payload
                .downcast_ref::<schedflow_frame::LazyPlan>()
                .is_some());
        }
        // The wait-chart body executes two plans, so it carries the composed
        // plan for the cost pass but no single-interval estimate.
        let wait = built.workflow.task_id("wait-chart-2024-01").unwrap();
        assert!(built.workflow.plan_estimate(wait).is_none());
        assert!(built.workflow.task_plan_payload(wait).is_some());
        // Tasks without analytics plans carry neither.
        let merge = built.workflow.task_id("merge-curated").unwrap();
        assert!(built.workflow.plan_estimate(merge).is_none());
        assert!(built.workflow.task_plan_payload(merge).is_none());
    }

    #[test]
    fn dot_export_shows_both_stage_kinds() {
        let cfg = tiny_config("dot");
        let built = build(&cfg);
        let dot =
            schedflow_dataflow::to_dot(&built.workflow, &schedflow_dataflow::DotOptions::default())
                .unwrap();
        assert!(dot.contains("cfe2f3"), "static stages colored blue");
        assert!(dot.contains("fce5cd"), "user-defined stages colored orange");
        assert!(dot.contains("llm-insight-backfill"));
        assert!(dot.contains("obtain-2024-01"));
    }
}
