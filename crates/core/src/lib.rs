//! # schedflow-core
//!
//! The paper's contribution: an LLM-enabled, portable workflow for analyzing
//! Slurm job traces — assembled here as an executable dataflow graph.
//!
//! * [`config::WorkflowConfig`] — the §3.3 invocation surface (`-n N`
//!   threads, date range, cache/data locations) plus generator knobs;
//! * [`pipeline::build`] — the hybrid workflow: static data-analysis
//!   subworkflow (simulate → obtain → curate → merge → seven field-specific
//!   plots → dashboard) and the user-defined AI subworkflows (chart digest →
//!   LLM Insight per chart, the two-month LLM Compare, and the insight
//!   collector);
//! * [`run::run`] — execute on the work-stealing engine and collect results;
//! * [`run::verify_run`] — the determinism verifier: run the workflow
//!   serially and in parallel in isolated sandboxes and diff the
//!   per-artifact content digests (`schedflow verify-run`);
//! * [`run::verify_crash_recovery`] — the durability verifier: die at a
//!   chosen durable-store write, resume from the checkpoint manifest, and
//!   certify the digests converge to a fault-free run's
//!   (`schedflow verify-crash`).
//!
//! The `schedflow` binary wraps this as a CLI.

pub mod config;
pub mod pipeline;
pub mod run;

pub use config::{FaultOptions, InsightBackend, System, WorkflowConfig};
pub use pipeline::{build, BuiltWorkflow, Handles, PLOT_STAGES};
pub use run::{
    load_telemetry, run, run_built, run_options, verify_crash_recovery, verify_policy, verify_run,
    CoreError, CrashRecoveryOutcome, DigestMismatch, PolicyVerification, RunOutcome, VerifyLeg,
    VerifyOutcome, MANIFEST_FILE, TELEMETRY_FILE,
};
