//! Workflow configuration: the §3.3 invocation surface.
//!
//! The paper invokes the Swift/T workflow with a process count `-n N`, a
//! `date_spec`/`dates` query, a `cache` location, and a permanent `data`
//! location. [`WorkflowConfig`] carries the same parameters plus the
//! generator knobs our trace substitution introduces.

use schedflow_dataflow::ChaosConfig;
use schedflow_model::time::Timestamp;
use schedflow_tracegen::WorkloadProfile;
use std::path::PathBuf;
use std::time::Duration;

/// Which system profile to analyze.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    Frontier,
    Andes,
}

impl System {
    pub fn name(&self) -> &'static str {
        match self {
            System::Frontier => "frontier",
            System::Andes => "andes",
        }
    }

    pub fn profile(&self) -> WorkloadProfile {
        match self {
            System::Frontier => WorkloadProfile::frontier(),
            System::Andes => WorkloadProfile::andes(),
        }
    }

    pub fn parse(s: &str) -> Option<System> {
        match s.to_ascii_lowercase().as_str() {
            "frontier" => Some(System::Frontier),
            "andes" => Some(System::Andes),
            _ => None,
        }
    }
}

/// Full configuration of one workflow run.
#[derive(Debug, Clone)]
pub struct WorkflowConfig {
    pub system: System,
    /// Inclusive month range analyzed, `(year, month)`.
    pub from: (i32, u8),
    pub to: (i32, u8),
    /// Physical concurrency (`-n N`).
    pub threads: usize,
    /// Fast-filesystem cache for raw query output.
    pub cache_dir: PathBuf,
    /// Permanent output location (curated CSVs, charts, dashboard, insights).
    pub data_dir: PathBuf,
    /// Reuse cached raw files when fresh.
    pub use_cache: bool,
    /// Workload generator seed.
    pub seed: u64,
    /// Volume scale factor for the generated trace (1.0 = paper scale).
    pub scale: f64,
    /// Users shown in the states-per-user figure.
    pub top_users: usize,
    /// Fraction of raw job lines deterministically corrupted (exercises the
    /// curation filter; the paper observed <0.002%).
    pub corrupt_fraction: f64,
    /// Fault-tolerance knobs (retries, deadlines, resume, chaos).
    pub fault: FaultOptions,
    /// Insight backend selection (see [`InsightBackend`]).
    pub insight_backend: InsightBackend,
    /// Refuse to execute when `schedflow-lint` finds errors (on by default;
    /// the CLI's `--no-deny` disables the gate). Warnings never block a run.
    pub lint_deny: bool,
    /// Override the system profile's age-priority weight (`--age-weight`);
    /// `None` keeps the preset. Exercises the SF0902 starvation analysis.
    pub age_weight: Option<f64>,
    /// Override the system profile's backfill policy (`--backfill`);
    /// `None` keeps the preset.
    pub backfill: Option<schedflow_sim::BackfillPolicy>,
    /// Record spans/counters/histograms into the run report and persist them
    /// next to the dashboard (`--no-trace` disables; see
    /// `schedflow_dataflow::trace`). Span identities derive from `seed`.
    pub trace: bool,
    /// Also export the trace as Chrome trace-event JSON here
    /// (`--trace-out`), loadable in Perfetto / `chrome://tracing`.
    pub trace_out: Option<PathBuf>,
}

/// Which analyst serves the LLM-insight stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InsightBackend {
    /// The deterministic rule analyst only (the offline default — keeps
    /// runs reproducible byte-for-byte).
    #[default]
    Rule,
    /// A hosted backend first, falling back to the rule analyst when it
    /// fails — the paper's deployment shape. In this offline reproduction
    /// the hosted link is [`schedflow_insight::OfflineTransport`], so every
    /// request exercises the fallback path.
    HostedWithFallback,
}

/// Fault-tolerance configuration of one run — the knobs behind the
/// `--retries`, `--task-timeout`, `--stall-timeout`, and `--resume` CLI
/// flags and the `schedflow chaos` subcommand.
#[derive(Debug, Clone)]
pub struct FaultOptions {
    /// Max attempts per task, including the first (1 = no retries).
    pub retries: u32,
    /// Base backoff between attempts, milliseconds.
    pub retry_base_delay_ms: u64,
    /// Per-task deadline; `None` = no deadline.
    pub task_timeout: Option<Duration>,
    /// Whole-run stall guard window, seconds.
    pub stall_timeout_secs: u64,
    /// Resume from the previous run's manifest instead of starting fresh.
    pub resume: bool,
    /// Seeded fault injection (the `schedflow chaos` subcommand).
    pub chaos: Option<ChaosConfig>,
}

impl Default for FaultOptions {
    fn default() -> Self {
        FaultOptions {
            retries: 1,
            retry_base_delay_ms: 50,
            task_timeout: None,
            stall_timeout_secs: 3600,
            resume: false,
            chaos: None,
        }
    }
}

impl WorkflowConfig {
    /// Defaults mirroring the paper's Frontier study at reduced volume.
    pub fn new(system: System) -> Self {
        let profile = system.profile();
        let (fy, fm) = profile.start.year_month();
        // `to` is the last month *inside* the window.
        let end_inclusive = Timestamp(profile.end.0 - 1);
        let (ty, tm) = end_inclusive.year_month();
        WorkflowConfig {
            system,
            from: (fy, fm),
            to: (ty, tm),
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(2),
            cache_dir: PathBuf::from(".schedflow-cache"),
            data_dir: PathBuf::from("schedflow-out"),
            use_cache: true,
            seed: 42,
            scale: 0.05,
            top_users: 40,
            corrupt_fraction: 0.00002,
            fault: FaultOptions::default(),
            insight_backend: InsightBackend::default(),
            lint_deny: true,
            age_weight: None,
            backfill: None,
            trace: true,
            trace_out: None,
        }
    }

    /// The workload profile trimmed to the configured window and scale, with
    /// any policy overrides (`--age-weight`, `--backfill`) applied.
    pub fn profile(&self) -> WorkloadProfile {
        let mut p = self.system.profile().scaled(self.scale);
        p.start = Timestamp::from_ymd(self.from.0, self.from.1, 1);
        p.end = schedflow_model::time::month_end_exclusive(self.to.0, self.to.1);
        if let Some(age) = self.age_weight {
            p.system.weights.age = age;
        }
        if let Some(backfill) = self.backfill {
            p.system.backfill = backfill;
        }
        p
    }

    /// Months covered, in order.
    pub fn months(&self) -> Vec<(i32, u8)> {
        schedflow_model::time::month_range(self.from, self.to).collect()
    }

    /// The two months the compare stage contrasts: the second full month and
    /// the one a quarter later (à la the paper's March-vs-June example), or
    /// the first and last months on short windows.
    pub fn compare_months(&self) -> Option<((i32, u8), (i32, u8))> {
        let months = self.months();
        if months.len() < 2 {
            return None;
        }
        let a = months.get(1).copied().unwrap_or(months[0]);
        let b_idx = (months.len() - 1).min(months.iter().position(|&m| m == a).unwrap() + 3);
        let b = months[b_idx];
        if a == b {
            Some((months[0], *months.last().unwrap()))
        } else {
            Some((a, b))
        }
    }

    /// Parse a `YYYY-MM` month spec.
    pub fn parse_month(s: &str) -> Option<(i32, u8)> {
        let (y, m) = s.split_once('-')?;
        let year: i32 = y.parse().ok()?;
        let month: u8 = m.parse().ok()?;
        (1..=12).contains(&month).then_some((year, month))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_paper_window() {
        let c = WorkflowConfig::new(System::Frontier);
        assert_eq!(c.from, (2023, 4));
        assert_eq!(c.to, (2024, 12));
        assert_eq!(c.months().len(), 21);
    }

    #[test]
    fn andes_window_is_2024() {
        let c = WorkflowConfig::new(System::Andes);
        assert_eq!(c.from, (2024, 1));
        assert_eq!(c.to, (2024, 12));
    }

    #[test]
    fn profile_respects_overrides() {
        let mut c = WorkflowConfig::new(System::Frontier);
        c.from = (2024, 1);
        c.to = (2024, 3);
        c.scale = 0.01;
        let p = c.profile();
        assert_eq!(p.start, Timestamp::from_ymd(2024, 1, 1));
        assert_eq!(p.end, Timestamp::from_ymd(2024, 4, 1));
        assert!(p.jobs_per_day < WorkloadProfile::frontier().jobs_per_day * 0.02);
    }

    #[test]
    fn profile_applies_policy_overrides() {
        let mut c = WorkflowConfig::new(System::Frontier);
        c.age_weight = Some(0.0);
        c.backfill = Some(schedflow_sim::BackfillPolicy::None);
        let p = c.profile();
        assert_eq!(p.system.weights.age, 0.0);
        assert_eq!(p.system.backfill, schedflow_sim::BackfillPolicy::None);
        // Without overrides the preset survives.
        let d = WorkflowConfig::new(System::Frontier).profile();
        assert_eq!(d.system.backfill, schedflow_sim::BackfillPolicy::Easy);
        assert!(d.system.weights.age > 0.0);
    }

    #[test]
    fn compare_months_quarter_apart() {
        let c = WorkflowConfig::new(System::Frontier);
        let ((ay, am), (by, bm)) = c.compare_months().unwrap();
        assert_eq!((ay, am), (2023, 5));
        assert_eq!((by, bm), (2023, 8));
    }

    #[test]
    fn compare_months_short_window() {
        let mut c = WorkflowConfig::new(System::Andes);
        c.from = (2024, 1);
        c.to = (2024, 2);
        // With only two months the quarter-later pick degenerates, and the
        // fallback contrasts the window's first and last months instead.
        let (a, b) = c.compare_months().unwrap();
        assert_eq!(a, (2024, 1));
        assert_eq!(b, (2024, 2));
        c.to = (2024, 1);
        assert!(c.compare_months().is_none());
    }

    #[test]
    fn month_spec_parsing() {
        assert_eq!(WorkflowConfig::parse_month("2024-03"), Some((2024, 3)));
        assert_eq!(WorkflowConfig::parse_month("2024-13"), None);
        assert_eq!(WorkflowConfig::parse_month("junk"), None);
    }

    #[test]
    fn system_parsing() {
        assert_eq!(System::parse("Frontier"), Some(System::Frontier));
        assert_eq!(System::parse("ANDES"), Some(System::Andes));
        assert_eq!(System::parse("summit"), None);
    }
}
