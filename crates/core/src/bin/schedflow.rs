//! The `schedflow` command-line interface.
//!
//! Mirrors the paper's workflow invocation (§3.3): physical concurrency
//! `-n N`, a date range, a cache location, and a permanent data location.
//!
//! ```text
//! schedflow run --system frontier --from 2023-04 --to 2024-12 -n 8 \
//!     --cache .cache --data out --scale 0.05 [--serve PORT]
//! schedflow dot --system andes            # Figure 2 (Graphviz DOT)
//! schedflow table2                        # the LLM offering survey
//! ```

use schedflow_core::{build, run, System, WorkflowConfig};

fn usage() -> ! {
    eprintln!(
        "schedflow — LLM-enabled Slurm trace analytics workflow\n\n\
         USAGE:\n  schedflow run   [OPTIONS]   execute the full hybrid workflow\n  \
         schedflow dot   [OPTIONS]   print the workflow dataflow graph (DOT)\n  \
         schedflow table2            print the LLM offering survey (Table 2)\n\n\
         OPTIONS (run/dot):\n  \
         --system NAME    frontier | andes            [frontier]\n  \
         --from YYYY-MM   first month analyzed        [profile start]\n  \
         --to YYYY-MM     last month analyzed         [profile end]\n  \
         -n N             worker threads              [cores]\n  \
         --cache DIR      raw query cache             [.schedflow-cache]\n  \
         --data DIR       output location             [schedflow-out]\n  \
         --scale F        trace volume scale          [0.05]\n  \
         --seed N         generator seed              [42]\n  \
         --no-cache       refetch raw data\n  \
         --serve PORT     serve the dashboard after the run"
    );
    std::process::exit(2);
}

struct Args {
    cfg: WorkflowConfig,
    serve: Option<u16>,
}

fn parse_args(args: std::env::Args) -> (String, Args) {
    let mut rest: Vec<String> = args.collect();
    rest.reverse();
    let command = rest.pop().unwrap_or_else(|| usage());

    let mut threads: Option<usize> = None;
    let mut system = System::Frontier;
    let mut from = None;
    let mut to = None;
    let mut serve = None;
    let mut cache_dir = None;
    let mut data_dir = None;
    let mut use_cache = true;
    let mut seed = None;
    let mut scale = None;

    fn next(name: &str, rest: &mut Vec<String>) -> String {
        rest.pop().unwrap_or_else(|| {
            eprintln!("missing value for {name}");
            usage()
        })
    }
    while let Some(flag) = rest.pop() {
        match flag.as_str() {
            "--system" => {
                let v = next("--system", &mut rest);
                system = System::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown system {v:?}");
                    usage()
                });
            }
            "--from" => {
                from = Some(
                    WorkflowConfig::parse_month(&next("--from", &mut rest))
                        .unwrap_or_else(|| usage()),
                );
            }
            "--to" => {
                to = Some(
                    WorkflowConfig::parse_month(&next("--to", &mut rest))
                        .unwrap_or_else(|| usage()),
                );
            }
            "-n" => threads = Some(next("-n", &mut rest).parse().unwrap_or_else(|_| usage())),
            "--cache" => cache_dir = Some(next("--cache", &mut rest)),
            "--data" => data_dir = Some(next("--data", &mut rest)),
            "--scale" => scale = Some(next("--scale", &mut rest).parse().unwrap_or_else(|_| usage())),
            "--seed" => seed = Some(next("--seed", &mut rest).parse().unwrap_or_else(|_| usage())),
            "--no-cache" => use_cache = false,
            "--serve" => {
                serve = Some(next("--serve", &mut rest).parse().unwrap_or_else(|_| usage()))
            }
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }

    let mut cfg = WorkflowConfig::new(system);
    if let Some(n) = threads {
        cfg.threads = n;
    }
    if let Some(d) = cache_dir {
        cfg.cache_dir = d.into();
    }
    if let Some(d) = data_dir {
        cfg.data_dir = d.into();
    }
    cfg.use_cache = use_cache;
    if let Some(s) = seed {
        cfg.seed = s;
    }
    if let Some(s) = scale {
        cfg.scale = s;
    }
    if let Some(f) = from {
        cfg.from = f;
    }
    if let Some(t) = to {
        cfg.to = t;
    }
    (command, Args { cfg, serve })
}

fn main() {
    let mut args = std::env::args();
    let _binary = args.next();
    let (command, parsed) = parse_args(args);

    match command.as_str() {
        "table2" => {
            println!("{}", schedflow_insight::table2_text());
            let chosen = schedflow_insight::select_backend();
            println!("selected backend: {} {}", chosen.provider, chosen.version);
        }
        "dot" => {
            let built = build(&parsed.cfg);
            let dot = schedflow_dataflow::to_dot(
                &built.workflow,
                &schedflow_dataflow::DotOptions {
                    show_artifacts: false,
                    title: format!("schedflow hybrid workflow — {}", parsed.cfg.system.name()),
                },
            )
            .unwrap_or_else(|e| {
                eprintln!("graph error: {e}");
                std::process::exit(1);
            });
            println!("{dot}");
        }
        "run" => {
            let cfg = parsed.cfg;
            eprintln!(
                "schedflow: system={} window={:04}-{:02}..{:04}-{:02} threads={} scale={}",
                cfg.system.name(),
                cfg.from.0,
                cfg.from.1,
                cfg.to.0,
                cfg.to.1,
                cfg.threads,
                cfg.scale
            );
            match run(&cfg) {
                Ok(outcome) => {
                    eprintln!(
                        "workflow complete: {} tasks in {:.1}s (max concurrency {}, speedup ≥ {:.1}×)",
                        outcome.report.tasks.len(),
                        outcome.report.makespan_ms / 1000.0,
                        outcome.report.max_concurrency(),
                        outcome.report.speedup()
                    );
                    eprintln!(
                        "analyzed {} jobs; curation discarded {}/{} raw lines",
                        outcome.frame.height(),
                        outcome.curation.1,
                        outcome.curation.0
                    );
                    eprintln!("dashboard: {}", outcome.dashboard_index.display());
                    eprintln!("insights:  {}", outcome.insights_md.display());
                    if let Some(port) = parsed.serve {
                        let dir = outcome.dashboard_index.parent().unwrap().to_path_buf();
                        match schedflow_dashboard::serve(dir, port) {
                            Ok(handle) => {
                                eprintln!(
                                    "serving dashboard at http://{}/ (ctrl-c to stop)",
                                    handle.addr()
                                );
                                loop {
                                    std::thread::sleep(std::time::Duration::from_secs(3600));
                                }
                            }
                            Err(e) => {
                                eprintln!("serve failed: {e}");
                                std::process::exit(1);
                            }
                        }
                    }
                }
                Err(e) => {
                    eprintln!("workflow failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
