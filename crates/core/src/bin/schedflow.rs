//! The `schedflow` command-line interface.
//!
//! Mirrors the paper's workflow invocation (§3.3): physical concurrency
//! `-n N`, a date range, a cache location, and a permanent data location —
//! plus the fault-tolerance surface (retries, deadlines, resume) and a
//! deterministic fault-injection harness.
//!
//! ```text
//! schedflow run --system frontier --from 2023-04 --to 2024-12 -n 8 \
//!     --cache .cache --data out --scale 0.05 [--serve PORT]
//! schedflow run --retries 3 --task-timeout 120 --resume     # fault-tolerant
//! schedflow chaos --fail-p 0.3 --chaos-seed 7               # injection drill
//! schedflow chaos --io-torn-p 0.3 --crash-after 12          # I/O + crash drill
//! schedflow lint --system andes           # static analysis, no execution
//! schedflow explain waits                 # stage logical plan, pre/post optimizer
//! schedflow explain all --dot             # every stage plan as DOT
//! schedflow verify-run --scale 0.02       # determinism check: 1 vs N threads
//! schedflow verify-crash --io-torn-p 0.3  # crash mid-run, resume, diff digests
//! schedflow verify-policy --age-weight 0  # static policy verdicts + witness replay
//! schedflow run --trace-out trace.json    # export a Perfetto-loadable trace
//! schedflow trace schedflow-out           # span/critical-path summary of a run
//! schedflow dot --system andes --lint     # Figure 2 (DOT), lint-annotated
//! schedflow table2                        # the LLM offering survey
//! ```

use schedflow_core::{build, run, System, WorkflowConfig};
use schedflow_dataflow::ChaosConfig;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "schedflow — LLM-enabled Slurm trace analytics workflow\n\n\
         USAGE:\n  schedflow run   [OPTIONS]   execute the full hybrid workflow\n  \
         schedflow chaos [OPTIONS]   run under seeded fault injection\n  \
         schedflow verify-run [OPTIONS]  run at 1 and N threads, diff artifact digests\n  \
         schedflow verify-crash [OPTIONS]  crash at a store write, resume, diff digests\n  \
         schedflow verify-policy [OPTIONS]  prove scheduling-policy verdicts, then\n                                    \
         replay each witness in the simulator\n  \
         schedflow lint  [OPTIONS]   statically analyze the workflow, run nothing\n  \
         schedflow explain [STAGE|all] [--dot]  print analysis-stage logical plans\n                                         \
         before and after optimization\n  \
         schedflow trace DATA_DIR    summarize a finished run's trace: spans,\n                              \
         histograms, critical path, headroom\n  \
         schedflow dot   [OPTIONS]   print the workflow dataflow graph (DOT)\n  \
         schedflow table2            print the LLM offering survey (Table 2)\n\n\
         OPTIONS (run/chaos/verify-run/verify-crash/verify-policy/lint/dot):\n  \
         --system NAME    frontier | andes            [frontier]\n  \
         --from YYYY-MM   first month analyzed        [profile start]\n  \
         --to YYYY-MM     last month analyzed         [profile end]\n  \
         -n N             worker threads              [cores]\n  \
         --cache DIR      raw query cache             [.schedflow-cache]\n  \
         --data DIR       output location             [schedflow-out]\n  \
         --scale F        trace volume scale          [0.05]\n  \
         --seed N         generator seed              [42]\n  \
         --no-cache       refetch raw data\n  \
         --serve PORT     serve the dashboard after the run\n\n\
         OBSERVABILITY (run/chaos):\n  \
         --trace-out FILE also export the trace as Chrome trace-event JSON\n                   \
         (loadable in Perfetto / chrome://tracing)\n  \
         --no-trace       disable span/metric recording entirely\n\n\
         STATIC ANALYSIS:\n  \
         --no-deny        (run/chaos) execute even when lint finds errors\n  \
         --deny           (lint) exit nonzero on warnings too, not just errors\n  \
         --age-weight F   (run/chaos/lint/verify-policy) override the\n                   \
         profile's age-priority weight (SF0902 probe)\n  \
         --backfill P     (run/chaos/lint/verify-policy) override the\n                   \
         backfill policy: none | easy | conservative\n  \
         --mem-budget N   (lint) SF0803: error when the estimated peak of\n                   \
         resident artifact bytes exceeds N\n  \
         --format FMT     (lint) output format: text | json | sarif  [text]\n  \
         --explain CODE   (lint) print long-form docs for one SF0xxx code\n  \
         --lint           (dot) annotate the graph with lint diagnostics\n\n\
         FAULT TOLERANCE (run/chaos):\n  \
         --retries N         max attempts per task (1 = off)   [1]\n  \
         --retry-delay MS    base retry backoff, milliseconds  [50]\n  \
         --task-timeout S    per-task deadline, seconds        [none]\n  \
         --stall-timeout S   whole-run stall guard, seconds    [3600]\n  \
         --resume            re-execute only tasks not recorded\n                      \
         successful in the run manifest\n\n\
         CHAOS (chaos, verify-run, verify-crash):\n  \
         --fail-p P       per-attempt transient failure probability [0.2]\n  \
         --panic-p P      per-attempt panic probability             [0.0]\n  \
         --delay-p P      per-attempt injected-delay probability    [0.0]\n  \
         --max-delay MS   injected delay upper bound                [0]\n  \
         --io-torn-p P    per-store-write torn-write probability    [0.0]\n  \
         --io-enospc-p P  per-store-write ENOSPC probability        [0.0]\n  \
         --io-eio-p P     per-store-write EIO probability           [0.0]\n  \
         --crash-after N  die at the N-th store write (chaos:\n                   \
         simulated process death; verify-crash: crash point) [seeded]\n  \
         --chaos-seed N   fault-injection seed                      [7]\n  \
         --no-retries     disable the default chaos retry budget"
    );
    std::process::exit(2);
}

/// `lint --format`: how to render the report.
#[derive(Clone, Copy, PartialEq, Eq)]
enum LintFormat {
    Text,
    Json,
    Sarif,
}

struct Args {
    cfg: WorkflowConfig,
    serve: Option<u16>,
    /// `lint --deny`: treat warnings as fatal too.
    deny_warnings: bool,
    /// `lint --mem-budget N`: SF0803 peak-memory threshold, bytes.
    mem_budget: Option<u64>,
    /// `lint --format`: text (default), json, or sarif.
    lint_format: LintFormat,
    /// `lint --explain CODE`: print docs for one code instead of linting.
    explain_code: Option<String>,
    /// `dot --lint`: annotate the graph with diagnostics.
    dot_lint: bool,
    /// `--crash-after N`: the store write to die at (verify-crash picks a
    /// seeded default when absent).
    crash_after: Option<u64>,
}

fn parse_args(command: &str, args: std::env::Args) -> Args {
    let mut rest: Vec<String> = args.collect();
    rest.reverse();

    let chaos_mode = command == "chaos";
    let mut threads: Option<usize> = None;
    let mut system = System::Frontier;
    let mut from = None;
    let mut to = None;
    let mut serve = None;
    let mut cache_dir = None;
    let mut data_dir = None;
    let mut use_cache = true;
    let mut seed = None;
    let mut scale = None;
    let mut retries: Option<u32> = None;
    let mut retry_delay_ms: Option<u64> = None;
    let mut task_timeout_secs: Option<u64> = None;
    let mut stall_timeout_secs: Option<u64> = None;
    let mut resume = false;
    let mut no_retries = false;
    let mut no_deny = false;
    let mut deny_warnings = false;
    let mut mem_budget: Option<u64> = None;
    let mut lint_format = LintFormat::Text;
    let mut lint_format_set = false;
    let mut explain_code: Option<String> = None;
    let mut dot_lint = false;
    let mut crash_after: Option<u64> = None;
    let mut trace_out: Option<String> = None;
    let mut no_trace = false;
    let mut age_weight: Option<f64> = None;
    let mut backfill: Option<schedflow_sim::BackfillPolicy> = None;
    let mut chaos = if chaos_mode {
        Some(ChaosConfig::failing(7, 0.2))
    } else {
        None
    };

    fn next(name: &str, rest: &mut Vec<String>) -> String {
        rest.pop().unwrap_or_else(|| {
            eprintln!("missing value for {name}");
            usage()
        })
    }
    fn parse<T: std::str::FromStr>(name: &str, rest: &mut Vec<String>) -> T {
        next(name, rest).parse().unwrap_or_else(|_| {
            eprintln!("bad value for {name}");
            usage()
        })
    }
    fn chaos_of(chaos: &mut Option<ChaosConfig>) -> &mut ChaosConfig {
        chaos.get_or_insert_with(|| ChaosConfig::failing(7, 0.2))
    }
    while let Some(flag) = rest.pop() {
        match flag.as_str() {
            "--system" => {
                let v = next("--system", &mut rest);
                system = System::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown system {v:?}");
                    usage()
                });
            }
            "--from" => {
                from = Some(
                    WorkflowConfig::parse_month(&next("--from", &mut rest))
                        .unwrap_or_else(|| usage()),
                );
            }
            "--to" => {
                to = Some(
                    WorkflowConfig::parse_month(&next("--to", &mut rest))
                        .unwrap_or_else(|| usage()),
                );
            }
            "-n" => threads = Some(parse("-n", &mut rest)),
            "--cache" => cache_dir = Some(next("--cache", &mut rest)),
            "--data" => data_dir = Some(next("--data", &mut rest)),
            "--scale" => scale = Some(parse("--scale", &mut rest)),
            "--seed" => seed = Some(parse("--seed", &mut rest)),
            "--no-cache" => use_cache = false,
            "--serve" => serve = Some(parse("--serve", &mut rest)),
            "--retries" => retries = Some(parse("--retries", &mut rest)),
            "--retry-delay" => retry_delay_ms = Some(parse("--retry-delay", &mut rest)),
            "--task-timeout" => task_timeout_secs = Some(parse("--task-timeout", &mut rest)),
            "--stall-timeout" => stall_timeout_secs = Some(parse("--stall-timeout", &mut rest)),
            "--resume" => resume = true,
            "--no-retries" => no_retries = true,
            "--no-deny" => no_deny = true,
            "--deny" => deny_warnings = true,
            "--mem-budget" => mem_budget = Some(parse("--mem-budget", &mut rest)),
            "--format" => {
                let v = next("--format", &mut rest);
                lint_format = match v.as_str() {
                    "text" => LintFormat::Text,
                    "json" => LintFormat::Json,
                    "sarif" => LintFormat::Sarif,
                    other => {
                        eprintln!("unknown format {other:?} (expected text, json, or sarif)");
                        usage();
                    }
                };
                lint_format_set = true;
            }
            "--explain" => explain_code = Some(next("--explain", &mut rest)),
            "--lint" => dot_lint = true,
            "--age-weight" => age_weight = Some(parse("--age-weight", &mut rest)),
            "--backfill" => {
                let v = next("--backfill", &mut rest);
                backfill = Some(match v.as_str() {
                    "none" => schedflow_sim::BackfillPolicy::None,
                    "easy" => schedflow_sim::BackfillPolicy::Easy,
                    "conservative" => schedflow_sim::BackfillPolicy::Conservative,
                    other => {
                        eprintln!(
                            "unknown backfill policy {other:?} (expected none, easy, or conservative)"
                        );
                        usage();
                    }
                });
            }
            "--fail-p" => chaos_of(&mut chaos).fail_p = parse("--fail-p", &mut rest),
            "--panic-p" => chaos_of(&mut chaos).panic_p = parse("--panic-p", &mut rest),
            "--delay-p" => chaos_of(&mut chaos).delay_p = parse("--delay-p", &mut rest),
            "--max-delay" => chaos_of(&mut chaos).max_delay_ms = parse("--max-delay", &mut rest),
            "--chaos-seed" => chaos_of(&mut chaos).seed = parse("--chaos-seed", &mut rest),
            "--io-torn-p" => chaos_of(&mut chaos).io_torn_p = parse("--io-torn-p", &mut rest),
            "--io-enospc-p" => chaos_of(&mut chaos).io_enospc_p = parse("--io-enospc-p", &mut rest),
            "--io-eio-p" => chaos_of(&mut chaos).io_eio_p = parse("--io-eio-p", &mut rest),
            "--crash-after" => crash_after = Some(parse("--crash-after", &mut rest)),
            "--trace-out" => trace_out = Some(next("--trace-out", &mut rest)),
            "--no-trace" => no_trace = true,
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    if chaos.is_some() && !matches!(command, "chaos" | "verify-run" | "verify-crash") {
        eprintln!("chaos flags (--fail-p/--panic-p/--delay-p/--max-delay/--io-*-p/--chaos-seed) require the `chaos`, `verify-run`, or `verify-crash` subcommand");
        usage();
    }
    if crash_after.is_some() && !matches!(command, "chaos" | "verify-crash") {
        eprintln!("--crash-after applies to the `chaos` and `verify-crash` subcommands only");
        usage();
    }
    // On a plain chaos drill the countdown is part of the chaos config; the
    // verify-crash harness instead injects it per leg itself.
    if command == "chaos" {
        if let Some(n) = crash_after {
            chaos_of(&mut chaos).crash_after_writes = Some(n);
        }
    }
    if deny_warnings && command != "lint" {
        eprintln!("--deny applies to the `lint` subcommand only");
        usage();
    }
    if (mem_budget.is_some() || lint_format_set || explain_code.is_some()) && command != "lint" {
        eprintln!("--mem-budget/--format/--explain apply to the `lint` subcommand only");
        usage();
    }
    if dot_lint && command != "dot" {
        eprintln!("--lint applies to the `dot` subcommand only");
        usage();
    }
    if (age_weight.is_some() || backfill.is_some())
        && !matches!(command, "run" | "chaos" | "lint" | "verify-policy")
    {
        eprintln!(
            "--age-weight/--backfill apply to the `run`, `chaos`, `lint`, and \
             `verify-policy` subcommands only"
        );
        usage();
    }
    if no_deny && !matches!(command, "run" | "chaos") {
        eprintln!("--no-deny applies to the `run` and `chaos` subcommands only");
        usage();
    }
    if (trace_out.is_some() || no_trace) && !matches!(command, "run" | "chaos") {
        eprintln!("--trace-out/--no-trace apply to the `run` and `chaos` subcommands only");
        usage();
    }

    let mut cfg = WorkflowConfig::new(system);
    if let Some(n) = threads {
        cfg.threads = n;
    }
    if let Some(d) = cache_dir {
        cfg.cache_dir = d.into();
    }
    if let Some(d) = data_dir {
        cfg.data_dir = d.into();
    }
    cfg.use_cache = use_cache;
    if let Some(s) = seed {
        cfg.seed = s;
    }
    if let Some(s) = scale {
        cfg.scale = s;
    }
    if let Some(f) = from {
        cfg.from = f;
    }
    if let Some(t) = to {
        cfg.to = t;
    }
    // Chaos drills (and chaotic verify-run legs) default to a generous retry
    // budget so the harness demonstrates recovery; `--no-retries` shows the
    // unprotected run.
    if let Some(r) = retries {
        cfg.fault.retries = r;
    } else if chaos.is_some() && !no_retries {
        cfg.fault.retries = 8;
    }
    if no_retries {
        cfg.fault.retries = 1;
    }
    if let Some(ms) = retry_delay_ms {
        cfg.fault.retry_base_delay_ms = ms;
    }
    cfg.fault.task_timeout = task_timeout_secs.map(Duration::from_secs);
    if let Some(s) = stall_timeout_secs {
        cfg.fault.stall_timeout_secs = s;
    }
    cfg.fault.resume = resume;
    cfg.fault.chaos = chaos;
    cfg.lint_deny = !no_deny;
    cfg.age_weight = age_weight;
    cfg.backfill = backfill;
    cfg.trace = !no_trace;
    cfg.trace_out = trace_out.map(Into::into);
    Args {
        cfg,
        serve,
        deny_warnings,
        mem_budget,
        lint_format,
        explain_code,
        dot_lint,
        crash_after,
    }
}

use schedflow_dataflow::human_bytes as fmt_bytes;

fn run_command(parsed: Args) {
    let cfg = parsed.cfg;
    eprintln!(
        "schedflow: system={} window={:04}-{:02}..{:04}-{:02} threads={} scale={}",
        cfg.system.name(),
        cfg.from.0,
        cfg.from.1,
        cfg.to.0,
        cfg.to.1,
        cfg.threads,
        cfg.scale
    );
    if let Some(c) = &cfg.fault.chaos {
        eprintln!(
            "chaos: seed={} fail-p={} panic-p={} delay-p={} retries={}",
            c.seed, c.fail_p, c.panic_p, c.delay_p, cfg.fault.retries
        );
        if c.has_io_faults() || c.crash_after_writes.is_some() {
            eprintln!(
                "io-chaos: torn-p={} enospc-p={} eio-p={} crash-after={}",
                c.io_torn_p,
                c.io_enospc_p,
                c.io_eio_p,
                c.crash_after_writes
                    .map_or("off".to_owned(), |n| n.to_string())
            );
        }
    }
    if cfg.fault.resume {
        eprintln!(
            "resume: reusing successes from {}",
            cfg.data_dir.join(schedflow_core::MANIFEST_FILE).display()
        );
    }
    match run(&cfg) {
        Ok(outcome) => {
            eprintln!(
                "workflow complete: {} tasks in {:.1}s (max concurrency {}, speedup ≥ {:.1}×)",
                outcome.report.tasks.len(),
                outcome.report.makespan_ms / 1000.0,
                outcome.report.max_concurrency(),
                outcome.report.speedup()
            );
            eprintln!(
                "data plane: {} read / {} produced by tasks, peak resident {}",
                fmt_bytes(outcome.report.total_bytes_in()),
                fmt_bytes(outcome.report.total_bytes_out()),
                fmt_bytes(outcome.report.peak_resident_bytes)
            );
            if let Some(p) = outcome.report.plan_totals() {
                eprintln!(
                    "plan optimizer: {} plan(s) scanned {} of {} eager ({:.1}× less), \
                     {}/{} columns read, {} predicate(s) pushed, {} filter(s) fused, \
                     {} subplan(s) deduped",
                    p.plans,
                    fmt_bytes(p.bytes_scanned),
                    fmt_bytes(p.bytes_eager),
                    p.scan_reduction(),
                    p.cols_scanned,
                    p.cols_total,
                    p.predicates_pushed,
                    p.filters_fused,
                    p.subplans_deduped
                );
            }
            // Estimated-vs-actual per plan stage: the static cost analysis'
            // row interval (evaluated at the observed scanned-row tally)
            // against the rows the plan actually produced. Only comparable
            // when the stage executed exactly one plan — otherwise the
            // per-task tally mixes cardinalities of unrelated plans.
            let estimated: Vec<_> = outcome
                .report
                .tasks
                .iter()
                .filter_map(|t| {
                    let est = t.estimate.as_ref()?;
                    let plan = t.plan.as_ref()?;
                    (plan.plans == 1).then_some((t, est, plan))
                })
                .collect();
            if !estimated.is_empty() {
                eprintln!("plan estimates (static interval vs actual rows):");
                for (t, est, plan) in estimated {
                    let (lo, hi) = est.rows_interval(plan.rows_in);
                    let sound = est.contains_rows(plan.rows_in, plan.rows_out);
                    eprintln!(
                        "  {}: scanned {} rows -> {} out, predicted [{lo}, {hi}] {}, bytes ≤ {}",
                        t.name,
                        plan.rows_in,
                        plan.rows_out,
                        if sound { "ok" } else { "OUTSIDE INTERVAL" },
                        fmt_bytes(est.bytes_hi(plan.rows_in)),
                    );
                }
            }
            let retried = outcome.report.retried();
            if !retried.is_empty() {
                let detail: Vec<String> = retried
                    .iter()
                    .map(|(name, n)| format!("{name}×{n}"))
                    .collect();
                eprintln!(
                    "retries healed {} task(s): {}",
                    retried.len(),
                    detail.join(", ")
                );
            }
            if outcome.report.resumed() > 0 {
                eprintln!(
                    "resume skipped {} task(s) already recorded successful",
                    outcome.report.resumed()
                );
            }
            eprintln!(
                "analyzed {} jobs; curation discarded {}/{} raw lines",
                outcome.frame.height(),
                outcome.curation.1,
                outcome.curation.0
            );
            let telemetry = &outcome.report.telemetry;
            if telemetry.enabled {
                let cp = schedflow_dataflow::critical_path(telemetry);
                eprintln!(
                    "trace: {} span(s) across {} task(s); critical path {:.1}ms \
                     over {} task(s), headroom {:.1}ms",
                    telemetry.counters.spans,
                    telemetry.counters.tasks_executed,
                    cp.length_ms,
                    cp.steps.len(),
                    cp.headroom_ms()
                );
                eprintln!(
                    "telemetry: {} (inspect with `schedflow trace {}`)",
                    cfg.data_dir.join(schedflow_core::TELEMETRY_FILE).display(),
                    cfg.data_dir.display()
                );
                if let Some(out) = &cfg.trace_out {
                    eprintln!(
                        "trace-out: {} (load in Perfetto / chrome://tracing)",
                        out.display()
                    );
                }
            }
            eprintln!("dashboard: {}", outcome.dashboard_index.display());
            eprintln!("insights:  {}", outcome.insights_md.display());
            if let Some(port) = parsed.serve {
                let dir = outcome.dashboard_index.parent().unwrap().to_path_buf();
                match schedflow_dashboard::serve(dir, port) {
                    Ok(handle) => {
                        eprintln!(
                            "serving dashboard at http://{}/ (ctrl-c to stop)",
                            handle.addr()
                        );
                        loop {
                            std::thread::sleep(std::time::Duration::from_secs(3600));
                        }
                    }
                    Err(e) => {
                        eprintln!("serve failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        Err(e) => {
            eprintln!("workflow failed: {e}");
            if cfg.fault.retries <= 1 {
                eprintln!("hint: re-run with --retries N to ride out transient failures,");
            }
            eprintln!("hint: re-run with --resume to re-execute only unfinished stages");
            std::process::exit(1);
        }
    }
}

/// `schedflow verify-run`: execute the workflow at 1 thread and at N threads
/// (optionally under seeded chaos) in isolated sandboxes and diff the
/// per-artifact content digests. Exit 0 iff every digest matches.
fn verify_command(parsed: Args) {
    let cfg = parsed.cfg;
    eprintln!(
        "schedflow verify-run: system={} window={:04}-{:02}..{:04}-{:02} legs=1/{} scale={}",
        cfg.system.name(),
        cfg.from.0,
        cfg.from.1,
        cfg.to.0,
        cfg.to.1,
        cfg.threads.max(2),
        cfg.scale
    );
    if let Some(c) = &cfg.fault.chaos {
        eprintln!(
            "chaos: seed={} fail-p={} panic-p={} delay-p={} retries={}",
            c.seed, c.fail_p, c.panic_p, c.delay_p, cfg.fault.retries
        );
    }
    match schedflow_core::verify_run(&cfg) {
        Ok(outcome) => {
            if outcome.is_deterministic() {
                println!(
                    "deterministic: {} artifact digest(s) identical at {} and {} threads",
                    outcome.serial.digests.len(),
                    outcome.serial.threads,
                    outcome.parallel.threads
                );
            } else {
                println!(
                    "NONDETERMINISTIC: {} of {} artifact digest(s) differ between {} and {} threads",
                    outcome.mismatches.len(),
                    outcome.serial.digests.len(),
                    outcome.serial.threads,
                    outcome.parallel.threads
                );
                for m in &outcome.mismatches {
                    println!(
                        "  {}: {} (serial) != {} (parallel)",
                        m.artifact,
                        m.serial.as_deref().unwrap_or("<none>"),
                        m.parallel.as_deref().unwrap_or("<none>")
                    );
                }
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("verify-run failed: {e}");
            std::process::exit(1);
        }
    }
}

/// `schedflow verify-crash`: run fault-free, run again dying at a store
/// write (under any configured I/O chaos), resume the crashed sandbox, and
/// diff every artifact digest against the baseline. Exit 0 iff converged.
fn verify_crash_command(parsed: Args) {
    let cfg = parsed.cfg;
    // Default crash point: seeded, so "randomized" runs replay exactly.
    let seed = cfg.fault.chaos.map_or(cfg.seed, |c| c.seed);
    let crash_after = parsed
        .crash_after
        .unwrap_or(1 + seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 23);
    eprintln!(
        "schedflow verify-crash: system={} window={:04}-{:02}..{:04}-{:02} crash at store write {}",
        cfg.system.name(),
        cfg.from.0,
        cfg.from.1,
        cfg.to.0,
        cfg.to.1,
        crash_after
    );
    if let Some(c) = &cfg.fault.chaos {
        eprintln!(
            "io-chaos: seed={} torn-p={} enospc-p={} eio-p={} retries={}",
            c.seed, c.io_torn_p, c.io_enospc_p, c.io_eio_p, cfg.fault.retries
        );
    }
    match schedflow_core::verify_crash_recovery(&cfg, crash_after) {
        Ok(outcome) => {
            if outcome.is_converged() {
                println!(
                    "crash recovery OK: crashed={} resumed={} task(s), {} artifact digest(s) identical to the fault-free run",
                    outcome.crashed,
                    outcome.resumed,
                    outcome.baseline.digests.len()
                );
            } else {
                println!(
                    "CRASH RECOVERY DIVERGED: {} of {} artifact digest(s) differ after resume",
                    outcome.mismatches.len(),
                    outcome.baseline.digests.len()
                );
                for m in &outcome.mismatches {
                    println!(
                        "  {}: {} (baseline) != {} (recovered)",
                        m.artifact,
                        m.serial.as_deref().unwrap_or("<none>"),
                        m.parallel.as_deref().unwrap_or("<none>")
                    );
                }
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("verify-crash failed: {e}");
            std::process::exit(1);
        }
    }
}

/// `schedflow verify-policy`: run the SF09xx scheduling-policy analyzer over
/// the resolved profile, then replay every emitted witness queue in the
/// simulator and check the predicted overtaking/blocking actually occurs.
/// Exit 0 iff the report has no errors and every witness reproduces.
fn verify_policy_command(parsed: Args) {
    let cfg = parsed.cfg;
    eprintln!(
        "schedflow verify-policy: system={} window={:04}-{:02}..{:04}-{:02}",
        cfg.system.name(),
        cfg.from.0,
        cfg.from.1,
        cfg.to.0,
        cfg.to.1,
    );
    let v = schedflow_core::verify_policy(&cfg);
    if v.report.is_clean() {
        println!("policy-clean: no SF09xx findings on the resolved profile");
    } else {
        print!("{}", v.report.render());
    }
    for r in &v.replays {
        if r.holds {
            println!("{} witness confirmed: {}", r.code, r.detail);
        } else {
            println!("{} witness DID NOT reproduce: {}", r.code, r.detail);
        }
    }
    for f in &v.failed {
        println!("UNSOUND: {f}");
    }
    if v.report.has_errors() || !v.is_sound() {
        std::process::exit(1);
    }
}

/// `schedflow explain [STAGE|all] [--dot]`: print each analysis stage's
/// logical plan before and after optimization (or as a DOT graph), straight
/// from the same plan registry that derives the stages' lint contracts and
/// checkpoint fingerprints.
fn explain_command(args: std::env::Args) {
    let mut stage_arg: Option<String> = None;
    let mut dot = false;
    for a in args {
        match a.as_str() {
            "--dot" => dot = true,
            s if stage_arg.is_none() && !s.starts_with('-') => stage_arg = Some(s.to_owned()),
            other => {
                eprintln!("unknown argument {other:?} for `explain`");
                usage();
            }
        }
    }
    let stages: Vec<&str> = match stage_arg.as_deref() {
        None | Some("all") => schedflow_analytics::STAGES.to_vec(),
        Some(s) => {
            if schedflow_analytics::stage_plan(s).is_none() {
                eprintln!(
                    "unknown stage {s:?}; available: {}",
                    schedflow_analytics::STAGES.join(", ")
                );
                std::process::exit(2);
            }
            vec![schedflow_analytics::STAGES
                .iter()
                .find(|n| **n == s)
                .copied()
                .unwrap()]
        }
    };
    for (i, stage) in stages.iter().enumerate() {
        let plan = schedflow_analytics::stage_plan(stage).expect("registry covers STAGES");
        if i > 0 {
            println!();
        }
        if dot {
            println!(
                "// stage: {stage} (fingerprint {:016x})",
                plan.fingerprint()
            );
            println!("{}", plan.to_dot());
        } else {
            println!(
                "== stage: {stage} (fingerprint {:016x}) ==",
                plan.fingerprint()
            );
            println!("logical:");
            print!("{}", indent(&plan.explain()));
            println!("optimized:");
            print!("{}", indent(&plan.explain_optimized()));
        }
    }
}

/// Two-space indent for the explain trees.
fn indent(tree: &str) -> String {
    tree.lines().map(|l| format!("  {l}\n")).collect::<String>()
}

/// `schedflow trace DATA_DIR`: load the telemetry a finished run persisted to
/// its data directory and print the span/critical-path summary.
fn trace_command(mut args: std::env::Args) {
    let dir = std::path::PathBuf::from(args.next().unwrap_or_else(|| "schedflow-out".to_owned()));
    match schedflow_core::load_telemetry(&dir) {
        Some(t) => print!("{}", schedflow_dataflow::render_summary(&t)),
        None => {
            eprintln!(
                "no readable telemetry at {}",
                dir.join(schedflow_core::TELEMETRY_FILE).display()
            );
            eprintln!("hint: finish a `schedflow run` first (tracing is on unless --no-trace)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut args = std::env::args();
    let _binary = args.next();
    let command = args.next().unwrap_or_else(|| usage());

    match command.as_str() {
        "table2" => {
            println!("{}", schedflow_insight::table2_text());
            let chosen = schedflow_insight::select_backend();
            println!("selected backend: {} {}", chosen.provider, chosen.version);
        }
        "lint" => {
            let parsed = parse_args("lint", args);
            if let Some(code) = &parsed.explain_code {
                match schedflow_lint::explain(code) {
                    Some(doc) => print!("{doc}"),
                    None => {
                        eprintln!("no extended documentation for {code:?}");
                        std::process::exit(2);
                    }
                }
                return;
            }
            let built = build(&parsed.cfg);
            let cost = schedflow_lint::CostOptions {
                mem_budget: parsed.mem_budget,
                ..schedflow_lint::CostOptions::default()
            };
            let mut report = schedflow_lint::lint_all_with(
                &built.workflow,
                Some(&schedflow_core::run_options(&parsed.cfg)),
                &cost,
            );
            // SF0701: probe already-existing storage dirs for atomic rename
            // (lint must not create directories as a side effect).
            let dirs: Vec<&std::path::Path> = [
                parsed.cfg.cache_dir.as_path(),
                parsed.cfg.data_dir.as_path(),
            ]
            .into_iter()
            .filter(|d| d.exists())
            .collect();
            report.extend(schedflow_lint::lint_storage(&dirs));
            // SF09xx: scheduling-policy analysis over the resolved profile
            // (including any --age-weight/--backfill overrides).
            report.extend(schedflow_lint::lint_policy(&parsed.cfg.profile()).report);
            report.sort();
            match parsed.lint_format {
                LintFormat::Text => print!("{}", report.render()),
                LintFormat::Json => print!("{}", schedflow_lint::to_json(&report)),
                LintFormat::Sarif => print!("{}", schedflow_lint::to_sarif(&report)),
            }
            let fatal = report.errors() > 0 || (parsed.deny_warnings && report.warnings() > 0);
            if fatal {
                std::process::exit(1);
            }
        }
        "dot" => {
            let parsed = parse_args("dot", args);
            let built = build(&parsed.cfg);
            let title = format!("schedflow hybrid workflow — {}", parsed.cfg.system.name());
            let dot = if parsed.dot_lint {
                let report = schedflow_lint::lint_all(
                    &built.workflow,
                    Some(&schedflow_core::run_options(&parsed.cfg)),
                );
                schedflow_lint::annotated_dot(&built.workflow, &report, &title)
            } else {
                schedflow_dataflow::to_dot(
                    &built.workflow,
                    &schedflow_dataflow::DotOptions {
                        show_artifacts: false,
                        title,
                        ..Default::default()
                    },
                )
            }
            .unwrap_or_else(|e| {
                eprintln!("graph error: {e}");
                std::process::exit(1);
            });
            println!("{dot}");
        }
        "explain" => explain_command(args),
        "trace" => trace_command(args),
        "run" | "chaos" => run_command(parse_args(&command, args)),
        "verify-run" => verify_command(parse_args("verify-run", args)),
        "verify-crash" => verify_crash_command(parse_args("verify-crash", args)),
        "verify-policy" => verify_policy_command(parse_args("verify-policy", args)),
        _ => usage(),
    }
}
