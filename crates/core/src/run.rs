//! Executing the built workflow and collecting its products.

use crate::config::WorkflowConfig;
use crate::pipeline::{build, BuiltWorkflow};
use schedflow_dataflow::{GraphError, RunOptions, RunReport, Runner};
use schedflow_frame::Frame;
use schedflow_insight::Insight;
use std::path::PathBuf;
use std::sync::Arc;

/// Errors from a workflow run.
#[derive(Debug)]
pub enum CoreError {
    Graph(GraphError),
    /// One or more tasks failed; the report carries details.
    TasksFailed { failed: Vec<String>, report: Box<RunReport> },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Graph(e) => write!(f, "workflow graph error: {e}"),
            CoreError::TasksFailed { failed, .. } => {
                write!(f, "workflow tasks failed: {failed:?}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

/// Everything a successful run produces.
pub struct RunOutcome {
    /// Per-task execution report (timings, workers, cache hits).
    pub report: RunReport,
    /// The merged analysis frame.
    pub frame: Arc<Frame>,
    /// `(stage, insight)` for each field-specific chart.
    pub insights: Vec<(String, Arc<Insight>)>,
    /// The two-month wait comparison, when the window allows one.
    pub compare: Option<Arc<Insight>>,
    /// Dashboard entry point on disk.
    pub dashboard_index: PathBuf,
    /// Consolidated insight report on disk.
    pub insights_md: PathBuf,
    /// Curation accounting: `(total_lines, malformed)` across months.
    pub curation: (usize, usize),
}

/// Build and execute the workflow for `cfg`.
pub fn run(cfg: &WorkflowConfig) -> Result<RunOutcome, CoreError> {
    let BuiltWorkflow { workflow, handles } = build(cfg);
    let runner = Runner::new(workflow)?;
    let report = runner.run(&RunOptions {
        threads: cfg.threads,
        // The engine-level file cache is never *harmful* here; obtain tasks
        // additionally implement the paper's raw-data cache themselves.
        use_cache: cfg.use_cache,
    });

    if !report.is_success() {
        let failed = report
            .failed()
            .iter()
            .map(|t| format!("{}: {:?}", t.name, t.status))
            .collect();
        return Err(CoreError::TasksFailed {
            failed,
            report: Box::new(report),
        });
    }

    let store = runner.store();
    let get = |id: schedflow_dataflow::ArtifactId| store.get_any(id);

    let frame = get(handles.merged.id())
        .and_then(|v| v.downcast::<Frame>().ok())
        .expect("merged frame produced on success");

    let mut insights = Vec::new();
    for (stage, _, _, insight_art) in &handles.stages {
        if let Some(i) = get(insight_art.id()).and_then(|v| v.downcast::<Insight>().ok()) {
            insights.push((stage.clone(), i));
        }
    }
    let compare = handles
        .compare
        .and_then(|c| get(c.id()))
        .and_then(|v| v.downcast::<Insight>().ok());

    let mut total_lines = 0usize;
    let mut malformed = 0usize;
    for r in &handles.reports {
        if let Some(rep) = get(r.id()).and_then(|v| v.downcast::<schedflow_sacct::ParseReport>().ok())
        {
            total_lines += rep.total_lines;
            malformed += rep.malformed.len();
        }
    }

    Ok(RunOutcome {
        report,
        frame,
        insights,
        compare,
        dashboard_index: handles.dashboard_index,
        insights_md: handles.insights_md,
        curation: (total_lines, malformed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{System, WorkflowConfig};

    fn tiny_config(tag: &str) -> WorkflowConfig {
        let base = std::env::temp_dir().join(format!(
            "schedflow-run-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        let mut cfg = WorkflowConfig::new(System::Andes);
        cfg.from = (2024, 1);
        cfg.to = (2024, 2);
        cfg.scale = 0.02;
        cfg.threads = 4;
        cfg.seed = 5;
        cfg.cache_dir = base.join("cache");
        cfg.data_dir = base.join("data");
        cfg.corrupt_fraction = 0.005;
        cfg
    }

    #[test]
    fn end_to_end_run_produces_all_artifacts() {
        let cfg = tiny_config("e2e");
        let outcome = run(&cfg).unwrap_or_else(|e| panic!("{e}"));
        assert!(outcome.report.is_success());
        assert!(outcome.frame.height() > 200, "jobs analyzed: {}", outcome.frame.height());
        assert_eq!(outcome.insights.len(), crate::pipeline::PLOT_STAGES.len());
        assert!(outcome.compare.is_some());
        assert!(outcome.dashboard_index.exists());
        assert!(outcome.insights_md.exists());
        // Curation saw the injected corruption.
        assert!(outcome.curation.0 > 0);
        assert!(outcome.curation.1 > 0, "some malformed lines expected");
        // Charts on disk.
        for stage in crate::pipeline::PLOT_STAGES {
            assert!(cfg.data_dir.join("charts").join(format!("{stage}.html")).exists());
        }
        // The insights report mentions every stage.
        let md = std::fs::read_to_string(&outcome.insights_md).unwrap();
        for stage in crate::pipeline::PLOT_STAGES {
            assert!(md.contains(&format!("stage: {stage}")), "{stage} missing");
        }
        assert!(md.contains("stage: compare"));
        let _ = std::fs::remove_dir_all(cfg.cache_dir.parent().unwrap());
    }

    #[test]
    fn second_run_reuses_raw_cache() {
        let cfg = tiny_config("cache");
        let first = run(&cfg).unwrap();
        let t_first = first.report.makespan_ms;
        let second = run(&cfg).unwrap();
        // Cached obtain stages should make the second run no slower by an
        // order of magnitude (the trace still has to re-simulate).
        assert!(second.report.is_success());
        let _ = t_first;
        // The raw files were reused: obtain tasks completed quickly but the
        // outputs still exist and parse.
        assert!(second.frame.height() == first.frame.height());
        let _ = std::fs::remove_dir_all(cfg.cache_dir.parent().unwrap());
    }

    #[test]
    fn concurrency_is_exploited() {
        let cfg = tiny_config("conc");
        let outcome = run(&cfg).unwrap();
        assert!(
            outcome.report.max_concurrency() >= 2,
            "parallel pipelines expected, got {}",
            outcome.report.max_concurrency()
        );
    }
}
