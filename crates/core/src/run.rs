//! Executing the built workflow and collecting its products.

use crate::config::WorkflowConfig;
use crate::pipeline::{build, BuiltWorkflow};
use schedflow_dataflow::{GraphError, RetryOn, RetryPolicy, RunOptions, RunReport, Runner};
use schedflow_frame::Frame;
use schedflow_insight::Insight;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// File name of the checkpoint manifest inside `data_dir`.
pub const MANIFEST_FILE: &str = "run-manifest.json";

/// File name of the persisted telemetry record inside `data_dir` (the
/// `schedflow trace <run>` input).
pub const TELEMETRY_FILE: &str = "run-telemetry.json";

/// Errors from a workflow run.
#[derive(Debug)]
pub enum CoreError {
    Graph(GraphError),
    /// Static analysis found errors before any task ran (the `--deny` gate).
    Lint {
        report: Box<schedflow_lint::LintReport>,
    },
    /// One or more stages failed (after retries); the report carries details.
    StageFailed {
        failed: Vec<String>,
        report: Box<RunReport>,
    },
    /// The run reported success but an expected artifact is absent — an
    /// engine/pipeline contract violation, reported instead of panicking.
    MissingArtifact {
        artifact: String,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Graph(e) => write!(f, "workflow graph error: {e}"),
            CoreError::Lint { report } => write!(
                f,
                "lint found {} error(s) before any task ran:\n{}",
                report.errors(),
                report.render()
            ),
            CoreError::StageFailed { failed, .. } => {
                write!(f, "workflow stages failed: {}", failed.join("; "))
            }
            CoreError::MissingArtifact { artifact } => write!(
                f,
                "workflow succeeded but artifact {artifact:?} was not produced"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

/// Everything a successful run produces.
pub struct RunOutcome {
    /// Per-task execution report (timings, workers, cache hits, attempts).
    pub report: RunReport,
    /// The merged analysis frame.
    pub frame: Arc<Frame>,
    /// `(stage, insight)` for each field-specific chart.
    pub insights: Vec<(String, Arc<Insight>)>,
    /// The two-month wait comparison, when the window allows one.
    pub compare: Option<Arc<Insight>>,
    /// Dashboard entry point on disk.
    pub dashboard_index: PathBuf,
    /// Consolidated insight report on disk.
    pub insights_md: PathBuf,
    /// Curation accounting: `(total_lines, malformed)` across months.
    pub curation: (usize, usize),
}

/// Translate the configured fault options into engine [`RunOptions`].
pub fn run_options(cfg: &WorkflowConfig) -> RunOptions {
    let fault = &cfg.fault;
    let mut options = RunOptions {
        threads: cfg.threads,
        // The engine-level file cache is never *harmful* here; obtain tasks
        // additionally implement the paper's raw-data cache themselves.
        use_cache: cfg.use_cache,
        ..RunOptions::default()
    };
    if fault.retries > 1 {
        options.default_retry = RetryPolicy::transient(fault.retries)
            .with_backoff(fault.retry_base_delay_ms, fault.retry_base_delay_ms * 40)
            .retrying(RetryOn::TransientAndTimeout);
    }
    options.task_timeout = fault.task_timeout;
    options.stall_timeout = Duration::from_secs(fault.stall_timeout_secs.max(1));
    options.manifest_path = Some(cfg.data_dir.join(MANIFEST_FILE));
    options.resume = fault.resume;
    options.chaos = fault.chaos;
    // Span identities derive from the workload seed, so two runs of the same
    // configuration (at any thread counts) produce digest-identical traces.
    options.trace = cfg.trace;
    options.trace_seed = cfg.seed;
    options
}

/// Persist the run's telemetry next to the manifest and, when requested,
/// export the Chrome trace-event JSON. Best-effort and called for failed
/// runs too — a trace is most valuable exactly when the run went wrong.
/// (The Chrome file is written plain, without the store's checksum footer:
/// external viewers must be able to load it as-is.)
fn persist_telemetry(cfg: &WorkflowConfig, report: &RunReport) {
    let t = &report.telemetry;
    if !t.enabled {
        return;
    }
    let store = schedflow_dataflow::DurableStore::real();
    let _ = store.write_atomic(&cfg.data_dir.join(TELEMETRY_FILE), t.to_json().as_bytes());
    if let Some(out) = &cfg.trace_out {
        if let Some(dir) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
            let _ = std::fs::create_dir_all(dir);
        }
        let _ = std::fs::write(out, schedflow_dataflow::to_chrome_json(t));
    }
}

/// Load the telemetry record persisted by a previous run of `data_dir`
/// (`schedflow trace <run>` reads it back through the checksummed store).
pub fn load_telemetry(data_dir: &std::path::Path) -> Option<schedflow_dataflow::Telemetry> {
    let store = schedflow_dataflow::DurableStore::real();
    let bytes = store
        .read_verified(&data_dir.join(TELEMETRY_FILE))
        .ok()?
        .into_bytes();
    schedflow_dataflow::Telemetry::from_json(std::str::from_utf8(&bytes).ok()?)
}

/// Render the run report as the dashboard's "Run report" tab body: run-level
/// data-plane figures plus a per-task table with timings and bytes.
fn run_report_html(report: &RunReport) -> String {
    use schedflow_dataflow::human_bytes;
    let esc = |s: &str| {
        s.replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;")
    };
    let mut rows = String::new();
    for t in &report.tasks {
        // Plan columns are empty for tasks that executed no logical plans.
        let (plan_cols, plan_red) = t.plan.as_ref().map_or_else(
            || (String::new(), String::new()),
            |p| {
                (
                    format!("{}/{}", p.cols_scanned, p.cols_total),
                    format!("{:.1}&times;", p.scan_reduction()),
                )
            },
        );
        // Estimated-vs-actual rows: only meaningful when the stage executed
        // exactly one plan, so the per-task scan tally matches the estimate's
        // `n`. The interval is the static bound evaluated at the actual scan.
        let est_rows = match (&t.estimate, &t.plan) {
            (Some(est), Some(p)) if p.plans == 1 => {
                let (lo, hi) = est.rows_interval(p.rows_in);
                let verdict = if est.contains_rows(p.rows_in, p.rows_out) {
                    "ok"
                } else {
                    "<strong>outside</strong>"
                };
                format!("[{lo}, {hi}] / {} {verdict}", p.rows_out)
            }
            _ => String::new(),
        };
        rows.push_str(&format!(
            "<tr><td>{name}</td><td>{kind}</td><td>{status}</td>\
             <td class=\"num\">{dur:.1}</td>\
             <td class=\"num\">{bin}</td><td class=\"num\">{bout}</td>\
             <td class=\"num\">{plan_cols}</td><td class=\"num\">{plan_red}</td>\
             <td class=\"num\">{est_rows}</td></tr>",
            name = esc(&t.name),
            kind = t.kind,
            status = esc(t.status.manifest_str()),
            dur = t.duration_ms(),
            bin = human_bytes(t.bytes_in),
            bout = human_bytes(t.bytes_out),
        ));
    }
    let plan_summary = report.plan_totals().map_or_else(String::new, |p| {
        format!(
            "<p>Plan optimizer: {plans} logical plan(s) scanned \
             <strong>{scanned}</strong> of <strong>{eager}</strong> eager bytes \
             ({red:.1}&times; reduction); {cs}/{ct} source columns read, \
             {pushed} predicate(s) pushed into scans, {fused} filter(s) fused, \
             {dedup} duplicate subplan(s) served from cache.</p>",
            plans = p.plans,
            scanned = human_bytes(p.bytes_scanned),
            eager = human_bytes(p.bytes_eager),
            red = p.scan_reduction(),
            cs = p.cols_scanned,
            ct = p.cols_total,
            pushed = p.predicates_pushed,
            fused = p.filters_fused,
            dedup = p.subplans_deduped,
        )
    });
    format!(
        "<p>{tasks} tasks in {makespan:.1} s on {threads} threads \
         (max concurrency {conc}, speedup &ge; {speedup:.1}&times;).</p>\
         <p>Data plane: <strong>{bin}</strong> read / <strong>{bout}</strong> \
         produced by tasks; peak resident <strong>{peak}</strong> of value \
         artifacts (the lifetime tracker drops each artifact after its last \
         consumer).</p>{plan_summary}\
         <table><thead><tr><th>Task</th><th>Kind</th><th>Status</th>\
         <th>Duration (ms)</th><th>Bytes in</th><th>Bytes out</th>\
         <th>Plan cols</th><th>Scan &divide;</th>\
         <th>Est rows / actual</th></tr></thead>\
         <tbody>{rows}</tbody></table>",
        tasks = report.tasks.len(),
        makespan = report.makespan_ms / 1000.0,
        threads = report.threads,
        conc = report.max_concurrency(),
        speedup = report.speedup(),
        bin = human_bytes(report.total_bytes_in()),
        bout = human_bytes(report.total_bytes_out()),
        peak = human_bytes(report.peak_resident_bytes),
        rows = rows,
        plan_summary = plan_summary,
    )
}

/// Render the telemetry as the dashboard's "Timeline" tab body: the span
/// waterfall (one row per task, bars positioned on the run's wall clock)
/// plus the critical path with per-task self-times and headroom.
fn timeline_panel_html(report: &RunReport) -> String {
    use schedflow_dataflow::trace as obs;
    let t = &report.telemetry;
    if !t.enabled {
        return "<p>Tracing was disabled for this run (<code>--no-trace</code>), \
                so no timeline was recorded.</p>"
            .to_owned();
    }
    let esc = |s: &str| {
        s.replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;")
    };
    let wall = t.makespan_ms.max(1e-6);
    let mut rows = String::new();
    for s in &t.spans {
        if s.kind != obs::KIND_RUN {
            continue;
        }
        let left = 100.0 * s.start_ms / wall;
        let width = (100.0 * s.duration_ms() / wall).max(0.15);
        let class = match (s.ok, s.attempt) {
            (false, _) => "span-fail",
            (true, 0) => "span-cached",
            (true, _) => "span-ok",
        };
        rows.push_str(&format!(
            "<div class=\"lane\"><span class=\"lane-name\">{name}</span>\
             <span class=\"bar {class}\" \
             style=\"margin-left:{left:.2}%;width:{width:.2}%\" \
             title=\"attempt {attempt}: {start:.1}&ndash;{end:.1} ms (worker {worker})\">\
             </span></div>",
            name = esc(&s.task),
            attempt = s.attempt,
            start = s.start_ms,
            end = s.end_ms,
            worker = s.worker,
        ));
    }
    let cp = obs::critical_path(t);
    let mut path_rows = String::new();
    for step in &cp.steps {
        path_rows.push_str(&format!(
            "<li><code>{}</code> &mdash; {:.1} ms self-time</li>",
            esc(&step.task),
            step.self_ms
        ));
    }
    let c = &t.counters;
    format!(
        "<style>.lane{{display:flex;align-items:center;font-size:12px;\
         margin:1px 0}}.lane-name{{flex:0 0 14em;overflow:hidden;\
         text-overflow:ellipsis;white-space:nowrap}}\
         .lane .bar{{display:inline-block;height:10px;border-radius:2px}}\
         .span-ok{{background:#4878a8}}.span-fail{{background:#c0392b}}\
         .span-cached{{background:#95a5a6}}</style>\
         <p>{spans} span(s) over {tasks} task(s) in {wall:.1} ms on \
         {threads} thread(s); {attempts} attempt(s), {retries} retried; \
         {writes} store write(s) ({fsyncs} fsyncs), {kernels} parallel \
         kernel(s). Trace seed {seed}.</p>\
         <p>Critical path <strong>{cp_ms:.1} ms</strong> across \
         {cp_len} task(s); headroom (wall &minus; critical path) \
         <strong>{headroom:.1} ms</strong> &mdash; the most any scheduling \
         improvement could still save.</p>\
         <ol>{path_rows}</ol><h3>Span waterfall</h3>{rows}",
        spans = c.spans,
        tasks = c.tasks_executed,
        wall = t.makespan_ms,
        threads = t.threads,
        attempts = c.attempts,
        retries = c.retries,
        writes = c.store_writes,
        fsyncs = c.store_fsyncs,
        kernels = c.par_kernels,
        seed = t.seed,
        cp_ms = cp.length_ms,
        cp_len = cp.steps.len(),
        headroom = cp.headroom_ms(),
        path_rows = path_rows,
        rows = rows,
    )
}

/// Render the SF09xx policy analysis as the dashboard's "Policy analysis"
/// tab body: verdict, the rendered report, and witness replay results.
fn policy_panel_html(
    policy: &schedflow_lint::PolicyAnalysis,
    replays: &[schedflow_sim::ReplayReport],
) -> String {
    let esc = |s: &str| {
        s.replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;")
    };
    let verdict = if policy.is_clean() {
        "<p>The active system configuration is <strong>policy-clean</strong>: \
         every generated job class is schedulable, the age factor closes \
         priority gaps, QOS ordering is consistent with partition tiers, \
         backfill covers the expected queue depth, no partition is shadowed, \
         and the fair-share half-life lies inside the trace window.</p>"
            .to_owned()
    } else {
        format!(
            "<p>Static policy analysis found <strong>{} error(s)</strong> and \
             <strong>{} warning(s)</strong>:</p><pre>{}</pre>",
            policy.report.errors(),
            policy.report.warnings(),
            esc(&policy.report.render())
        )
    };
    let mut replay_html = String::new();
    if !replays.is_empty() {
        replay_html.push_str(
            "<h3>Witness replays</h3><p>Each starvation verdict ships a \
             concrete witness queue; the simulator replayed them:</p><ul>",
        );
        for r in replays {
            replay_html.push_str(&format!(
                "<li><code>{}</code> — {}: {}</li>",
                esc(&r.code),
                if r.holds {
                    "<strong>confirmed</strong>"
                } else {
                    "<strong>did not reproduce</strong>"
                },
                esc(&r.detail)
            ));
        }
        replay_html.push_str("</ul>");
    }
    let mut edits_html = String::new();
    if !policy.edits.is_empty() {
        edits_html.push_str("<h3>Suggested edits</h3><ul>");
        for e in &policy.edits {
            edits_html.push_str(&format!("<li><code>{}</code></li>", esc(&e.render())));
        }
        edits_html.push_str("</ul>");
    }
    format!("{verdict}{replay_html}{edits_html}")
}

/// Outcome of [`verify_policy`]: the static SF09xx report, every witness
/// replay, and the witnesses whose predicted misbehavior did not reproduce.
#[derive(Debug, Clone)]
pub struct PolicyVerification {
    pub report: schedflow_lint::LintReport,
    pub replays: Vec<schedflow_sim::ReplayReport>,
    /// Verdicts the simulator could not confirm — a soundness bug in the
    /// static analyzer if ever non-empty.
    pub failed: Vec<String>,
}

impl PolicyVerification {
    /// True when every static starvation verdict reproduced under simulation.
    pub fn is_sound(&self) -> bool {
        self.failed.is_empty()
    }
}

/// The policy verifier behind `schedflow verify-policy`: run the SF09xx
/// static analysis on the active profile (with `--age-weight`/`--backfill`
/// overrides applied), then replay every witness queue through the real
/// scheduler and check each predicted overtaking/blocking actually occurs.
pub fn verify_policy(cfg: &WorkflowConfig) -> PolicyVerification {
    let profile = cfg.profile();
    let analysis = schedflow_lint::lint_policy(&profile);
    let mut replays = Vec::new();
    let mut failed = Vec::new();
    for w in &analysis.witnesses {
        match schedflow_sim::replay(&profile.system, w) {
            Ok(r) => {
                if !r.holds {
                    failed.push(format!("{}: {}", r.code, r.detail));
                }
                replays.push(r);
            }
            Err(e) => failed.push(format!("{}: witness queue rejected: {e}", w.code)),
        }
    }
    PolicyVerification {
        report: analysis.report,
        replays,
        failed,
    }
}

/// Build and execute the workflow for `cfg`.
pub fn run(cfg: &WorkflowConfig) -> Result<RunOutcome, CoreError> {
    run_built(build(cfg), cfg)
}

/// Execute an already-built workflow — the seam that lets tests tamper with
/// contracts before the lint gate sees them.
pub fn run_built(built: BuiltWorkflow, cfg: &WorkflowConfig) -> Result<RunOutcome, CoreError> {
    let BuiltWorkflow { workflow, handles } = built;

    // The static-analysis gate: schema dataflow, liveness, run-option lints,
    // and the SF09xx scheduling-policy analysis of the active system config
    // all run before any task does. Errors abort here (unless `--no-deny`);
    // warnings are advisory either way.
    if cfg.lint_deny {
        let mut lint = schedflow_lint::lint_all(&workflow, Some(&run_options(cfg)));
        lint.extend(schedflow_lint::lint_policy(&cfg.profile()).report);
        lint.sort();
        if lint.has_errors() {
            return Err(CoreError::Lint {
                report: Box::new(lint),
            });
        }
    }

    // Storage health (SF0701, advisory): probe the cache and data dirs for
    // the same-directory atomic rename the durable store depends on. Runs
    // after the error gate so a refused run leaves no directories behind.
    let storage = schedflow_lint::lint_storage(&[&cfg.cache_dir, &cfg.data_dir]);
    for d in &storage.diagnostics {
        eprintln!("{}", d.render());
    }

    let runner = Runner::new(workflow)?;
    let report = runner.run(&run_options(cfg));

    // Telemetry is persisted before the failure gate: a failed run's trace
    // is exactly the one worth inspecting.
    persist_telemetry(cfg, &report);

    if !report.is_success() {
        let mut failed: Vec<String> = report
            .failed()
            .iter()
            .map(|t| {
                if t.attempts > 1 {
                    format!("{} ({:?} after {} attempts)", t.name, t.status, t.attempts)
                } else {
                    format!("{}: {:?}", t.name, t.status)
                }
            })
            .collect();
        // A run aborted by the happens-before tracker has no status-failed
        // task — the counterexample traces *are* the failure.
        failed.extend(report.race_violations.iter().cloned());
        return Err(CoreError::StageFailed {
            failed,
            report: Box::new(report),
        });
    }

    let store = runner.store();
    let get = |id: schedflow_dataflow::ArtifactId| store.get_any(id);

    let frame = get(handles.merged.id())
        .and_then(|v| v.downcast::<Frame>().ok())
        .ok_or(CoreError::MissingArtifact {
            artifact: "merged-frame".to_owned(),
        })?;

    let mut insights = Vec::new();
    for (stage, _, _, insight_art) in &handles.stages {
        if let Some(i) = get(insight_art.id()).and_then(|v| v.downcast::<Insight>().ok()) {
            insights.push((stage.clone(), i));
        }
    }
    let compare = handles
        .compare
        .and_then(|c| get(c.id()))
        .and_then(|v| v.downcast::<Insight>().ok());

    let mut total_lines = 0usize;
    let mut malformed = 0usize;
    for r in &handles.reports {
        if let Some(rep) =
            get(r.id()).and_then(|v| v.downcast::<schedflow_sacct::ParseReport>().ok())
        {
            total_lines += rep.total_lines;
            malformed += rep.malformed.len();
        }
    }

    // Fill the dashboard's "Run report" and "Policy analysis" tabs: their
    // sidebar slots were created by the in-workflow dashboard task, but the
    // timings only exist now and the policy panel replays its witnesses.
    // Best-effort — a missing dashboard must not fail the run.
    if let Some(dash_dir) = handles.dashboard_index.parent() {
        if dash_dir.exists() {
            let _ = schedflow_dashboard::write_panel_page(
                dash_dir,
                "run-report",
                "Run report",
                &run_report_html(&report),
            );
            let profile = cfg.profile();
            let policy = schedflow_lint::lint_policy(&profile);
            let replays: Vec<schedflow_sim::ReplayReport> = policy
                .witnesses
                .iter()
                .filter_map(|w| schedflow_sim::replay(&profile.system, w).ok())
                .collect();
            let _ = schedflow_dashboard::write_panel_page(
                dash_dir,
                "policy",
                "Policy analysis",
                &policy_panel_html(&policy, &replays),
            );
            let _ = schedflow_dashboard::write_panel_page(
                dash_dir,
                "timeline",
                "Timeline",
                &timeline_panel_html(&report),
            );
        }
    }

    Ok(RunOutcome {
        report,
        frame,
        insights,
        compare,
        dashboard_index: handles.dashboard_index,
        insights_md: handles.insights_md,
        curation: (total_lines, malformed),
    })
}

/// One leg of a determinism comparison: the thread count it ran at and its
/// normalized `(artifact, digest)` pairs, sorted by artifact name.
#[derive(Debug, Clone)]
pub struct VerifyLeg {
    pub threads: usize,
    /// `(normalized artifact name, digest)` — file paths have the leg's
    /// private data/cache prefixes rewritten to `$DATA`/`$CACHE` so the two
    /// legs are comparable; `None` means the artifact's digest could not be
    /// computed (deterministically so, on both legs or neither).
    pub digests: Vec<(String, Option<String>)>,
}

/// An artifact whose content differed between the two legs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestMismatch {
    pub artifact: String,
    pub serial: Option<String>,
    pub parallel: Option<String>,
}

/// Outcome of [`verify_run`]: both legs plus the artifacts that differed.
#[derive(Debug, Clone)]
pub struct VerifyOutcome {
    pub serial: VerifyLeg,
    pub parallel: VerifyLeg,
    pub mismatches: Vec<DigestMismatch>,
}

impl VerifyOutcome {
    /// True when every artifact digested identically on both legs.
    pub fn is_deterministic(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Rewrite a leg's private directory prefixes out of an artifact name so the
/// serial and parallel legs (which run in separate sandboxes) compare equal.
fn normalize_artifact_name(name: &str, cfg: &WorkflowConfig) -> String {
    name.replace(&cfg.data_dir.display().to_string(), "$DATA")
        .replace(&cfg.cache_dir.display().to_string(), "$CACHE")
}

/// Execute one verification leg in its own sandbox under `cfg.data_dir`.
fn verify_leg(cfg: &WorkflowConfig, threads: usize, tag: &str) -> Result<VerifyLeg, CoreError> {
    let mut leg = cfg.clone();
    leg.threads = threads.max(1);
    leg.cache_dir = cfg.data_dir.join(tag).join("cache");
    leg.data_dir = cfg.data_dir.join(tag).join("data");
    // Each leg must recompute everything itself: a resumed or cached leg
    // would certify the *other* leg's bytes, not its own scheduling.
    leg.fault.resume = false;
    leg.use_cache = false;
    let outcome = run(&leg)?;
    let mut digests: Vec<(String, Option<String>)> = outcome
        .report
        .artifacts
        .iter()
        .map(|a| (normalize_artifact_name(&a.name, &leg), a.digest.clone()))
        .collect();
    digests.sort();
    Ok(VerifyLeg {
        threads: leg.threads,
        digests,
    })
}

/// The determinism verifier behind `schedflow verify-run`: execute the
/// workflow twice — serially, then at the configured thread count (under
/// whatever chaos/retry options `cfg.fault` carries) — in isolated sandboxes
/// under `cfg.data_dir`, and diff the per-artifact content digests. Identical
/// digests certify that scheduling (and fault-injection timing) leaves no
/// fingerprint on any analysis product.
pub fn verify_run(cfg: &WorkflowConfig) -> Result<VerifyOutcome, CoreError> {
    let serial = verify_leg(cfg, 1, "verify-1t")?;
    let threads = cfg.threads.max(2);
    let parallel = verify_leg(cfg, threads, &format!("verify-{threads}t"))?;

    let lookup: std::collections::BTreeMap<&str, &Option<String>> = parallel
        .digests
        .iter()
        .map(|(n, d)| (n.as_str(), d))
        .collect();
    let mut mismatches = Vec::new();
    for (name, digest) in &serial.digests {
        let other = lookup.get(name.as_str()).copied();
        if other != Some(digest) {
            mismatches.push(DigestMismatch {
                artifact: name.clone(),
                serial: digest.clone(),
                parallel: other.cloned().flatten(),
            });
        }
    }
    for (name, digest) in &parallel.digests {
        if !serial.digests.iter().any(|(n, _)| n == name) {
            mismatches.push(DigestMismatch {
                artifact: name.clone(),
                serial: None,
                parallel: digest.clone(),
            });
        }
    }
    Ok(VerifyOutcome {
        serial,
        parallel,
        mismatches,
    })
}

/// Outcome of [`verify_crash_recovery`]: the fault-free baseline, the
/// crashed-then-resumed leg, and any artifacts whose digests differ.
#[derive(Debug, Clone)]
pub struct CrashRecoveryOutcome {
    /// True when the injected crash actually fired (a large enough
    /// `crash_after` can outlast the run's writes).
    pub crashed: bool,
    /// Tasks the recovery run restored from the checkpoint manifest instead
    /// of re-executing.
    pub resumed: usize,
    pub baseline: VerifyLeg,
    pub recovered: VerifyLeg,
    pub mismatches: Vec<DigestMismatch>,
}

impl CrashRecoveryOutcome {
    /// True when the resumed run converged to the fault-free digests.
    pub fn is_converged(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Normalized, sorted `(artifact, digest)` pairs of one run outcome.
fn leg_digests(outcome: &RunOutcome, leg: &WorkflowConfig) -> Vec<(String, Option<String>)> {
    let mut digests: Vec<(String, Option<String>)> = outcome
        .report
        .artifacts
        .iter()
        .map(|a| (normalize_artifact_name(&a.name, leg), a.digest.clone()))
        .collect();
    digests.sort();
    digests
}

/// The crash-recovery verifier behind `schedflow verify-crash`: run the
/// workflow once fault-free (the baseline), run it again with a simulated
/// process death at the `crash_after`-th durable-store write (plus whatever
/// I/O chaos `cfg.fault.chaos` carries), then resume the crashed sandbox
/// from its checkpoint manifest and diff every artifact digest against the
/// baseline. Convergence certifies crash-only durability: no torn file, no
/// stale checkpoint, no divergent byte anywhere in the output tree.
pub fn verify_crash_recovery(
    cfg: &WorkflowConfig,
    crash_after: u64,
) -> Result<CrashRecoveryOutcome, CoreError> {
    // Baseline: chaos-free, sandboxed, full recompute.
    let mut base = cfg.clone();
    base.cache_dir = cfg.data_dir.join("crash-baseline").join("cache");
    base.data_dir = cfg.data_dir.join("crash-baseline").join("data");
    base.fault.chaos = None;
    base.fault.resume = false;
    base.use_cache = false;
    let base_outcome = run(&base)?;
    let baseline = VerifyLeg {
        threads: base.threads,
        digests: leg_digests(&base_outcome, &base),
    };

    // Crash leg: same workflow in its own sandbox, dying mid-run. I/O chaos
    // needs retries to clear; make sure the legs have headroom.
    let mut leg = cfg.clone();
    leg.cache_dir = cfg.data_dir.join("crash-run").join("cache");
    leg.data_dir = cfg.data_dir.join("crash-run").join("data");
    leg.fault.resume = false;
    leg.use_cache = false;
    if leg.fault.chaos.is_some_and(|c| c.has_io_faults()) {
        leg.fault.retries = leg.fault.retries.max(8);
        leg.fault.retry_base_delay_ms = leg.fault.retry_base_delay_ms.max(1);
    }
    let mut chaos = leg.fault.chaos.unwrap_or_default();
    chaos.crash_after_writes = Some(crash_after.max(1));
    leg.fault.chaos = Some(chaos);
    let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(&leg))).is_err();

    // Recovery: same sandbox, chaos off, resume from the manifest. The crash
    // leg already exercised the atomic protocol under fire; the recovery leg
    // must be deterministic so every digest can be diffed against the
    // baseline — the fault schedule is a pure function of (seed, task,
    // attempt), so a seed that dooms one task's every retry would abort the
    // resume on schedule rather than say anything about durability.
    let mut rec = leg.clone();
    rec.fault.chaos = None;
    rec.fault.resume = true;
    rec.use_cache = true;
    let rec_outcome = run(&rec)?;
    let resumed = rec_outcome.report.resumed();
    let recovered = VerifyLeg {
        threads: rec.threads,
        digests: leg_digests(&rec_outcome, &rec),
    };

    let lookup: std::collections::BTreeMap<&str, &Option<String>> = recovered
        .digests
        .iter()
        .map(|(n, d)| (n.as_str(), d))
        .collect();
    let mut mismatches = Vec::new();
    for (name, digest) in &baseline.digests {
        let other = lookup.get(name.as_str()).copied();
        if other != Some(digest) {
            mismatches.push(DigestMismatch {
                artifact: name.clone(),
                serial: digest.clone(),
                parallel: other.cloned().flatten(),
            });
        }
    }
    for (name, digest) in &recovered.digests {
        if !baseline.digests.iter().any(|(n, _)| n == name) {
            mismatches.push(DigestMismatch {
                artifact: name.clone(),
                serial: None,
                parallel: digest.clone(),
            });
        }
    }
    Ok(CrashRecoveryOutcome {
        crashed,
        resumed,
        baseline,
        recovered,
        mismatches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{System, WorkflowConfig};

    fn tiny_config(tag: &str) -> WorkflowConfig {
        let base = std::env::temp_dir().join(format!("schedflow-run-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let mut cfg = WorkflowConfig::new(System::Andes);
        cfg.from = (2024, 1);
        cfg.to = (2024, 2);
        cfg.scale = 0.02;
        cfg.threads = 4;
        cfg.seed = 5;
        cfg.cache_dir = base.join("cache");
        cfg.data_dir = base.join("data");
        cfg.corrupt_fraction = 0.005;
        cfg
    }

    #[test]
    fn end_to_end_run_produces_all_artifacts() {
        let cfg = tiny_config("e2e");
        let outcome = run(&cfg).unwrap_or_else(|e| panic!("{e}"));
        assert!(outcome.report.is_success());
        assert!(
            outcome.frame.height() > 200,
            "jobs analyzed: {}",
            outcome.frame.height()
        );
        assert_eq!(outcome.insights.len(), crate::pipeline::PLOT_STAGES.len());
        assert!(outcome.compare.is_some());
        assert!(outcome.dashboard_index.exists());
        assert!(outcome.insights_md.exists());
        // The run-report tab is linked from the sidebar and was rewritten
        // post-run with the data-plane figures.
        let index = std::fs::read_to_string(&outcome.dashboard_index).unwrap();
        assert!(index.contains("panels/run-report.html"));
        // The policy-analysis tab was rewritten post-run with the SF09xx
        // verdict for the active (clean) configuration.
        assert!(index.contains("panels/policy.html"));
        // The timeline tab renders the span waterfall and critical path.
        assert!(index.contains("panels/timeline.html"));
        let timeline = std::fs::read_to_string(
            outcome
                .dashboard_index
                .parent()
                .unwrap()
                .join("panels")
                .join("timeline.html"),
        )
        .unwrap();
        assert!(timeline.contains("Critical path"), "{timeline}");
        assert!(timeline.contains("Span waterfall"));
        assert!(timeline.contains("span-ok"));
        // Telemetry: enabled by default, persisted, reload-able, and the run
        // span set equals the executed task set.
        let t = &outcome.report.telemetry;
        assert!(t.enabled);
        let executed: std::collections::BTreeSet<&str> = outcome
            .report
            .tasks
            .iter()
            .filter(|t| t.status.manifest_str() != "skipped")
            .map(|t| t.name.as_str())
            .collect();
        let spanned: std::collections::BTreeSet<&str> = t
            .spans_of(schedflow_dataflow::trace::KIND_RUN)
            .map(|s| s.task.as_str())
            .collect();
        assert_eq!(executed, spanned, "span set == executed task set");
        let cp = schedflow_dataflow::critical_path(t);
        assert!(cp.length_ms > 0.0);
        assert!(cp.length_ms <= t.makespan_ms + 5.0);
        let reloaded = load_telemetry(&cfg.data_dir).expect("run-telemetry.json persisted");
        assert_eq!(
            schedflow_dataflow::structural_digest(&reloaded),
            schedflow_dataflow::structural_digest(t),
            "persisted telemetry round-trips structurally"
        );
        let policy_panel = std::fs::read_to_string(
            outcome
                .dashboard_index
                .parent()
                .unwrap()
                .join("panels")
                .join("policy.html"),
        )
        .unwrap();
        assert!(policy_panel.contains("policy-clean"), "{policy_panel}");
        let run_report = std::fs::read_to_string(
            outcome
                .dashboard_index
                .parent()
                .unwrap()
                .join("panels")
                .join("run-report.html"),
        )
        .unwrap();
        assert!(run_report.contains("peak resident"), "data-plane summary");
        assert!(run_report.contains("Bytes out"), "per-task byte columns");
        assert!(run_report.contains("Plan optimizer"), "plan-stats summary");
        assert!(run_report.contains("Plan cols"), "per-task plan columns");
        // Every plotting stage executed logical plans and recorded optimizer
        // accounting; projection pruning reads well under half the eager bytes.
        let plan = outcome.report.plan_totals().expect("plan stats recorded");
        assert!(plan.plans >= crate::pipeline::PLOT_STAGES.len() as u64);
        assert!(
            plan.scan_reduction() >= 2.0,
            "scan reduction only {:.2}× ({} of {} bytes)",
            plan.scan_reduction(),
            plan.bytes_scanned,
            plan.bytes_eager
        );
        for t in &outcome.report.tasks {
            if t.name.starts_with("plot-") {
                assert!(t.plan.is_some(), "{} recorded no plan stats", t.name);
                assert!(t.estimate.is_some(), "{} carries no cost estimate", t.name);
            }
        }
        // Estimate soundness: every single-plan stage's actual output
        // cardinality lies inside its statically predicted interval.
        assert!(run_report.contains("Est rows"), "estimate column present");
        let mut compared = 0;
        for t in &outcome.report.tasks {
            if let (Some(est), Some(p)) = (&t.estimate, &t.plan) {
                if p.plans == 1 {
                    let (lo, hi) = est.rows_interval(p.rows_in);
                    assert!(
                        est.contains_rows(p.rows_in, p.rows_out),
                        "{}: {} rows outside predicted [{lo}, {hi}] (scanned {})",
                        t.name,
                        p.rows_out,
                        p.rows_in
                    );
                    compared += 1;
                }
            }
        }
        assert_eq!(
            compared,
            crate::pipeline::PLOT_STAGES.len(),
            "every plotting stage is estimate-checked"
        );
        assert!(!run_report.contains("is written when the workflow finishes"));
        // Curation saw the injected corruption.
        assert!(outcome.curation.0 > 0);
        assert!(outcome.curation.1 > 0, "some malformed lines expected");
        // Charts on disk.
        for stage in crate::pipeline::PLOT_STAGES {
            assert!(cfg
                .data_dir
                .join("charts")
                .join(format!("{stage}.html"))
                .exists());
        }
        // The insights report mentions every stage.
        let md = std::fs::read_to_string(&outcome.insights_md).unwrap();
        for stage in crate::pipeline::PLOT_STAGES {
            assert!(md.contains(&format!("stage: {stage}")), "{stage} missing");
        }
        assert!(md.contains("stage: compare"));
        // A checkpoint manifest was persisted with every task succeeded.
        let manifest =
            schedflow_dataflow::RunManifest::load(&cfg.data_dir.join(MANIFEST_FILE)).unwrap();
        assert!(manifest
            .tasks
            .iter()
            .all(|t| matches!(t.status.as_str(), "succeeded" | "cached" | "resumed")));
        let _ = std::fs::remove_dir_all(cfg.cache_dir.parent().unwrap());
    }

    #[test]
    fn second_run_reuses_raw_cache() {
        let cfg = tiny_config("cache");
        let first = run(&cfg).unwrap();
        let t_first = first.report.makespan_ms;
        let second = run(&cfg).unwrap();
        // Cached obtain stages should make the second run no slower by an
        // order of magnitude (the trace still has to re-simulate).
        assert!(second.report.is_success());
        let _ = t_first;
        // The raw files were reused: obtain tasks completed quickly but the
        // outputs still exist and parse.
        assert!(second.frame.height() == first.frame.height());
        let _ = std::fs::remove_dir_all(cfg.cache_dir.parent().unwrap());
    }

    #[test]
    fn concurrency_is_exploited() {
        let cfg = tiny_config("conc");
        let outcome = run(&cfg).unwrap();
        assert!(
            outcome.report.max_concurrency() >= 2,
            "parallel pipelines expected, got {}",
            outcome.report.max_concurrency()
        );
    }

    #[test]
    fn chaos_without_retries_fails_with_structured_error() {
        let mut cfg = tiny_config("chaos-noretry");
        cfg.fault.chaos = Some(schedflow_dataflow::ChaosConfig::failing(11, 0.4));
        match run(&cfg) {
            Err(CoreError::StageFailed { failed, report }) => {
                assert!(!failed.is_empty());
                assert!(report.skipped() > 0 || !report.failed().is_empty());
            }
            Ok(_) => panic!("p=0.4 chaos with no retries should fail the run"),
            Err(other) => panic!("unexpected error {other}"),
        }
        let _ = std::fs::remove_dir_all(cfg.cache_dir.parent().unwrap());
    }

    #[test]
    fn chaos_with_retries_recovers() {
        let mut cfg = tiny_config("chaos-retry");
        cfg.fault.chaos = Some(schedflow_dataflow::ChaosConfig::failing(11, 0.3));
        cfg.fault.retries = 8;
        cfg.fault.retry_base_delay_ms = 1;
        let outcome = run(&cfg).unwrap_or_else(|e| panic!("{e}"));
        assert!(outcome.report.is_success());
        assert!(
            !outcome.report.retried().is_empty(),
            "p=0.3 across 34 tasks must retry something"
        );
        let _ = std::fs::remove_dir_all(cfg.cache_dir.parent().unwrap());
    }

    /// The acceptance scenario: a column typo in one analytics stage's
    /// contract is caught statically — SF0101 names the task, suggests the
    /// nearest real column, and zero tasks execute.
    #[test]
    fn seeded_typo_is_caught_before_any_task_runs() {
        use schedflow_dataflow::contract::{ColType, FrameSchema, TaskContract};

        let cfg = tiny_config("lint-typo");
        let mut built = build(&cfg);
        let plot_waits = built.workflow.task_id("plot-waits").unwrap();
        let merged = built.handles.merged.id();
        built.workflow.with_contract(
            plot_waits,
            TaskContract::new().require(merged, FrameSchema::new().with("wait_secs", ColType::Int)),
        );
        match run_built(built, &cfg) {
            Err(CoreError::Lint { report }) => {
                let missing = report.with_code(schedflow_lint::codes::MISSING_COLUMN);
                assert_eq!(missing.len(), 1, "{}", report.render());
                assert_eq!(missing[0].task.as_deref(), Some("plot-waits"));
                assert!(
                    missing[0].help.as_deref().unwrap().contains("`wait_s`"),
                    "nearest-column suggestion expected: {}",
                    missing[0].render()
                );
            }
            Ok(_) => panic!("the lint gate should have refused to run"),
            Err(other) => panic!("unexpected error {other}"),
        }
        // Zero tasks executed: nothing touched the cache or output dirs.
        assert!(!cfg.cache_dir.exists(), "no task ran — no raw cache");
        assert!(!cfg.data_dir.exists(), "no task ran — no outputs");
    }

    /// `--no-deny` escape hatch: the same tampered workflow executes when the
    /// gate is off (the typo lives only in the declaration, so the stages
    /// themselves still succeed).
    #[test]
    fn no_deny_executes_despite_lint_errors() {
        use schedflow_dataflow::contract::{ColType, FrameSchema, TaskContract};

        let mut cfg = tiny_config("lint-nodeny");
        cfg.lint_deny = false;
        let mut built = build(&cfg);
        let plot_waits = built.workflow.task_id("plot-waits").unwrap();
        let merged = built.handles.merged.id();
        built.workflow.with_contract(
            plot_waits,
            TaskContract::new().require(merged, FrameSchema::new().with("wait_secs", ColType::Int)),
        );
        let outcome = run_built(built, &cfg).unwrap_or_else(|e| panic!("{e}"));
        assert!(outcome.report.is_success());
        let _ = std::fs::remove_dir_all(cfg.cache_dir.parent().unwrap());
    }

    /// The default pipeline must itself be lint-clean — the gate's base case.
    #[test]
    fn default_pipeline_lints_clean() {
        let cfg = tiny_config("lint-clean");
        let built = build(&cfg);
        let mut report = schedflow_lint::lint_all(&built.workflow, Some(&run_options(&cfg)));
        report.extend(schedflow_lint::lint_policy(&cfg.profile()).report);
        assert!(report.is_clean(), "{}", report.render());
    }

    /// `verify-policy` on the default configuration: clean report, nothing
    /// to replay, trivially sound.
    #[test]
    fn verify_policy_clean_on_defaults() {
        let v = verify_policy(&tiny_config("policy-clean"));
        assert!(v.report.is_clean(), "{}", v.report.render());
        assert!(v.replays.is_empty());
        assert!(v.is_sound());
    }

    /// The acceptance scenario: an inert age weight plus no backfill must
    /// produce SF0902 and SF0904 verdicts whose witness queues reproduce the
    /// predicted starvation in the real scheduler.
    #[test]
    fn verify_policy_confirms_starvation_verdicts() {
        let mut cfg = tiny_config("policy-starve");
        cfg.system = System::Frontier;
        cfg.age_weight = Some(0.0);
        cfg.backfill = Some(schedflow_sim::BackfillPolicy::None);
        let v = verify_policy(&cfg);
        assert!(!v.report.is_clean());
        assert_eq!(
            v.report
                .with_code(schedflow_lint::codes::STARVATION_POTENTIAL)
                .len(),
            1
        );
        assert_eq!(
            v.report
                .with_code(schedflow_lint::codes::BACKFILL_STARVATION)
                .len(),
            1
        );
        assert_eq!(v.replays.len(), 2);
        assert!(v.replays.iter().all(|r| r.holds), "{:?}", v.failed);
        assert!(v.is_sound());
    }

    /// The acceptance scenario: `verify-run` on the default pipeline reports
    /// identical per-artifact digests at 1 thread and N threads.
    #[test]
    fn verify_run_certifies_identical_digests_across_thread_counts() {
        let cfg = tiny_config("verify");
        let outcome = verify_run(&cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(outcome.serial.threads, 1);
        assert!(outcome.parallel.threads >= 2);
        assert!(
            outcome.is_deterministic(),
            "digest mismatches: {:?}",
            outcome.mismatches
        );
        // Both legs digested the same (nonempty) artifact set, and the
        // private sandbox paths were normalized out of the names.
        assert_eq!(outcome.serial.digests.len(), outcome.parallel.digests.len());
        assert!(!outcome.serial.digests.is_empty());
        assert!(outcome
            .serial
            .digests
            .iter()
            .any(|(n, _)| n.starts_with("$DATA/")));
        assert!(outcome
            .serial
            .digests
            .iter()
            .any(|(n, _)| *n == "merged-frame"));
        let _ = std::fs::remove_dir_all(cfg.cache_dir.parent().unwrap());
    }

    /// Determinism holds under seeded chaos too: injected transient faults
    /// plus retries must leave no fingerprint on any artifact.
    #[test]
    fn verify_run_is_deterministic_under_seeded_chaos() {
        let mut cfg = tiny_config("verify-chaos");
        cfg.fault.chaos = Some(schedflow_dataflow::ChaosConfig::failing(13, 0.2));
        cfg.fault.retries = 8;
        cfg.fault.retry_base_delay_ms = 1;
        let outcome = verify_run(&cfg).unwrap_or_else(|e| panic!("{e}"));
        assert!(
            outcome.is_deterministic(),
            "digest mismatches under chaos: {:?}",
            outcome.mismatches
        );
        let _ = std::fs::remove_dir_all(cfg.cache_dir.parent().unwrap());
    }

    /// The acceptance scenario: die at a store write mid-run, resume from
    /// the manifest, and converge to the fault-free run's digests.
    #[test]
    fn crash_recovery_converges_to_fault_free_digests() {
        let mut cfg = tiny_config("crashrec");
        cfg.fault.retries = 8;
        cfg.fault.retry_base_delay_ms = 1;
        let outcome = verify_crash_recovery(&cfg, 7).unwrap_or_else(|e| panic!("{e}"));
        assert!(outcome.crashed, "write 7 lands inside the run");
        assert!(
            outcome.is_converged(),
            "digest mismatches after resume: {:?}",
            outcome.mismatches
        );
        assert!(!outcome.baseline.digests.is_empty());
        let _ = std::fs::remove_dir_all(cfg.cache_dir.parent().unwrap());
    }

    #[test]
    fn hosted_backend_with_fallback_still_completes() {
        let mut cfg = tiny_config("fallback");
        cfg.insight_backend = crate::config::InsightBackend::HostedWithFallback;
        let outcome = run(&cfg).unwrap_or_else(|e| panic!("{e}"));
        assert!(outcome.report.is_success());
        // The offline transport failed every request, so every insight came
        // from the rule-analyst fallback and says so.
        assert!(outcome
            .insights
            .iter()
            .all(|(_, i)| i.narrative.contains("fallback")));
        let _ = std::fs::remove_dir_all(cfg.cache_dir.parent().unwrap());
    }
}
