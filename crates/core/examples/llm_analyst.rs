//! The AI subworkflow in isolation: build charts, digest them, and run the
//! Insight and Compare stages — reproducing the two LLM interpretations
//! quoted in §4.2.
//!
//! ```text
//! cargo run --release -p schedflow-core --example llm_analyst
//! ```

use schedflow_analytics as analytics;
use schedflow_charts::digest;
use schedflow_core::{run, System, WorkflowConfig};
use schedflow_insight::{Analyst, PromptRequest, RuleAnalyst};

fn main() {
    let mut cfg = WorkflowConfig::new(System::Frontier);
    cfg.from = (2024, 1);
    cfg.to = (2024, 6);
    cfg.scale = 0.04;
    cfg.cache_dir = std::env::temp_dir().join("schedflow-analyst/cache");
    cfg.data_dir = std::env::temp_dir().join("schedflow-analyst/out");
    let outcome = run(&cfg).expect("workflow runs");
    let frame = &outcome.frame;
    let analyst = RuleAnalyst::new();

    // --- §4.2 quote 2: single-chart insight on requested-vs-actual. ---
    let backfill_chart = analytics::backfill_chart(frame, "frontier").unwrap();
    let backfill_digest = digest(&backfill_chart);
    println!("== what a hosted model would receive (LLM Insight) ==");
    let request = PromptRequest::insight(&backfill_digest);
    println!("prompt: {}…", &request.prompt[..60]);
    println!(
        "attachment: {} bytes of chart digest\n",
        request.attachments[0].len()
    );

    let insight = analyst.insight(&backfill_digest).unwrap();
    println!(
        "== LLM Insight (walltime overestimation) ==\n{}",
        insight.to_markdown()
    );

    // --- §4.2 quote 1: compare wait times across two months. ---
    let march = analytics::select::filter_month(frame, 2024, 3).unwrap();
    let june = analytics::select::filter_month(frame, 2024, 6).unwrap();
    let options = analytics::WaitOptions::default();
    let chart_march = analytics::wait_chart(&march, "March", &options).unwrap();
    let chart_june = analytics::wait_chart(&june, "June", &options).unwrap();
    let comparison = analyst
        .compare(&digest(&chart_march), &digest(&chart_june))
        .unwrap();
    println!(
        "== LLM Compare (March vs June wait times) ==\n{}",
        comparison.to_markdown()
    );
}
