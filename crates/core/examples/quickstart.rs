//! Quickstart: run the full hybrid workflow on a small Andes window and
//! print what it produced.
//!
//! ```text
//! cargo run --release -p schedflow-core --example quickstart
//! ```

use schedflow_core::{run, System, WorkflowConfig};

fn main() {
    // Two months of Andes at 3% volume: finishes in seconds.
    let mut cfg = WorkflowConfig::new(System::Andes);
    cfg.from = (2024, 1);
    cfg.to = (2024, 2);
    cfg.scale = 0.03;
    cfg.threads = 4;
    cfg.cache_dir = std::env::temp_dir().join("schedflow-quickstart/cache");
    cfg.data_dir = std::env::temp_dir().join("schedflow-quickstart/out");

    println!("running the hybrid workflow on {} …", cfg.system.name());
    let outcome = run(&cfg).expect("workflow runs");

    println!(
        "\n{} tasks finished in {:.1}s — max concurrency {}, speedup ≥ {:.1}×",
        outcome.report.tasks.len(),
        outcome.report.makespan_ms / 1000.0,
        outcome.report.max_concurrency(),
        outcome.report.speedup()
    );
    println!(
        "analyzed {} jobs; curation discarded {} of {} raw lines",
        outcome.frame.height(),
        outcome.curation.1,
        outcome.curation.0
    );

    println!("\n--- automated insights ---");
    for (stage, insight) in &outcome.insights {
        println!("\n[{stage}] {}", insight.narrative);
        for finding in &insight.findings {
            println!("    - [{:?}] {}", finding.severity, finding.text);
        }
    }
    if let Some(compare) = &outcome.compare {
        println!("\n[compare] {}", compare.narrative);
    }

    println!("\ndashboard: {}", outcome.dashboard_index.display());
    println!("open it directly, or serve it with:");
    println!("  schedflow run --system andes --serve 8080 …");
}
