//! Portability (§4.3): apply the *same* workflow, without modification, to
//! Andes, and contrast the two systems the way Figures 7–9 do against 3–6.
//!
//! ```text
//! cargo run --release -p schedflow-core --example andes_portability
//! ```

use schedflow_analytics as analytics;
use schedflow_core::{run, RunOutcome, System, WorkflowConfig};

fn analyze(system: System, scale: f64) -> (WorkflowConfig, RunOutcome) {
    let mut cfg = WorkflowConfig::new(system);
    cfg.scale = scale;
    cfg.cache_dir =
        std::env::temp_dir().join(format!("schedflow-port/{}/cache", cfg.system.name()));
    cfg.data_dir = std::env::temp_dir().join(format!("schedflow-port/{}/out", cfg.system.name()));
    println!("running the unmodified workflow on {}…", cfg.system.name());
    let outcome = run(&cfg).expect("workflow runs");
    (cfg, outcome)
}

fn main() {
    let scale: f64 = std::env::var("SCHEDFLOW_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.04);

    // The portability claim is structural: identical stages, identical code
    // path, different system profile.
    let (fcfg, frontier) = analyze(System::Frontier, scale);
    let (acfg, andes) = analyze(System::Andes, scale);

    let f_nodes = analytics::nodes_elapsed::summarize(&frontier.frame).unwrap();
    let a_nodes = analytics::nodes_elapsed::summarize(&andes.frame).unwrap();
    println!("\n== Figure 3 vs Figure 7: job scale ==");
    println!(
        "frontier: widest {} nodes, small/short corner {:.0}%",
        f_nodes.max_nodes,
        f_nodes.small_short_fraction * 100.0
    );
    println!(
        "andes:    widest {} nodes, small/short corner {:.0}%",
        a_nodes.max_nodes,
        a_nodes.small_short_fraction * 100.0
    );
    println!(
        "=> Andes concentrates small, short jobs ({} nodes max vs {}), matching its throughput mission",
        a_nodes.max_nodes, f_nodes.max_nodes
    );

    println!("\n== Figure 5 vs Figure 8: failure uniformity ==");
    let (fm, fs) = analytics::failure_dispersion(&frontier.frame, fcfg.top_users).unwrap();
    let (am, as_) = analytics::failure_dispersion(&andes.frame, acfg.top_users).unwrap();
    println!("frontier: mean failure rate {fm:.2}, stddev {fs:.2}");
    println!("andes:    mean failure rate {am:.2}, stddev {as_:.2}");

    println!("\n== Figure 6 vs Figure 9: walltime estimation ==");
    let fb = analytics::backfill::summarize(&frontier.frame).unwrap();
    let ab = analytics::backfill::summarize(&andes.frame).unwrap();
    println!(
        "frontier: mean request/actual {:.1}×, {:.0}% overestimated",
        fb.mean_over_factor,
        fb.overestimated_fraction * 100.0
    );
    println!(
        "andes:    mean request/actual {:.1}×, {:.0}% overestimated (tighter clustering)",
        ab.mean_over_factor,
        ab.overestimated_fraction * 100.0
    );

    println!("\nboth dashboards were produced by the same stages:");
    println!("  {}", frontier.dashboard_index.display());
    println!("  {}", andes.dashboard_index.display());
}
