//! Policy laboratory: the "evolving scheduling practices" half of the paper's
//! title — replay one submission stream under different scheduling policies
//! and quantify what changes.
//!
//! Two experiments:
//! 1. Backfill ablation: FIFO vs EASY vs conservative.
//! 2. Walltime reclamation (§4.2/§6): what if requests were accurate?
//!
//! ```text
//! cargo run --release -p schedflow-core --example policy_lab
//! ```

use schedflow_sim::{metrics, BackfillPolicy, JobRequest, Simulator};
use schedflow_tracegen::{synthesize_plans, UserPopulation, WorkloadProfile};

fn submission_stream(profile: &WorkloadProfile, seed: u64) -> Vec<JobRequest> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let pop = UserPopulation::generate(profile, &mut rng);
    synthesize_plans(profile, &pop, &mut rng)
        .into_iter()
        .map(|p| p.request)
        .collect()
}

fn main() {
    let scale: f64 = std::env::var("SCHEDFLOW_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.15);
    let profile = WorkloadProfile::frontier().truncated_days(60).scaled(scale);
    let jobs = submission_stream(&profile, 11);
    println!(
        "replaying {} submissions over {} days on {} nodes\n",
        jobs.len(),
        (profile.end.0 - profile.start.0) / 86_400,
        profile.system.total_nodes
    );

    println!("== backfill policy ablation ==");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "policy", "mean wait", "median wait", "p95 wait", "util", "backfilled"
    );
    for (name, policy) in [
        ("fifo", BackfillPolicy::None),
        ("easy", BackfillPolicy::Easy),
        ("conservative", BackfillPolicy::Conservative),
    ] {
        let mut system = profile.system.clone();
        system.backfill = policy;
        let outcomes = Simulator::new(system).run(&jobs).expect("valid stream");
        let m = metrics(&jobs, &outcomes, profile.system.total_nodes);
        println!(
            "{:<14} {:>9.0}s {:>11.0}s {:>11.0}s {:>9.1}% {:>9.1}%",
            name,
            m.mean_wait_secs,
            m.median_wait_secs,
            m.p95_wait_secs,
            m.utilization * 100.0,
            m.backfill_fraction * 100.0
        );
    }

    println!("\n== walltime reclamation what-if ==");
    println!("(requests clamped toward actual runtime, as an AI predictor would)");
    println!(
        "{:<22} {:>10} {:>12} {:>10}",
        "request accuracy", "mean wait", "p95 wait", "util"
    );
    for (name, tighten) in [
        ("as submitted", 1.00_f64),
        ("50% tighter", 0.50),
        ("perfect prediction", 0.0),
    ] {
        let adjusted: Vec<JobRequest> = jobs
            .iter()
            .map(|j| {
                let mut j = j.clone();
                // New request = actual + tighten × (request − actual),
                // rounded up to 5 minutes, never above the original request
                // (timeout-bound jobs stay timeout-bound).
                let slack = (j.walltime_secs - j.actual_secs).max(0) as f64;
                let w = j.actual_secs + (slack * tighten) as i64;
                j.walltime_secs = ((w + 299) / 300 * 300).clamp(300, j.walltime_secs.max(300));
                j
            })
            .collect();
        let outcomes = Simulator::new(profile.system.clone())
            .run(&adjusted)
            .expect("valid stream");
        let m = metrics(&adjusted, &outcomes, profile.system.total_nodes);
        println!(
            "{:<22} {:>9.0}s {:>11.0}s {:>9.1}%",
            name,
            m.mean_wait_secs,
            m.p95_wait_secs,
            m.utilization * 100.0
        );
    }
    println!("\ntighter requests let the backfill scheduler pack holes it previously");
    println!("could not prove safe — the mechanism behind §4.2's reclamation insight.");
}
