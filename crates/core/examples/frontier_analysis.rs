//! Frontier deep-dive: the paper's §4.1 study — generate the Frontier trace,
//! run the workflow, and print the quantitative story behind Figures 3–6.
//!
//! ```text
//! cargo run --release -p schedflow-core --example frontier_analysis
//! SCHEDFLOW_SCALE=1.0 cargo run --release … # full paper volume (~0.5M jobs)
//! ```

use schedflow_analytics as analytics;
use schedflow_core::{run, System, WorkflowConfig};

fn main() {
    let scale: f64 = std::env::var("SCHEDFLOW_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);

    let mut cfg = WorkflowConfig::new(System::Frontier);
    cfg.scale = scale;
    cfg.cache_dir = std::env::temp_dir().join("schedflow-frontier/cache");
    cfg.data_dir = std::env::temp_dir().join("schedflow-frontier/out");

    println!(
        "Frontier, {:04}-{:02} .. {:04}-{:02}, scale {scale} — generating and analyzing…",
        cfg.from.0, cfg.from.1, cfg.to.0, cfg.to.1
    );
    let outcome = run(&cfg).expect("workflow runs");
    let frame = &outcome.frame;

    println!("\n== Figure 3 shape: nodes vs duration ==");
    let s = analytics::nodes_elapsed::summarize(frame).unwrap();
    println!(
        "{} jobs; widest job {} nodes; median {} nodes / {:.0} min; small-short corner {:.0}%",
        s.jobs,
        s.max_nodes,
        s.median_nodes,
        s.median_elapsed_min,
        s.small_short_fraction * 100.0
    );

    println!("\n== Figure 4 shape: waits by final state ==");
    for w in analytics::wait_summary(frame).unwrap() {
        println!(
            "{:<14} n={:<7} median {:>8.0}s  p95 {:>9.0}s  max {:>9.0}s",
            w.state, w.jobs, w.median_wait_s, w.p95_wait_s, w.max_wait_s
        );
    }

    println!("\n== Figure 5 shape: failure concentration across users ==");
    let (mean, sd) = analytics::failure_dispersion(frame, cfg.top_users).unwrap();
    println!(
        "top-{} users: mean failure rate {:.2}, stddev {:.2}",
        cfg.top_users, mean, sd
    );
    let rows = analytics::states_per_user(frame, 5).unwrap();
    for r in rows {
        println!(
            "  {:<6} {:>6} jobs, failure rate {:.2}",
            r.user,
            r.total(),
            r.failure_rate()
        );
    }

    println!("\n== Figure 6 shape: walltime overestimation & backfill ==");
    let b = analytics::backfill::summarize(frame).unwrap();
    println!(
        "{} started jobs ({} backfilled, {:.0}%); {:.0}% overestimated; mean request/actual {:.1}× \
         (backfilled {:.1}×); {:.0} node-independent hours requested but unused",
        b.jobs,
        b.backfilled,
        b.backfilled as f64 / b.jobs.max(1) as f64 * 100.0,
        b.overestimated_fraction * 100.0,
        b.mean_over_factor,
        b.mean_over_factor_backfilled,
        b.unused_hours
    );

    println!("\n== LLM-derived interpretations (§4.2) ==");
    for (stage, insight) in &outcome.insights {
        if stage == "backfill" || stage == "waits" {
            println!("\n[{stage}] {}", insight.narrative);
        }
    }
    if let Some(c) = &outcome.compare {
        println!("\n[monthly wait comparison] {}", c.narrative);
    }

    println!("\ndashboard: {}", outcome.dashboard_index.display());
}
