//! Workflow-level lints beyond schema dataflow: liveness (orphan artifacts,
//! dead tasks) and retry/deadline policy contradictions.

use crate::diag::{codes, Diagnostic, LintReport};
use schedflow_dataflow::graph::{TaskId, Workflow};
use schedflow_dataflow::RetryPolicy;
use std::time::Duration;

/// SF0201: value artifacts that are produced, never consumed, and not
/// retained — their producer's work on them is thrown away by the lifetime
/// tracker the moment it completes.
pub fn orphan_artifacts(wf: &Workflow, report: &mut LintReport) {
    let counts = wf.consumer_counts();
    let producers = wf.producers();
    for id in wf.artifact_ids() {
        // File artifacts are outputs in their own right (they persist on
        // disk); only value artifacts can be silently wasted.
        if wf.file_path(id).is_some() {
            continue;
        }
        let Some(producer) = producers.get(&id) else {
            continue; // unproduced artifacts are MissingProducer territory
        };
        if counts[id.index()] == 0 && !wf.is_retained(id) {
            report.push(
                Diagnostic::warning(
                    codes::ORPHAN_ARTIFACT,
                    format!(
                        "value artifact `{}` is produced but never consumed nor retained",
                        wf.artifact_name(id)
                    ),
                )
                .at_task(wf.task_name(*producer))
                .at_artifact(wf.artifact_name(id))
                .help("consume it, `retain()` it, or stop producing it"),
            );
        }
    }
}

/// SF0202: tasks whose results cannot reach any observable output.
///
/// Sinks are tasks that write a file artifact, produce a retained value, or
/// have no outputs at all (pure side effects). A task is *dead* when no sink
/// transitively depends on it — it will execute, but nothing it computes can
/// ever be seen.
pub fn dead_tasks(wf: &Workflow, report: &mut LintReport) {
    let n = wf.task_count();
    let deps = wf.dependencies();
    let is_sink = |t: TaskId| -> bool {
        let outputs = wf.task_outputs(t);
        outputs.is_empty()
            || outputs
                .iter()
                .any(|&a| wf.file_path(a).is_some() || wf.is_retained(a))
    };
    let mut alive = vec![false; n];
    let mut stack: Vec<usize> = wf
        .task_ids()
        .filter(|&t| is_sink(t))
        .map(|t| t.index())
        .collect();
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut alive[i], true) {
            continue;
        }
        for d in &deps[i] {
            if !alive[d.index()] {
                stack.push(d.index());
            }
        }
    }
    for t in wf.task_ids() {
        if !alive[t.index()] {
            report.push(
                Diagnostic::warning(
                    codes::DEAD_TASK,
                    format!(
                        "task `{}` is unreachable from any observable output",
                        wf.task_name(t)
                    ),
                )
                .at_task(wf.task_name(t))
                .note(
                    "no file output, retained value, or side-effecting sink \
                     depends on it",
                )
                .help("retain one of its outputs, consume them, or remove the task"),
            );
        }
    }
}

/// Worst-case sum of the backoff delays a policy can spend between attempts
/// (exponential, capped, plus maximal jitter).
pub fn worst_case_backoff_ms(policy: &RetryPolicy) -> u64 {
    let retries = policy.max_attempts.saturating_sub(1);
    let jitter = 1.0 + policy.jitter.clamp(0.0, 1.0);
    let mut total = 0u64;
    for k in 0..retries {
        let exp = policy
            .base_delay_ms
            .saturating_mul(1u64.checked_shl(k).unwrap_or(u64::MAX));
        let capped = exp.min(policy.max_delay_ms.max(policy.base_delay_ms));
        total = total.saturating_add((capped as f64 * jitter).ceil() as u64);
    }
    total
}

/// SF0301/SF0302 for one `(retry, deadline)` pair; `what` names the scope in
/// the message (a task name or "run options").
fn check_policy(
    retry: &RetryPolicy,
    deadline: Option<Duration>,
    task: Option<&str>,
    scope: &str,
    report: &mut LintReport,
) {
    if retry.max_attempts == 0 {
        let mut d = Diagnostic::error(
            codes::ZERO_ATTEMPTS,
            format!("{scope} declares a retry policy with zero attempts"),
        )
        .note("`max_attempts` counts the first attempt; 0 means the task never runs")
        .help("use `max_attempts: 1` to disable retries");
        if let Some(t) = task {
            d = d.at_task(t);
        }
        report.push(d);
    }
    if let Some(deadline) = deadline {
        if retry.max_attempts > 1 {
            let backoff = worst_case_backoff_ms(retry);
            let deadline_ms = deadline.as_millis() as u64;
            if backoff >= deadline_ms {
                let mut d = Diagnostic::warning(
                    codes::BACKOFF_EXCEEDS_DEADLINE,
                    format!(
                        "{scope}: worst-case retry backoff ({backoff} ms) meets or exceeds \
                         the {deadline_ms} ms deadline"
                    ),
                )
                .note("later attempts can never start before the watchdog fires")
                .help("shorten the backoff, raise the deadline, or lower `max_attempts`");
                if let Some(t) = task {
                    d = d.at_task(t);
                }
                report.push(d);
            }
        }
    }
}

/// SF03xx over every task's per-task retry/deadline overrides.
pub fn policy_contradictions(wf: &Workflow, report: &mut LintReport) {
    for t in wf.task_ids() {
        if let Some(retry) = wf.task_retry(t) {
            let name = wf.task_name(t).to_owned();
            check_policy(
                retry,
                wf.task_deadline(t),
                Some(&name),
                &format!("task `{name}`"),
                report,
            );
        }
    }
}

/// SF03xx/SF04xx over run-level options (the run default retry against the
/// run default deadline, and the chaos seed hazard).
pub fn run_option_lints(options: &schedflow_dataflow::RunOptions, report: &mut LintReport) {
    check_policy(
        &options.default_retry,
        options.task_timeout,
        None,
        "run options",
        report,
    );
    if let Some(chaos) = &options.chaos {
        if chaos.seed == 0 {
            report.push(
                Diagnostic::warning(
                    codes::UNSEEDED_CHAOS,
                    "chaos injection is enabled without an explicit seed (seed = 0)",
                )
                .note("fault schedules are a pure function of the seed")
                .help("set a non-zero seed so failures replay deterministically"),
            );
        }
    }
}

/// SF0701 (W): probe each storage directory for same-directory atomic
/// rename, the primitive the durable store's crash-safety protocol rests
/// on. A directory that fails the probe (odd mount, permissions, exotic
/// filesystem) silently downgrades every "atomic" write into a torn-write
/// hazard — worth a warning before hours of fetching land there.
pub fn storage_lints(dirs: &[&std::path::Path], report: &mut LintReport) {
    for dir in dirs {
        if let Err(e) = schedflow_dataflow::store::atomic_rename_probe(dir) {
            report.push(
                Diagnostic::warning(
                    codes::CACHE_NOT_ATOMIC,
                    format!(
                        "storage directory {} failed the atomic-rename probe: {e}",
                        dir.display()
                    ),
                )
                .note("the durable store relies on same-directory rename for crash safety")
                .help("point --cache/--data at a local filesystem that supports rename(2)"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedflow_dataflow::{RetryOn, RetryPolicy};

    #[test]
    fn backoff_sum_is_capped_exponential_with_jitter() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 100,
            max_delay_ms: 250,
            jitter: 0.5,
            retry_on: RetryOn::Transient,
        };
        // delays: 100, 200, 250 (capped); ×1.5 jitter = 150+300+375
        assert_eq!(worst_case_backoff_ms(&p), 825);
    }

    #[test]
    fn no_retries_no_backoff() {
        assert_eq!(worst_case_backoff_ms(&RetryPolicy::none()), 0);
    }
}
