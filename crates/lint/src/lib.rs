//! # schedflow-lint
//!
//! Static analysis over a [`Workflow`] *before any task runs* — the Rust
//! stand-in for the dataflow checking the paper gets for free from the
//! Swift/T compiler. A misconfigured million-job run should fail in
//! milliseconds at submit time, not hours in.
//!
//! Two lint families:
//!
//! 1. **Schema dataflow** ([`schema_flow`]): tasks declare typed artifact
//!    contracts ([`TaskContract`]: required input columns with dtypes and
//!    nullability, produced/renamed/dropped output columns); the linter
//!    propagates [`FrameSchema`]s through the DAG by abstract interpretation
//!    and reports missing columns (with nearest-name suggestions), dtype
//!    mismatches, and nullability hazards.
//! 2. **Workflow hygiene** ([`workflow_lints`]): orphan artifacts, dead
//!    tasks, retry/deadline contradictions, and nondeterminism hazards.
//! 3. **Effect dataflow** ([`effect_flow`]): per-task read/write effect sets
//!    checked against DAG happens-before — write-write conflicts, read-write
//!    races, artifact path aliasing, and lifetime hazards (SF05xx).
//! 4. **Cost & resource analysis** ([`cost_flow`]): abstract interpretation
//!    of each task's attached logical plan — row-count intervals, duplicate
//!    materializing subplans, dead columns, unbounded joins, late filters,
//!    and a lifetime-aware peak-memory estimate against `--mem-budget`
//!    (SF08xx).
//! 5. **Scheduling-policy analysis** ([`policy_flow`]): an abstract
//!    interpreter over the system config + workload profile that proves
//!    unschedulability, starvation potential, priority inversion, backfill
//!    starvation, partition shadowing, and fair-share decay inconsistency
//!    before the simulator runs (SF09xx) — starvation verdicts come with
//!    concrete witness queues the simulator replays to confirm them.
//!
//! Diagnostics ([`diag`]) are rustc-style with stable `SFxxyy` codes; the
//! final report is sorted by `(code, task, artifact, message)` so output is
//! deterministic regardless of pass registration order. [`output`] renders
//! reports as JSON or SARIF 2.1.0 for CI annotators, and [`explain`] holds
//! the `--explain SF0xxx` long-form documentation.
//! Entry points: [`lint_workflow`] for the graph, [`lint_run_options`] for
//! engine options, [`lint_all`] for both ([`lint_workflow_with`] /
//! [`lint_all_with`] to pass [`CostOptions`]), and [`annotated_dot`] to
//! render findings onto the Graphviz export.

pub mod cost_flow;
pub mod diag;
pub mod effect_flow;
pub mod explain;
pub mod output;
pub mod policy_flow;
pub mod schema_flow;
pub mod workflow_lints;

pub use cost_flow::CostOptions;
pub use diag::{codes, Diagnostic, LintReport, Severity};
pub use explain::explain;
pub use output::{to_json, to_sarif};
pub use policy_flow::{lint_policy, ConfigEdit, PolicyAnalysis};

pub use schedflow_dataflow::contract::{
    ColType, ColumnSpec, FrameSchema, SchemaEffect, TaskContract,
};

use schedflow_dataflow::dot::DotOptions;
use schedflow_dataflow::graph::Workflow;
use schedflow_dataflow::RunOptions;

/// Lint a workflow: structural validity, schema dataflow, liveness,
/// per-task policy contradictions, and plan cost analysis (with default
/// [`CostOptions`] — see [`lint_workflow_with`]).
pub fn lint_workflow(wf: &Workflow) -> LintReport {
    lint_workflow_with(wf, &CostOptions::default())
}

/// [`lint_workflow`] with explicit cost-analysis options (`--mem-budget`,
/// assumed source size).
pub fn lint_workflow_with(wf: &Workflow, cost: &CostOptions) -> LintReport {
    let mut report = LintReport::new();
    if let Err(e) = wf.validate() {
        report.push(
            Diagnostic::error(codes::INVALID_GRAPH, format!("invalid workflow graph: {e}"))
                .note("structural errors block all further analysis"),
        );
        return report;
    }
    schema_flow::check(wf, &mut report);
    effect_flow::check(wf, &mut report);
    workflow_lints::orphan_artifacts(wf, &mut report);
    workflow_lints::dead_tasks(wf, &mut report);
    workflow_lints::policy_contradictions(wf, &mut report);
    cost_flow::check(wf, cost, &mut report);
    report.sort();
    report
}

/// Lint run-level options (default retry vs deadline, chaos seeding).
pub fn lint_run_options(options: &RunOptions) -> LintReport {
    let mut report = LintReport::new();
    workflow_lints::run_option_lints(options, &mut report);
    report.sort();
    report
}

/// Lint storage directories (SF07xx): probe each for the same-directory
/// atomic rename the durable store's crash-safety protocol depends on.
pub fn lint_storage(dirs: &[&std::path::Path]) -> LintReport {
    let mut report = LintReport::new();
    workflow_lints::storage_lints(dirs, &mut report);
    report.sort();
    report
}

/// Lint the workflow and, when given, the run options — one combined report.
pub fn lint_all(wf: &Workflow, options: Option<&RunOptions>) -> LintReport {
    lint_all_with(wf, options, &CostOptions::default())
}

/// [`lint_all`] with explicit cost-analysis options.
pub fn lint_all_with(
    wf: &Workflow,
    options: Option<&RunOptions>,
    cost: &CostOptions,
) -> LintReport {
    let mut report = lint_workflow_with(wf, cost);
    if let Some(o) = options {
        report.extend(lint_run_options(o));
    }
    report.sort();
    report
}

/// Render the workflow as Graphviz DOT with lint findings drawn on the
/// graph: each diagnosed task gets a red border and its codes appended to
/// the node label.
pub fn annotated_dot(
    wf: &Workflow,
    report: &LintReport,
    title: &str,
) -> Result<String, schedflow_dataflow::GraphError> {
    let mut options = DotOptions {
        title: title.to_owned(),
        ..DotOptions::default()
    };
    for d in &report.diagnostics {
        if let Some(task) = &d.task {
            options
                .annotations
                .entry(task.clone())
                .or_default()
                .push(format!("{}[{}]: {}", d.severity, d.code, d.message));
        }
    }
    schedflow_dataflow::to_dot(wf, &options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedflow_dataflow::contract::{ColType, SchemaEffect};
    use schedflow_dataflow::StageKind;

    /// producer ⟶ frame ⟶ consumer, with a contract mismatch knob.
    fn chain(consumer_wants: &str, want_ty: ColType) -> Workflow {
        let mut wf = Workflow::new();
        let frame = wf.value::<u32>("frame");
        let out = wf.value::<u32>("out");
        let t1 = wf.task("produce", StageKind::Static, [], [frame.id()], |_| Ok(()));
        let t2 = wf.task(
            "consume",
            StageKind::Static,
            [frame.id()],
            [out.id()],
            |_| Ok(()),
        );
        wf.retain(out.id());
        wf.with_contract(
            t1,
            TaskContract::new().produces(
                frame.id(),
                FrameSchema::new()
                    .with("wait_s", ColType::Int)
                    .with("state", ColType::Str),
            ),
        );
        wf.with_contract(
            t2,
            TaskContract::new().require(
                frame.id(),
                FrameSchema::new()
                    .with(consumer_wants, want_ty)
                    // Read the second produced column too, so the clean case
                    // has no dead columns (SF0802).
                    .with("state", ColType::Str),
            ),
        );
        wf
    }

    #[test]
    fn clean_chain_is_clean() {
        let report = lint_workflow(&chain("wait_s", ColType::Int));
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn typo_yields_missing_column_with_suggestion() {
        let report = lint_workflow(&chain("wait_secs", ColType::Int));
        let missing = report.with_code(codes::MISSING_COLUMN);
        assert_eq!(missing.len(), 1);
        let d = missing[0];
        assert_eq!(d.task.as_deref(), Some("consume"));
        assert!(d.help.as_deref().unwrap().contains("`wait_s`"));
        assert!(d.notes.iter().any(|n| n.contains("`produce`")));
    }

    #[test]
    fn dtype_mismatch_detected() {
        let report = lint_workflow(&chain("wait_s", ColType::Str));
        assert_eq!(report.with_code(codes::DTYPE_MISMATCH).len(), 1);
        assert!(report.has_errors());
    }

    #[test]
    fn invalid_graph_reported_as_diagnostic() {
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("a");
        let b = wf.value::<u32>("b");
        wf.task("x", StageKind::Static, [b.id()], [a.id()], |_| Ok(()));
        wf.task("y", StageKind::Static, [a.id()], [b.id()], |_| Ok(()));
        let report = lint_workflow(&wf);
        assert_eq!(report.with_code(codes::INVALID_GRAPH).len(), 1);
    }

    #[test]
    fn derives_applies_edits_and_flags_bad_ones() {
        let mut wf = Workflow::new();
        let src = wf.value::<u32>("src");
        let derived = wf.value::<u32>("derived");
        let out = wf.value::<u32>("out");
        let t1 = wf.task("make", StageKind::Static, [], [src.id()], |_| Ok(()));
        let t2 = wf.task(
            "derive",
            StageKind::Static,
            [src.id()],
            [derived.id()],
            |_| Ok(()),
        );
        let t3 = wf.task("use", StageKind::Static, [derived.id()], [out.id()], |_| {
            Ok(())
        });
        wf.retain(out.id());
        wf.with_contract(
            t1,
            TaskContract::new().produces(
                src.id(),
                FrameSchema::new()
                    .with("old_name", ColType::Int)
                    .with("extra", ColType::Float),
            ),
        );
        wf.with_contract(
            t2,
            TaskContract::new().effect(
                derived.id(),
                SchemaEffect::Derives {
                    from: src.id(),
                    adds: vec![],
                    drops: vec!["extra".into(), "not_there".into()],
                    renames: vec![("old_name".into(), "new_name".into())],
                },
            ),
        );
        wf.with_contract(
            t3,
            TaskContract::new().require(
                derived.id(),
                FrameSchema::new().with("new_name", ColType::Int),
            ),
        );
        let report = lint_workflow(&wf);
        // The rename propagated (no missing column), but the bogus drop is
        // flagged.
        assert!(report.with_code(codes::MISSING_COLUMN).is_empty());
        assert_eq!(report.with_code(codes::BAD_SCHEMA_EDIT).len(), 1);
    }

    #[test]
    fn annotated_dot_marks_diagnosed_tasks() {
        let wf = chain("wait_secs", ColType::Int);
        let report = lint_workflow(&wf);
        let dot = annotated_dot(&wf, &report, "lint test").unwrap();
        assert!(dot.contains("SF0101"));
        assert!(dot.contains("penwidth=2"));
        assert!(dot.contains("label=\"lint test\""));
    }

    #[test]
    fn storage_probe_warns_on_unrenamable_dir_and_passes_on_tmp() {
        let good = std::env::temp_dir().join(format!("schedflow-lint-st-{}", std::process::id()));
        let report = lint_storage(&[&good]);
        assert!(report.is_clean(), "{}", report.render());

        // A *file* where a directory is expected cannot host the probe.
        let bad = good.join("not-a-dir");
        std::fs::write(&bad, b"x").unwrap();
        let report = lint_storage(&[&bad]);
        let hits = report.with_code(codes::CACHE_NOT_ATOMIC);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Warning);
        assert!(!report.has_errors(), "SF0701 is a warning, not an error");
        let _ = std::fs::remove_dir_all(&good);
    }

    #[test]
    fn report_is_sorted_regardless_of_pass_order() {
        // Push diagnostics in deliberately shuffled pass order and verify
        // sort() restores the canonical (code, task, artifact, message) key.
        let mut r = LintReport::new();
        r.push(Diagnostic::warning(codes::CACHE_NOT_ATOMIC, "late family").at_task("z"));
        r.push(Diagnostic::warning(codes::DEAD_COLUMN, "cost family").at_task("b"));
        r.push(Diagnostic::error(codes::MISSING_COLUMN, "schema family").at_task("m"));
        r.push(Diagnostic::warning(codes::DEAD_COLUMN, "cost family").at_task("a"));
        r.sort();
        let keys: Vec<(&str, Option<&str>)> = r
            .diagnostics
            .iter()
            .map(|d| (d.code, d.task.as_deref()))
            .collect();
        assert_eq!(
            keys,
            vec![
                (codes::MISSING_COLUMN, Some("m")),
                (codes::CACHE_NOT_ATOMIC, Some("z")),
                (codes::DEAD_COLUMN, Some("a")),
                (codes::DEAD_COLUMN, Some("b")),
            ]
        );
    }

    #[test]
    fn lint_workflow_output_is_deterministically_ordered() {
        // A workflow that trips several passes at once: the rendered report
        // must come out in code order, not pass-registration order.
        let mut wf = Workflow::new();
        let frame = wf.value::<u32>("frame");
        let orphan = wf.value::<u32>("orphan");
        let t1 = wf.task(
            "produce",
            StageKind::Static,
            [],
            [frame.id(), orphan.id()],
            |_| Ok(()),
        );
        let t2 = wf.task("consume", StageKind::Static, [frame.id()], [], |_| Ok(()));
        wf.with_contract(
            t1,
            TaskContract::new().produces(frame.id(), FrameSchema::new().with("x", ColType::Int)),
        );
        wf.with_contract(
            t2,
            TaskContract::new().require(frame.id(), FrameSchema::new().with("y", ColType::Int)),
        );
        let report = lint_workflow(&wf);
        assert!(report.diagnostics.len() >= 2, "{}", report.render());
        let codes_seen: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        let mut sorted = codes_seen.clone();
        sorted.sort_unstable();
        assert_eq!(codes_seen, sorted, "report not in code order");
    }

    #[test]
    fn unseeded_chaos_flagged() {
        let options = RunOptions {
            chaos: Some(schedflow_dataflow::ChaosConfig::default()),
            ..RunOptions::default()
        };
        let report = lint_run_options(&options);
        assert_eq!(report.with_code(codes::UNSEEDED_CHAOS).len(), 1);
        let seeded = RunOptions {
            chaos: Some(schedflow_dataflow::ChaosConfig::failing(7, 0.2)),
            ..RunOptions::default()
        };
        assert!(lint_run_options(&seeded).is_clean());
    }
}
