//! Diagnostics: stable codes, severities, and rustc-style rendering.
//!
//! Every lint carries a stable `SFxxyy` code (family `xx`, lint `yy`) so
//! diagnostics can be grepped, suppressed in discussion, and snapshot-tested
//! without depending on message wording:
//!
//! | family | meaning                               |
//! |--------|---------------------------------------|
//! | SF00xx | graph structure (from [`GraphError`]) |
//! | SF01xx | schema dataflow (columns, dtypes)     |
//! | SF02xx | liveness (orphans, dead tasks)        |
//! | SF03xx | retry/deadline policy contradictions  |
//! | SF04xx | nondeterminism hazards                |
//! | SF05xx | concurrency effects (races, aliasing) |
//! | SF06xx | simulator runtime invariants          |
//! | SF07xx | durable storage & cache health        |
//! | SF08xx | plan cost & resource analysis         |
//! | SF09xx | scheduling-policy analysis            |
//!
//! The SF06xx family is emitted at *runtime* by the simulator's invariant
//! monitor (`schedflow_sim::invariant`), not by this crate — the codes share
//! the namespace so a violation report greps like any other diagnostic.
//!
//! [`GraphError`]: schedflow_dataflow::GraphError

/// How bad a diagnostic is. Errors gate `schedflow run` by default;
/// warnings only fail `schedflow lint --deny`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable diagnostic codes.
pub mod codes {
    /// The graph itself is invalid (cycle, duplicate writer, …).
    pub const INVALID_GRAPH: &str = "SF0001";
    /// A required input column does not exist in the propagated schema.
    pub const MISSING_COLUMN: &str = "SF0101";
    /// A required input column exists with an incompatible dtype.
    pub const DTYPE_MISMATCH: &str = "SF0102";
    /// A nullable column flows into a consumer that declared it non-null.
    pub const NULLABILITY: &str = "SF0103";
    /// A schema effect edits (renames/drops) a column its source lacks.
    pub const BAD_SCHEMA_EDIT: &str = "SF0104";
    /// A value artifact is produced but never consumed nor retained.
    pub const ORPHAN_ARTIFACT: &str = "SF0201";
    /// No observable output (file, retained value) depends on this task.
    pub const DEAD_TASK: &str = "SF0202";
    /// Worst-case retry backoff alone exceeds the task deadline.
    pub const BACKOFF_EXCEEDS_DEADLINE: &str = "SF0301";
    /// A retry policy with zero attempts: the task can never run.
    pub const ZERO_ATTEMPTS: &str = "SF0302";
    /// Chaos injection enabled without an explicit seed.
    pub const UNSEEDED_CHAOS: &str = "SF0401";
    /// Two tasks write the same artifact path with no happens-before path
    /// between them: last-writer-wins nondeterminism.
    pub const WRITE_WRITE_CONFLICT: &str = "SF0501";
    /// A task reads an artifact path that another task writes, with no
    /// ordering between reader and writer: the read may observe a torn or
    /// stale value depending on scheduling.
    pub const READ_WRITE_RACE: &str = "SF0502";
    /// Two distinct artifact declarations resolve to the same file path, so
    /// dependency inference (which is per-artifact-id) cannot see writes
    /// through one id from readers of the other.
    pub const ARTIFACT_ALIASING: &str = "SF0503";
    /// An artifact may be dropped by the lifetime tracker while a timed-out
    /// task's still-running body can read it (the zombie-read hazard).
    pub const LIFETIME_HAZARD: &str = "SF0504";
    /// A cache/output directory failed the atomic-rename probe: the durable
    /// store's crash-safety protocol (temp file → fsync → rename) cannot
    /// hold there, so torn files may survive a crash.
    pub const CACHE_NOT_ATOMIC: &str = "SF0701";
    /// The same canonical materializing subplan (group-by, join) is computed
    /// in two or more tasks — each recomputes it from scratch; a shared
    /// upstream artifact would compute it once.
    pub const DUPLICATED_SUBPLAN: &str = "SF0801";
    /// A produced column no downstream contract ever reads — it is
    /// materialized, shipped, and dropped unobserved.
    pub const DEAD_COLUMN: &str = "SF0802";
    /// The statically estimated peak of resident artifact bytes exceeds the
    /// configured memory budget (`--mem-budget`).
    pub const MEM_BUDGET_EXCEEDED: &str = "SF0803";
    /// A join where neither input is provably unique on the join key: output
    /// cardinality can grow as the product of its inputs.
    pub const UNBOUNDED_JOIN: &str = "SF0804";
    /// A filter that survives optimization above a materialization point even
    /// though its predicate only reads scan columns — rows are materialized
    /// and then discarded.
    pub const POST_MATERIALIZATION_FILTER: &str = "SF0805";
    /// A generated job class (size bucket × partition route) that no
    /// admitting partition can ever start — rejected or silently rewritten
    /// before the simulator runs a single event.
    pub const UNSCHEDULABLE_CLASS: &str = "SF0901";
    /// With the age factor inert (weight 0 or non-positive `max_age_secs`),
    /// a statically dominated job class can be overtaken forever by a stream
    /// of higher-priority arrivals — starvation with a concrete witness.
    pub const STARVATION_POTENTIAL: &str = "SF0902";
    /// Partition-tier weighting contradicts the declared QoS priority order:
    /// a lower-weight QoS class statically outranks a higher-weight one.
    pub const PRIORITY_INVERSION: &str = "SF0903";
    /// Backfill reservation starvation: `BackfillPolicy::None` under
    /// heavy-tailed runtimes, or `Conservative` with `bf_max_job_test` below
    /// the typical queue depth, leaves fitting jobs idle behind a blocked
    /// head.
    pub const BACKFILL_STARVATION: &str = "SF0904";
    /// A partition no generated job class can route to: configured capacity
    /// the workload model can never exercise.
    pub const PARTITION_SHADOWED: &str = "SF0905";
    /// `usage_halflife_secs` is inconsistent with the profile horizon: the
    /// fair-share factor is effectively constant over the whole trace.
    pub const FAIRSHARE_DECAY: &str = "SF0906";
}

/// One finding, with enough context to render a rustc-style report.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub code: &'static str,
    pub severity: Severity,
    /// Task the finding anchors to, when there is one.
    pub task: Option<String>,
    /// Artifact the finding anchors to, when there is one.
    pub artifact: Option<String>,
    /// One-line statement of the defect.
    pub message: String,
    /// Supporting facts (`= note:` lines).
    pub notes: Vec<String>,
    /// Actionable suggestion (`= help:` line).
    pub help: Option<String>,
}

impl Diagnostic {
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            task: None,
            artifact: None,
            message: message.into(),
            notes: Vec::new(),
            help: None,
        }
    }

    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, message)
        }
    }

    pub fn at_task(mut self, task: impl Into<String>) -> Self {
        self.task = Some(task.into());
        self
    }

    pub fn at_artifact(mut self, artifact: impl Into<String>) -> Self {
        self.artifact = Some(artifact.into());
        self
    }

    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    pub fn help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Render as a rustc-style block:
    ///
    /// ```text
    /// error[SF0101]: missing column `wait_secs`
    ///   --> task `plot-waits`, input `merged-frame`
    ///   = note: `merged-frame` is produced by task `merge-curated`
    ///   = help: a column named `wait_s` exists — did you mean that?
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!("{}[{}]: {}\n", self.severity, self.code, self.message);
        match (&self.task, &self.artifact) {
            (Some(t), Some(a)) => {
                out.push_str(&format!("  --> task `{t}`, artifact `{a}`\n"));
            }
            (Some(t), None) => out.push_str(&format!("  --> task `{t}`\n")),
            (None, Some(a)) => out.push_str(&format!("  --> artifact `{a}`\n")),
            (None, None) => {}
        }
        for n in &self.notes {
            out.push_str(&format!("  = note: {n}\n"));
        }
        if let Some(h) = &self.help {
            out.push_str(&format!("  = help: {h}\n"));
        }
        out
    }
}

/// All findings of one lint pass, in deterministic (propagation) order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    pub fn extend(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    pub fn has_errors(&self) -> bool {
        self.errors() > 0
    }

    /// Diagnostics with a given code (for tests and tooling).
    pub fn with_code(&self, code: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Sort diagnostics by `(code, task, artifact, message)` so the final
    /// report is deterministic regardless of the order lint passes ran in.
    /// The sort is stable, so diagnostics identical on the key keep their
    /// emission order.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (a.code, &a.task, &a.artifact, &a.message).cmp(&(
                b.code,
                &b.task,
                &b.artifact,
                &b.message,
            ))
        });
    }

    /// Render the whole report, one blank line between diagnostics, ending
    /// with a summary line.
    pub fn render(&self) -> String {
        if self.is_clean() {
            return "lint: clean\n".to_owned();
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "lint: {} error(s), {} warning(s)\n",
            self.errors(),
            self.warnings()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rustc_style() {
        let d = Diagnostic::error(codes::MISSING_COLUMN, "missing column `wait_secs`")
            .at_task("plot-waits")
            .at_artifact("merged-frame")
            .note("`merged-frame` is produced by task `merge-curated`")
            .help("a column named `wait_s` exists — did you mean that?");
        let text = d.render();
        assert_eq!(
            text,
            "error[SF0101]: missing column `wait_secs`\n\
             \x20 --> task `plot-waits`, artifact `merged-frame`\n\
             \x20 = note: `merged-frame` is produced by task `merge-curated`\n\
             \x20 = help: a column named `wait_s` exists — did you mean that?\n"
        );
    }

    #[test]
    fn report_counts_and_summary() {
        let mut r = LintReport::new();
        assert!(r.is_clean());
        assert_eq!(r.render(), "lint: clean\n");
        r.push(Diagnostic::warning(codes::ORPHAN_ARTIFACT, "orphan"));
        r.push(Diagnostic::error(codes::ZERO_ATTEMPTS, "zero"));
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
        assert!(r.has_errors());
        assert!(r.render().ends_with("lint: 1 error(s), 1 warning(s)\n"));
        assert_eq!(r.with_code(codes::ZERO_ATTEMPTS).len(), 1);
    }
}
