//! Scheduling-policy static analysis: the SF09xx family.
//!
//! An abstract interpreter over [`SystemConfig`] + [`WorkloadProfile`] that
//! decides policy properties *before* the simulator runs. Instead of
//! simulating the workload, it enumerates the symbolic job classes the
//! generator can emit (size bucket × route) and pushes them through the same
//! admission predicate the simulator applies at runtime
//! ([`schedflow_sim::policy::class_admitted`]), plus closed-form reasoning
//! over the multifactor priority formula. Six properties are decided:
//!
//! | code   | property |
//! |--------|----------|
//! | SF0901 | unschedulable job class (route target missing, node/walltime caps) |
//! | SF0902 | starvation potential: inert aging + a dominating job class |
//! | SF0903 | priority inversion: QOS weights contradicted by partition tiers |
//! | SF0904 | backfill reservation starvation (no backfill, or budget too small) |
//! | SF0905 | partition shadowing: a partition the workload never routes to |
//! | SF0906 | fair-share decay inconsistency: half-life outside the usable range |
//!
//! Verdicts that predict *dynamic* misbehavior (SF0902, SF0904) come with a
//! concrete [`PolicyWitness`] queue; `schedflow_sim::policy::replay` executes
//! the queue through the real discrete-event scheduler and confirms the
//! predicted overtaking/blocking actually occurs. Every finding also carries a
//! machine-applicable [`ConfigEdit`] that clears it.

use crate::diag::{codes, Diagnostic, LintReport};
use schedflow_model::time::Elapsed;
use schedflow_sim::policy::{self, ContrastEdit, PolicyWitness, WitnessExpectation};
use schedflow_sim::{BackfillPolicy, JobRequest, PlannedOutcome, SimError, SystemConfig};
use schedflow_tracegen::WorkloadProfile;

/// First job id used in witness queues, far above the generator's id range.
const WITNESS_BASE_ID: u64 = 9_000_000;

/// A machine-applicable edit to a [`WorkloadProfile`] that clears the finding
/// it is attached to. `path` addresses a closed set of profile/system knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigEdit {
    pub path: String,
    pub value: String,
}

impl ConfigEdit {
    fn new(path: impl Into<String>, value: impl Into<String>) -> Self {
        ConfigEdit {
            path: path.into(),
            value: value.into(),
        }
    }

    /// Human-readable form used in diagnostic `help:` lines.
    pub fn render(&self) -> String {
        format!("set `{} = {}`", self.path, self.value)
    }

    /// Apply the edit in place. Returns false when the path does not resolve
    /// against this profile (unknown knob, missing partition/qos/bucket).
    pub fn apply(&self, profile: &mut WorkloadProfile) -> bool {
        let sys = &mut profile.system;
        match self.path.as_str() {
            "weights.age" => parse(&self.value).map(|v| sys.weights.age = v).is_some(),
            "weights.max_age_secs" => parse(&self.value)
                .map(|v| sys.weights.max_age_secs = v)
                .is_some(),
            "weights.usage_halflife_secs" => parse(&self.value)
                .map(|v| sys.weights.usage_halflife_secs = v)
                .is_some(),
            "backfill" => {
                let policy = match self.value.as_str() {
                    "none" => BackfillPolicy::None,
                    "easy" => BackfillPolicy::Easy,
                    "conservative" => BackfillPolicy::Conservative,
                    _ => return false,
                };
                sys.backfill = policy;
                true
            }
            "bf_max_job_test" => parse(&self.value)
                .map(|v| sys.bf_max_job_test = v)
                .is_some(),
            "debug_fraction" => parse(&self.value)
                .map(|v| profile.debug_fraction = v)
                .is_some(),
            "urgent_fraction" => parse(&self.value)
                .map(|v| profile.urgent_fraction = v)
                .is_some(),
            "standby_fraction" => parse(&self.value)
                .map(|v| profile.standby_fraction = v)
                .is_some(),
            p => {
                if let Some(rest) = p.strip_prefix("partitions.") {
                    if let Some(name) = rest.strip_suffix(".max_nodes") {
                        let Some(v) = parse(&self.value) else {
                            return false;
                        };
                        match sys.partitions.iter_mut().find(|pt| pt.name == name) {
                            Some(pt) => {
                                pt.max_nodes = v;
                                true
                            }
                            None => false,
                        }
                    } else if let Some(name) = rest.strip_suffix(".max_walltime_secs") {
                        let Some(v) = parse::<i64>(&self.value) else {
                            return false;
                        };
                        match sys.partitions.iter_mut().find(|pt| pt.name == name) {
                            Some(pt) => {
                                pt.max_walltime = Elapsed::from_secs(v);
                                true
                            }
                            None => false,
                        }
                    } else if self.value == "remove" {
                        let before = sys.partitions.len();
                        sys.partitions.retain(|pt| pt.name != rest);
                        sys.partitions.len() != before
                    } else {
                        false
                    }
                } else if let Some(rest) = p.strip_prefix("qos.") {
                    let Some(name) = rest.strip_suffix(".priority_weight") else {
                        return false;
                    };
                    let Some(v) = parse(&self.value) else {
                        return false;
                    };
                    match sys.qos.iter_mut().find(|q| q.name == name) {
                        Some(q) => {
                            q.priority_weight = v;
                            true
                        }
                        None => false,
                    }
                } else if let Some(rest) = p.strip_prefix("size_buckets.") {
                    let Some(idx) = rest.strip_suffix(".min_nodes") else {
                        return false;
                    };
                    let Some(i) = parse::<usize>(idx) else {
                        return false;
                    };
                    let Some(v) = parse(&self.value) else {
                        return false;
                    };
                    match profile.size_buckets.get_mut(i) {
                        Some(b) => {
                            b.min_nodes = v;
                            b.max_nodes = b.max_nodes.max(v);
                            true
                        }
                        None => false,
                    }
                } else {
                    false
                }
            }
        }
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> Option<T> {
    s.parse().ok()
}

/// Result of analyzing one profile: the diagnostics, the replayable witnesses
/// backing the SF0902/SF0904 verdicts, and the suggested edits.
#[derive(Debug, Clone, Default)]
pub struct PolicyAnalysis {
    pub report: LintReport,
    pub witnesses: Vec<PolicyWitness>,
    pub edits: Vec<ConfigEdit>,
}

impl PolicyAnalysis {
    pub fn is_clean(&self) -> bool {
        self.report.is_clean()
    }
}

/// A (partition, qos) pair the generator can route jobs to, with the walltime
/// rounding granularity it applies on that route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Route {
    partition: &'static str,
    qos: &'static str,
    granularity: i64,
}

/// The routes the generator can emit for this profile. Mirrors the routing
/// logic in `schedflow_tracegen::requests`: everything goes to `batch` except
/// a `debug_fraction` slice, and the urgent/standby QOS are used only when
/// their fractions are positive.
fn routes(profile: &WorkloadProfile) -> Vec<Route> {
    let mut v = vec![Route {
        partition: "batch",
        qos: "normal",
        granularity: 900,
    }];
    if profile.urgent_fraction > 0.0 {
        v.push(Route {
            partition: "batch",
            qos: "urgent",
            granularity: 900,
        });
    }
    if profile.standby_fraction > 0.0 {
        v.push(Route {
            partition: "batch",
            qos: "standby",
            granularity: 900,
        });
    }
    if profile.debug_fraction > 0.0 {
        v.push(Route {
            partition: "debug",
            qos: "debug",
            granularity: 300,
        });
    }
    v
}

/// The static part of the multifactor priority a job of `nodes` nodes gets on
/// this route: QOS weight + tier term + size term. Age and fair-share are
/// handled separately by the checks that reason about them.
fn class_priority(sys: &SystemConfig, route: Route, nodes: u32) -> Option<f64> {
    let part = sys.partition(route.partition)?;
    let qos = sys.qos(route.qos)?;
    let w = &sys.weights;
    Some(
        qos.priority_weight as f64
            + w.tier * part.priority_tier as f64
            + w.size * nodes as f64 / sys.total_nodes.max(1) as f64,
    )
}

/// Entry point: run all six SF09xx checks against a workload profile.
pub fn lint_policy(profile: &WorkloadProfile) -> PolicyAnalysis {
    let mut a = PolicyAnalysis::default();
    let routes = routes(profile);
    let live = check_unschedulable(profile, &routes, &mut a);
    check_starvation(profile, &live, &mut a);
    check_inversion(profile, &live, &mut a);
    check_backfill(profile, &live, &mut a);
    check_shadowing(profile, &mut a);
    check_fairshare(profile, &mut a);
    a.report.sort();
    a
}

/// SF0901: job classes the machine can never start. Returns the routes that
/// survived (exist and admit at least a minimal job), for the later checks.
fn check_unschedulable(
    profile: &WorkloadProfile,
    routes: &[Route],
    a: &mut PolicyAnalysis,
) -> Vec<Route> {
    let sys = &profile.system;
    let mut live = Vec::new();
    for &r in routes {
        // Probe the smallest job the generator can emit on this route through
        // the exact predicate `Simulator::validate` applies.
        match policy::class_admitted(sys, r.partition, r.qos, 1, r.granularity) {
            Ok(()) => live.push(r),
            Err(SimError::UnknownPartition { .. }) => {
                let (d, e) = route_target_missing(r, "partition", r.partition, profile);
                push(a, d, e);
            }
            Err(SimError::UnknownQos { .. }) => {
                let (d, e) = route_target_missing(r, "QOS", r.qos, profile);
                push(a, d, e);
            }
            Err(SimError::WalltimeOverLimit { .. }) => {
                let d = Diagnostic::error(
                    codes::UNSCHEDULABLE_CLASS,
                    format!(
                        "partition `{}` caps walltime below the generator's {}s rounding granularity: every `{}/{}` job is rejected",
                        r.partition, r.granularity, r.partition, r.qos
                    ),
                )
                .at_artifact(r.partition)
                .note("the generator rounds requested walltimes up to the granularity, so no request can fit under the cap");
                let e = ConfigEdit::new(
                    format!("partitions.{}.max_walltime_secs", r.partition),
                    (r.granularity * 4).to_string(),
                );
                push(a, d, Some(e));
            }
            Err(_) => {
                let d = Diagnostic::error(
                    codes::UNSCHEDULABLE_CLASS,
                    format!(
                        "route `{}/{}` admits no job at all (node limit is zero)",
                        r.partition, r.qos
                    ),
                )
                .at_artifact(r.partition);
                let e = (sys.total_nodes > 0).then(|| {
                    ConfigEdit::new(
                        format!("partitions.{}.max_nodes", r.partition),
                        sys.total_nodes.to_string(),
                    )
                });
                push(a, d, e);
            }
        }
    }

    // Partition caps above the machine: the generator clamps node draws to
    // the *partition* cap, so any bucket reaching past the machine emits
    // requests the validator then rejects — the run aborts.
    for &r in &live {
        let Some(part) = sys.partition(r.partition) else {
            continue;
        };
        if part.max_nodes <= sys.total_nodes {
            continue;
        }
        for (i, b) in profile.size_buckets.iter().enumerate() {
            let probe = b.max_nodes.min(part.max_nodes);
            if policy::class_admitted(sys, r.partition, r.qos, probe, r.granularity).is_err() {
                let d = Diagnostic::error(
                    codes::UNSCHEDULABLE_CLASS,
                    format!(
                        "partition `{}` admits up to {} nodes but the machine has {}: size bucket {} ({}–{} nodes) generates requests the validator rejects",
                        r.partition, part.max_nodes, sys.total_nodes, i, b.min_nodes, b.max_nodes
                    ),
                )
                .at_artifact(r.partition)
                .note("generated node counts are clamped to the partition cap, not the machine size, so the simulator aborts on the first oversize request");
                let e = ConfigEdit::new(
                    format!("partitions.{}.max_nodes", r.partition),
                    sys.total_nodes.to_string(),
                );
                push(a, d, Some(e));
                break;
            }
        }
    }

    // Size buckets no live route can start as declared.
    if !live.is_empty() {
        for (i, b) in profile.size_buckets.iter().enumerate() {
            let admitted = live.iter().any(|r| {
                policy::class_admitted(sys, r.partition, r.qos, b.min_nodes, r.granularity).is_ok()
            });
            if !admitted {
                let cap = live
                    .iter()
                    .filter_map(|r| sys.partition(r.partition))
                    .map(|p| p.max_nodes.min(sys.total_nodes))
                    .max()
                    .unwrap_or(0);
                let d = Diagnostic::error(
                    codes::UNSCHEDULABLE_CLASS,
                    format!(
                        "size bucket {} ({}–{} nodes, weight {}) can never start as declared: the widest routable partition caps at {} nodes",
                        i, b.min_nodes, b.max_nodes, b.weight, cap
                    ),
                )
                .note("the generator clamps these jobs down to the partition cap, silently erasing the declared class");
                let e = (cap > 0).then(|| {
                    ConfigEdit::new(format!("size_buckets.{i}.min_nodes"), cap.to_string())
                });
                push(a, d, e);
            }
        }
    }
    live
}

fn route_target_missing(
    r: Route,
    kind: &str,
    name: &str,
    profile: &WorkloadProfile,
) -> (Diagnostic, Option<ConfigEdit>) {
    let frac = match (r.partition, r.qos) {
        ("debug", _) => Some(("debug_fraction", profile.debug_fraction)),
        (_, "urgent") => Some(("urgent_fraction", profile.urgent_fraction)),
        (_, "standby") => Some(("standby_fraction", profile.standby_fraction)),
        _ => None,
    };
    let share = frac.map_or_else(String::new, |(_, f)| {
        format!(" ({:.1}% of traffic)", f * 100.0)
    });
    let d = Diagnostic::error(
        codes::UNSCHEDULABLE_CLASS,
        format!(
            "workload routes jobs to `{}/{}`{share} but the system defines no {kind} `{name}`",
            r.partition, r.qos
        ),
    )
    .at_artifact(name)
    .note("the generator panics on the first job it routes there");
    let e = frac.map(|(knob, _)| ConfigEdit::new(knob, "0"));
    (d, e)
}

/// SF0902: starvation potential. When the age factor is inert, a large
/// batch/normal job can be overtaken forever by a dominating class — nothing
/// ever closes the priority gap. Emits a replayable overtaking witness.
fn check_starvation(profile: &WorkloadProfile, live: &[Route], a: &mut PolicyAnalysis) {
    let sys = &profile.system;
    let w = &sys.weights;
    let age_inert = w.age <= 0.0 || w.max_age_secs <= 0;
    if !age_inert {
        return;
    }
    let victim_route = Route {
        partition: "batch",
        qos: "normal",
        granularity: 900,
    };
    if !live.contains(&victim_route) {
        return;
    }
    let batch = sys.partition("batch").expect("live route has partition");
    let total = sys.total_nodes;
    let victim_nodes = batch.max_nodes.min(total);
    if victim_nodes < 2 {
        return;
    }
    let max_wall_batch = batch.max_walltime.as_secs();
    let filler_wall = max_wall_batch.min(50_400);
    if filler_wall < 4_000 {
        // Too short a window to stage fillers + staggered competitors.
        return;
    }
    let Some(victim_prio) = class_priority(sys, victim_route, victim_nodes) else {
        return;
    };
    // Pick the dominating competitor class: the live route whose static
    // priority most exceeds the victim's even granting the victim the full
    // fair-share boost.
    let mut best: Option<(Route, u32, f64)> = None;
    for &r in live {
        if r == victim_route {
            continue;
        }
        let Some(part) = sys.partition(r.partition) else {
            continue;
        };
        let comp_nodes = part
            .max_nodes
            .min(total)
            .min((total / 8).max(1))
            .min(victim_nodes - 1);
        if comp_nodes == 0 {
            continue;
        }
        let Some(comp_prio) = class_priority(sys, r, comp_nodes) else {
            continue;
        };
        let margin = comp_prio - (victim_prio + w.fairshare.max(0.0));
        let better = match &best {
            Some((_, _, m)) => margin > *m,
            None => margin > 1.0,
        };
        if margin > 1.0 && better {
            best = Some((r, comp_nodes, margin));
        }
    }
    let Some((comp, comp_nodes, margin)) = best else {
        return;
    };

    let (witness, queue_notes) =
        overtaking_witness(profile, victim_nodes, filler_wall, comp, comp_nodes);
    let reason = if w.age <= 0.0 {
        format!("weights.age = {}", w.age)
    } else {
        format!("weights.max_age_secs = {}", w.max_age_secs)
    };
    let edit = if w.age <= 0.0 {
        ConfigEdit::new("weights.age", "10000")
    } else {
        ConfigEdit::new("weights.max_age_secs", "1209600")
    };
    let mut d = Diagnostic::warning(
        codes::STARVATION_POTENTIAL,
        format!(
            "age factor is inert ({reason}): a {victim_nodes}-node `batch/normal` job can be overtaken indefinitely by `{}/{}` arrivals",
            comp.partition, comp.qos
        ),
    )
    .at_artifact("batch")
    .note(format!(
        "static priority gap: competitor ≈ {:.0} vs victim ≈ {:.0} (margin {:.0}) with no age term to close it",
        victim_prio + w.fairshare.max(0.0) + margin,
        victim_prio + w.fairshare.max(0.0),
        margin
    ));
    for n in queue_notes {
        d = d.note(n);
    }
    d = d.help(format!(
        "suggested edit: {}; confirm the witness with `schedflow verify-policy`",
        edit.render()
    ));
    a.witnesses.push(witness);
    push(a, d, Some(edit));
}

/// Build the SF0902 witness: fillers pin all but `comp_nodes` nodes, the
/// wide victim arrives, then staggered competitors on the dominating route
/// keep starting ahead of it. Distinct users per job keep per-user QOS caps
/// and fair-share coupling out of the picture.
fn overtaking_witness(
    profile: &WorkloadProfile,
    victim_nodes: u32,
    filler_wall: i64,
    comp: Route,
    comp_nodes: u32,
) -> (PolicyWitness, Vec<String>) {
    let sys = &profile.system;
    let t0 = profile.start;
    let batch_cap = sys
        .partition("batch")
        .map_or(sys.total_nodes, |p| p.max_nodes.min(sys.total_nodes));
    let comp_wall = sys
        .partition(comp.partition)
        .map_or(900, |p| p.max_walltime.as_secs().min(900))
        .max(1);
    let mut queue = Vec::new();
    let mut id = WITNESS_BASE_ID;
    let mut user = 1000;
    let mut remaining = sys.total_nodes - comp_nodes;
    let mut fillers = 0u32;
    while remaining > 0 {
        let n = remaining.min(batch_cap);
        queue.push(JobRequest {
            id,
            user,
            submit: t0,
            nodes: n,
            walltime_secs: filler_wall,
            actual_secs: filler_wall - 100,
            partition: "batch".to_owned(),
            qos: "normal".to_owned(),
            outcome: PlannedOutcome::Complete,
            dependency: None,
        });
        id += 1;
        user += 1;
        remaining -= n;
        fillers += 1;
    }
    let victim = id;
    queue.push(JobRequest {
        id,
        user: 1,
        submit: t0 + 10,
        nodes: victim_nodes,
        walltime_secs: sys
            .partition("batch")
            .map_or(20_000, |p| p.max_walltime.as_secs().min(20_000)),
        actual_secs: 900,
        partition: "batch".to_owned(),
        qos: "normal".to_owned(),
        outcome: PlannedOutcome::Complete,
        dependency: None,
    });
    id += 1;
    let mut competitors = Vec::new();
    for k in 0..3i64 {
        competitors.push(id);
        queue.push(JobRequest {
            id,
            user: 2000 + k as u32,
            submit: t0 + 20 + k * 1000,
            nodes: comp_nodes,
            walltime_secs: comp_wall,
            actual_secs: comp_wall.min(500),
            partition: comp.partition.to_owned(),
            qos: comp.qos.to_owned(),
            outcome: PlannedOutcome::Complete,
            dependency: None,
        });
        id += 1;
    }
    let notes = vec![
        format!(
            "concrete witness queue ({} jobs): {fillers} filler(s) pin {} nodes for {filler_wall}s from t0",
            queue.len(),
            sys.total_nodes - comp_nodes
        ),
        format!("victim: job {victim}, {victim_nodes} nodes `batch/normal`, submitted t0+10"),
        format!(
            "competitors: jobs {competitors:?}, {comp_nodes} nodes `{}/{}`, submitted t0+20 onward — each starts while the victim waits",
            comp.partition, comp.qos
        ),
    ];
    (
        PolicyWitness {
            code: codes::STARVATION_POTENTIAL.to_owned(),
            queue,
            expectation: WitnessExpectation::Overtaking {
                victim,
                competitors,
            },
        },
        notes,
    )
}

/// SF0903: priority inversion. A QOS declares higher priority than another,
/// but partition tier weights invert the effective ordering between the
/// routes that actually carry them.
fn check_inversion(profile: &WorkloadProfile, live: &[Route], a: &mut PolicyAnalysis) {
    let sys = &profile.system;
    let w = &sys.weights;
    for &hi in live {
        for &lo in live {
            if hi.qos == lo.qos {
                continue;
            }
            let (Some(q_hi), Some(q_lo)) = (sys.qos(hi.qos), sys.qos(lo.qos)) else {
                continue;
            };
            if q_hi.priority_weight <= q_lo.priority_weight {
                continue;
            }
            let (Some(p_hi), Some(p_lo)) =
                (sys.partition(hi.partition), sys.partition(lo.partition))
            else {
                continue;
            };
            let base_hi = q_hi.priority_weight as f64 + w.tier * p_hi.priority_tier as f64;
            let base_lo = q_lo.priority_weight as f64 + w.tier * p_lo.priority_tier as f64;
            if base_hi > base_lo {
                continue;
            }
            let needed = (base_lo - w.tier * p_hi.priority_tier as f64 + 1.0).max(0.0);
            let edit = ConfigEdit::new(
                format!("qos.{}.priority_weight", hi.qos),
                format!("{}", needed.ceil() as u64),
            );
            let d = Diagnostic::warning(
                codes::PRIORITY_INVERSION,
                format!(
                    "QOS `{}` declares higher priority than `{}` ({} > {}) but partition tiers invert it: effective {:.0} on `{}` ≤ {:.0} on `{}`",
                    hi.qos,
                    lo.qos,
                    q_hi.priority_weight,
                    q_lo.priority_weight,
                    base_hi,
                    hi.partition,
                    base_lo,
                    lo.partition
                ),
            )
            .at_artifact(hi.qos)
            .note(format!(
                "effective priority = qos_weight + {:.0} × partition_tier; tier {} vs {} outweighs the declared QOS ordering",
                w.tier, p_hi.priority_tier, p_lo.priority_tier
            ))
            .help(format!("suggested edit: {}", edit.render()));
            push(a, d, Some(edit));
        }
    }
}

/// SF0904: backfill reservation starvation. Either no backfill at all under a
/// heavy-tailed runtime mix, or conservative backfill whose examination
/// budget is below the typical queue depth. Emits an idle-blocking witness
/// whose contrast leg proves the wait is pure policy.
fn check_backfill(profile: &WorkloadProfile, live: &[Route], a: &mut PolicyAnalysis) {
    let sys = &profile.system;
    let batch_route = Route {
        partition: "batch",
        qos: "normal",
        granularity: 900,
    };
    if !live.contains(&batch_route) {
        return;
    }
    let Some(batch) = sys.partition("batch") else {
        return;
    };
    let total = sys.total_nodes;
    let cap = batch.max_nodes.min(total);
    let filler_wall = batch.max_walltime.as_secs().min(10_800);
    match sys.backfill {
        BackfillPolicy::None => {
            if profile.runtime_sigma < 0.75 || total < 4 || cap < 3 || filler_wall < 2_000 {
                return;
            }
            let (witness, notes) = idle_blocking_witness(
                profile,
                filler_wall,
                cap,
                0,
                ContrastEdit::Backfill(BackfillPolicy::Easy),
            );
            let edit = ConfigEdit::new("backfill", "easy");
            let mut d = Diagnostic::warning(
                codes::BACKFILL_STARVATION,
                format!(
                    "backfill is disabled under a heavy-tailed runtime mix (sigma {}): short jobs idle behind wide reservations on free nodes",
                    profile.runtime_sigma
                ),
            )
            .note("with BackfillPolicy::None the queue head blocks everything behind it, even jobs that fit the idle nodes and finish before the head could start");
            for n in notes {
                d = d.note(n);
            }
            d = d.help(format!(
                "suggested edit: {}; confirm the witness with `schedflow verify-policy`",
                edit.render()
            ));
            a.witnesses.push(witness);
            push(a, d, Some(edit));
        }
        BackfillPolicy::Conservative => {
            let depth =
                (profile.jobs_per_day * profile.runtime_median_secs / 86_400.0).ceil() as usize;
            let k = sys.bf_max_job_test;
            if k >= depth || total < 4 || cap < 2 {
                return;
            }
            if k > 2_000 || filler_wall < k as i64 + 1_100 {
                // Witness would not fit the staging window; skip rather than
                // emit an unconfirmable verdict.
                return;
            }
            let (witness, notes) = idle_blocking_witness(
                profile,
                filler_wall,
                cap,
                k,
                ContrastEdit::BfMaxJobTest(k + 2),
            );
            let edit = ConfigEdit::new("bf_max_job_test", depth.max(k + 2).to_string());
            let mut d = Diagnostic::warning(
                codes::BACKFILL_STARVATION,
                format!(
                    "conservative backfill examines only {k} jobs per pass but the typical queue depth is ≈{depth}: jobs past the budget never backfill",
                ),
            )
            .note(format!(
                "typical depth ≈ jobs_per_day × median_runtime / 86400 = {:.0} × {:.0} / 86400",
                profile.jobs_per_day, profile.runtime_median_secs
            ));
            for n in notes {
                d = d.note(n);
            }
            d = d.help(format!(
                "suggested edit: {}; confirm the witness with `schedflow verify-policy`",
                edit.render()
            ));
            a.witnesses.push(witness);
            push(a, d, Some(edit));
        }
        BackfillPolicy::Easy => {}
    }
}

/// Build the SF0904 witness. With `wides = 0` (the no-backfill arm): fillers
/// pin all but 2 nodes, one wide head blocks, and a 2-node candidate that
/// fits the idle nodes must wait. With `wides = k` (the conservative arm):
/// fillers pin all but 1 node and `k + 1` wide jobs exhaust the examination
/// budget before a 1-node candidate is ever looked at.
fn idle_blocking_witness(
    profile: &WorkloadProfile,
    filler_wall: i64,
    cap: u32,
    wides: usize,
    contrast: ContrastEdit,
) -> (PolicyWitness, Vec<String>) {
    let sys = &profile.system;
    let t0 = profile.start;
    let spare: u32 = if wides == 0 { 2 } else { 1 };
    let head_wall = sys
        .partition("batch")
        .map_or(5_400, |p| p.max_walltime.as_secs().min(5_400));
    let mut queue = Vec::new();
    let mut id = WITNESS_BASE_ID + 1_000;
    let mut user = 3000;
    let mut remaining = sys.total_nodes - spare;
    let mut fillers = 0u32;
    while remaining > 0 {
        let n = remaining.min(cap);
        queue.push(JobRequest {
            id,
            user,
            submit: t0,
            nodes: n,
            walltime_secs: filler_wall,
            actual_secs: filler_wall - 100,
            partition: "batch".to_owned(),
            qos: "normal".to_owned(),
            outcome: PlannedOutcome::Complete,
            dependency: None,
        });
        id += 1;
        user += 1;
        remaining -= n;
        fillers += 1;
    }
    let head = id;
    let n_wide = wides.max(1) as i64 + if wides == 0 { 0 } else { 1 };
    for w in 0..n_wide {
        queue.push(JobRequest {
            id,
            user: 4000 + w as u32,
            submit: t0 + 10 + w,
            nodes: cap,
            walltime_secs: head_wall,
            actual_secs: 100,
            partition: "batch".to_owned(),
            qos: "normal".to_owned(),
            outcome: PlannedOutcome::Complete,
            dependency: None,
        });
        id += 1;
    }
    let blocked = id;
    queue.push(JobRequest {
        id,
        user: 2,
        submit: t0 + 10 + n_wide + 10,
        nodes: spare,
        walltime_secs: 900,
        actual_secs: 500,
        partition: "batch".to_owned(),
        qos: "normal".to_owned(),
        outcome: PlannedOutcome::Complete,
        dependency: None,
    });
    let notes = vec![
        format!(
            "concrete witness queue ({} jobs): {fillers} filler(s) pin {} nodes for {filler_wall}s from t0, leaving {spare} idle",
            queue.len(),
            sys.total_nodes - spare
        ),
        format!("{n_wide} wide {cap}-node job(s) from t0+10 head the queue and cannot start"),
        format!(
            "blocked: job {blocked}, {spare} node(s), 900s — fits the idle nodes and finishes before the head could start, yet waits; under `{contrast}` it starts immediately"
        ),
    ];
    (
        PolicyWitness {
            code: codes::BACKFILL_STARVATION.to_owned(),
            queue,
            expectation: WitnessExpectation::IdleBlocking {
                blocked,
                head,
                contrast,
            },
        },
        notes,
    )
}

/// SF0905: partitions the workload never routes to. The generator only knows
/// `batch` and `debug` (the latter only when `debug_fraction > 0`).
fn check_shadowing(profile: &WorkloadProfile, a: &mut PolicyAnalysis) {
    for p in &profile.system.partitions {
        match p.name.as_str() {
            "batch" => {}
            "debug" => {
                if profile.debug_fraction <= 0.0 {
                    let edit = ConfigEdit::new("debug_fraction", "0.08");
                    let d = Diagnostic::warning(
                        codes::PARTITION_SHADOWED,
                        "partition `debug` receives no traffic: debug_fraction is 0",
                    )
                    .at_artifact("debug")
                    .note(format!(
                        "{} nodes sit idle for the whole trace window",
                        p.max_nodes
                    ))
                    .help(format!("suggested edit: {}", edit.render()));
                    push(a, d, Some(edit));
                }
            }
            other => {
                let edit = ConfigEdit::new(format!("partitions.{other}"), "remove");
                let d = Diagnostic::warning(
                    codes::PARTITION_SHADOWED,
                    format!(
                        "partition `{other}` is shadowed: the workload generator routes only to `batch` and `debug`"
                    ),
                )
                .at_artifact(other)
                .help(format!("suggested edit: {}", edit.render()));
                push(a, d, Some(edit));
            }
        }
    }
}

/// SF0906: fair-share decay inconsistency. A non-zero fair-share weight with
/// a half-life outside (0, trace window) makes the factor effectively
/// constant: instant decay pins every user at full boost, and a half-life
/// longer than the window never forgets anything.
fn check_fairshare(profile: &WorkloadProfile, a: &mut PolicyAnalysis) {
    let w = &profile.system.weights;
    if w.fairshare == 0.0 {
        return;
    }
    let horizon = profile.end.0 - profile.start.0;
    let hl = w.usage_halflife_secs;
    if hl <= 0 {
        let edit = ConfigEdit::new("weights.usage_halflife_secs", "604800");
        let d = Diagnostic::warning(
            codes::FAIRSHARE_DECAY,
            format!(
                "usage half-life {hl}s is clamped to 1s at runtime: per-user usage decays instantly and the fair-share factor pins at full boost"
            ),
        )
        .note(format!(
            "weights.fairshare = {} then adds a constant to every job, influencing nothing",
            w.fairshare
        ))
        .help(format!("suggested edit: {}", edit.render()));
        push(a, d, Some(edit));
    } else if horizon > 0 && hl >= horizon {
        let edit = ConfigEdit::new(
            "weights.usage_halflife_secs",
            (horizon / 8).max(1).to_string(),
        );
        let d = Diagnostic::warning(
            codes::FAIRSHARE_DECAY,
            format!(
                "usage half-life {hl}s meets or exceeds the {}-day trace window: usage never meaningfully decays and fair-share degrades into a static penalty on active users",
                horizon / 86_400
            ),
        )
        .help(format!("suggested edit: {}", edit.render()));
        push(a, d, Some(edit));
    }
}

fn push(a: &mut PolicyAnalysis, d: Diagnostic, edit: Option<ConfigEdit>) {
    a.report.push(d);
    if let Some(e) = edit {
        a.edits.push(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedflow_sim::policy::replay;

    /// A small, policy-clean profile on the toy machine (buckets that do not
    /// exist on toy(64) are clamped away; no debug partition exists there).
    fn toy_profile() -> WorkloadProfile {
        let mut p = WorkloadProfile::andes();
        p.system = SystemConfig::toy(64);
        p.debug_fraction = 0.0;
        p.size_buckets.retain(|b| b.max_nodes <= 64);
        p
    }

    #[test]
    fn preset_profiles_are_policy_clean() {
        for p in [
            WorkloadProfile::frontier(),
            WorkloadProfile::andes(),
            WorkloadProfile::frontier_early(),
            toy_profile(),
        ] {
            let a = lint_policy(&p);
            assert!(a.is_clean(), "{}:\n{}", p.system.name, a.report.render());
            assert!(a.witnesses.is_empty());
        }
    }

    #[test]
    fn inert_age_fires_sf0902_with_replaying_witness() {
        let mut p = WorkloadProfile::frontier();
        p.system.weights.age = 0.0;
        let a = lint_policy(&p);
        assert_eq!(a.report.with_code(codes::STARVATION_POTENTIAL).len(), 1);
        let w = &a.witnesses[0];
        assert_eq!(w.code, codes::STARVATION_POTENTIAL);
        let rep = replay(&p.system, w).unwrap();
        assert!(rep.holds, "{}", rep.detail);
        // The diagnostic names the witness queue.
        let d = a.report.with_code(codes::STARVATION_POTENTIAL)[0];
        assert!(
            d.render().contains("concrete witness queue"),
            "{}",
            d.render()
        );
    }

    #[test]
    fn zero_max_age_is_also_inert() {
        let mut p = WorkloadProfile::frontier();
        p.system.weights.max_age_secs = 0;
        let a = lint_policy(&p);
        assert_eq!(a.report.with_code(codes::STARVATION_POTENTIAL).len(), 1);
        assert!(a.edits.iter().any(|e| e.path == "weights.max_age_secs"));
    }

    #[test]
    fn no_backfill_fires_sf0904_with_replaying_witness() {
        let mut p = WorkloadProfile::frontier();
        p.system.backfill = BackfillPolicy::None;
        let a = lint_policy(&p);
        assert_eq!(a.report.with_code(codes::BACKFILL_STARVATION).len(), 1);
        let rep = replay(&p.system, &a.witnesses[0]).unwrap();
        assert!(rep.holds, "{}", rep.detail);
    }

    #[test]
    fn conservative_low_budget_fires_sf0904_with_replaying_witness() {
        let mut p = WorkloadProfile::frontier();
        p.system.backfill = BackfillPolicy::Conservative;
        p.system.bf_max_job_test = 4;
        let a = lint_policy(&p);
        assert_eq!(a.report.with_code(codes::BACKFILL_STARVATION).len(), 1);
        let rep = replay(&p.system, &a.witnesses[0]).unwrap();
        assert!(rep.holds, "{}", rep.detail);
        // A budget at or above the typical depth is fine.
        p.system.bf_max_job_test = 100;
        assert!(lint_policy(&p).is_clean());
    }

    #[test]
    fn urgent_routing_exposes_priority_inversion() {
        let p = WorkloadProfile::frontier().with_urgent_computing(0.05, 0.0);
        let a = lint_policy(&p);
        let hits = a.report.with_code(codes::PRIORITY_INVERSION);
        assert_eq!(hits.len(), 1, "{}", a.report.render());
        assert!(hits[0].render().contains("urgent"));
        // The suggested edit clears the inversion.
        let mut fixed = p.clone();
        for e in &a.edits {
            assert!(e.apply(&mut fixed), "edit {} did not apply", e.render());
        }
        assert!(lint_policy(&fixed).is_clean());
    }

    #[test]
    fn ghost_partition_and_dead_debug_fire_sf0905() {
        let mut p = WorkloadProfile::frontier();
        p.debug_fraction = 0.0; // debug partition now shadowed
        p.system
            .partitions
            .push(schedflow_model::partition::Partition::batch(
                64,
                Elapsed::from_hours(1),
            ));
        p.system.partitions.last_mut().unwrap().name = "gpu".to_owned();
        let a = lint_policy(&p);
        assert_eq!(a.report.with_code(codes::PARTITION_SHADOWED).len(), 2);
        let mut fixed = p.clone();
        for e in &a.edits {
            assert!(e.apply(&mut fixed));
        }
        assert!(
            lint_policy(&fixed).is_clean(),
            "{}",
            lint_policy(&fixed).report.render()
        );
    }

    #[test]
    fn missing_route_targets_fire_sf0901() {
        // Route debug traffic on a system with no debug partition.
        let mut p = toy_profile();
        p.debug_fraction = 0.10;
        let a = lint_policy(&p);
        assert!(a.report.has_errors());
        assert_eq!(a.report.with_code(codes::UNSCHEDULABLE_CLASS).len(), 1);
        let mut fixed = p.clone();
        for e in &a.edits {
            assert!(e.apply(&mut fixed));
        }
        assert!(lint_policy(&fixed).is_clean());
    }

    #[test]
    fn walltime_below_granularity_fires_sf0901() {
        let mut p = toy_profile();
        p.system.partitions[0].max_walltime = Elapsed::from_secs(600);
        let a = lint_policy(&p);
        let hits = a.report.with_code(codes::UNSCHEDULABLE_CLASS);
        assert_eq!(hits.len(), 1, "{}", a.report.render());
        assert!(hits[0].render().contains("granularity"));
        let mut fixed = p.clone();
        for e in &a.edits {
            assert!(e.apply(&mut fixed));
        }
        assert!(lint_policy(&fixed).is_clean());
    }

    #[test]
    fn partition_cap_above_machine_fires_sf0901() {
        let mut p = toy_profile();
        p.system.partitions[0].max_nodes = 128; // machine has 64
        p.size_buckets.push(schedflow_tracegen::SizeBucket {
            min_nodes: 65,
            max_nodes: 128,
            weight: 0.01,
        });
        let a = lint_policy(&p);
        assert!(a.report.has_errors(), "{}", a.report.render());
        // Both arms fire: the cap lets the generator draw rejectable sizes,
        // and the bucket can never start as declared.
        assert_eq!(a.report.with_code(codes::UNSCHEDULABLE_CLASS).len(), 2);
        let mut fixed = p.clone();
        for e in &a.edits {
            assert!(e.apply(&mut fixed));
        }
        assert!(lint_policy(&fixed).is_clean());
    }

    #[test]
    fn unreachable_size_bucket_fires_sf0901() {
        let mut p = toy_profile();
        p.size_buckets.push(schedflow_tracegen::SizeBucket {
            min_nodes: 65,
            max_nodes: 65,
            weight: 0.01,
        });
        let a = lint_policy(&p);
        let hits = a.report.with_code(codes::UNSCHEDULABLE_CLASS);
        assert_eq!(hits.len(), 1, "{}", a.report.render());
        assert!(hits[0].render().contains("size bucket"));
        let mut fixed = p.clone();
        for e in &a.edits {
            assert!(e.apply(&mut fixed));
        }
        assert!(lint_policy(&fixed).is_clean());
    }

    #[test]
    fn fairshare_halflife_extremes_fire_sf0906() {
        for hl in [0i64, 10 * 365 * 86_400] {
            let mut p = WorkloadProfile::andes();
            p.system.weights.usage_halflife_secs = hl;
            let a = lint_policy(&p);
            assert_eq!(
                a.report.with_code(codes::FAIRSHARE_DECAY).len(),
                1,
                "hl={hl}: {}",
                a.report.render()
            );
            let mut fixed = p.clone();
            for e in &a.edits {
                assert!(e.apply(&mut fixed));
            }
            assert!(lint_policy(&fixed).is_clean());
        }
        // Zero fair-share weight: the half-life is irrelevant.
        let mut p = WorkloadProfile::andes();
        p.system.weights.fairshare = 0.0;
        p.system.weights.usage_halflife_secs = 0;
        assert!(lint_policy(&p).is_clean());
    }

    #[test]
    fn config_edit_rejects_unknown_paths() {
        let mut p = WorkloadProfile::andes();
        assert!(!ConfigEdit::new("nonsense.knob", "1").apply(&mut p));
        assert!(!ConfigEdit::new("partitions.gpu.max_nodes", "1").apply(&mut p));
        assert!(!ConfigEdit::new("backfill", "aggressive").apply(&mut p));
        assert!(ConfigEdit::new("backfill", "conservative").apply(&mut p));
        assert_eq!(p.system.backfill, BackfillPolicy::Conservative);
    }
}
