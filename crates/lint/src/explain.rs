//! Long-form documentation for every diagnostic code (`schedflow lint
//! --explain SF0xxx`), in the spirit of `rustc --explain`.
//!
//! Every code in [`crate::diag::codes`] has an entry, plus the SF06xx
//! runtime invariant codes the simulator emits under the shared namespace.

/// The long-form documentation for a diagnostic code, or `None` for an
/// unknown code. Codes are matched case-insensitively.
pub fn explain(code: &str) -> Option<&'static str> {
    let code = code.to_ascii_uppercase();
    Some(match code.as_str() {
        "SF0001" => {
            "SF0001: invalid workflow graph\n\
             \n\
             The workflow failed structural validation before any dataflow analysis\n\
             could run: a dependency cycle, two tasks writing the same artifact, a\n\
             consumed value artifact with no producer, or a duplicate task name.\n\
             Structural errors block all further lint passes — fix the graph first.\n"
        }
        "SF0101" => {
            "SF0101: missing column\n\
             \n\
             A task's contract requires an input column that the propagated schema of\n\
             the artifact does not contain. The linter runs abstract interpretation\n\
             over the DAG: producer contracts seed schemas, schema effects (derives,\n\
             renames, drops) transform them, and each consumer requirement is checked\n\
             against what actually arrives. The diagnostic names the producing task\n\
             and suggests the nearest existing column name when one is close.\n"
        }
        "SF0102" => {
            "SF0102: dtype mismatch\n\
             \n\
             A required input column exists but with an incompatible dtype — e.g. the\n\
             consumer declares `wait_s: int` while the producer promises `wait_s: str`.\n\
             Numeric widening (int → num, float → num) is accepted; everything else\n\
             is an error because the stage would fail (or silently coerce) at runtime.\n"
        }
        "SF0103" => {
            "SF0103: nullability hazard\n\
             \n\
             A column that may contain nulls flows into a consumer whose contract\n\
             declares it non-null. Null-total plan semantics (Kleene logic) make\n\
             nulls survivable, but a stage that declared non-null input typically\n\
             divides, casts, or indexes on the column — a warning, not an error.\n"
        }
        "SF0104" => {
            "SF0104: bad schema edit\n\
             \n\
             A schema effect (rename/drop in a `Derives` contract) edits a column its\n\
             source schema does not contain. The edit is a no-op at best and a typo'd\n\
             contract at worst; the remaining edits still propagate so one mistake\n\
             does not cascade into spurious missing-column reports downstream.\n"
        }
        "SF0201" => {
            "SF0201: orphan artifact\n\
             \n\
             A value artifact is produced but never consumed by any task and never\n\
             marked retained for post-run inspection. The work to compute it is pure\n\
             waste — either wire a consumer, retain it, or delete the output.\n"
        }
        "SF0202" => {
            "SF0202: dead task\n\
             \n\
             No observable output (file artifact, retained value) transitively\n\
             depends on this task, so deleting it would not change anything the\n\
             caller can see. Usually a leftover stage after a pipeline refactor.\n"
        }
        "SF0301" => {
            "SF0301: backoff exceeds deadline\n\
             \n\
             The worst-case sum of retry backoff delays alone (before any attempt\n\
             runs) exceeds the task's deadline: later attempts are guaranteed to be\n\
             killed by the watchdog before they start. Shrink the backoff, raise the\n\
             deadline, or reduce attempts.\n"
        }
        "SF0302" => {
            "SF0302: zero attempts\n\
             \n\
             A retry policy with `attempts = 0`: the task can never execute, so every\n\
             downstream dependent is skipped. Almost certainly a configuration typo.\n"
        }
        "SF0401" => {
            "SF0401: unseeded chaos\n\
             \n\
             Fault injection is enabled without an explicit seed. Chaos runs must be\n\
             reproducible — an unseeded run that fails cannot be replayed to debug\n\
             the failure. Set a seed (any fixed integer) to make injection\n\
             deterministic.\n"
        }
        "SF0501" => {
            "SF0501: write-write conflict\n\
             \n\
             Two tasks write the same artifact path with no happens-before path\n\
             between them. Which write survives depends on scheduling —\n\
             last-writer-wins nondeterminism that the determinism verifier would\n\
             flag at runtime. Order the writers or split the outputs.\n"
        }
        "SF0502" => {
            "SF0502: read-write race\n\
             \n\
             A task reads an artifact path another task writes, with no DAG ordering\n\
             between reader and writer. The read may observe the old value, the new\n\
             value, or (for files) a torn intermediate depending on scheduling.\n"
        }
        "SF0503" => {
            "SF0503: artifact aliasing\n\
             \n\
             Two distinct artifact declarations resolve to the same file path.\n\
             Dependency inference is per-artifact-id, so writes through one id are\n\
             invisible to readers of the other — the engine may schedule them\n\
             concurrently. Declare the file once and share the handle.\n"
        }
        "SF0504" => {
            "SF0504: lifetime hazard\n\
             \n\
             An artifact may be dropped by the drop-after-last-consumer lifetime\n\
             tracker while a timed-out task's still-running body can observe it (the\n\
             zombie-read hazard). Retain the artifact or tighten the deadline\n\
             configuration so abandoned bodies cannot outlive their inputs.\n"
        }
        "SF0601" | "SF0602" | "SF0603" | "SF0604" => {
            "SF06xx: simulator runtime invariants\n\
             \n\
             Emitted at runtime by the scheduling simulator's invariant monitor, not\n\
             by the static linter: capacity overcommitment, time monotonicity, job\n\
             accounting conservation, and backfill correctness. They share the SFxxyy\n\
             namespace so violation reports grep like lint findings.\n"
        }
        "SF0701" => {
            "SF0701: cache directory not atomic\n\
             \n\
             A cache/output directory failed the same-directory atomic-rename probe.\n\
             The durable store's crash-safety protocol (temp file → fsync → rename →\n\
             dir fsync) requires rename atomicity; on filesystems without it, torn\n\
             files can survive a crash and poison later runs. Move the directory to\n\
             a local filesystem.\n"
        }
        "SF0801" => {
            "SF0801: cross-stage duplicated subplan\n\
             \n\
             Two or more tasks independently compute a materializing subplan\n\
             (group-by or join) with the same canonical fingerprint. Within one task\n\
             the executor's common-subplan cache already deduplicates; across tasks\n\
             each stage pays the full cost. Hoist the shared computation into an\n\
             upstream task and let both stages consume its artifact.\n\
             \n\
             Detected by the cost pass: every attached plan is canonicalized and its\n\
             group-by/join subtrees fingerprinted; a fingerprint owned by ≥ 2 tasks\n\
             fires this warning.\n"
        }
        "SF0802" => {
            "SF0802: dead column\n\
             \n\
             A column promised by a producer's `Produces` contract is read by no\n\
             downstream contract: it is materialized, shipped through the data\n\
             plane, and dropped unobserved. Project it away in the producing plan.\n\
             \n\
             The check only fires when the analysis is complete — every consumer of\n\
             the artifact declares requirements for it — and never for retained\n\
             artifacts, which the caller inspects outside any contract.\n"
        }
        "SF0803" => {
            "SF0803: estimated peak memory exceeds budget\n\
             \n\
             Simulating the executor's drop-after-last-consumer lifetime tracking\n\
             over the plans' static byte estimates (row-bound polynomials evaluated\n\
             at an assumed source size × estimated row width), the serial-schedule\n\
             peak of resident artifact bytes exceeds `--mem-budget`. The serial peak\n\
             is a lower bound on the parallel worst case, so this is an error, not a\n\
             maybe. Narrow projections, drop unneeded `retain()`s, or raise the\n\
             budget.\n"
        }
        "SF0804" => {
            "SF0804: join with unbounded cardinality growth\n\
             \n\
             Neither side of a join is provably unique on the join key (unique = it\n\
             descends from a group-by over that key, surviving row-preserving\n\
             operators). Output cardinality is then bounded only by the product of\n\
             the input cardinalities — quadratic in source rows, widening to ∞ when\n\
             nested. Group one side by the join key first, or join on a key with a\n\
             uniqueness guarantee.\n"
        }
        "SF0805" => {
            "SF0805: filter evaluated post-materialization\n\
             \n\
             After optimization (filter fusion, predicate pushdown), a filter\n\
             remains above a materializing operator even though its predicate only\n\
             reads scan columns. The optimizer cannot push through group-bys, joins,\n\
             or derived columns, so rows are materialized and then discarded.\n\
             Restructure the plan to apply the predicate before the materializing\n\
             operator. Filters over derived columns (aggregates, with-column\n\
             outputs) are inherent and not flagged.\n"
        }
        "SF0901" => {
            "SF0901: unschedulable job class\n\
             \n\
             A job class the workload generator will emit — a size bucket × route\n\
             (partition, QOS) combination — can never start on the configured\n\
             machine: the route targets a partition or QOS the system does not\n\
             define, the partition's walltime cap sits below the generator's\n\
             walltime rounding granularity, the partition admits more nodes than\n\
             the machine has (so generated requests fail validation), or the\n\
             bucket's minimum size exceeds every routable partition's cap. The\n\
             analyzer probes each class through the exact admission predicate\n\
             `Simulator::validate` applies at runtime, so a clean report\n\
             guarantees generation cannot produce a rejected request.\n"
        }
        "SF0902" => {
            "SF0902: starvation potential\n\
             \n\
             The age factor is inert (zero weight or zero saturation age) while\n\
             some routable job class statically dominates a full-size batch job's\n\
             priority by more than the maximum fair-share boost. Nothing ever\n\
             closes the gap, so a steady trickle of the dominating class overtakes\n\
             the big job forever. The diagnostic carries a concrete witness queue\n\
             — fillers, a wide victim, staggered competitors — and\n\
             `schedflow verify-policy` replays it through the real scheduler to\n\
             confirm every later-submitted competitor starts first.\n"
        }
        "SF0903" => {
            "SF0903: priority inversion\n\
             \n\
             One QOS declares a higher priority weight than another, but on the\n\
             partitions that actually carry them the tier term flips the effective\n\
             ordering: qos_hi + tier_weight × tier_hi ≤ qos_lo + tier_weight ×\n\
             tier_lo. Operators reading the QOS table expect the declared order;\n\
             the scheduler delivers the opposite. The suggested edit raises the\n\
             inverted QOS weight just past the crossover point.\n"
        }
        "SF0904" => {
            "SF0904: backfill reservation starvation\n\
             \n\
             Short jobs that fit the idle nodes sit behind a wide reservation they\n\
             could never delay. Two arms: backfill disabled entirely under a\n\
             heavy-tailed runtime distribution, or conservative backfill whose\n\
             `bf_max_job_test` examination budget is smaller than the typical\n\
             queue depth (jobs past the budget are never even considered). The\n\
             witness queue demonstrates a fitting job that waits under the\n\
             configured policy and starts immediately under the suggested edit —\n\
             the contrast leg proves the wait is pure policy, not capacity.\n"
        }
        "SF0905" => {
            "SF0905: partition shadowed\n\
             \n\
             A partition is defined in the system config but the workload\n\
             generator never routes jobs to it — either a partition name the\n\
             router does not know, or a `debug` partition with `debug_fraction =\n\
             0`. Its nodes sit idle for the whole trace while appearing in\n\
             capacity accounting, silently skewing utilization results.\n"
        }
        "SF0906" => {
            "SF0906: fair-share decay inconsistency\n\
             \n\
             The fair-share weight is non-zero but the usage half-life lies\n\
             outside the usable range: non-positive (clamped to one second — usage\n\
             decays instantly, every user keeps the full boost) or at least the\n\
             trace window (usage never decays — the factor degrades into a static\n\
             penalty on active users). Either way the knob does not do what its\n\
             value suggests; pick a half-life well inside the trace window.\n"
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::codes;

    #[test]
    fn every_declared_code_has_an_entry() {
        for code in [
            codes::INVALID_GRAPH,
            codes::MISSING_COLUMN,
            codes::DTYPE_MISMATCH,
            codes::NULLABILITY,
            codes::BAD_SCHEMA_EDIT,
            codes::ORPHAN_ARTIFACT,
            codes::DEAD_TASK,
            codes::BACKOFF_EXCEEDS_DEADLINE,
            codes::ZERO_ATTEMPTS,
            codes::UNSEEDED_CHAOS,
            codes::WRITE_WRITE_CONFLICT,
            codes::READ_WRITE_RACE,
            codes::ARTIFACT_ALIASING,
            codes::LIFETIME_HAZARD,
            codes::CACHE_NOT_ATOMIC,
            codes::DUPLICATED_SUBPLAN,
            codes::DEAD_COLUMN,
            codes::MEM_BUDGET_EXCEEDED,
            codes::UNBOUNDED_JOIN,
            codes::POST_MATERIALIZATION_FILTER,
            codes::UNSCHEDULABLE_CLASS,
            codes::STARVATION_POTENTIAL,
            codes::PRIORITY_INVERSION,
            codes::BACKFILL_STARVATION,
            codes::PARTITION_SHADOWED,
            codes::FAIRSHARE_DECAY,
        ] {
            let doc = explain(code).unwrap_or_else(|| panic!("no explain entry for {code}"));
            assert!(doc.starts_with(code), "{code} doc must lead with its code");
        }
    }

    #[test]
    fn runtime_invariant_family_and_case_insensitivity() {
        assert!(explain("SF0601").is_some());
        assert!(explain("sf0801").is_some());
        assert!(explain("SF9999").is_none());
    }
}
