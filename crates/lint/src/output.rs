//! Machine-readable lint output: JSON and SARIF 2.1.0.
//!
//! The renderers are hand-rolled string builders — the diagnostic shape is
//! small and fixed, and keeping this crate free of a serializer dependency
//! keeps the lint gate's build surface minimal. Field layout is stable:
//! CI annotators may key on `code`, `severity`, `task`, `artifact`,
//! `message`, `notes`, and `help`.

use crate::diag::{Diagnostic, LintReport, Severity};
use std::fmt::Write as _;

/// Escape a string for a JSON string literal (quotes not included).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn opt(v: &Option<String>) -> String {
    match v {
        Some(s) => format!("\"{}\"", esc(s)),
        None => "null".to_owned(),
    }
}

fn severity_str(s: Severity) -> &'static str {
    match s {
        Severity::Warning => "warning",
        Severity::Error => "error",
    }
}

fn diagnostic_json(d: &Diagnostic, indent: &str) -> String {
    let notes = d
        .notes
        .iter()
        .map(|n| format!("\"{}\"", esc(n)))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{indent}{{\n\
         {indent}  \"code\": \"{}\",\n\
         {indent}  \"severity\": \"{}\",\n\
         {indent}  \"task\": {},\n\
         {indent}  \"artifact\": {},\n\
         {indent}  \"message\": \"{}\",\n\
         {indent}  \"notes\": [{notes}],\n\
         {indent}  \"help\": {}\n\
         {indent}}}",
        d.code,
        severity_str(d.severity),
        opt(&d.task),
        opt(&d.artifact),
        esc(&d.message),
        opt(&d.help),
    )
}

/// Render the report as a stable JSON document:
/// `{"errors": N, "warnings": M, "diagnostics": [...]}`.
pub fn to_json(report: &LintReport) -> String {
    let diags = report
        .diagnostics
        .iter()
        .map(|d| diagnostic_json(d, "    "))
        .collect::<Vec<_>>()
        .join(",\n");
    let body = if diags.is_empty() {
        String::new()
    } else {
        format!("\n{diags}\n  ")
    };
    format!(
        "{{\n  \"errors\": {},\n  \"warnings\": {},\n  \"diagnostics\": [{body}]\n}}\n",
        report.errors(),
        report.warnings()
    )
}

/// Render the report as a minimal SARIF 2.1.0 log: one run, one driver
/// (`schedflow-lint`), one rule per distinct code, one result per
/// diagnostic. Task/artifact anchors map to SARIF logical locations.
pub fn to_sarif(report: &LintReport) -> String {
    // One rule entry per distinct code, in first-appearance order.
    let mut rule_ids: Vec<&str> = Vec::new();
    for d in &report.diagnostics {
        if !rule_ids.contains(&d.code) {
            rule_ids.push(d.code);
        }
    }
    let rules = rule_ids
        .iter()
        .map(|id| {
            let help = crate::explain::explain(id)
                .map(|doc| {
                    format!(
                        ",\n              \"fullDescription\": {{ \"text\": \"{}\" }}",
                        esc(doc)
                    )
                })
                .unwrap_or_default();
            format!("            {{\n              \"id\": \"{id}\"{help}\n            }}")
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let results = report
        .diagnostics
        .iter()
        .map(|d| {
            let mut locations = Vec::new();
            if let Some(t) = &d.task {
                locations.push(format!(
                    "{{ \"logicalLocations\": [ {{ \"name\": \"{}\", \"kind\": \"task\" }} ] }}",
                    esc(t)
                ));
            }
            if let Some(a) = &d.artifact {
                locations.push(format!(
                    "{{ \"logicalLocations\": [ {{ \"name\": \"{}\", \"kind\": \"artifact\" }} ] }}",
                    esc(a)
                ));
            }
            // SARIF has no notes/help slots on results; fold them into the
            // message text the way the text renderer does.
            let mut text = d.message.clone();
            for n in &d.notes {
                text.push_str("\nnote: ");
                text.push_str(n);
            }
            if let Some(h) = &d.help {
                text.push_str("\nhelp: ");
                text.push_str(h);
            }
            format!(
                "        {{\n\
                 \x20         \"ruleId\": \"{}\",\n\
                 \x20         \"level\": \"{}\",\n\
                 \x20         \"message\": {{ \"text\": \"{}\" }},\n\
                 \x20         \"locations\": [ {} ]\n\
                 \x20       }}",
                d.code,
                severity_str(d.severity),
                esc(&text),
                locations.join(", ")
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    format!(
        "{{\n\
         \x20 \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n\
         \x20 \"version\": \"2.1.0\",\n\
         \x20 \"runs\": [\n\
         \x20   {{\n\
         \x20     \"tool\": {{\n\
         \x20       \"driver\": {{\n\
         \x20         \"name\": \"schedflow-lint\",\n\
         \x20         \"rules\": [\n{rules}\n          ]\n\
         \x20       }}\n\
         \x20     }},\n\
         \x20     \"results\": [\n{results}\n      ]\n\
         \x20   }}\n\
         \x20 ]\n\
         }}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::codes;

    fn sample() -> LintReport {
        let mut r = LintReport::new();
        r.push(
            Diagnostic::error(codes::MISSING_COLUMN, "missing column `wait_secs`")
                .at_task("plot-waits")
                .at_artifact("merged-frame")
                .note("`merged-frame` is produced by task `merge-curated`")
                .help("a column named `wait_s` exists — did you mean that?"),
        );
        r.push(Diagnostic::warning(
            codes::DUPLICATED_SUBPLAN,
            "subplan group_by(user) is computed independently by 2 tasks",
        ));
        r
    }

    #[test]
    fn json_has_stable_fields() {
        let json = to_json(&sample());
        assert!(json.contains("\"errors\": 1"));
        assert!(json.contains("\"warnings\": 1"));
        assert!(json.contains("\"code\": \"SF0101\""));
        assert!(json.contains("\"task\": \"plot-waits\""));
        assert!(json.contains("\"artifact\": \"merged-frame\""));
        assert!(json.contains("\"help\":"));
    }

    #[test]
    fn json_of_clean_report_is_empty_array() {
        let json = to_json(&LintReport::new());
        assert!(json.contains("\"diagnostics\": []"));
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut r = LintReport::new();
        r.push(Diagnostic::warning(
            codes::DEAD_COLUMN,
            "a \"quoted\"\nmulti\tline",
        ));
        let json = to_json(&r);
        assert!(json.contains("a \\\"quoted\\\"\\nmulti\\tline"));
    }

    #[test]
    fn sarif_has_required_shape() {
        let sarif = to_sarif(&sample());
        assert!(sarif.contains("\"$schema\""));
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"name\": \"schedflow-lint\""));
        assert!(sarif.contains("\"ruleId\": \"SF0101\""));
        assert!(sarif.contains("\"level\": \"error\""));
        assert!(sarif.contains("\"level\": \"warning\""));
        assert!(sarif.contains("\"kind\": \"task\""));
        // Every distinct code appears once in the rules table.
        assert_eq!(sarif.matches("\"id\": \"SF0101\"").count(), 1);
        assert_eq!(sarif.matches("\"id\": \"SF0801\"").count(), 1);
    }
}
