//! Plan-aware cost & resource analysis (SF08xx).
//!
//! The other lint families reason about *schemas* and *effects*; this pass
//! reasons about *volume*. Tasks that execute a logical plan attach it to
//! the workflow as an opaque payload ([`Workflow::with_plan_payload`]); the
//! pass downcasts each payload back to a [`LazyPlan`], runs the frame
//! crate's cost abstract interpreter ([`schedflow_frame::cost::analyze`])
//! over the optimized tree, and combines the per-task results with the
//! workflow's artifact-lifetime structure:
//!
//! * **SF0801** — the same canonical materializing subplan (group-by, join)
//!   fingerprint appears in two or more tasks: each recomputes it; a shared
//!   upstream artifact would compute it once.
//! * **SF0802** — a produced column (from a `Produces` contract) that no
//!   downstream contract reads: materialized, shipped, dropped unobserved.
//! * **SF0803** — simulating the executor's drop-after-last-consumer
//!   lifetime tracking over the static byte estimates, the peak of resident
//!   artifact bytes exceeds the configured memory budget. An **error** —
//!   only emitted when a budget was explicitly set.
//! * **SF0804** — a join with no equi-key uniqueness on either side: output
//!   cardinality can grow as the product of its inputs.
//! * **SF0805** — a filter the optimizer provably could not push into the
//!   scan even though it only reads scan columns: rows are materialized and
//!   then discarded.
//!
//! Row bounds are symbolic polynomials in the scanned source rows
//! ([`schedflow_dataflow::report::CardPoly`]); the peak computation
//! evaluates them at [`CostOptions::assumed_source_rows`].

use crate::diag::{codes, Diagnostic, LintReport};
use schedflow_dataflow::contract::SchemaEffect;
use schedflow_dataflow::graph::Workflow;
use schedflow_dataflow::report::human_bytes;
use schedflow_dataflow::ArtifactId;
use schedflow_frame::cost::{analyze, CostAnalysis};
use schedflow_frame::LazyPlan;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Knobs for the cost pass.
#[derive(Debug, Clone)]
pub struct CostOptions {
    /// Peak-resident-bytes budget (SF0803 fires only when set).
    pub mem_budget: Option<u64>,
    /// Source-row count the symbolic byte bounds are evaluated at for the
    /// peak computation.
    pub assumed_source_rows: u64,
}

impl Default for CostOptions {
    fn default() -> Self {
        CostOptions {
            mem_budget: None,
            assumed_source_rows: 100_000,
        }
    }
}

/// Run the SF08xx family over a structurally valid workflow.
pub fn check(wf: &Workflow, options: &CostOptions, report: &mut LintReport) {
    // Recover each task's plan and analyze it once.
    let analyses: Vec<(String, CostAnalysis)> = wf
        .task_ids()
        .filter_map(|id| {
            let plan = wf.task_plan_payload(id)?.downcast_ref::<LazyPlan>()?;
            Some((wf.task_name(id).to_owned(), analyze(plan)))
        })
        .collect();

    duplicated_subplans(&analyses, report);
    per_task_plan_lints(&analyses, report);
    dead_columns(wf, report);
    if let Some(budget) = options.mem_budget {
        peak_memory(wf, &analyses, options.assumed_source_rows, budget, report);
    }
}

/// SF0801: the same canonical materializing subplan in ≥ 2 distinct tasks.
fn duplicated_subplans(analyses: &[(String, CostAnalysis)], report: &mut LintReport) {
    // fingerprint → (description, tasks computing it); BTreeMap for
    // deterministic diagnostic order.
    let mut by_print: BTreeMap<u64, (String, BTreeSet<&str>)> = BTreeMap::new();
    for (task, a) in analyses {
        for (print, desc) in &a.expensive_subplans {
            let entry = by_print
                .entry(*print)
                .or_insert_with(|| (desc.clone(), BTreeSet::new()));
            entry.1.insert(task.as_str());
        }
    }
    for (print, (desc, tasks)) in by_print {
        if tasks.len() < 2 {
            continue;
        }
        let list: Vec<&str> = tasks.iter().copied().collect();
        report.push(
            Diagnostic::warning(
                codes::DUPLICATED_SUBPLAN,
                format!(
                    "subplan {desc} is computed independently by {} tasks",
                    tasks.len()
                ),
            )
            .at_task(list[0])
            .note(format!("canonical fingerprint {print:016x}"))
            .note(format!("computed by: {}", list.join(", ")))
            .help("compute it once in an upstream task and share the result artifact"),
        );
    }
}

/// SF0804 + SF0805: per-task findings straight from the plan analysis.
fn per_task_plan_lints(analyses: &[(String, CostAnalysis)], report: &mut LintReport) {
    for (task, a) in analyses {
        for join in &a.unbounded_joins {
            report.push(
                Diagnostic::warning(
                    codes::UNBOUNDED_JOIN,
                    format!("join with unbounded cardinality growth: {join}"),
                )
                .at_task(task)
                .note(format!(
                    "estimated output rows: {} (n = scanned source rows)",
                    a.estimate.rows_hi.render()
                ))
                .help(
                    "restrict one side to unique keys (e.g. group it by the join key) \
                     so the output is linearly bounded",
                ),
            );
        }
        for pred in &a.post_mat_filters {
            report.push(
                Diagnostic::warning(
                    codes::POST_MATERIALIZATION_FILTER,
                    format!("filter `{pred}` runs after materialization"),
                )
                .at_task(task)
                .note(
                    "the predicate only reads scan columns, but a group-by/join/derived \
                     column below it blocks pushdown — rows are materialized, then dropped",
                )
                .help("apply the filter before the materializing operator"),
            );
        }
    }
}

/// SF0802: columns in a `Produces` contract that no consumer contract reads.
///
/// Only fires when the analysis is *complete*: every consumer of the
/// artifact declares a requirement for it. A contract-less consumer could
/// read anything, so the artifact is skipped. Retained artifacts are exempt
/// — the caller inspects them after the run, outside any contract.
fn dead_columns(wf: &Workflow, report: &mut LintReport) {
    // Producer contracts: artifact → (producer task, produced column names).
    let mut produced: BTreeMap<ArtifactId, (String, Vec<String>)> = BTreeMap::new();
    for id in wf.task_ids() {
        let Some(contract) = wf.contract(id) else {
            continue;
        };
        for (art, effect) in &contract.effects {
            if let SchemaEffect::Produces(schema) = effect {
                produced.insert(
                    *art,
                    (
                        wf.task_name(id).to_owned(),
                        schema.names().map(str::to_owned).collect(),
                    ),
                );
            }
        }
    }

    for (art, (producer, columns)) in produced {
        if wf.is_retained(art) {
            continue;
        }
        let consumers: Vec<_> = wf
            .task_ids()
            .filter(|id| wf.task_inputs(*id).contains(&art))
            .collect();
        if consumers.is_empty() {
            continue; // orphanhood is SF0201's finding, not ours
        }
        let mut read: BTreeSet<String> = BTreeSet::new();
        let mut complete = true;
        for c in &consumers {
            let requires = wf.contract(*c).map(|ct| {
                ct.requires
                    .iter()
                    .filter(|(a, _)| *a == art)
                    .flat_map(|(_, schema)| schema.names())
                    .map(|n| n.to_owned())
                    .collect::<Vec<_>>()
            });
            match requires {
                Some(cols) if !cols.is_empty() => read.extend(cols),
                // A consumer with no contract (or no requirement on this
                // artifact) may read any column — the analysis is incomplete.
                _ => complete = false,
            }
        }
        if !complete {
            continue;
        }
        let dead: Vec<&str> = columns
            .iter()
            .filter(|c| !read.contains(*c))
            .map(String::as_str)
            .collect();
        if dead.is_empty() {
            continue;
        }
        let dead_list = dead
            .iter()
            .map(|c| format!("`{c}`"))
            .collect::<Vec<_>>()
            .join(", ");
        report.push(
            Diagnostic::warning(
                codes::DEAD_COLUMN,
                format!(
                    "column{} {dead_list} produced but read by no downstream contract",
                    if dead.len() == 1 { "" } else { "s" }
                ),
            )
            .at_task(&producer)
            .at_artifact(wf.artifact_name(art))
            .note(format!(
                "every consumer of `{}` declares its requirements; none lists {dead_list}",
                wf.artifact_name(art)
            ))
            .help("project the column away in the producing plan to skip materializing it"),
        );
    }
}

/// SF0803: simulate the executor's lifetime tracking over static byte
/// estimates and compare the peak against the budget.
///
/// Tasks run in deterministic topological order `(depth, declaration
/// index)` — the serial schedule. For each task: its value outputs become
/// resident (at the producing plan's byte upper bound evaluated at the
/// assumed source size); afterwards each input's remaining-consumer count
/// drops, and a non-retained artifact with no consumers left is dropped.
/// Parallel schedules can only interleave more liveness, so the serial peak
/// is a *lower* bound on the true worst case — exceeding the budget serially
/// is therefore a definite finding.
fn peak_memory(
    wf: &Workflow,
    analyses: &[(String, CostAnalysis)],
    assumed_rows: u64,
    budget: u64,
    report: &mut LintReport,
) {
    let Ok(depths) = wf.validate() else {
        return; // structural errors were already reported (SF0001)
    };
    let by_task: HashMap<&str, &CostAnalysis> =
        analyses.iter().map(|(t, a)| (t.as_str(), a)).collect();

    // Static byte estimate per artifact: the producing plan's materialized
    // upper bound, split across nothing — each value output of a plan task
    // is charged the full bound (conservative). Plan-less tasks charge 0.
    let mut artifact_bytes = vec![0u64; wf.artifact_count()];
    for id in wf.task_ids() {
        let Some(a) = by_task.get(wf.task_name(id)) else {
            continue;
        };
        let bytes = a.estimate.bytes_hi(assumed_rows);
        for out in wf.task_outputs(id) {
            if wf.file_path(*out).is_none() {
                artifact_bytes[out.index()] = bytes;
            }
        }
    }

    let mut order: Vec<_> = wf.task_ids().collect();
    order.sort_by_key(|t| (depths[t.index()], t.index()));

    let mut refs = wf.consumer_counts();
    let mut resident = 0u64;
    let mut peak = 0u64;
    let mut peak_task: Option<&str> = None;
    for t in order {
        for out in wf.task_outputs(t) {
            resident = resident.saturating_add(artifact_bytes[out.index()]);
        }
        if resident > peak {
            peak = resident;
            peak_task = Some(wf.task_name(t));
        }
        for input in wf.task_inputs(t) {
            let slot = &mut refs[input.index()];
            *slot = slot.saturating_sub(1);
            if *slot == 0 && !wf.is_retained(*input) {
                resident = resident.saturating_sub(artifact_bytes[input.index()]);
            }
        }
    }

    if peak > budget {
        let mut d = Diagnostic::error(
            codes::MEM_BUDGET_EXCEEDED,
            format!(
                "estimated peak resident artifact bytes {} exceed the budget {}",
                human_bytes(peak),
                human_bytes(budget)
            ),
        )
        .note(format!(
            "lifetime simulation at {assumed_rows} assumed source rows; the serial \
             schedule peaks while running the flagged task"
        ))
        .help(
            "raise --mem-budget, narrow the producing plans' projections, or drop \
             retain() on artifacts no caller reads",
        );
        if let Some(t) = peak_task {
            d = d.at_task(t);
        }
        report.push(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedflow_dataflow::contract::{ColType, FrameSchema, TaskContract};
    use schedflow_dataflow::StageKind;
    use schedflow_frame::expr::{col_num, col_str};
    use schedflow_frame::{Agg, JoinKind};
    use std::sync::Arc;

    fn lint(wf: &Workflow, options: &CostOptions) -> LintReport {
        let mut report = LintReport::new();
        check(wf, options, &mut report);
        report
    }

    fn plan_task(wf: &mut Workflow, name: &str, plan: LazyPlan) {
        let input = wf.value::<u32>(&format!("{name}-in"));
        let out = wf.value::<u32>(&format!("{name}-out"));
        wf.provide(input, 0);
        let t = wf.task(
            name,
            StageKind::Static,
            [input.id()],
            [out.id()],
            |_| Ok(()),
        );
        wf.retain(out.id());
        wf.with_plan_payload(t, Arc::new(plan));
    }

    #[test]
    fn duplicated_group_by_across_tasks_is_sf0801() {
        let mut wf = Workflow::new();
        let per_user = || LazyPlan::scan().group_by(&["user"], &[("n", Agg::Count)]);
        plan_task(&mut wf, "stage-a", per_user());
        plan_task(&mut wf, "stage-b", per_user());
        let report = lint(&wf, &CostOptions::default());
        let hits = report.with_code(codes::DUPLICATED_SUBPLAN);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].notes.iter().any(|n| n.contains("stage-a, stage-b")));
    }

    #[test]
    fn same_subplan_twice_in_one_task_is_not_sf0801() {
        // In-task duplication is already eliminated by the executor's
        // common-subplan cache; only cross-task duplication is a finding.
        let mut wf = Workflow::new();
        let per_user = || LazyPlan::scan().group_by(&["user"], &[("n", Agg::Count)]);
        plan_task(
            &mut wf,
            "stage-a",
            per_user().join(per_user(), "user", JoinKind::Inner),
        );
        let report = lint(&wf, &CostOptions::default());
        assert!(report.with_code(codes::DUPLICATED_SUBPLAN).is_empty());
    }

    #[test]
    fn non_key_join_is_sf0804() {
        let mut wf = Workflow::new();
        plan_task(
            &mut wf,
            "fanout",
            LazyPlan::scan().join(LazyPlan::scan(), "user", JoinKind::Inner),
        );
        let report = lint(&wf, &CostOptions::default());
        assert_eq!(report.with_code(codes::UNBOUNDED_JOIN).len(), 1);
    }

    #[test]
    fn late_filter_is_sf0805() {
        let mut wf = Workflow::new();
        plan_task(
            &mut wf,
            "late-filter",
            LazyPlan::scan()
                .group_by(&["user"], &[("n", Agg::Count)])
                .filter(col_str("user").is_not_null()),
        );
        let report = lint(&wf, &CostOptions::default());
        assert_eq!(
            report.with_code(codes::POST_MATERIALIZATION_FILTER).len(),
            1
        );
    }

    #[test]
    fn dead_column_with_complete_consumer_contracts_is_sf0802() {
        let mut wf = Workflow::new();
        let frame = wf.value::<u32>("frame");
        let out = wf.value::<u32>("out");
        let t1 = wf.task("produce", StageKind::Static, [], [frame.id()], |_| Ok(()));
        let t2 = wf.task(
            "consume",
            StageKind::Static,
            [frame.id()],
            [out.id()],
            |_| Ok(()),
        );
        wf.retain(out.id());
        wf.with_contract(
            t1,
            TaskContract::new().produces(
                frame.id(),
                FrameSchema::new()
                    .with("wait_s", ColType::Int)
                    .with("unused", ColType::Str),
            ),
        );
        wf.with_contract(
            t2,
            TaskContract::new()
                .require(frame.id(), FrameSchema::new().with("wait_s", ColType::Int)),
        );
        let report = lint(&wf, &CostOptions::default());
        let hits = report.with_code(codes::DEAD_COLUMN);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("`unused`"));
    }

    #[test]
    fn contractless_consumer_suppresses_sf0802() {
        let mut wf = Workflow::new();
        let frame = wf.value::<u32>("frame");
        let out = wf.value::<u32>("out");
        let t1 = wf.task("produce", StageKind::Static, [], [frame.id()], |_| Ok(()));
        wf.task(
            "consume",
            StageKind::Static,
            [frame.id()],
            [out.id()],
            |_| Ok(()),
        );
        wf.retain(out.id());
        wf.with_contract(
            t1,
            TaskContract::new()
                .produces(frame.id(), FrameSchema::new().with("unused", ColType::Str)),
        );
        assert!(lint(&wf, &CostOptions::default())
            .with_code(codes::DEAD_COLUMN)
            .is_empty());
    }

    #[test]
    fn peak_over_budget_is_sf0803_error() {
        let mut wf = Workflow::new();
        // A full-width scan estimate: n rows × per-row bytes at the assumed
        // source size easily exceeds a 1 KiB budget.
        plan_task(
            &mut wf,
            "wide",
            LazyPlan::scan().filter(col_num("x").is_not_null()),
        );
        let tight = CostOptions {
            mem_budget: Some(1024),
            assumed_source_rows: 100_000,
        };
        let report = lint(&wf, &tight);
        let hits = report.with_code(codes::MEM_BUDGET_EXCEEDED);
        assert_eq!(hits.len(), 1);
        assert!(report.has_errors());

        let roomy = CostOptions {
            mem_budget: Some(u64::MAX),
            assumed_source_rows: 100_000,
        };
        assert!(lint(&wf, &roomy)
            .with_code(codes::MEM_BUDGET_EXCEEDED)
            .is_empty());
    }

    #[test]
    fn no_budget_means_no_sf0803() {
        let mut wf = Workflow::new();
        plan_task(&mut wf, "wide", LazyPlan::scan());
        assert!(lint(&wf, &CostOptions::default()).is_clean());
    }
}
