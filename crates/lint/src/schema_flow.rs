//! Schema dataflow analysis: abstract interpretation of task contracts.
//!
//! Each artifact holds an abstract value — `Unknown`, or `Known(schema)` —
//! and tasks are interpreted in topological order: requirements are checked
//! against the incoming abstract schemas, then the task's declared
//! [`SchemaEffect`]s compute the outgoing ones. Artifacts and tasks without
//! contracts propagate `Unknown`, so analysis is gradual: it never reports a
//! violation it cannot prove from declarations.

use crate::diag::{codes, Diagnostic, LintReport};
use schedflow_dataflow::contract::{FrameSchema, SchemaEffect};
use schedflow_dataflow::graph::{TaskId, Workflow};

/// Abstract schema of one artifact during propagation.
#[derive(Debug, Clone, PartialEq)]
enum AbstractSchema {
    /// Nothing is declared about this artifact.
    Unknown,
    /// The artifact carries a frame with exactly this schema.
    Known(FrameSchema),
}

/// Check contract requirements and propagate schema effects through the DAG.
///
/// Assumes the graph already validated (callers run the structural pass
/// first); on an invalid graph this returns an empty report.
pub fn check(wf: &Workflow, report: &mut LintReport) {
    let depths = match wf.validate() {
        Ok(d) => d,
        Err(_) => return,
    };

    // Deterministic topological order: by depth, ties by declaration index.
    let mut order: Vec<TaskId> = wf.task_ids().collect();
    order.sort_by_key(|t| (depths[t.index()], t.index()));

    let producers = wf.producers();
    let mut state: Vec<AbstractSchema> = wf
        .artifact_ids()
        .map(|id| match wf.declared_schema(id) {
            Some(s) => AbstractSchema::Known(s.clone()),
            None => AbstractSchema::Unknown,
        })
        .collect();

    for tid in order {
        let task = wf.task_name(tid).to_owned();
        let Some(contract) = wf.contract(tid) else {
            continue;
        };

        for (input, required) in &contract.requires {
            let AbstractSchema::Known(actual) = &state[input.index()] else {
                continue; // nothing declared upstream — nothing to prove
            };
            let artifact = wf.artifact_name(*input).to_owned();
            let produced_by = producers.get(input).map(|p| wf.task_name(*p).to_owned());
            for req in required.columns() {
                match actual.get(&req.name) {
                    None => {
                        let mut d = Diagnostic::error(
                            codes::MISSING_COLUMN,
                            format!("missing column `{}` required by task `{task}`", req.name),
                        )
                        .at_task(task.clone())
                        .at_artifact(artifact.clone());
                        if let Some(p) = &produced_by {
                            d = d.note(format!("`{artifact}` is produced by task `{p}`"));
                        }
                        if let Some(near) = nearest(&req.name, actual) {
                            d = d.help(format!(
                                "a column named `{near}` exists upstream — did you mean that?"
                            ));
                        } else {
                            d = d.note(format!(
                                "available columns: {}",
                                actual.names().collect::<Vec<_>>().join(", ")
                            ));
                        }
                        report.push(d);
                    }
                    Some(actual_col) => {
                        if !req.ty.accepts(actual_col.ty) {
                            report.push(
                                Diagnostic::error(
                                    codes::DTYPE_MISMATCH,
                                    format!(
                                        "column `{}` has dtype {} but task `{task}` requires {}",
                                        req.name, actual_col.ty, req.ty
                                    ),
                                )
                                .at_task(task.clone())
                                .at_artifact(artifact.clone()),
                            );
                        }
                        if actual_col.nullable && !req.nullable {
                            let mut d = Diagnostic::warning(
                                codes::NULLABILITY,
                                format!(
                                    "column `{}` may contain nulls but task `{task}` declares \
                                     it non-nullable",
                                    req.name
                                ),
                            )
                            .at_task(task.clone())
                            .at_artifact(artifact.clone())
                            .help(
                                "mark the requirement nullable or filter nulls upstream".to_owned(),
                            );
                            if let Some(p) = &produced_by {
                                d = d.note(format!("`{artifact}` is produced by task `{p}`"));
                            }
                            report.push(d);
                        }
                    }
                }
            }
        }

        for (output, effect) in &contract.effects {
            state[output.index()] = apply_effect(wf, &task, effect, &state, report);
        }
    }
}

/// Compute one output's abstract schema from a [`SchemaEffect`], reporting
/// edits that reference columns the source schema lacks (SF0104).
fn apply_effect(
    wf: &Workflow,
    task: &str,
    effect: &SchemaEffect,
    state: &[AbstractSchema],
    report: &mut LintReport,
) -> AbstractSchema {
    match effect {
        SchemaEffect::Produces(schema) => AbstractSchema::Known(schema.clone()),
        SchemaEffect::Opaque => AbstractSchema::Unknown,
        SchemaEffect::Derives {
            from,
            adds,
            drops,
            renames,
        } => {
            let AbstractSchema::Known(source) = &state[from.index()] else {
                return AbstractSchema::Unknown;
            };
            let mut schema = source.clone();
            let from_name = wf.artifact_name(*from);
            for (old, new) in renames {
                if !schema.rename(old, new) {
                    report.push(
                        Diagnostic::warning(
                            codes::BAD_SCHEMA_EDIT,
                            format!(
                                "task `{task}` renames `{old}` → `{new}` but `{from_name}` \
                                 has no column `{old}`"
                            ),
                        )
                        .at_task(task.to_owned())
                        .at_artifact(from_name.to_owned()),
                    );
                }
            }
            for name in drops {
                if !schema.remove(name) {
                    report.push(
                        Diagnostic::warning(
                            codes::BAD_SCHEMA_EDIT,
                            format!(
                                "task `{task}` drops `{name}` but `{from_name}` has no \
                                 column `{name}`"
                            ),
                        )
                        .at_task(task.to_owned())
                        .at_artifact(from_name.to_owned()),
                    );
                }
            }
            for spec in adds {
                schema.upsert(spec.clone());
            }
            AbstractSchema::Known(schema)
        }
    }
}

/// Nearest column name by edit distance, when close enough to be a likely
/// typo (distance ≤ 2, or ≤ ⅓ of the name length for long names).
fn nearest(wanted: &str, schema: &FrameSchema) -> Option<String> {
    let budget = 2.max(wanted.len() / 3);
    schema
        .names()
        .map(|n| (levenshtein(wanted, n), n))
        .filter(|(d, _)| *d <= budget)
        .min_by_key(|(d, n)| (*d, n.to_owned()))
        .map(|(_, n)| n.to_owned())
}

/// Plain O(len²) Levenshtein distance — column names are short.
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedflow_dataflow::contract::ColType;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("wait_s", "wait_s"), 0);
        assert_eq!(levenshtein("wait_secs", "wait_s"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }

    #[test]
    fn nearest_respects_budget() {
        let s = FrameSchema::new()
            .with("wait_s", ColType::Int)
            .with("state", ColType::Str);
        assert_eq!(nearest("wait_secs", &s).as_deref(), Some("wait_s"));
        assert_eq!(nearest("zzzzzzzz", &s), None);
    }
}
