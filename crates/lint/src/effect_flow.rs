//! Effect dataflow analysis: concurrency safety of artifact reads/writes.
//!
//! Where [`crate::schema_flow`] interprets *what shape* of data flows along
//! each edge, this pass interprets *who touches which storage when*. Each
//! task's effect set — the artifacts it reads and writes — is derived from
//! its declared inputs/outputs; file artifacts are additionally resolved to
//! lexically normalized paths, because two distinct artifact ids naming the
//! same path are the same storage even though dependency inference (which is
//! per-id) treats them as unrelated.
//!
//! Over those effect sets the pass checks a happens-before relation (DAG
//! reachability — the static analogue of the runtime's vector clocks in
//! `schedflow_dataflow::race`):
//!
//! * **SF0501** write-write conflict: two tasks write the same path with no
//!   ordering between them — which write survives depends on scheduling.
//! * **SF0502** read-write race: a task reads a path another task writes,
//!   unordered with the writer — the read may see either version (or a torn
//!   file mid-write).
//! * **SF0503** artifact aliasing (warning): the aliasing itself, reported
//!   once per path group, even when every access happens to be ordered —
//!   the graph is one refactor away from SF0501/SF0502.
//! * **SF0504** lifetime hazard (warning): a value artifact consumed by a
//!   deadline-bearing task. The watchdog resolves a timed-out task while its
//!   body is still running detached; the lifetime tracker then sees the last
//!   consumer resolved and drops the artifact under the zombie's feet. Retain
//!   the artifact or drop the deadline.

use crate::diag::{codes, Diagnostic, LintReport};
use schedflow_dataflow::Workflow;
use std::collections::BTreeMap;
use std::path::{Component, Path, PathBuf};

/// Lexical path normalization: resolve `.` and non-leading `..` without
/// touching the filesystem (the lint must not require paths to exist).
/// Purely textual, so `a/b`, `a/./b`, and `a/x/../b` all collapse to the
/// same key while `a/b` and `/a/b` stay distinct.
pub fn normalize_path(p: &Path) -> PathBuf {
    let mut out = PathBuf::new();
    for comp in p.components() {
        match comp {
            Component::CurDir => {}
            Component::ParentDir => {
                // Pop a normal component when there is one; otherwise keep
                // the `..` (it escapes the visible prefix and stays
                // meaningful as written).
                if matches!(out.components().next_back(), Some(Component::Normal(_))) {
                    out.pop();
                } else {
                    out.push("..");
                }
            }
            other => out.push(other.as_os_str()),
        }
    }
    out
}

/// Transitive happens-before over the task DAG, as bitsets: bit `j` of
/// `reach[i]` is set when task `j` happens before task `i` (i.e. `i`
/// transitively depends on `j`). Computed in topological order with bitset
/// unions — O(tasks² / 64) words.
fn reachability(wf: &Workflow, depths: &[usize]) -> Vec<Vec<u64>> {
    let n = wf.task_count();
    let words = n.div_ceil(64).max(1);
    let deps = wf.dependencies();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (depths[i], i));
    let mut reach = vec![vec![0u64; words]; n];
    for i in order {
        // Dependencies of `i` sort earlier in topological order, so their
        // reach sets are already complete.
        let mut acc = vec![0u64; words];
        for d in &deps[i] {
            let j = d.index();
            for (w, src) in acc.iter_mut().zip(&reach[j]) {
                *w |= *src;
            }
            acc[j / 64] |= 1u64 << (j % 64);
        }
        reach[i] = acc;
    }
    reach
}

/// True when task `j` happens before task `i` per the reachability bitsets.
fn before(reach: &[Vec<u64>], j: usize, i: usize) -> bool {
    reach[i][j / 64] & (1u64 << (j % 64)) != 0
}

/// One access to a storage location (a normalized path group).
#[derive(Clone, Copy)]
struct Access {
    task: usize,
    write: bool,
}

/// Run the effect analysis, appending findings to `report`.
///
/// Assumes the graph already validated (callers run the structural pass
/// first); on an invalid graph this returns without findings.
pub fn check(wf: &Workflow, report: &mut LintReport) {
    let Ok(depths) = wf.validate() else {
        return;
    };
    let reach = reachability(wf, &depths);
    let names = wf.task_names();

    // Group file artifacts by normalized path. BTreeMap keeps path-group
    // iteration deterministic.
    let mut groups: BTreeMap<PathBuf, Vec<usize>> = BTreeMap::new();
    for id in wf.artifact_ids() {
        if let Some(p) = wf.file_path(id) {
            groups
                .entry(normalize_path(p))
                .or_default()
                .push(id.index());
        }
    }

    for (path, ids) in &groups {
        if ids.len() > 1 {
            let id_list: Vec<String> = ids.iter().map(|a| format!("#{a}")).collect();
            report.push(
                Diagnostic::warning(
                    codes::ARTIFACT_ALIASING,
                    format!(
                        "{} artifact declarations alias the same path `{}`",
                        ids.len(),
                        path.display()
                    ),
                )
                .at_artifact(path.display().to_string())
                .note(format!(
                    "aliased artifact ids: {} — dependency inference is per-id, \
                     so accesses through one id are invisible to the others",
                    id_list.join(", ")
                ))
                .help("declare the file once and share the handle"),
            );
        }

        // Every access to this path group, in task declaration order.
        let mut accesses: Vec<Access> = Vec::new();
        for (ti, tid) in wf.task_ids().enumerate() {
            if wf.task_inputs(tid).iter().any(|a| ids.contains(&a.index())) {
                accesses.push(Access {
                    task: ti,
                    write: false,
                });
            }
            if wf
                .task_outputs(tid)
                .iter()
                .any(|a| ids.contains(&a.index()))
            {
                accesses.push(Access {
                    task: ti,
                    write: true,
                });
            }
        }

        // Pairwise happens-before over conflicting accesses (at least one
        // write, different tasks). Quadratic, but path groups are tiny.
        for (i, x) in accesses.iter().enumerate() {
            for y in &accesses[i + 1..] {
                if x.task == y.task || !(x.write || y.write) {
                    continue;
                }
                if before(&reach, x.task, y.task) || before(&reach, y.task, x.task) {
                    continue;
                }
                let (first, second) = if x.task <= y.task { (x, y) } else { (y, x) };
                let (first_name, second_name) = (names[first.task], names[second.task]);
                if x.write && y.write {
                    report.push(
                        Diagnostic::error(
                            codes::WRITE_WRITE_CONFLICT,
                            format!(
                                "tasks `{first_name}` and `{second_name}` both write \
                                 `{}` with no happens-before path between them",
                                path.display()
                            ),
                        )
                        .at_task(first_name)
                        .at_artifact(path.display().to_string())
                        .note(
                            "which write survives depends on thread scheduling — \
                             the run is not replay-stable",
                        )
                        .help(format!(
                            "add a data dependency ordering `{first_name}` and \
                             `{second_name}`, or write distinct paths"
                        )),
                    );
                } else {
                    let (reader, writer) = if x.write {
                        (names[y.task], names[x.task])
                    } else {
                        (names[x.task], names[y.task])
                    };
                    report.push(
                        Diagnostic::error(
                            codes::READ_WRITE_RACE,
                            format!(
                                "task `{reader}` reads `{}` while task `{writer}` \
                                 may be writing it (no ordering between them)",
                                path.display()
                            ),
                        )
                        .at_task(reader)
                        .at_artifact(path.display().to_string())
                        .note(format!(
                            "`{reader}` and `{writer}` access the path through \
                             different artifact ids, so dependency inference \
                             created no edge"
                        ))
                        .help(format!(
                            "make `{reader}` consume the artifact id `{writer}` \
                             writes"
                        )),
                    );
                }
            }
        }
    }

    // SF0504: a deadline-bearing consumer of an unretained value artifact.
    // The watchdog resolves the task at its deadline while the body keeps
    // running detached; drop-after-last-consumer then frees the artifact the
    // zombie body may still read.
    for (ti, tid) in wf.task_ids().enumerate() {
        if wf.task_deadline(tid).is_none() {
            continue;
        }
        let mut seen: Vec<usize> = Vec::new();
        for &a in wf.task_inputs(tid) {
            if wf.file_path(a).is_some() || wf.is_retained(a) || seen.contains(&a.index()) {
                continue;
            }
            seen.push(a.index());
            let artifact = wf.artifact_name(a);
            report.push(
                Diagnostic::warning(
                    codes::LIFETIME_HAZARD,
                    format!(
                        "value artifact `{artifact}` may be dropped while a \
                         timed-out attempt of task `{}` is still reading it",
                        names[ti]
                    ),
                )
                .at_task(names[ti])
                .at_artifact(artifact)
                .note(
                    "a deadline resolves the task while its body runs on \
                     detached; drop-after-last-consumer then frees the \
                     artifact under it",
                )
                .help(format!(
                    "retain `{artifact}` (Workflow::retain) or remove the \
                     per-task deadline"
                )),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedflow_dataflow::StageKind;
    use std::time::Duration;

    #[test]
    fn normalize_collapses_dot_and_parent() {
        assert_eq!(
            normalize_path(Path::new("a/./b/../c")),
            PathBuf::from("a/c")
        );
        assert_eq!(normalize_path(Path::new("./x")), PathBuf::from("x"));
        assert_eq!(normalize_path(Path::new("../x")), PathBuf::from("../x"));
        assert_ne!(
            normalize_path(Path::new("/a/b")),
            normalize_path(Path::new("a/b"))
        );
    }

    #[test]
    fn unordered_aliased_writers_are_a_conflict() {
        let mut wf = Workflow::new();
        let f1 = wf.file("/tmp/schedflow-eff/out.txt");
        let f2 = wf.file("/tmp/schedflow-eff/./out.txt");
        wf.task("writer-a", StageKind::Static, [], [f1.id()], |_| Ok(()));
        wf.task("writer-b", StageKind::Static, [], [f2.id()], |_| Ok(()));
        let mut report = LintReport::new();
        check(&wf, &mut report);
        let conflicts = report.with_code(codes::WRITE_WRITE_CONFLICT);
        assert_eq!(conflicts.len(), 1);
        assert!(conflicts[0].message.contains("writer-a"));
        assert!(conflicts[0].message.contains("writer-b"));
        assert_eq!(report.with_code(codes::ARTIFACT_ALIASING).len(), 1);
    }

    #[test]
    fn ordered_writers_of_aliased_path_are_not_a_conflict() {
        // writer-a → (value edge) → writer-b, both writing the same path via
        // distinct ids: aliasing warning, but no SF0501 (they are ordered).
        let mut wf = Workflow::new();
        let f1 = wf.file("/tmp/schedflow-eff/ordered.txt");
        let f2 = wf.file("/tmp/schedflow-eff/./ordered.txt");
        let link = wf.value::<u32>("link");
        wf.task(
            "writer-a",
            StageKind::Static,
            [],
            [f1.id(), link.id()],
            |_| Ok(()),
        );
        wf.task(
            "writer-b",
            StageKind::Static,
            [link.id()],
            [f2.id()],
            |_| Ok(()),
        );
        let mut report = LintReport::new();
        check(&wf, &mut report);
        assert_eq!(report.with_code(codes::ARTIFACT_ALIASING).len(), 1);
        assert!(report.with_code(codes::WRITE_WRITE_CONFLICT).is_empty());
        assert!(report.with_code(codes::READ_WRITE_RACE).is_empty());
    }

    #[test]
    fn unordered_reader_of_aliased_path_is_a_race() {
        let mut wf = Workflow::new();
        let w = wf.file("/tmp/schedflow-eff/race.txt");
        let r = wf.file("/tmp/schedflow-eff/./race.txt");
        wf.task("writer", StageKind::Static, [], [w.id()], |_| Ok(()));
        wf.task("reader", StageKind::Static, [r.id()], [], |_| Ok(()));
        let mut report = LintReport::new();
        check(&wf, &mut report);
        let races = report.with_code(codes::READ_WRITE_RACE);
        assert_eq!(races.len(), 1);
        assert!(races[0].message.contains("reader"));
        assert!(races[0].message.contains("writer"));
    }

    #[test]
    fn same_id_reader_is_ordered_and_clean() {
        // The ordinary case: reader consumes the id the writer produces, so
        // dependency inference makes the edge and nothing fires.
        let mut wf = Workflow::new();
        let f = wf.file("/tmp/schedflow-eff/clean.txt");
        wf.task("writer", StageKind::Static, [], [f.id()], |_| Ok(()));
        wf.task("reader", StageKind::Static, [f.id()], [], |_| Ok(()));
        let mut report = LintReport::new();
        check(&wf, &mut report);
        assert!(report.is_clean());
    }

    #[test]
    fn deadline_consumer_of_unretained_value_warns() {
        let mut wf = Workflow::new();
        let v = wf.value::<u32>("payload");
        wf.task("producer", StageKind::Static, [], [v.id()], |_| Ok(()));
        let consumer = wf.task("consumer", StageKind::Static, [v.id()], [], |_| Ok(()));
        wf.with_deadline(consumer, Duration::from_secs(1));
        let mut report = LintReport::new();
        check(&wf, &mut report);
        let hazards = report.with_code(codes::LIFETIME_HAZARD);
        assert_eq!(hazards.len(), 1);
        assert!(hazards[0].message.contains("payload"));
        assert!(hazards[0].message.contains("consumer"));
    }

    #[test]
    fn retained_value_is_not_a_lifetime_hazard() {
        let mut wf = Workflow::new();
        let v = wf.value::<u32>("payload");
        wf.task("producer", StageKind::Static, [], [v.id()], |_| Ok(()));
        let consumer = wf.task("consumer", StageKind::Static, [v.id()], [], |_| Ok(()));
        wf.with_deadline(consumer, Duration::from_secs(1));
        wf.retain(v.id());
        let mut report = LintReport::new();
        check(&wf, &mut report);
        assert!(report.with_code(codes::LIFETIME_HAZARD).is_empty());
    }

    #[test]
    fn reachability_is_transitive() {
        let mut wf = Workflow::new();
        let a = wf.value::<u32>("a");
        let b = wf.value::<u32>("b");
        let c = wf.value::<u32>("c");
        wf.task("t0", StageKind::Static, [], [a.id()], |_| Ok(()));
        wf.task("t1", StageKind::Static, [a.id()], [b.id()], |_| Ok(()));
        wf.task("t2", StageKind::Static, [b.id()], [c.id()], |_| Ok(()));
        let depths = match wf.validate() {
            Ok(d) => d,
            Err(e) => panic!("valid graph: {e}"),
        };
        let reach = reachability(&wf, &depths);
        assert!(before(&reach, 0, 2), "t0 happens before t2 transitively");
        assert!(before(&reach, 1, 2));
        assert!(!before(&reach, 2, 0));
    }
}
