//! One fixture per diagnostic code, each asserting the stable code and the
//! golden rendered text, plus a property test tying the static analysis to
//! the runtime: a lint-clean schema chain never fails with a runtime schema
//! error.

use proptest::prelude::*;
use schedflow_dataflow::report::human_bytes;
use schedflow_dataflow::{
    ChaosConfig, RetryOn, RetryPolicy, RunOptions, Runner, StageKind, Workflow,
};
use schedflow_frame::{
    analyze, col_i64, col_num, col_str, lit_i64, Agg, Column, Frame, JoinKind, LazyPlan,
};
use schedflow_lint::{
    codes, lint_run_options, lint_workflow, lint_workflow_with, ColType, CostOptions, FrameSchema,
    SchemaEffect, TaskContract,
};
use std::sync::Arc;
use std::time::Duration;

/// producer ⟶ frame ⟶ consumer with configurable schemas on both ends.
fn chain(produced: FrameSchema, required: FrameSchema) -> Workflow {
    let mut wf = Workflow::new();
    let frame = wf.value::<u32>("frame");
    let out = wf.value::<u32>("out");
    let t1 = wf.task("produce", StageKind::Static, [], [frame.id()], |_| Ok(()));
    let t2 = wf.task(
        "consume",
        StageKind::Static,
        [frame.id()],
        [out.id()],
        |_| Ok(()),
    );
    wf.retain(out.id());
    wf.with_contract(t1, TaskContract::new().produces(frame.id(), produced));
    wf.with_contract(t2, TaskContract::new().require(frame.id(), required));
    wf
}

#[test]
fn sf0001_invalid_graph() {
    let mut wf = Workflow::new();
    let a = wf.value::<u32>("a");
    let b = wf.value::<u32>("b");
    wf.task("x", StageKind::Static, [b.id()], [a.id()], |_| Ok(()));
    wf.task("y", StageKind::Static, [a.id()], [b.id()], |_| Ok(()));
    let report = lint_workflow(&wf);
    let diags = report.with_code(codes::INVALID_GRAPH);
    assert_eq!(diags.len(), 1);
    assert!(report.has_errors());
    let text = diags[0].render();
    assert!(
        text.starts_with("error[SF0001]: invalid workflow graph:"),
        "{text}"
    );
    assert!(text.contains("= note: structural errors block all further analysis"));
}

#[test]
fn sf0101_missing_column_golden() {
    let report = lint_workflow(&chain(
        FrameSchema::new()
            .with("wait_s", ColType::Int)
            .with("state", ColType::Str),
        FrameSchema::new().with("wait_secs", ColType::Int),
    ));
    let diags = report.with_code(codes::MISSING_COLUMN);
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].render(),
        "error[SF0101]: missing column `wait_secs` required by task `consume`\n\
         \x20 --> task `consume`, artifact `frame`\n\
         \x20 = note: `frame` is produced by task `produce`\n\
         \x20 = help: a column named `wait_s` exists upstream — did you mean that?\n"
    );
}

#[test]
fn sf0102_dtype_mismatch_golden() {
    let report = lint_workflow(&chain(
        FrameSchema::new().with("wait_s", ColType::Int),
        FrameSchema::new().with("wait_s", ColType::Str),
    ));
    let diags = report.with_code(codes::DTYPE_MISMATCH);
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].render(),
        "error[SF0102]: column `wait_s` has dtype int but task `consume` requires str\n\
         \x20 --> task `consume`, artifact `frame`\n"
    );
}

#[test]
fn sf0103_nullability_golden() {
    let report = lint_workflow(&chain(
        FrameSchema::new().with_nullable("wait_s", ColType::Int),
        FrameSchema::new().with("wait_s", ColType::Int),
    ));
    let diags = report.with_code(codes::NULLABILITY);
    assert_eq!(diags.len(), 1);
    // A warning, not an error: the run still proceeds under `--deny`-less
    // gating.
    assert!(!report.has_errors());
    assert_eq!(
        diags[0].render(),
        "warning[SF0103]: column `wait_s` may contain nulls but task `consume` declares \
         it non-nullable\n\
         \x20 --> task `consume`, artifact `frame`\n\
         \x20 = note: `frame` is produced by task `produce`\n\
         \x20 = help: mark the requirement nullable or filter nulls upstream\n"
    );
}

#[test]
fn sf0104_bad_schema_edit_golden() {
    let mut wf = Workflow::new();
    let src = wf.value::<u32>("src");
    let derived = wf.value::<u32>("derived");
    let t1 = wf.task("make", StageKind::Static, [], [src.id()], |_| Ok(()));
    let t2 = wf.task(
        "derive",
        StageKind::Static,
        [src.id()],
        [derived.id()],
        |_| Ok(()),
    );
    wf.retain(derived.id());
    wf.with_contract(
        t1,
        TaskContract::new().produces(src.id(), FrameSchema::new().with("a", ColType::Int)),
    );
    wf.with_contract(
        t2,
        TaskContract::new().effect(
            derived.id(),
            SchemaEffect::Derives {
                from: src.id(),
                adds: vec![],
                drops: vec!["ghost".into()],
                renames: vec![],
            },
        ),
    );
    let report = lint_workflow(&wf);
    let diags = report.with_code(codes::BAD_SCHEMA_EDIT);
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].render(),
        "warning[SF0104]: task `derive` drops `ghost` but `src` has no column `ghost`\n\
         \x20 --> task `derive`, artifact `src`\n"
    );
}

#[test]
fn sf0201_orphan_artifact_golden() {
    let mut wf = Workflow::new();
    let wasted = wf.value::<u32>("wasted");
    wf.task("produce", StageKind::Static, [], [wasted.id()], |_| Ok(()));
    let report = lint_workflow(&wf);
    let diags = report.with_code(codes::ORPHAN_ARTIFACT);
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].render(),
        "warning[SF0201]: value artifact `wasted` is produced but never consumed nor retained\n\
         \x20 --> task `produce`, artifact `wasted`\n\
         \x20 = help: consume it, `retain()` it, or stop producing it\n"
    );
}

#[test]
fn sf0202_dead_task_golden() {
    // t1 ⟶ v ⟶ t2 ⟶ w, with w unobservable: both tasks are dead (and w is
    // additionally an orphan).
    let mut wf = Workflow::new();
    let v = wf.value::<u32>("v");
    let w = wf.value::<u32>("w");
    wf.task("t1", StageKind::Static, [], [v.id()], |_| Ok(()));
    wf.task("t2", StageKind::Static, [v.id()], [w.id()], |_| Ok(()));
    let report = lint_workflow(&wf);
    let diags = report.with_code(codes::DEAD_TASK);
    assert_eq!(diags.len(), 2);
    assert_eq!(
        diags[0].render(),
        "warning[SF0202]: task `t1` is unreachable from any observable output\n\
         \x20 --> task `t1`\n\
         \x20 = note: no file output, retained value, or side-effecting sink depends on it\n\
         \x20 = help: retain one of its outputs, consume them, or remove the task\n"
    );
    // Retaining the final artifact revives the whole chain.
    let mut wf = Workflow::new();
    let v = wf.value::<u32>("v");
    let w = wf.value::<u32>("w");
    wf.task("t1", StageKind::Static, [], [v.id()], |_| Ok(()));
    wf.task("t2", StageKind::Static, [v.id()], [w.id()], |_| Ok(()));
    wf.retain(w.id());
    assert!(lint_workflow(&wf).is_clean());
}

#[test]
fn sf0301_backoff_exceeds_deadline_golden() {
    let mut wf = Workflow::new();
    let out = wf.value::<u32>("out");
    let t = wf.task("slow", StageKind::Static, [], [out.id()], |_| Ok(()));
    wf.retain(out.id());
    wf.with_retry(
        t,
        RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 100,
            max_delay_ms: 250,
            jitter: 0.5,
            retry_on: RetryOn::Transient,
        },
    );
    wf.with_deadline(t, Duration::from_millis(500));
    let report = lint_workflow(&wf);
    let diags = report.with_code(codes::BACKOFF_EXCEEDS_DEADLINE);
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].render(),
        "warning[SF0301]: task `slow`: worst-case retry backoff (825 ms) meets or exceeds \
         the 500 ms deadline\n\
         \x20 --> task `slow`\n\
         \x20 = note: later attempts can never start before the watchdog fires\n\
         \x20 = help: shorten the backoff, raise the deadline, or lower `max_attempts`\n"
    );
}

#[test]
fn sf0302_zero_attempts_golden() {
    let mut wf = Workflow::new();
    let out = wf.value::<u32>("out");
    let t = wf.task("never", StageKind::Static, [], [out.id()], |_| Ok(()));
    wf.retain(out.id());
    wf.with_retry(
        t,
        RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::none()
        },
    );
    let report = lint_workflow(&wf);
    let diags = report.with_code(codes::ZERO_ATTEMPTS);
    assert_eq!(diags.len(), 1);
    assert!(report.has_errors());
    assert_eq!(
        diags[0].render(),
        "error[SF0302]: task `never` declares a retry policy with zero attempts\n\
         \x20 --> task `never`\n\
         \x20 = note: `max_attempts` counts the first attempt; 0 means the task never runs\n\
         \x20 = help: use `max_attempts: 1` to disable retries\n"
    );
}

#[test]
fn sf0501_write_write_conflict_golden() {
    let mut wf = Workflow::new();
    let f1 = wf.file("/tmp/schedflow-fix/out.txt");
    let f2 = wf.file("/tmp/schedflow-fix/./out.txt");
    wf.task("writer-a", StageKind::Static, [], [f1.id()], |_| Ok(()));
    wf.task("writer-b", StageKind::Static, [], [f2.id()], |_| Ok(()));
    let report = lint_workflow(&wf);
    assert!(report.has_errors());
    let diags = report.with_code(codes::WRITE_WRITE_CONFLICT);
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].render(),
        "error[SF0501]: tasks `writer-a` and `writer-b` both write \
         `/tmp/schedflow-fix/out.txt` with no happens-before path between them\n\
         \x20 --> task `writer-a`, artifact `/tmp/schedflow-fix/out.txt`\n\
         \x20 = note: which write survives depends on thread scheduling — the run \
         is not replay-stable\n\
         \x20 = help: add a data dependency ordering `writer-a` and `writer-b`, \
         or write distinct paths\n"
    );
}

#[test]
fn sf0502_read_write_race_golden() {
    let mut wf = Workflow::new();
    let w = wf.file("/tmp/schedflow-fix/race.txt");
    let r = wf.file("/tmp/schedflow-fix/./race.txt");
    wf.task("writer", StageKind::Static, [], [w.id()], |_| Ok(()));
    wf.task("reader", StageKind::Static, [r.id()], [], |_| Ok(()));
    let report = lint_workflow(&wf);
    assert!(report.has_errors());
    let diags = report.with_code(codes::READ_WRITE_RACE);
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].render(),
        "error[SF0502]: task `reader` reads `/tmp/schedflow-fix/race.txt` while \
         task `writer` may be writing it (no ordering between them)\n\
         \x20 --> task `reader`, artifact `/tmp/schedflow-fix/race.txt`\n\
         \x20 = note: `reader` and `writer` access the path through different \
         artifact ids, so dependency inference created no edge\n\
         \x20 = help: make `reader` consume the artifact id `writer` writes\n"
    );
}

#[test]
fn sf0503_artifact_aliasing_golden() {
    // Ordered via a value edge, so the aliasing itself is the only finding:
    // the graph is one refactor away from SF0501/SF0502.
    let mut wf = Workflow::new();
    let f1 = wf.file("/tmp/schedflow-fix/ordered.txt");
    let f2 = wf.file("/tmp/schedflow-fix/./ordered.txt");
    let link = wf.value::<u32>("link");
    wf.task(
        "writer-a",
        StageKind::Static,
        [],
        [f1.id(), link.id()],
        |_| Ok(()),
    );
    wf.task(
        "writer-b",
        StageKind::Static,
        [link.id()],
        [f2.id()],
        |_| Ok(()),
    );
    let report = lint_workflow(&wf);
    assert!(!report.has_errors(), "{}", report.render());
    let diags = report.with_code(codes::ARTIFACT_ALIASING);
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].render(),
        "warning[SF0503]: 2 artifact declarations alias the same path \
         `/tmp/schedflow-fix/ordered.txt`\n\
         \x20 --> artifact `/tmp/schedflow-fix/ordered.txt`\n\
         \x20 = note: aliased artifact ids: #0, #1 — dependency inference is \
         per-id, so accesses through one id are invisible to the others\n\
         \x20 = help: declare the file once and share the handle\n"
    );
}

#[test]
fn sf0504_lifetime_hazard_golden() {
    let mut wf = Workflow::new();
    let v = wf.value::<u32>("payload");
    wf.task("producer", StageKind::Static, [], [v.id()], |_| Ok(()));
    let consumer = wf.task("consumer", StageKind::Static, [v.id()], [], |_| Ok(()));
    wf.with_deadline(consumer, Duration::from_secs(1));
    let report = lint_workflow(&wf);
    let diags = report.with_code(codes::LIFETIME_HAZARD);
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].render(),
        "warning[SF0504]: value artifact `payload` may be dropped while a \
         timed-out attempt of task `consumer` is still reading it\n\
         \x20 --> task `consumer`, artifact `payload`\n\
         \x20 = note: a deadline resolves the task while its body runs on \
         detached; drop-after-last-consumer then frees the artifact under it\n\
         \x20 = help: retain `payload` (Workflow::retain) or remove the \
         per-task deadline\n"
    );
}

/// The acceptance scenario: a seeded two-unordered-writers workflow is
/// rejected statically — SF0501 names both tasks, and because the gate
/// refuses execution on lint errors, zero task bodies ever run.
#[test]
fn sf0501_gate_rejects_unordered_writers_before_any_task_runs() {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let executed = Arc::new(AtomicUsize::new(0));
    let mut wf = Workflow::new();
    let f1 = wf.file("/tmp/schedflow-fix/gate.txt");
    let f2 = wf.file("/tmp/schedflow-fix/./gate.txt");
    for (name, f) in [("writer-a", f1), ("writer-b", f2)] {
        let executed = Arc::clone(&executed);
        wf.task(name, StageKind::Static, [], [f.id()], move |_| {
            executed.fetch_add(1, Ordering::SeqCst);
            Ok(())
        });
    }

    let report = lint_workflow(&wf);
    let conflicts = report.with_code(codes::WRITE_WRITE_CONFLICT);
    assert_eq!(conflicts.len(), 1, "{}", report.render());
    assert!(conflicts[0].message.contains("`writer-a`"));
    assert!(conflicts[0].message.contains("`writer-b`"));
    assert!(report.has_errors());

    // The deny gate (`schedflow run` default): errors refuse execution.
    if !report.has_errors() {
        let runner = Runner::new(wf).expect("structurally valid");
        runner.run(&RunOptions::with_threads(2));
    }
    assert_eq!(executed.load(Ordering::SeqCst), 0, "zero tasks executed");
}

#[test]
fn sf0401_unseeded_chaos_golden() {
    let options = RunOptions {
        chaos: Some(ChaosConfig::default()),
        ..RunOptions::default()
    };
    let report = lint_run_options(&options);
    let diags = report.with_code(codes::UNSEEDED_CHAOS);
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].render(),
        "warning[SF0401]: chaos injection is enabled without an explicit seed (seed = 0)\n\
         \x20 = note: fault schedules are a pure function of the seed\n\
         \x20 = help: set a non-zero seed so failures replay deterministically\n"
    );
}

/// A task that declares it executes `plan`: the plan rides on the workflow
/// as the opaque payload the SF08xx cost pass downcasts back to a
/// [`LazyPlan`].
fn plan_task(wf: &mut Workflow, name: &str, plan: LazyPlan) {
    let input = wf.value::<u32>(&format!("{name}-in"));
    let out = wf.value::<u32>(&format!("{name}-out"));
    wf.provide(input, 0);
    let t = wf.task(
        name,
        StageKind::Static,
        [input.id()],
        [out.id()],
        |_| Ok(()),
    );
    wf.retain(out.id());
    wf.with_plan_payload(t, Arc::new(plan));
}

#[test]
fn sf0801_duplicated_subplan_golden() {
    let mut wf = Workflow::new();
    let per_user = || LazyPlan::scan().group_by(&["user"], &[("n", Agg::Count)]);
    plan_task(&mut wf, "stage-a", per_user());
    plan_task(&mut wf, "stage-b", per_user());
    let report = lint_workflow(&wf);
    assert!(!report.has_errors(), "{}", report.render());
    let diags = report.with_code(codes::DUPLICATED_SUBPLAN);
    assert_eq!(diags.len(), 1, "{}", report.render());
    let text = diags[0].render();
    assert!(
        text.starts_with(
            "warning[SF0801]: subplan group_by(user) -> [n] is computed \
             independently by 2 tasks\n\
             \x20 --> task `stage-a`\n"
        ),
        "{text}"
    );
    // The canonical fingerprint is stable but opaque; pin the shape, not
    // the hex digits.
    assert!(text.contains("= note: canonical fingerprint "), "{text}");
    assert!(
        text.contains("= note: computed by: stage-a, stage-b\n"),
        "{text}"
    );
    assert!(
        text.ends_with(
            "= help: compute it once in an upstream task and share the result artifact\n"
        ),
        "{text}"
    );
}

#[test]
fn sf0802_dead_column_golden() {
    let report = lint_workflow(&chain(
        FrameSchema::new()
            .with("wait_s", ColType::Int)
            .with("unused", ColType::Str),
        FrameSchema::new().with("wait_s", ColType::Int),
    ));
    let diags = report.with_code(codes::DEAD_COLUMN);
    assert_eq!(diags.len(), 1, "{}", report.render());
    assert!(!report.has_errors());
    assert_eq!(
        diags[0].render(),
        "warning[SF0802]: column `unused` produced but read by no downstream contract\n\
         \x20 --> task `produce`, artifact `frame`\n\
         \x20 = note: every consumer of `frame` declares its requirements; none lists \
         `unused`\n\
         \x20 = help: project the column away in the producing plan to skip \
         materializing it\n"
    );
}

#[test]
fn sf0803_mem_budget_exceeded_golden() {
    let plan = LazyPlan::scan().filter(col_num("x").is_not_null());
    // The expected peak is the plan's own static byte bound at the default
    // assumed source size — computed here rather than hardcoded so the
    // column-width model can evolve without breaking the fixture.
    let peak = analyze(&plan).estimate.bytes_hi(100_000);
    let mut wf = Workflow::new();
    plan_task(&mut wf, "wide", plan);
    let options = CostOptions {
        mem_budget: Some(1024),
        assumed_source_rows: 100_000,
    };
    let report = lint_workflow_with(&wf, &options);
    let diags = report.with_code(codes::MEM_BUDGET_EXCEEDED);
    assert_eq!(diags.len(), 1, "{}", report.render());
    assert!(report.has_errors());
    assert_eq!(
        diags[0].render(),
        format!(
            "error[SF0803]: estimated peak resident artifact bytes {} exceed the \
             budget 1.0 KiB\n\
             \x20 --> task `wide`\n\
             \x20 = note: lifetime simulation at 100000 assumed source rows; the serial \
             schedule peaks while running the flagged task\n\
             \x20 = help: raise --mem-budget, narrow the producing plans' projections, \
             or drop retain() on artifacts no caller reads\n",
            human_bytes(peak)
        )
    );
}

#[test]
fn sf0804_unbounded_join_golden() {
    let mut wf = Workflow::new();
    plan_task(
        &mut wf,
        "fanout",
        LazyPlan::scan().join(LazyPlan::scan(), "user", JoinKind::Inner),
    );
    let report = lint_workflow(&wf);
    let diags = report.with_code(codes::UNBOUNDED_JOIN);
    assert_eq!(diags.len(), 1, "{}", report.render());
    assert!(!report.has_errors());
    assert_eq!(
        diags[0].render(),
        "warning[SF0804]: join with unbounded cardinality growth: join on `user`: \
         neither side is unique on the key (bound n × n)\n\
         \x20 --> task `fanout`\n\
         \x20 = note: estimated output rows: n² (n = scanned source rows)\n\
         \x20 = help: restrict one side to unique keys (e.g. group it by the join key) \
         so the output is linearly bounded\n"
    );
}

#[test]
fn sf0805_post_materialization_filter_golden() {
    let mut wf = Workflow::new();
    plan_task(
        &mut wf,
        "late-filter",
        LazyPlan::scan()
            .group_by(&["user"], &[("n", Agg::Count)])
            .filter(col_str("user").is_not_null()),
    );
    let report = lint_workflow(&wf);
    let diags = report.with_code(codes::POST_MATERIALIZATION_FILTER);
    assert_eq!(diags.len(), 1, "{}", report.render());
    assert!(!report.has_errors());
    assert_eq!(
        diags[0].render(),
        "warning[SF0805]: filter `col(user:str).is_not_null()` runs after \
         materialization\n\
         \x20 --> task `late-filter`\n\
         \x20 = note: the predicate only reads scan columns, but a group-by/join/derived \
         column below it blocks pushdown — rows are materialized, then dropped\n\
         \x20 = help: apply the filter before the materializing operator\n"
    );
}

/// Columns the property-test pipelines draw from.
const POOL: [&str; 5] = ["wait_s", "state", "nnodes", "elapsed_s", "user"];

/// Build an executable two-task pipeline: the producer materializes a real
/// [`Frame`] with `produced` columns (and a matching contract); the consumer
/// declares it requires `required` and at runtime actually reads those
/// columns, failing like a real analytics stage would on a missing one.
fn executable_chain(produced: Vec<&'static str>, required: Vec<&'static str>) -> Workflow {
    let mut wf = Workflow::new();
    let frame = wf.value::<Frame>("frame");
    let out = wf.value::<usize>("out");
    let produced_for_body = produced.clone();
    let t1 = wf.task("produce", StageKind::Static, [], [frame.id()], move |ctx| {
        let mut f = Frame::new();
        for name in &produced_for_body {
            f = f.with(name, Column::from_i64(vec![1, 2, 3]));
        }
        ctx.put(frame, f)
    });
    let required_for_body = required.clone();
    let t2 = wf.task(
        "consume",
        StageKind::Static,
        [frame.id()],
        [out.id()],
        move |ctx| {
            let f = ctx.get(frame)?;
            let mut rows = 0;
            for name in &required_for_body {
                rows += f.column(name).map_err(|e| e.to_string())?.len();
            }
            ctx.put(out, rows)
        },
    );
    wf.retain(out.id());
    let mut produced_schema = FrameSchema::new();
    for name in &produced {
        produced_schema = produced_schema.with(*name, ColType::Int);
    }
    let mut required_schema = FrameSchema::new();
    for name in &required {
        required_schema = required_schema.with(*name, ColType::Int);
    }
    wf.with_contract(
        t1,
        TaskContract::new().produces(frame.id(), produced_schema),
    );
    wf.with_contract(t2, TaskContract::new().require(frame.id(), required_schema));
    wf
}

/// The subset of [`POOL`] a bitmask selects.
fn subset(mask: usize) -> Vec<&'static str> {
    POOL.iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, name)| *name)
        .collect()
}

proptest! {
    /// The gate's soundness contract: a lint-clean pipeline never fails at
    /// runtime with a schema error — and, on this fixture family, a pipeline
    /// the linter rejects really would have failed had it been allowed to
    /// run.
    #[test]
    fn lint_clean_iff_no_runtime_schema_error(
        produced_mask in 0usize..32,
        required_mask in 0usize..32,
    ) {
        let produced = subset(produced_mask);
        let required = subset(required_mask);
        let wf = executable_chain(produced.clone(), required.clone());
        let report = lint_workflow(&wf);
        let expect_clean = !report.has_errors();
        prop_assert_eq!(
            expect_clean,
            required.iter().all(|r| produced.contains(r)),
            "{}",
            report.render()
        );

        let runner = Runner::new(wf).expect("chain graph is structurally valid");
        let run = runner.run(&RunOptions::with_threads(2));
        prop_assert_eq!(run.is_success(), expect_clean);
    }
}

/// The lint-clean single-source plan family the soundness property draws
/// from — the same shapes the default pipeline's stages use (bare scans,
/// pushed filters, group-bys, sort+head, projections), none of which carry
/// SF08xx evidence.
fn arb_clean_plan() -> impl Strategy<Value = LazyPlan> {
    prop_oneof![
        Just(LazyPlan::scan()),
        (0i64..100).prop_map(|k| LazyPlan::scan().filter(col_i64("wait_s").gt(lit_i64(k)))),
        Just(LazyPlan::scan().group_by(&["user"], &[("n", Agg::Count)])),
        (0i64..100).prop_map(|k| {
            LazyPlan::scan()
                .filter(col_i64("wait_s").le(lit_i64(k)))
                .group_by(
                    &["user"],
                    &[("jobs", Agg::Count), ("total", Agg::Sum("wait_s".into()))],
                )
        }),
        (0usize..40).prop_map(|k| LazyPlan::scan().sort("wait_s", true).head(k)),
        Just(LazyPlan::scan().project(&[col_str("user"), col_i64("wait_s")])),
    ]
}

proptest! {
    /// SF08xx estimate soundness, the static half of the runtime cross-check
    /// `schedflow run` performs per stage: for arbitrary chunked frames and
    /// any lint-clean plan shape, the row count the executed plan actually
    /// produces lies inside the statically predicted interval evaluated at
    /// the scanned source height.
    #[test]
    fn estimate_interval_contains_executed_rows(
        chunks in proptest::collection::vec(
            proptest::collection::vec((0usize..4, 0i64..100), 0..30),
            1..4,
        ),
        plan in arb_clean_plan(),
    ) {
        const USERS: [&str; 4] = ["ada", "bob", "cyd", "dee"];
        let parts: Vec<Frame> = chunks
            .iter()
            .map(|rows| {
                Frame::new()
                    .with(
                        "user",
                        Column::from_str(
                            rows.iter().map(|(u, _)| USERS[*u].to_owned()).collect(),
                        ),
                    )
                    .with(
                        "wait_s",
                        Column::from_i64(rows.iter().map(|(_, w)| *w).collect()),
                    )
            })
            .collect();
        let frame = Frame::vstack(&parts).expect("chunks share a schema");

        let analysis = analyze(&plan);
        prop_assert!(analysis.unbounded_joins.is_empty());
        prop_assert!(analysis.post_mat_filters.is_empty());

        let out = plan.execute(&frame).expect("plan family is executable");
        let n = frame.height() as u64;
        let (lo, hi) = analysis.estimate.rows_interval(n);
        prop_assert!(
            analysis.estimate.contains_rows(n, out.height() as u64),
            "{} rows from {} source rows escape the predicted interval [{}, {}]",
            out.height(),
            n,
            lo,
            hi
        );
    }
}
