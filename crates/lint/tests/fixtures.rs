//! One fixture per diagnostic code, each asserting the stable code and the
//! golden rendered text, plus a property test tying the static analysis to
//! the runtime: a lint-clean schema chain never fails with a runtime schema
//! error.

use proptest::prelude::*;
use schedflow_dataflow::{
    ChaosConfig, RetryOn, RetryPolicy, RunOptions, Runner, StageKind, Workflow,
};
use schedflow_frame::{Column, Frame};
use schedflow_lint::{
    codes, lint_run_options, lint_workflow, ColType, FrameSchema, SchemaEffect, TaskContract,
};
use std::time::Duration;

/// producer ⟶ frame ⟶ consumer with configurable schemas on both ends.
fn chain(produced: FrameSchema, required: FrameSchema) -> Workflow {
    let mut wf = Workflow::new();
    let frame = wf.value::<u32>("frame");
    let out = wf.value::<u32>("out");
    let t1 = wf.task("produce", StageKind::Static, [], [frame.id()], |_| Ok(()));
    let t2 = wf.task(
        "consume",
        StageKind::Static,
        [frame.id()],
        [out.id()],
        |_| Ok(()),
    );
    wf.retain(out.id());
    wf.with_contract(t1, TaskContract::new().produces(frame.id(), produced));
    wf.with_contract(t2, TaskContract::new().require(frame.id(), required));
    wf
}

#[test]
fn sf0001_invalid_graph() {
    let mut wf = Workflow::new();
    let a = wf.value::<u32>("a");
    let b = wf.value::<u32>("b");
    wf.task("x", StageKind::Static, [b.id()], [a.id()], |_| Ok(()));
    wf.task("y", StageKind::Static, [a.id()], [b.id()], |_| Ok(()));
    let report = lint_workflow(&wf);
    let diags = report.with_code(codes::INVALID_GRAPH);
    assert_eq!(diags.len(), 1);
    assert!(report.has_errors());
    let text = diags[0].render();
    assert!(
        text.starts_with("error[SF0001]: invalid workflow graph:"),
        "{text}"
    );
    assert!(text.contains("= note: structural errors block all further analysis"));
}

#[test]
fn sf0101_missing_column_golden() {
    let report = lint_workflow(&chain(
        FrameSchema::new()
            .with("wait_s", ColType::Int)
            .with("state", ColType::Str),
        FrameSchema::new().with("wait_secs", ColType::Int),
    ));
    let diags = report.with_code(codes::MISSING_COLUMN);
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].render(),
        "error[SF0101]: missing column `wait_secs` required by task `consume`\n\
         \x20 --> task `consume`, artifact `frame`\n\
         \x20 = note: `frame` is produced by task `produce`\n\
         \x20 = help: a column named `wait_s` exists upstream — did you mean that?\n"
    );
}

#[test]
fn sf0102_dtype_mismatch_golden() {
    let report = lint_workflow(&chain(
        FrameSchema::new().with("wait_s", ColType::Int),
        FrameSchema::new().with("wait_s", ColType::Str),
    ));
    let diags = report.with_code(codes::DTYPE_MISMATCH);
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].render(),
        "error[SF0102]: column `wait_s` has dtype int but task `consume` requires str\n\
         \x20 --> task `consume`, artifact `frame`\n"
    );
}

#[test]
fn sf0103_nullability_golden() {
    let report = lint_workflow(&chain(
        FrameSchema::new().with_nullable("wait_s", ColType::Int),
        FrameSchema::new().with("wait_s", ColType::Int),
    ));
    let diags = report.with_code(codes::NULLABILITY);
    assert_eq!(diags.len(), 1);
    // A warning, not an error: the run still proceeds under `--deny`-less
    // gating.
    assert!(!report.has_errors());
    assert_eq!(
        diags[0].render(),
        "warning[SF0103]: column `wait_s` may contain nulls but task `consume` declares \
         it non-nullable\n\
         \x20 --> task `consume`, artifact `frame`\n\
         \x20 = note: `frame` is produced by task `produce`\n\
         \x20 = help: mark the requirement nullable or filter nulls upstream\n"
    );
}

#[test]
fn sf0104_bad_schema_edit_golden() {
    let mut wf = Workflow::new();
    let src = wf.value::<u32>("src");
    let derived = wf.value::<u32>("derived");
    let t1 = wf.task("make", StageKind::Static, [], [src.id()], |_| Ok(()));
    let t2 = wf.task(
        "derive",
        StageKind::Static,
        [src.id()],
        [derived.id()],
        |_| Ok(()),
    );
    wf.retain(derived.id());
    wf.with_contract(
        t1,
        TaskContract::new().produces(src.id(), FrameSchema::new().with("a", ColType::Int)),
    );
    wf.with_contract(
        t2,
        TaskContract::new().effect(
            derived.id(),
            SchemaEffect::Derives {
                from: src.id(),
                adds: vec![],
                drops: vec!["ghost".into()],
                renames: vec![],
            },
        ),
    );
    let report = lint_workflow(&wf);
    let diags = report.with_code(codes::BAD_SCHEMA_EDIT);
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].render(),
        "warning[SF0104]: task `derive` drops `ghost` but `src` has no column `ghost`\n\
         \x20 --> task `derive`, artifact `src`\n"
    );
}

#[test]
fn sf0201_orphan_artifact_golden() {
    let mut wf = Workflow::new();
    let wasted = wf.value::<u32>("wasted");
    wf.task("produce", StageKind::Static, [], [wasted.id()], |_| Ok(()));
    let report = lint_workflow(&wf);
    let diags = report.with_code(codes::ORPHAN_ARTIFACT);
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].render(),
        "warning[SF0201]: value artifact `wasted` is produced but never consumed nor retained\n\
         \x20 --> task `produce`, artifact `wasted`\n\
         \x20 = help: consume it, `retain()` it, or stop producing it\n"
    );
}

#[test]
fn sf0202_dead_task_golden() {
    // t1 ⟶ v ⟶ t2 ⟶ w, with w unobservable: both tasks are dead (and w is
    // additionally an orphan).
    let mut wf = Workflow::new();
    let v = wf.value::<u32>("v");
    let w = wf.value::<u32>("w");
    wf.task("t1", StageKind::Static, [], [v.id()], |_| Ok(()));
    wf.task("t2", StageKind::Static, [v.id()], [w.id()], |_| Ok(()));
    let report = lint_workflow(&wf);
    let diags = report.with_code(codes::DEAD_TASK);
    assert_eq!(diags.len(), 2);
    assert_eq!(
        diags[0].render(),
        "warning[SF0202]: task `t1` is unreachable from any observable output\n\
         \x20 --> task `t1`\n\
         \x20 = note: no file output, retained value, or side-effecting sink depends on it\n\
         \x20 = help: retain one of its outputs, consume them, or remove the task\n"
    );
    // Retaining the final artifact revives the whole chain.
    let mut wf = Workflow::new();
    let v = wf.value::<u32>("v");
    let w = wf.value::<u32>("w");
    wf.task("t1", StageKind::Static, [], [v.id()], |_| Ok(()));
    wf.task("t2", StageKind::Static, [v.id()], [w.id()], |_| Ok(()));
    wf.retain(w.id());
    assert!(lint_workflow(&wf).is_clean());
}

#[test]
fn sf0301_backoff_exceeds_deadline_golden() {
    let mut wf = Workflow::new();
    let out = wf.value::<u32>("out");
    let t = wf.task("slow", StageKind::Static, [], [out.id()], |_| Ok(()));
    wf.retain(out.id());
    wf.with_retry(
        t,
        RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 100,
            max_delay_ms: 250,
            jitter: 0.5,
            retry_on: RetryOn::Transient,
        },
    );
    wf.with_deadline(t, Duration::from_millis(500));
    let report = lint_workflow(&wf);
    let diags = report.with_code(codes::BACKOFF_EXCEEDS_DEADLINE);
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].render(),
        "warning[SF0301]: task `slow`: worst-case retry backoff (825 ms) meets or exceeds \
         the 500 ms deadline\n\
         \x20 --> task `slow`\n\
         \x20 = note: later attempts can never start before the watchdog fires\n\
         \x20 = help: shorten the backoff, raise the deadline, or lower `max_attempts`\n"
    );
}

#[test]
fn sf0302_zero_attempts_golden() {
    let mut wf = Workflow::new();
    let out = wf.value::<u32>("out");
    let t = wf.task("never", StageKind::Static, [], [out.id()], |_| Ok(()));
    wf.retain(out.id());
    wf.with_retry(
        t,
        RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::none()
        },
    );
    let report = lint_workflow(&wf);
    let diags = report.with_code(codes::ZERO_ATTEMPTS);
    assert_eq!(diags.len(), 1);
    assert!(report.has_errors());
    assert_eq!(
        diags[0].render(),
        "error[SF0302]: task `never` declares a retry policy with zero attempts\n\
         \x20 --> task `never`\n\
         \x20 = note: `max_attempts` counts the first attempt; 0 means the task never runs\n\
         \x20 = help: use `max_attempts: 1` to disable retries\n"
    );
}

#[test]
fn sf0501_write_write_conflict_golden() {
    let mut wf = Workflow::new();
    let f1 = wf.file("/tmp/schedflow-fix/out.txt");
    let f2 = wf.file("/tmp/schedflow-fix/./out.txt");
    wf.task("writer-a", StageKind::Static, [], [f1.id()], |_| Ok(()));
    wf.task("writer-b", StageKind::Static, [], [f2.id()], |_| Ok(()));
    let report = lint_workflow(&wf);
    assert!(report.has_errors());
    let diags = report.with_code(codes::WRITE_WRITE_CONFLICT);
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].render(),
        "error[SF0501]: tasks `writer-a` and `writer-b` both write \
         `/tmp/schedflow-fix/out.txt` with no happens-before path between them\n\
         \x20 --> task `writer-a`, artifact `/tmp/schedflow-fix/out.txt`\n\
         \x20 = note: which write survives depends on thread scheduling — the run \
         is not replay-stable\n\
         \x20 = help: add a data dependency ordering `writer-a` and `writer-b`, \
         or write distinct paths\n"
    );
}

#[test]
fn sf0502_read_write_race_golden() {
    let mut wf = Workflow::new();
    let w = wf.file("/tmp/schedflow-fix/race.txt");
    let r = wf.file("/tmp/schedflow-fix/./race.txt");
    wf.task("writer", StageKind::Static, [], [w.id()], |_| Ok(()));
    wf.task("reader", StageKind::Static, [r.id()], [], |_| Ok(()));
    let report = lint_workflow(&wf);
    assert!(report.has_errors());
    let diags = report.with_code(codes::READ_WRITE_RACE);
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].render(),
        "error[SF0502]: task `reader` reads `/tmp/schedflow-fix/race.txt` while \
         task `writer` may be writing it (no ordering between them)\n\
         \x20 --> task `reader`, artifact `/tmp/schedflow-fix/race.txt`\n\
         \x20 = note: `reader` and `writer` access the path through different \
         artifact ids, so dependency inference created no edge\n\
         \x20 = help: make `reader` consume the artifact id `writer` writes\n"
    );
}

#[test]
fn sf0503_artifact_aliasing_golden() {
    // Ordered via a value edge, so the aliasing itself is the only finding:
    // the graph is one refactor away from SF0501/SF0502.
    let mut wf = Workflow::new();
    let f1 = wf.file("/tmp/schedflow-fix/ordered.txt");
    let f2 = wf.file("/tmp/schedflow-fix/./ordered.txt");
    let link = wf.value::<u32>("link");
    wf.task(
        "writer-a",
        StageKind::Static,
        [],
        [f1.id(), link.id()],
        |_| Ok(()),
    );
    wf.task(
        "writer-b",
        StageKind::Static,
        [link.id()],
        [f2.id()],
        |_| Ok(()),
    );
    let report = lint_workflow(&wf);
    assert!(!report.has_errors(), "{}", report.render());
    let diags = report.with_code(codes::ARTIFACT_ALIASING);
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].render(),
        "warning[SF0503]: 2 artifact declarations alias the same path \
         `/tmp/schedflow-fix/ordered.txt`\n\
         \x20 --> artifact `/tmp/schedflow-fix/ordered.txt`\n\
         \x20 = note: aliased artifact ids: #0, #1 — dependency inference is \
         per-id, so accesses through one id are invisible to the others\n\
         \x20 = help: declare the file once and share the handle\n"
    );
}

#[test]
fn sf0504_lifetime_hazard_golden() {
    let mut wf = Workflow::new();
    let v = wf.value::<u32>("payload");
    wf.task("producer", StageKind::Static, [], [v.id()], |_| Ok(()));
    let consumer = wf.task("consumer", StageKind::Static, [v.id()], [], |_| Ok(()));
    wf.with_deadline(consumer, Duration::from_secs(1));
    let report = lint_workflow(&wf);
    let diags = report.with_code(codes::LIFETIME_HAZARD);
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].render(),
        "warning[SF0504]: value artifact `payload` may be dropped while a \
         timed-out attempt of task `consumer` is still reading it\n\
         \x20 --> task `consumer`, artifact `payload`\n\
         \x20 = note: a deadline resolves the task while its body runs on \
         detached; drop-after-last-consumer then frees the artifact under it\n\
         \x20 = help: retain `payload` (Workflow::retain) or remove the \
         per-task deadline\n"
    );
}

/// The acceptance scenario: a seeded two-unordered-writers workflow is
/// rejected statically — SF0501 names both tasks, and because the gate
/// refuses execution on lint errors, zero task bodies ever run.
#[test]
fn sf0501_gate_rejects_unordered_writers_before_any_task_runs() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let executed = Arc::new(AtomicUsize::new(0));
    let mut wf = Workflow::new();
    let f1 = wf.file("/tmp/schedflow-fix/gate.txt");
    let f2 = wf.file("/tmp/schedflow-fix/./gate.txt");
    for (name, f) in [("writer-a", f1), ("writer-b", f2)] {
        let executed = Arc::clone(&executed);
        wf.task(name, StageKind::Static, [], [f.id()], move |_| {
            executed.fetch_add(1, Ordering::SeqCst);
            Ok(())
        });
    }

    let report = lint_workflow(&wf);
    let conflicts = report.with_code(codes::WRITE_WRITE_CONFLICT);
    assert_eq!(conflicts.len(), 1, "{}", report.render());
    assert!(conflicts[0].message.contains("`writer-a`"));
    assert!(conflicts[0].message.contains("`writer-b`"));
    assert!(report.has_errors());

    // The deny gate (`schedflow run` default): errors refuse execution.
    if !report.has_errors() {
        let runner = Runner::new(wf).expect("structurally valid");
        runner.run(&RunOptions::with_threads(2));
    }
    assert_eq!(executed.load(Ordering::SeqCst), 0, "zero tasks executed");
}

#[test]
fn sf0401_unseeded_chaos_golden() {
    let options = RunOptions {
        chaos: Some(ChaosConfig::default()),
        ..RunOptions::default()
    };
    let report = lint_run_options(&options);
    let diags = report.with_code(codes::UNSEEDED_CHAOS);
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].render(),
        "warning[SF0401]: chaos injection is enabled without an explicit seed (seed = 0)\n\
         \x20 = note: fault schedules are a pure function of the seed\n\
         \x20 = help: set a non-zero seed so failures replay deterministically\n"
    );
}

/// Columns the property-test pipelines draw from.
const POOL: [&str; 5] = ["wait_s", "state", "nnodes", "elapsed_s", "user"];

/// Build an executable two-task pipeline: the producer materializes a real
/// [`Frame`] with `produced` columns (and a matching contract); the consumer
/// declares it requires `required` and at runtime actually reads those
/// columns, failing like a real analytics stage would on a missing one.
fn executable_chain(produced: Vec<&'static str>, required: Vec<&'static str>) -> Workflow {
    let mut wf = Workflow::new();
    let frame = wf.value::<Frame>("frame");
    let out = wf.value::<usize>("out");
    let produced_for_body = produced.clone();
    let t1 = wf.task("produce", StageKind::Static, [], [frame.id()], move |ctx| {
        let mut f = Frame::new();
        for name in &produced_for_body {
            f = f.with(name, Column::from_i64(vec![1, 2, 3]));
        }
        ctx.put(frame, f)
    });
    let required_for_body = required.clone();
    let t2 = wf.task(
        "consume",
        StageKind::Static,
        [frame.id()],
        [out.id()],
        move |ctx| {
            let f = ctx.get(frame)?;
            let mut rows = 0;
            for name in &required_for_body {
                rows += f.column(name).map_err(|e| e.to_string())?.len();
            }
            ctx.put(out, rows)
        },
    );
    wf.retain(out.id());
    let mut produced_schema = FrameSchema::new();
    for name in &produced {
        produced_schema = produced_schema.with(*name, ColType::Int);
    }
    let mut required_schema = FrameSchema::new();
    for name in &required {
        required_schema = required_schema.with(*name, ColType::Int);
    }
    wf.with_contract(
        t1,
        TaskContract::new().produces(frame.id(), produced_schema),
    );
    wf.with_contract(t2, TaskContract::new().require(frame.id(), required_schema));
    wf
}

/// The subset of [`POOL`] a bitmask selects.
fn subset(mask: usize) -> Vec<&'static str> {
    POOL.iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, name)| *name)
        .collect()
}

proptest! {
    /// The gate's soundness contract: a lint-clean pipeline never fails at
    /// runtime with a schema error — and, on this fixture family, a pipeline
    /// the linter rejects really would have failed had it been allowed to
    /// run.
    #[test]
    fn lint_clean_iff_no_runtime_schema_error(
        produced_mask in 0usize..32,
        required_mask in 0usize..32,
    ) {
        let produced = subset(produced_mask);
        let required = subset(required_mask);
        let wf = executable_chain(produced.clone(), required.clone());
        let report = lint_workflow(&wf);
        let expect_clean = !report.has_errors();
        prop_assert_eq!(
            expect_clean,
            required.iter().all(|r| produced.contains(r)),
            "{}",
            report.render()
        );

        let runner = Runner::new(wf).expect("chain graph is structurally valid");
        let run = runner.run(&RunOptions::with_threads(2));
        prop_assert_eq!(run.is_success(), expect_clean);
    }
}
