//! Golden fixtures and property tests for the SF09xx scheduling-policy
//! analyzer.
//!
//! Each SF090x code has a minimal known-bad profile whose rendered
//! diagnostic is pinned under `tests/golden/` (re-bless with
//! `SCHEDFLOW_BLESS=1 cargo test -p schedflow-lint --test policy_fixtures`),
//! and two properties tie the static verdicts to the runtime:
//!
//! * a profile with no SF0901 errors only ever synthesizes job requests the
//!   simulator's admission predicates accept, and
//! * every SF0902 starvation witness the analyzer emits reproduces the
//!   predicted overtaking when replayed through the real scheduler.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use schedflow_lint::lint_policy;
use schedflow_sim::{BackfillPolicy, SystemConfig};
use schedflow_tracegen::{synthesize_plans, UserPopulation, WorkloadProfile};
use std::path::PathBuf;

/// The batch-only single-partition test machine (no debug route).
fn toy_profile() -> WorkloadProfile {
    let mut p = WorkloadProfile::andes();
    p.system = SystemConfig::toy(64);
    p.debug_fraction = 0.0;
    p.size_buckets.retain(|b| b.max_nodes <= 64);
    p
}

/// One minimal known-bad profile per SF090x code: `(fixture name, code,
/// profile)`. Each must produce exactly one finding, of that code.
fn fixture_cases() -> Vec<(&'static str, &'static str, WorkloadProfile)> {
    let sf0901 = {
        // Debug traffic on a machine with no debug partition: every job in
        // that class is rejected at submission.
        let mut p = toy_profile();
        p.debug_fraction = 0.10;
        p
    };
    let sf0902 = {
        // Inert age weight: queued jobs never accrue priority, so newer
        // higher-priority submissions overtake forever.
        let mut p = WorkloadProfile::frontier();
        p.system.weights.age = 0.0;
        p
    };
    let sf0903 = {
        // Urgent QOS outweighed by the debug partition's tier boost.
        WorkloadProfile::frontier().with_urgent_computing(0.05, 0.0)
    };
    let sf0904 = {
        // No backfill: the reservation for a wide head job idles nodes that
        // short narrow jobs could use.
        let mut p = WorkloadProfile::frontier();
        p.system.backfill = BackfillPolicy::None;
        p
    };
    let sf0905 = {
        // Debug partition configured but no traffic routes to it.
        let mut p = WorkloadProfile::frontier();
        p.debug_fraction = 0.0;
        p
    };
    let sf0906 = {
        // Fairshare decay half-life of zero pins usage at full boost.
        let mut p = WorkloadProfile::frontier();
        p.system.weights.usage_halflife_secs = 0;
        p
    };
    vec![
        ("sf0901-missing-route", "SF0901", sf0901),
        ("sf0902-inert-age", "SF0902", sf0902),
        ("sf0903-urgent-inversion", "SF0903", sf0903),
        ("sf0904-no-backfill", "SF0904", sf0904),
        ("sf0905-dead-debug", "SF0905", sf0905),
        ("sf0906-zero-halflife", "SF0906", sf0906),
    ]
}

/// Compare `actual` against the checked-in golden file, or rewrite the
/// golden when `SCHEDFLOW_BLESS` is set.
fn golden(name: &str, actual: &str) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let path = dir.join(name);
    if std::env::var("SCHEDFLOW_BLESS").is_ok() {
        std::fs::create_dir_all(&dir).expect("golden dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); re-bless with SCHEDFLOW_BLESS=1"));
    assert_eq!(
        actual, expected,
        "golden mismatch for {name}; re-bless with SCHEDFLOW_BLESS=1 if intended"
    );
}

#[test]
fn golden_fixtures_match() {
    for (name, code, profile) in fixture_cases() {
        let analysis = lint_policy(&profile);
        let diags = analysis.report.with_code(code);
        assert_eq!(diags.len(), 1, "{name}: expected exactly one {code}");
        assert_eq!(
            analysis.report.errors() + analysis.report.warnings(),
            1,
            "{name}: expected only {code}, got:\n{}",
            analysis.report.render()
        );
        golden(&format!("{name}.txt"), &diags[0].render());
    }
}

#[test]
fn suggested_edits_clear_every_fixture() {
    for (name, _code, mut profile) in fixture_cases() {
        let analysis = lint_policy(&profile);
        assert!(!analysis.edits.is_empty(), "{name}: no suggested edit");
        for e in &analysis.edits {
            assert!(
                e.apply(&mut profile),
                "{name}: edit {} rejected",
                e.render()
            );
        }
        let after = lint_policy(&profile);
        assert!(
            after.is_clean(),
            "{name}: still dirty after applying suggested edits:\n{}",
            after.report.render()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No SF0901 errors ⇒ every job request the generator synthesizes for
    /// the profile passes the simulator's shared admission predicates.
    #[test]
    fn clean_profiles_generate_admissible_requests(
        total in 8u32..200,
        age in prop_oneof![Just(0.0), 1.0..20_000.0f64],
        max_age_days in 0i64..30,
        bf in 0usize..3,
        debug_on in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let mut p = WorkloadProfile::andes().truncated_days(2).scaled(0.05);
        p.system = SystemConfig::toy(total);
        p.system.weights.age = age;
        p.system.weights.max_age_secs = max_age_days * 86_400;
        p.system.backfill =
            [BackfillPolicy::None, BackfillPolicy::Easy, BackfillPolicy::Conservative][bf];
        p.debug_fraction = if debug_on { 0.08 } else { 0.0 };
        let analysis = lint_policy(&p);
        if analysis.report.errors() == 0 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let pop = UserPopulation::generate(&p, &mut rng);
            for plan in synthesize_plans(&p, &pop, &mut rng) {
                prop_assert!(
                    schedflow_sim::policy::check_request(&p.system, &plan.request).is_ok(),
                    "SF0901-clean profile synthesized an inadmissible request: {:?}",
                    plan.request
                );
            }
        }
    }

    /// Every SF0902 starvation witness replays: the predicted competitors
    /// really do start before the starved victim in the real scheduler.
    #[test]
    fn starvation_witnesses_reproduce(
        zero_max_age in any::<bool>(),
        tier in 0.0..100_000.0f64,
        size in 0.0..10_000.0f64,
        bf in 0usize..2,
    ) {
        let mut p = WorkloadProfile::frontier();
        if zero_max_age {
            p.system.weights.max_age_secs = 0;
        } else {
            p.system.weights.age = 0.0;
        }
        p.system.weights.tier = tier;
        p.system.weights.size = size;
        p.system.backfill = [BackfillPolicy::Easy, BackfillPolicy::None][bf];
        let analysis = lint_policy(&p);
        for w in analysis.witnesses.iter().filter(|w| w.code == "SF0902") {
            let report = schedflow_sim::replay(&p.system, w);
            prop_assert!(report.is_ok(), "witness queue rejected: {:?}", report.err());
            let report = report.unwrap();
            prop_assert!(report.holds, "witness did not reproduce: {}", report.detail);
        }
    }
}
