//! Aggregate metrics over simulation outcomes: utilization, waits, backfill
//! share. These quantify the policy-ablation experiments (FIFO vs EASY vs
//! conservative) that motivate the paper's "policy evolution" goal.

use crate::request::{JobRequest, SimOutcome};
use serde::Serialize;
use std::collections::HashMap;

/// Summary statistics for one simulated trace.
#[derive(Debug, Clone, Serialize)]
pub struct SimMetrics {
    pub jobs: usize,
    pub started: usize,
    pub completed: usize,
    /// Jobs killed by QOS preemption.
    pub preempted: usize,
    pub mean_wait_secs: f64,
    pub median_wait_secs: f64,
    pub p95_wait_secs: f64,
    pub max_wait_secs: i64,
    /// Fraction of started jobs that the backfill pass started.
    pub backfill_fraction: f64,
    /// Node-seconds used / node-seconds available over the active span.
    pub utilization: f64,
    /// Mean of elapsed/requested over started jobs with a limit.
    pub mean_walltime_accuracy: f64,
}

/// Compute metrics for a set of outcomes (paired with their requests).
pub fn metrics(jobs: &[JobRequest], outcomes: &[SimOutcome], total_nodes: u32) -> SimMetrics {
    assert_eq!(jobs.len(), outcomes.len());
    let by_id: HashMap<u64, &JobRequest> = jobs.iter().map(|j| (j.id, j)).collect();

    let mut waits: Vec<f64> = Vec::new();
    let mut started = 0usize;
    let mut completed = 0usize;
    let mut preempted = 0usize;
    let mut backfilled = 0usize;
    let mut node_secs_used: i64 = 0;
    let mut span_start = i64::MAX;
    let mut span_end = i64::MIN;
    let mut accuracy_sum = 0.0;
    let mut accuracy_n = 0usize;

    for o in outcomes {
        let req = by_id[&o.id];
        if let (Some(s), Some(e)) = (o.start, o.end) {
            started += 1;
            if o.backfilled {
                backfilled += 1;
            }
            if o.state == schedflow_model::state::JobState::Completed {
                completed += 1;
            }
            if o.state == schedflow_model::state::JobState::Preempted {
                preempted += 1;
            }
            if let Some(w) = o.wait_secs() {
                waits.push(w as f64);
            }
            node_secs_used += i64::from(req.nodes) * (e - s).max(0);
            span_start = span_start.min(s.0);
            span_end = span_end.max(e.0);
            if req.walltime_secs > 0 {
                accuracy_sum += (e - s).max(0) as f64 / req.walltime_secs as f64;
                accuracy_n += 1;
            }
        }
    }

    waits.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |f: f64| -> f64 {
        if waits.is_empty() {
            0.0
        } else {
            schedflow_frame_quantile(&waits, f)
        }
    };
    let span = if started == 0 {
        1
    } else {
        (span_end - span_start).max(1)
    };
    SimMetrics {
        jobs: jobs.len(),
        started,
        completed,
        preempted,
        mean_wait_secs: if waits.is_empty() {
            0.0
        } else {
            waits.iter().sum::<f64>() / waits.len() as f64
        },
        median_wait_secs: q(0.5),
        p95_wait_secs: q(0.95),
        max_wait_secs: waits.last().copied().unwrap_or(0.0) as i64,
        backfill_fraction: if started == 0 {
            0.0
        } else {
            backfilled as f64 / started as f64
        },
        utilization: node_secs_used as f64 / (span as f64 * f64::from(total_nodes)),
        mean_walltime_accuracy: if accuracy_n == 0 {
            0.0
        } else {
            accuracy_sum / accuracy_n as f64
        },
    }
}

/// Interpolated quantile over a sorted slice (kept local to avoid a frame
/// dependency in this crate).
fn schedflow_frame_quantile(sorted: &[f64], q: f64) -> f64 {
    let q = q.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
}

/// Node-occupancy time series sampled at `step_secs`, for utilization charts.
pub fn occupancy_series(
    jobs: &[JobRequest],
    outcomes: &[SimOutcome],
    step_secs: i64,
) -> Vec<(i64, u32)> {
    let by_id: HashMap<u64, &JobRequest> = jobs.iter().map(|j| (j.id, j)).collect();
    let mut deltas: Vec<(i64, i64)> = Vec::new();
    for o in outcomes {
        if let (Some(s), Some(e)) = (o.start, o.end) {
            let nodes = i64::from(by_id[&o.id].nodes);
            deltas.push((s.0, nodes));
            deltas.push((e.0, -nodes));
        }
    }
    if deltas.is_empty() {
        return Vec::new();
    }
    deltas.sort_unstable();
    let start = deltas[0].0;
    let end = deltas[deltas.len() - 1].0;
    let mut series = Vec::new();
    let mut cur = 0i64;
    let mut di = 0usize;
    let mut t = start;
    while t <= end {
        while di < deltas.len() && deltas[di].0 <= t {
            cur += deltas[di].1;
            di += 1;
        }
        series.push((t, cur.max(0) as u32));
        t += step_secs.max(1);
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::JobRequest;
    use crate::sched::Simulator;
    use crate::system::SystemConfig;
    use schedflow_model::time::Timestamp;

    fn t0() -> Timestamp {
        Timestamp::from_ymd(2024, 1, 1)
    }

    #[test]
    fn metrics_on_simple_trace() {
        let jobs = vec![
            JobRequest::simple(1, t0(), 4, 2000, 1000),
            JobRequest::simple(2, t0(), 4, 2000, 1000),
            JobRequest::simple(3, t0(), 8, 2000, 1000),
        ];
        let sim = Simulator::new(SystemConfig::toy(8));
        let out = sim.run(&jobs).unwrap();
        let m = metrics(&jobs, &out, 8);
        assert_eq!(m.jobs, 3);
        assert_eq!(m.started, 3);
        assert_eq!(m.completed, 3);
        // Jobs 1+2 run together, job 3 waits 1000s.
        assert!(m.max_wait_secs >= 1000);
        assert!(
            m.utilization > 0.5 && m.utilization <= 1.0,
            "{}",
            m.utilization
        );
        assert!((m.mean_walltime_accuracy - 0.5).abs() < 1e-9);
    }

    #[test]
    fn occupancy_tracks_usage() {
        let jobs = vec![JobRequest::simple(1, t0(), 4, 2000, 1000)];
        let sim = Simulator::new(SystemConfig::toy(8));
        let out = sim.run(&jobs).unwrap();
        let series = occupancy_series(&jobs, &out, 100);
        assert_eq!(series.first().unwrap().1, 4);
        assert_eq!(series.last().unwrap().1, 0);
    }

    #[test]
    fn empty_outcomes() {
        let m = metrics(&[], &[], 8);
        assert_eq!(m.jobs, 0);
        assert_eq!(m.mean_wait_secs, 0.0);
        assert!(occupancy_series(&[], &[], 10).is_empty());
    }
}
