//! Simulator inputs and outputs: job requests and scheduling outcomes.

use schedflow_model::state::JobState;
use schedflow_model::time::Timestamp;
use serde::{Deserialize, Serialize};

/// What the job *would* do if allowed to run — decided by the workload
/// generator before scheduling, revealed by the simulator as it plays out.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PlannedOutcome {
    /// Runs `actual_runtime` then exits 0 (or times out at the limit).
    Complete,
    /// Crashes after `at` fraction of its actual runtime with `exit_code`.
    Fail { at: f64, exit_code: u8 },
    /// User cancels while it is running, after `at` fraction of the runtime.
    CancelRunning { at: f64 },
    /// User cancels if still pending after `patience_secs` of eligibility.
    CancelPending { patience_secs: i64 },
    /// A node dies under it after `at` fraction of the runtime.
    NodeFail { at: f64 },
    /// Killed by the OOM handler after `at` fraction of the runtime.
    OutOfMemory { at: f64 },
}

/// One job submission, as fed to the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRequest {
    /// Unique job id (monotone in submit order by convention).
    pub id: u64,
    /// Submitting user index.
    pub user: u32,
    pub submit: Timestamp,
    /// Requested node count.
    pub nodes: u32,
    /// Requested wall time, seconds.
    pub walltime_secs: i64,
    /// True runtime if it ran to natural completion, seconds.
    pub actual_secs: i64,
    pub partition: String,
    pub qos: String,
    pub outcome: PlannedOutcome,
    /// Must-finish-first dependency (afterany semantics).
    pub dependency: Option<u64>,
}

impl JobRequest {
    /// Convenience constructor for tests: complete-able job.
    pub fn simple(
        id: u64,
        submit: Timestamp,
        nodes: u32,
        walltime_secs: i64,
        actual_secs: i64,
    ) -> Self {
        JobRequest {
            id,
            user: 0,
            submit,
            nodes,
            walltime_secs,
            actual_secs,
            partition: "batch".to_owned(),
            qos: "normal".to_owned(),
            outcome: PlannedOutcome::Complete,
            dependency: None,
        }
    }
}

/// The scheduling outcome for one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    pub id: u64,
    /// When the job became eligible (dependency satisfied).
    pub eligible: Timestamp,
    /// Start time; `None` for jobs cancelled while pending.
    pub start: Option<Timestamp>,
    /// End time; `None` for jobs cancelled while pending.
    pub end: Option<Timestamp>,
    pub state: JobState,
    pub exit_code: u8,
    pub exit_signal: u8,
    /// Started by the backfill pass rather than the main priority pass.
    pub backfilled: bool,
    /// Started the moment it became eligible (idle resources).
    pub started_on_submit: bool,
    /// Multifactor priority at start (or at cancellation).
    pub priority: u32,
    /// Allocated node indices (empty when never started).
    pub node_indices: Vec<u32>,
}

impl SimOutcome {
    /// Queue wait eligible→start, seconds.
    pub fn wait_secs(&self) -> Option<i64> {
        self.start.map(|s| (s - self.eligible).max(0))
    }

    /// Elapsed runtime, seconds.
    pub fn elapsed_secs(&self) -> Option<i64> {
        match (self.start, self.end) {
            (Some(s), Some(e)) => Some((e - s).max(0)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_and_elapsed() {
        let t = Timestamp::from_ymd(2024, 1, 1);
        let o = SimOutcome {
            id: 1,
            eligible: t,
            start: Some(t + 100),
            end: Some(t + 400),
            state: JobState::Completed,
            exit_code: 0,
            exit_signal: 0,
            backfilled: false,
            started_on_submit: false,
            priority: 0,
            node_indices: vec![0],
        };
        assert_eq!(o.wait_secs(), Some(100));
        assert_eq!(o.elapsed_secs(), Some(300));
    }

    #[test]
    fn pending_cancel_has_no_times() {
        let t = Timestamp::from_ymd(2024, 1, 1);
        let o = SimOutcome {
            id: 1,
            eligible: t,
            start: None,
            end: None,
            state: JobState::Cancelled,
            exit_code: 0,
            exit_signal: 0,
            backfilled: false,
            started_on_submit: false,
            priority: 0,
            node_indices: vec![],
        };
        assert_eq!(o.wait_secs(), None);
        assert_eq!(o.elapsed_secs(), None);
    }
}
