//! Free-node tracking with index assignment for hostlist generation.
//!
//! Allocation takes the lowest free indices (packing low, as Slurm's default
//! node weighting tends to), which produces realistic compressed hostlists
//! like `frontier[00001-00128]`.

use std::collections::BTreeSet;

/// Tracks which node indices are free.
#[derive(Debug, Clone)]
pub struct NodePool {
    free: BTreeSet<u32>,
    total: u32,
}

impl NodePool {
    pub fn new(total: u32) -> Self {
        NodePool {
            free: (0..total).collect(),
            total,
        }
    }

    pub fn total(&self) -> u32 {
        self.total
    }

    pub fn free_count(&self) -> u32 {
        self.free.len() as u32
    }

    pub fn used_count(&self) -> u32 {
        self.total - self.free_count()
    }

    /// Allocate `count` nodes (lowest indices first); `None` if insufficient.
    pub fn allocate(&mut self, count: u32) -> Option<Vec<u32>> {
        if count > self.free_count() {
            return None;
        }
        let taken: Vec<u32> = self.free.iter().copied().take(count as usize).collect();
        for i in &taken {
            self.free.remove(i);
        }
        Some(taken)
    }

    /// Return nodes to the pool. Panics on double-free (an allocation bug).
    pub fn release(&mut self, nodes: &[u32]) {
        for &i in nodes {
            assert!(i < self.total, "released node {i} out of range");
            assert!(self.free.insert(i), "double free of node {i}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_lowest_indices() {
        let mut pool = NodePool::new(10);
        let a = pool.allocate(3).unwrap();
        assert_eq!(a, vec![0, 1, 2]);
        assert_eq!(pool.free_count(), 7);
        let b = pool.allocate(2).unwrap();
        assert_eq!(b, vec![3, 4]);
    }

    #[test]
    fn refuses_oversized_requests() {
        let mut pool = NodePool::new(4);
        assert!(pool.allocate(5).is_none());
        assert_eq!(pool.free_count(), 4);
    }

    #[test]
    fn release_makes_nodes_reusable() {
        let mut pool = NodePool::new(4);
        let a = pool.allocate(4).unwrap();
        assert_eq!(pool.free_count(), 0);
        pool.release(&a[..2]);
        assert_eq!(pool.free_count(), 2);
        let b = pool.allocate(2).unwrap();
        assert_eq!(b, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut pool = NodePool::new(4);
        let a = pool.allocate(1).unwrap();
        pool.release(&a);
        pool.release(&a);
    }

    #[test]
    fn full_machine_cycle() {
        let mut pool = NodePool::new(100);
        let mut allocs = Vec::new();
        for _ in 0..10 {
            allocs.push(pool.allocate(10).unwrap());
        }
        assert_eq!(pool.free_count(), 0);
        assert!(pool.allocate(1).is_none());
        for a in &allocs {
            pool.release(a);
        }
        assert_eq!(pool.free_count(), 100);
    }
}
