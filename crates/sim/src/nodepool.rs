//! Free-node tracking with index assignment for hostlist generation.
//!
//! Allocation takes the lowest free indices (packing low, as Slurm's default
//! node weighting tends to), which produces realistic compressed hostlists
//! like `frontier[00001-00128]`.

use std::collections::BTreeSet;

/// Pool misuse detected at release time. These are allocation bugs in the
/// caller, surfaced as typed errors so the SF06xx invariant monitor (see
/// [`crate::invariant`]) can report them with an event trace instead of the
/// process aborting — and so they cannot be silently absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// A released node index does not exist in this pool.
    OutOfRange { node: u32, total: u32 },
    /// A released node was already free.
    DoubleFree { node: u32 },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::OutOfRange { node, total } => {
                write!(f, "released node {node} out of range (pool has {total})")
            }
            PoolError::DoubleFree { node } => write!(f, "double free of node {node}"),
        }
    }
}

impl std::error::Error for PoolError {}

/// Tracks which node indices are free.
#[derive(Debug, Clone)]
pub struct NodePool {
    free: BTreeSet<u32>,
    total: u32,
}

impl NodePool {
    pub fn new(total: u32) -> Self {
        NodePool {
            free: (0..total).collect(),
            total,
        }
    }

    pub fn total(&self) -> u32 {
        self.total
    }

    pub fn free_count(&self) -> u32 {
        self.free.len() as u32
    }

    pub fn used_count(&self) -> u32 {
        self.total - self.free_count()
    }

    /// Allocate `count` nodes (lowest indices first); `None` if insufficient.
    pub fn allocate(&mut self, count: u32) -> Option<Vec<u32>> {
        if count > self.free_count() {
            return None;
        }
        let taken: Vec<u32> = self.free.iter().copied().take(count as usize).collect();
        for i in &taken {
            self.free.remove(i);
        }
        Some(taken)
    }

    /// Return nodes to the pool. Double-free or out-of-range indices are
    /// rejected with a typed [`PoolError`] *before* any node is re-inserted,
    /// so a failed release leaves the pool state unchanged (conservation
    /// stays checkable after the error).
    pub fn release(&mut self, nodes: &[u32]) -> Result<(), PoolError> {
        for &i in nodes {
            if i >= self.total {
                return Err(PoolError::OutOfRange {
                    node: i,
                    total: self.total,
                });
            }
            if self.free.contains(&i) {
                return Err(PoolError::DoubleFree { node: i });
            }
        }
        for &i in nodes {
            self.free.insert(i);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_lowest_indices() {
        let mut pool = NodePool::new(10);
        let a = pool.allocate(3).unwrap();
        assert_eq!(a, vec![0, 1, 2]);
        assert_eq!(pool.free_count(), 7);
        let b = pool.allocate(2).unwrap();
        assert_eq!(b, vec![3, 4]);
    }

    #[test]
    fn refuses_oversized_requests() {
        let mut pool = NodePool::new(4);
        assert!(pool.allocate(5).is_none());
        assert_eq!(pool.free_count(), 4);
    }

    #[test]
    fn release_makes_nodes_reusable() {
        let mut pool = NodePool::new(4);
        let a = pool.allocate(4).unwrap();
        assert_eq!(pool.free_count(), 0);
        pool.release(&a[..2]).unwrap();
        assert_eq!(pool.free_count(), 2);
        let b = pool.allocate(2).unwrap();
        assert_eq!(b, vec![0, 1]);
    }

    #[test]
    fn double_free_is_a_typed_error() {
        let mut pool = NodePool::new(4);
        let a = pool.allocate(1).unwrap();
        pool.release(&a).unwrap();
        assert_eq!(pool.release(&a), Err(PoolError::DoubleFree { node: 0 }));
        // The failed release must not have corrupted the free set.
        assert_eq!(pool.free_count(), 4);
    }

    #[test]
    fn out_of_range_release_is_rejected_atomically() {
        let mut pool = NodePool::new(4);
        let a = pool.allocate(2).unwrap();
        // One valid node, one bogus: nothing is re-inserted.
        assert_eq!(
            pool.release(&[a[0], 99]),
            Err(PoolError::OutOfRange { node: 99, total: 4 })
        );
        assert_eq!(pool.free_count(), 2);
        pool.release(&a).unwrap();
        assert_eq!(pool.free_count(), 4);
    }

    #[test]
    fn full_machine_cycle() {
        let mut pool = NodePool::new(100);
        let mut allocs = Vec::new();
        for _ in 0..10 {
            allocs.push(pool.allocate(10).unwrap());
        }
        assert_eq!(pool.free_count(), 0);
        assert!(pool.allocate(1).is_none());
        for a in &allocs {
            pool.release(a).unwrap();
        }
        assert_eq!(pool.free_count(), 100);
    }
}
