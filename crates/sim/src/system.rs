//! System configuration: the machine and its scheduling policy knobs.

use schedflow_model::partition::{Partition, Qos};
use schedflow_model::time::Elapsed;
use serde::{Deserialize, Serialize};

/// Backfill strategy used by the scheduling pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackfillPolicy {
    /// Strict priority order; the head of queue blocks everything behind it.
    None,
    /// EASY backfilling: reservation for the head job only; lower-priority
    /// jobs may jump ahead if they do not delay that reservation.
    Easy,
    /// Conservative backfilling: reservations for every queued job (bounded
    /// by `bf_max_job_test`); backfill must delay none of them.
    Conservative,
}

/// Multifactor priority weights (Slurm's PriorityWeight* knobs, reduced to
/// the factors that matter for trace shape: age, size, QOS, partition tier).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriorityWeights {
    /// Weight of the (saturating) age factor.
    pub age: f64,
    /// Queue age at which the age factor saturates, seconds.
    pub max_age_secs: i64,
    /// Weight of the job-size factor (fraction of machine requested).
    /// Positive favors large jobs, as leadership-class systems do.
    pub size: f64,
    /// Weight multiplying the partition priority tier.
    pub tier: f64,
    /// Weight of the fair-share factor (users with little recent usage are
    /// boosted; heavy users decay toward zero boost).
    pub fairshare: f64,
    /// Half-life of the decayed per-user usage behind the fair-share factor.
    pub usage_halflife_secs: i64,
}

impl Default for PriorityWeights {
    fn default() -> Self {
        Self {
            age: 10_000.0,
            max_age_secs: 14 * 86_400,
            size: 5_000.0,
            tier: 50_000.0,
            fairshare: 8_000.0,
            usage_halflife_secs: 7 * 86_400,
        }
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Cluster name as recorded in sacct (`frontier`, `andes`).
    pub name: String,
    /// Total compute nodes.
    pub total_nodes: u32,
    /// Physical cores per node (for NCPUs accounting).
    pub cores_per_node: u32,
    /// GPUs per node (0 for CPU machines).
    pub gpus_per_node: u32,
    /// Zero-padding width of node-name indices in hostlists.
    pub node_name_width: usize,
    pub partitions: Vec<Partition>,
    pub qos: Vec<Qos>,
    pub backfill: BackfillPolicy,
    /// Maximum queued jobs examined per backfill pass (Slurm's
    /// `bf_max_job_test`), bounding pass cost on deep queues.
    pub bf_max_job_test: usize,
    pub weights: PriorityWeights,
}

/// Cores per Frontier node as sacct accounts them: 64 physical cores minus
/// the 8 "low-noise" cores (one per L3 region) that SLURM reserves for the
/// OS and system daemons, leaving 56 allocatable to jobs.
pub const FRONTIER_USABLE_CORES: u32 = 56;

impl SystemConfig {
    /// OLCF Frontier: 9,408 nodes, 56 usable cores (of 64 physical; 8 are
    /// reserved as low-noise cores — [`FRONTIER_USABLE_CORES`]) + 8 (logical)
    /// GPUs per node, exascale batch mission with a small high-priority debug
    /// slice.
    pub fn frontier() -> Self {
        SystemConfig {
            name: "frontier".to_owned(),
            total_nodes: 9408,
            cores_per_node: FRONTIER_USABLE_CORES,
            gpus_per_node: 8,
            node_name_width: 5,
            partitions: vec![
                Partition::batch(9408, Elapsed::from_hours(24)),
                Partition::debug(128),
            ],
            qos: vec![Qos::normal(), Qos::debug(), Qos::standby(), Qos::urgent()],
            backfill: BackfillPolicy::Easy,
            bf_max_job_test: 100,
            weights: PriorityWeights::default(),
        }
    }

    /// OLCF Andes: 704 CPU nodes for analysis/throughput workloads.
    pub fn andes() -> Self {
        SystemConfig {
            name: "andes".to_owned(),
            total_nodes: 704,
            cores_per_node: 32,
            gpus_per_node: 0,
            node_name_width: 4,
            partitions: vec![
                Partition::batch(704, Elapsed::from_hours(48)),
                Partition::debug(16),
            ],
            qos: vec![Qos::normal(), Qos::debug()],
            backfill: BackfillPolicy::Easy,
            bf_max_job_test: 100,
            weights: PriorityWeights {
                // Throughput machine: size bias mild, age dominates.
                size: 1_000.0,
                ..PriorityWeights::default()
            },
        }
    }

    /// A deliberately tiny machine for unit tests.
    pub fn toy(total_nodes: u32) -> Self {
        SystemConfig {
            name: "toy".to_owned(),
            total_nodes,
            cores_per_node: 8,
            gpus_per_node: 0,
            node_name_width: 3,
            partitions: vec![Partition::batch(total_nodes, Elapsed::from_hours(24))],
            qos: vec![Qos::normal()],
            backfill: BackfillPolicy::Easy,
            bf_max_job_test: 50,
            weights: PriorityWeights::default(),
        }
    }

    pub fn partition(&self, name: &str) -> Option<&Partition> {
        self.partitions.iter().find(|p| p.name == name)
    }

    pub fn qos(&self, name: &str) -> Option<&Qos> {
        self.qos.iter().find(|q| q.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_profile_is_exascale() {
        let c = SystemConfig::frontier();
        assert_eq!(c.total_nodes, 9408);
        assert_eq!(c.cores_per_node, FRONTIER_USABLE_CORES);
        assert_eq!(c.gpus_per_node, 8);
        assert!(c.partition("batch").is_some());
        assert!(c.partition("debug").is_some());
        assert!(c.qos("urgent").is_some());
    }

    #[test]
    fn andes_profile_is_cpu_throughput() {
        let c = SystemConfig::andes();
        assert!(c.total_nodes < SystemConfig::frontier().total_nodes);
        assert_eq!(c.gpus_per_node, 0);
        assert!(c.weights.size < SystemConfig::frontier().weights.size);
    }

    #[test]
    fn lookups() {
        let c = SystemConfig::toy(8);
        assert!(c.partition("batch").is_some());
        assert!(c.partition("nope").is_none());
        assert!(c.qos("normal").is_some());
        assert!(c.qos("urgent").is_none());
    }
}
