//! Policy admission predicates and starvation-witness replay.
//!
//! The admission checks here are the single source of truth for what the
//! machine accepts: [`Simulator::validate`] is a thin wrapper over
//! [`validate_requests`], and the static SF09xx policy analyzer
//! (`schedflow_lint::policy_flow`) probes the *same* predicate with symbolic
//! job classes via [`class_admitted`] — so static and runtime validation
//! cannot drift.
//!
//! The second half of the module is the runtime soundness cross-check for the
//! starvation verdicts (SF0902/SF0904): the analyzer constructs a concrete
//! [`PolicyWitness`] queue predicting specific misbehavior, and [`replay`]
//! executes that queue through the real discrete-event scheduler and checks
//! the prediction held.

use crate::request::{JobRequest, SimOutcome};
use crate::sched::{SimError, Simulator};
use crate::system::{BackfillPolicy, SystemConfig};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Check one request against the machine: partition and QOS existence, node
/// and walltime limits. Dependency/duplicate-id checks need the whole batch
/// and live in [`validate_requests`].
pub fn check_request(config: &SystemConfig, job: &JobRequest) -> Result<(), SimError> {
    let part = config
        .partition(&job.partition)
        .ok_or_else(|| SimError::UnknownPartition {
            job: job.id,
            partition: job.partition.clone(),
        })?;
    if config.qos(&job.qos).is_none() {
        return Err(SimError::UnknownQos {
            job: job.id,
            qos: job.qos.clone(),
        });
    }
    let limit = part.max_nodes.min(config.total_nodes);
    if job.nodes == 0 || job.nodes > limit {
        return Err(SimError::TooManyNodes {
            job: job.id,
            nodes: job.nodes,
            limit,
        });
    }
    if job.walltime_secs > part.max_walltime.as_secs() {
        return Err(SimError::WalltimeOverLimit { job: job.id });
    }
    Ok(())
}

/// Validate a whole submission batch: unique ids, per-request admission,
/// dependencies resolving to batch members.
pub fn validate_requests(config: &SystemConfig, jobs: &[JobRequest]) -> Result<(), SimError> {
    let mut ids = HashMap::with_capacity(jobs.len());
    for j in jobs {
        if ids.insert(j.id, ()).is_some() {
            return Err(SimError::DuplicateId(j.id));
        }
    }
    for j in jobs {
        check_request(config, j)?;
        if let Some(dep) = j.dependency {
            if !ids.contains_key(&dep) {
                return Err(SimError::UnknownDependency {
                    job: j.id,
                    dependency: dep,
                });
            }
        }
    }
    Ok(())
}

/// Would a job of this symbolic shape ever be admitted? The static analyzer
/// probes job *classes* (size bucket × route) through the identical predicate
/// `validate` applies to concrete requests.
pub fn class_admitted(
    config: &SystemConfig,
    partition: &str,
    qos: &str,
    nodes: u32,
    walltime_secs: i64,
) -> Result<(), SimError> {
    let probe = JobRequest {
        id: 0,
        user: 0,
        submit: schedflow_model::time::Timestamp(0),
        nodes,
        walltime_secs,
        actual_secs: walltime_secs.max(1),
        partition: partition.to_owned(),
        qos: qos.to_owned(),
        outcome: crate::request::PlannedOutcome::Complete,
        dependency: None,
    };
    check_request(config, &probe)
}

/// A single machine-applicable policy change used as a witness contrast leg:
/// the blocked job must start strictly earlier once the edit is applied.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ContrastEdit {
    /// Switch the backfill policy (e.g. `None` → `Easy`).
    Backfill(BackfillPolicy),
    /// Raise the backfill examination bound (`bf_max_job_test`).
    BfMaxJobTest(usize),
}

impl ContrastEdit {
    /// Apply the edit to a system configuration.
    pub fn apply(&self, config: &mut SystemConfig) {
        match self {
            ContrastEdit::Backfill(p) => config.backfill = *p,
            ContrastEdit::BfMaxJobTest(n) => config.bf_max_job_test = *n,
        }
    }
}

impl std::fmt::Display for ContrastEdit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContrastEdit::Backfill(p) => write!(f, "backfill = {p:?}"),
            ContrastEdit::BfMaxJobTest(n) => write!(f, "bf_max_job_test = {n}"),
        }
    }
}

/// The behavior a starvation witness predicts when its queue is replayed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WitnessExpectation {
    /// SF0902: every competitor, though submitted after `victim`, starts
    /// strictly before it — aging never catches the victim up.
    Overtaking { victim: u64, competitors: Vec<u64> },
    /// SF0904: `blocked` fits the idle nodes but does not start before
    /// `head` under the configured policy — and starts strictly earlier
    /// once `contrast` is applied, proving the wait is pure policy.
    IdleBlocking {
        blocked: u64,
        head: u64,
        contrast: ContrastEdit,
    },
}

/// A concrete queue the static analyzer predicts misbehaves under the
/// configured policy. [`replay`] executes it and checks the prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyWitness {
    /// SF09xx code whose verdict this witness substantiates.
    pub code: String,
    pub queue: Vec<JobRequest>,
    pub expectation: WitnessExpectation,
}

/// Outcome of replaying one witness through the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    pub code: String,
    /// True when the simulated outcomes match the prediction.
    pub holds: bool,
    pub detail: String,
}

fn start_of(out: &[SimOutcome], id: u64) -> Option<i64> {
    out.iter()
        .find(|o| o.id == id)
        .and_then(|o| o.start)
        .map(|t| t.0)
}

/// Execute a witness queue through the real scheduler and check that the
/// predicted misbehavior occurs. For [`WitnessExpectation::IdleBlocking`] a
/// second leg runs under the contrast edit and must start the blocked job
/// strictly earlier.
pub fn replay(config: &SystemConfig, witness: &PolicyWitness) -> Result<ReplayReport, SimError> {
    let out = Simulator::new(config.clone()).run(&witness.queue)?;
    let (holds, detail) = match &witness.expectation {
        WitnessExpectation::Overtaking {
            victim,
            competitors,
        } => {
            // A victim that never starts inside the window is overtaken by
            // anything that does.
            let victim_start = start_of(&out, *victim).unwrap_or(i64::MAX);
            let overtaken = competitors
                .iter()
                .filter(|c| start_of(&out, **c).is_some_and(|s| s < victim_start))
                .count();
            (
                overtaken == competitors.len(),
                format!(
                    "{overtaken}/{} later-submitted competitor(s) started before victim job {victim}",
                    competitors.len()
                ),
            )
        }
        WitnessExpectation::IdleBlocking {
            blocked,
            head,
            contrast,
        } => {
            let blocked_start = start_of(&out, *blocked).unwrap_or(i64::MAX);
            let head_start = start_of(&out, *head).unwrap_or(i64::MAX);
            let held = blocked_start >= head_start;
            let mut alt = config.clone();
            contrast.apply(&mut alt);
            let out2 = Simulator::new(alt).run(&witness.queue)?;
            let alt_start = start_of(&out2, *blocked).unwrap_or(i64::MAX);
            let jumps = alt_start < blocked_start;
            (
                held && jumps,
                format!(
                    "job {blocked} started at t+{} behind head job {head}; under {contrast} it starts at t+{}",
                    blocked_start - witness.queue.first().map_or(0, |j| j.submit.0),
                    alt_start - witness.queue.first().map_or(0, |j| j.submit.0),
                ),
            )
        }
    };
    Ok(ReplayReport {
        code: witness.code.clone(),
        holds,
        detail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedflow_model::time::Timestamp;

    fn t0() -> Timestamp {
        Timestamp::from_ymd(2024, 1, 1)
    }

    #[test]
    fn check_request_matches_validate_semantics() {
        let cfg = SystemConfig::toy(8);
        let ok = JobRequest::simple(1, t0(), 4, 3600, 1800);
        assert!(check_request(&cfg, &ok).is_ok());
        let mut wide = ok.clone();
        wide.nodes = 99;
        assert!(matches!(
            check_request(&cfg, &wide),
            Err(SimError::TooManyNodes { limit: 8, .. })
        ));
    }

    #[test]
    fn class_admitted_caps_at_machine_size() {
        // Partition admits more nodes than the machine has: the effective
        // limit is the machine, exactly as `validate` enforces.
        let mut cfg = SystemConfig::toy(8);
        cfg.partitions[0].max_nodes = 16;
        assert!(class_admitted(&cfg, "batch", "normal", 8, 900).is_ok());
        assert!(matches!(
            class_admitted(&cfg, "batch", "normal", 12, 900),
            Err(SimError::TooManyNodes { limit: 8, .. })
        ));
        assert!(matches!(
            class_admitted(&cfg, "gpu", "normal", 1, 900),
            Err(SimError::UnknownPartition { .. })
        ));
    }

    #[test]
    fn idle_blocking_witness_replays_under_no_backfill() {
        let mut cfg = SystemConfig::toy(8);
        cfg.backfill = BackfillPolicy::None;
        let witness = PolicyWitness {
            code: "SF0904".to_owned(),
            queue: vec![
                JobRequest::simple(1, t0(), 6, 10_000, 10_000),
                JobRequest::simple(2, t0() + 10, 8, 5_000, 100),
                JobRequest::simple(3, t0() + 20, 2, 900, 400),
            ],
            expectation: WitnessExpectation::IdleBlocking {
                blocked: 3,
                head: 2,
                contrast: ContrastEdit::Backfill(BackfillPolicy::Easy),
            },
        };
        let report = replay(&cfg, &witness).unwrap();
        assert!(report.holds, "{}", report.detail);
        // Under EASY the same queue backfills: the prediction must fail.
        let easy = SystemConfig::toy(8);
        let report = replay(&easy, &witness).unwrap();
        assert!(!report.holds, "{}", report.detail);
    }

    #[test]
    fn overtaking_witness_requires_all_competitors_ahead() {
        // With default (healthy) aging on an empty machine everything starts
        // on submit: the victim starts first, so overtaking must NOT hold.
        let cfg = SystemConfig::toy(8);
        let witness = PolicyWitness {
            code: "SF0902".to_owned(),
            queue: vec![
                JobRequest::simple(1, t0(), 2, 900, 400),
                JobRequest::simple(2, t0() + 10, 2, 900, 400),
            ],
            expectation: WitnessExpectation::Overtaking {
                victim: 1,
                competitors: vec![2],
            },
        };
        let report = replay(&cfg, &witness).unwrap();
        assert!(!report.holds);
    }
}
