//! Runtime invariant monitors for the simulator (the SF06xx family).
//!
//! The static lints in `schedflow-lint` check the *workflow* before it runs;
//! these monitors check the *simulator* while it runs. They share the
//! `SFxxyy` code namespace (documented in `schedflow_lint::diag`) so an
//! invariant breach greps like any other diagnostic:
//!
//! * **SF0601** node conservation — `free + used == total` at every event,
//!   and every release is of nodes actually allocated (a [`PoolError`] is
//!   reported under this code).
//! * **SF0602** no time travel — the event clock never moves backwards.
//! * **SF0603** EASY-backfill guarantee — a backfilled job either finishes
//!   before the blocked head's shadow time or fits the spare nodes beyond
//!   the head's reservation; it never delays the reservation.
//!
//! The monitor keeps a ring buffer of recent scheduler events; a violation
//! carries that buffer as a counterexample trace, so the report shows not
//! just *what* broke but the event sequence that led there. Checks are on by
//! default in debug builds (every existing sim test doubles as a monitor
//! soak) and opt-in via [`crate::Simulator::with_verification`] elsewhere.

use crate::nodepool::PoolError;
use std::collections::VecDeque;

/// Stable runtime-invariant codes, extending the `schedflow-lint` namespace.
pub mod codes {
    /// Node accounting broke: free + used != total, or an invalid release.
    pub const NODE_CONSERVATION: &str = "SF0601";
    /// The event clock moved backwards.
    pub const TIME_TRAVEL: &str = "SF0602";
    /// A backfilled job delayed the blocked head job's reservation.
    pub const BACKFILL_GUARANTEE: &str = "SF0603";
}

/// How many trailing events the counterexample trace keeps.
const TRACE_CAPACITY: usize = 32;

/// An invariant breach, with the recent-event trace as a counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    pub code: &'static str,
    pub message: String,
    /// The most recent scheduler events (oldest first) leading to the breach.
    pub trace: Vec<String>,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "error[{}]: {}", self.code, self.message)?;
        writeln!(f, "  counterexample trace ({} events):", self.trace.len())?;
        for e in &self.trace {
            writeln!(f, "    {e}")?;
        }
        Ok(())
    }
}

impl std::error::Error for InvariantViolation {}

/// Records scheduler events and checks the SF06xx invariants against them.
pub struct InvariantMonitor {
    recent: VecDeque<String>,
    last_time: Option<i64>,
}

impl Default for InvariantMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl InvariantMonitor {
    pub fn new() -> Self {
        Self {
            recent: VecDeque::with_capacity(TRACE_CAPACITY),
            last_time: None,
        }
    }

    /// Append one event to the trace ring buffer.
    pub fn record(&mut self, event: String) {
        if self.recent.len() == TRACE_CAPACITY {
            self.recent.pop_front();
        }
        self.recent.push_back(event);
    }

    /// Snapshot the current trace (oldest first).
    pub fn trace(&self) -> Vec<String> {
        self.recent.iter().cloned().collect()
    }

    fn violation(&self, code: &'static str, message: String) -> InvariantViolation {
        InvariantViolation {
            code,
            message,
            trace: self.trace(),
        }
    }

    /// SF0602: the event clock must be monotone.
    pub fn observe_clock(&mut self, now: i64) -> Result<(), InvariantViolation> {
        if let Some(last) = self.last_time {
            if now < last {
                return Err(self.violation(
                    codes::TIME_TRAVEL,
                    format!("event clock moved backwards: t={now} after t={last}"),
                ));
            }
        }
        self.last_time = Some(now);
        Ok(())
    }

    /// SF0601: free + used must equal the machine size at every instant.
    pub fn check_conservation(
        &self,
        now: i64,
        free: u32,
        used: u32,
        total: u32,
    ) -> Result<(), InvariantViolation> {
        if free + used != total {
            return Err(self.violation(
                codes::NODE_CONSERVATION,
                format!(
                    "node conservation broken at t={now}: free={free} + used={used} != \
                     total={total}"
                ),
            ));
        }
        Ok(())
    }

    /// SF0601: a rejected release (double-free / out-of-range) is a
    /// conservation breach caught at its source.
    pub fn pool_fault(&self, now: i64, job: u64, err: &PoolError) -> InvariantViolation {
        self.violation(
            codes::NODE_CONSERVATION,
            format!("invalid node release at t={now} retiring job {job}: {err}"),
        )
    }

    /// SF0603: independently re-derive the backfill admission condition for
    /// a job the scheduler chose to backfill. `shadow_time` is when the
    /// blocked head job is projected to start; `spare` is the node surplus
    /// beyond the head's need at that instant (before this job took any).
    #[allow(clippy::too_many_arguments)]
    pub fn check_backfill(
        &self,
        now: i64,
        job: u64,
        nodes: u32,
        walltime_secs: i64,
        shadow_time: i64,
        spare: u32,
        conservative: bool,
    ) -> Result<(), InvariantViolation> {
        let finishes_before_shadow = now + walltime_secs <= shadow_time;
        let fits_spare = !conservative && nodes <= spare;
        if !finishes_before_shadow && !fits_spare {
            return Err(self.violation(
                codes::BACKFILL_GUARANTEE,
                format!(
                    "backfilled job {job} ({nodes} nodes, walltime {walltime_secs}s, \
                     started t={now}) outlives the head reservation (shadow t={shadow_time}) \
                     and exceeds the {spare} spare node(s) — the reservation is delayed"
                ),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_monotone_passes_and_regression_fails() {
        let mut m = InvariantMonitor::new();
        m.observe_clock(10).unwrap();
        m.observe_clock(10).unwrap();
        m.observe_clock(20).unwrap();
        let v = m.observe_clock(5).unwrap_err();
        assert_eq!(v.code, codes::TIME_TRAVEL);
        assert!(v.message.contains("t=5"));
    }

    #[test]
    fn conservation_detects_leak_and_oversubscription() {
        let m = InvariantMonitor::new();
        m.check_conservation(0, 4, 4, 8).unwrap();
        let leak = m.check_conservation(7, 3, 4, 8).unwrap_err();
        assert_eq!(leak.code, codes::NODE_CONSERVATION);
        let over = m.check_conservation(7, 4, 5, 8).unwrap_err();
        assert_eq!(over.code, codes::NODE_CONSERVATION);
    }

    #[test]
    fn backfill_guarantee_admits_valid_and_rejects_delaying_jobs() {
        let m = InvariantMonitor::new();
        // Finishes before the shadow: fine.
        m.check_backfill(0, 1, 2, 500, 1000, 0, false).unwrap();
        // Outlives the shadow but fits spare under EASY: fine.
        m.check_backfill(0, 2, 2, 5000, 1000, 2, false).unwrap();
        // Same job under conservative: spare nodes are not usable.
        let v = m.check_backfill(0, 2, 2, 5000, 1000, 2, true).unwrap_err();
        assert_eq!(v.code, codes::BACKFILL_GUARANTEE);
        // Too wide for spare and too long for the window.
        let v = m.check_backfill(0, 3, 4, 5000, 1000, 2, false).unwrap_err();
        assert_eq!(v.code, codes::BACKFILL_GUARANTEE);
    }

    #[test]
    fn trace_ring_buffer_keeps_most_recent_events() {
        let mut m = InvariantMonitor::new();
        for i in 0..40 {
            m.record(format!("event {i}"));
        }
        let trace = m.trace();
        assert_eq!(trace.len(), TRACE_CAPACITY);
        assert_eq!(trace.first().map(String::as_str), Some("event 8"));
        assert_eq!(trace.last().map(String::as_str), Some("event 39"));
        // A violation carries the trace as its counterexample.
        m.observe_clock(10).unwrap();
        let v = m.observe_clock(0).unwrap_err();
        assert_eq!(v.trace.len(), TRACE_CAPACITY);
        let rendered = v.to_string();
        assert!(rendered.contains("error[SF0602]"));
        assert!(rendered.contains("event 39"));
    }
}
