//! The discrete-event scheduler: priority queue + backfill over a node pool.
//!
//! Events (submissions, completions, cancellations) drive the clock; after
//! each batch of same-timestamp events a scheduling pass runs: a main pass in
//! multifactor-priority order until the head of queue blocks, then a backfill
//! pass (EASY or conservative) that starts lower-priority jobs which do not
//! delay the blocked reservation(s). Jobs started by the backfill pass carry
//! the `SchedBackfill` flag — the "Backfill" special indicator the paper
//! extracts from sacct `Flags`.

use crate::invariant::{InvariantMonitor, InvariantViolation};
use crate::nodepool::{NodePool, PoolError};
use crate::request::{JobRequest, PlannedOutcome, SimOutcome};
use crate::system::{BackfillPolicy, SystemConfig};
use schedflow_model::state::JobState;
use schedflow_model::time::Timestamp;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Simulator errors: invalid requests detected before the run starts, plus
/// runtime faults (pool misuse, invariant breaches) detected during it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    UnknownPartition {
        job: u64,
        partition: String,
    },
    UnknownQos {
        job: u64,
        qos: String,
    },
    TooManyNodes {
        job: u64,
        nodes: u32,
        limit: u32,
    },
    WalltimeOverLimit {
        job: u64,
    },
    DuplicateId(u64),
    UnknownDependency {
        job: u64,
        dependency: u64,
    },
    /// The node pool rejected a release (verification disabled, so there is
    /// no event trace — enable it for a counterexample).
    Pool(PoolError),
    /// An SF06xx runtime invariant broke; carries the counterexample trace.
    Invariant(Box<InvariantViolation>),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnknownPartition { job, partition } => {
                write!(f, "job {job}: unknown partition {partition:?}")
            }
            SimError::UnknownQos { job, qos } => write!(f, "job {job}: unknown qos {qos:?}"),
            SimError::TooManyNodes { job, nodes, limit } => {
                write!(f, "job {job}: {nodes} nodes exceeds limit {limit}")
            }
            SimError::WalltimeOverLimit { job } => {
                write!(f, "job {job}: walltime exceeds partition limit")
            }
            SimError::DuplicateId(id) => write!(f, "duplicate job id {id}"),
            SimError::UnknownDependency { job, dependency } => {
                write!(f, "job {job}: depends on unknown job {dependency}")
            }
            SimError::Pool(e) => write!(f, "node pool fault: {e}"),
            SimError::Invariant(v) => write!(f, "{v}"),
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// Job arrives in the system.
    Submit(usize),
    /// Running job reaches its effective end.
    Finish(usize),
    /// Pending-cancel patience expires.
    CancelCheck(usize),
}

#[derive(Debug, PartialEq, Eq)]
struct Event {
    time: i64,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Submitted but dependency unmet.
    Held,
    /// Eligible, in queue.
    Pending,
    Running,
    Done,
}

struct JobSim {
    phase: Phase,
    eligible: Timestamp,
    start: Option<Timestamp>,
    end: Option<Timestamp>,
    state: JobState,
    exit_code: u8,
    exit_signal: u8,
    backfilled: bool,
    started_on_submit: bool,
    priority: u32,
    nodes: Vec<u32>,
    /// start + requested walltime, used for shadow-time projection.
    requested_end: i64,
}

/// The discrete-event scheduler simulator.
pub struct Simulator {
    config: SystemConfig,
    /// Run the SF06xx invariant monitor during [`Simulator::run`]. Defaults
    /// to on in debug builds (every test doubles as a monitor soak) and off
    /// in release builds.
    verify: bool,
    /// Test hook: release this job's nodes twice at retirement, forcing a
    /// conservation breach the monitor must catch.
    inject_double_release: Option<u64>,
}

impl Simulator {
    pub fn new(config: SystemConfig) -> Self {
        Self {
            config,
            verify: cfg!(debug_assertions),
            inject_double_release: None,
        }
    }

    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Enable or disable the SF06xx runtime invariant monitor (node
    /// conservation, clock monotonicity, backfill guarantee) regardless of
    /// build profile.
    pub fn with_verification(mut self, on: bool) -> Self {
        self.verify = on;
        self
    }

    /// Test hook: force a double release of `job`'s nodes when it retires,
    /// to exercise the SF0601 conservation monitor end to end.
    pub fn inject_double_release(mut self, job: u64) -> Self {
        self.inject_double_release = Some(job);
        self
    }

    /// Validate requests against the machine (partition existence & limits).
    ///
    /// A thin wrapper over [`crate::policy::validate_requests`] — the same
    /// admission predicates the static SF09xx policy analyzer probes with
    /// symbolic job classes, so static and runtime validation cannot drift.
    pub fn validate(&self, jobs: &[JobRequest]) -> Result<(), SimError> {
        crate::policy::validate_requests(&self.config, jobs)
    }

    /// Run the simulation to completion; outcomes are returned in the input
    /// order of `jobs`.
    pub fn run(&self, jobs: &[JobRequest]) -> Result<Vec<SimOutcome>, SimError> {
        self.validate(jobs)?;
        let n = jobs.len();
        let id_to_idx: HashMap<u64, usize> =
            jobs.iter().enumerate().map(|(i, j)| (j.id, i)).collect();

        let mut sims: Vec<JobSim> = jobs
            .iter()
            .map(|j| JobSim {
                phase: Phase::Held,
                eligible: j.submit,
                start: None,
                end: None,
                state: JobState::Pending,
                exit_code: 0,
                exit_signal: 0,
                backfilled: false,
                started_on_submit: false,
                priority: 0,
                nodes: Vec::new(),
                requested_end: 0,
            })
            .collect();

        let mut pool = NodePool::new(self.config.total_nodes);
        let mut events = BinaryHeap::with_capacity(n * 2);
        let mut seq = 0u64;
        let push =
            |events: &mut BinaryHeap<Reverse<Event>>, seq: &mut u64, time: i64, kind: EventKind| {
                *seq += 1;
                events.push(Reverse(Event {
                    time,
                    seq: *seq,
                    kind,
                }));
            };
        for (i, j) in jobs.iter().enumerate() {
            push(&mut events, &mut seq, j.submit.0, EventKind::Submit(i));
        }

        // dependents[dep_idx] = jobs waiting on it.
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut pending: Vec<usize> = Vec::new();
        let mut running: Vec<usize> = Vec::new();
        // Per (user, qos) running counts for QOS caps.
        let mut user_qos_running: HashMap<(u32, String), u32> = HashMap::new();
        // Decayed per-user usage (node-seconds) driving the fair-share factor.
        let mut usage = UsageTracker::new(self.config.weights.usage_halflife_secs);
        // SF06xx runtime monitor (debug/verify mode only).
        let mut monitor = self.verify.then(InvariantMonitor::new);
        let inject = self.inject_double_release;

        while let Some(Reverse(first)) = events.pop() {
            let now = first.time;
            if let Some(m) = monitor.as_mut() {
                m.observe_clock(now)
                    .map_err(|v| SimError::Invariant(Box::new(v)))?;
            }
            let mut batch = vec![first.kind];
            while let Some(Reverse(e)) = events.peek() {
                if e.time == now {
                    batch.push(events.pop().unwrap().0.kind);
                } else {
                    break;
                }
            }

            for kind in batch {
                match kind {
                    EventKind::Submit(i) => {
                        let dep_done = match jobs[i].dependency {
                            None => true,
                            Some(dep_id) => {
                                let di = id_to_idx[&dep_id];
                                if sims[di].phase == Phase::Done {
                                    true
                                } else {
                                    dependents[di].push(i);
                                    false
                                }
                            }
                        };
                        if dep_done {
                            if let Some(m) = monitor.as_mut() {
                                m.record(format!("t={now} submit job {}", jobs[i].id));
                            }
                            make_eligible(
                                i,
                                Timestamp(now),
                                jobs,
                                &mut sims,
                                &mut pending,
                                &mut events,
                                &mut seq,
                            );
                        }
                    }
                    EventKind::Finish(i) => {
                        // Stale events are possible: a preempted job already
                        // retired at preemption time.
                        if sims[i].phase != Phase::Running {
                            continue;
                        }
                        retire_running(
                            i,
                            now,
                            None,
                            jobs,
                            &mut sims,
                            &mut pending,
                            &mut running,
                            &mut pool,
                            &mut user_qos_running,
                            &mut usage,
                            &mut dependents,
                            &mut events,
                            &mut seq,
                            &mut monitor,
                            inject,
                        )?;
                    }
                    EventKind::CancelCheck(i) => {
                        if sims[i].phase == Phase::Pending {
                            if let Some(m) = monitor.as_mut() {
                                m.record(format!("t={now} cancel pending job {}", jobs[i].id));
                            }
                            sims[i].phase = Phase::Done;
                            sims[i].state = JobState::Cancelled;
                            let share =
                                usage.factor(jobs[i].user, now, self.machine_capacity_scale());
                            let p = self.priority(&jobs[i], &sims[i], now, share);
                            sims[i].priority = p;
                            pending.retain(|&p| p != i);
                            // Dependents of a cancelled job still become
                            // eligible (afterany), at cancellation time.
                            let deps = std::mem::take(&mut dependents[i]);
                            for d in deps {
                                make_eligible(
                                    d,
                                    Timestamp(now),
                                    jobs,
                                    &mut sims,
                                    &mut pending,
                                    &mut events,
                                    &mut seq,
                                );
                            }
                        }
                    }
                }
            }

            // Drive scheduling to a fixpoint: a pass may retire preempted
            // jobs whose dependents become eligible within the same instant.
            loop {
                let started = self.schedule_pass(
                    now,
                    jobs,
                    &mut sims,
                    &mut pending,
                    &mut running,
                    &mut pool,
                    &mut user_qos_running,
                    &mut usage,
                    &mut dependents,
                    &mut events,
                    &mut seq,
                    &mut monitor,
                    inject,
                )?;
                if started == 0 {
                    break;
                }
            }

            // SF0601: free + used == total after every settled instant.
            if let Some(m) = monitor.as_ref() {
                let used: u32 = running.iter().map(|&r| jobs[r].nodes).sum();
                m.check_conservation(now, pool.free_count(), used, pool.total())
                    .map_err(|v| SimError::Invariant(Box::new(v)))?;
            }
        }

        Ok(sims
            .into_iter()
            .zip(jobs)
            .map(|(s, j)| SimOutcome {
                id: j.id,
                eligible: s.eligible,
                start: s.start,
                end: s.end,
                state: if s.state == JobState::Pending {
                    // Jobs never released (dependency never finished) — the
                    // trace window closed on them; report as cancelled.
                    JobState::Cancelled
                } else {
                    s.state
                },
                exit_code: s.exit_code,
                exit_signal: s.exit_signal,
                backfilled: s.backfilled,
                started_on_submit: s.started_on_submit,
                priority: s.priority,
                node_indices: s.nodes,
            })
            .collect())
    }

    /// Scale that normalizes decayed usage for the fair-share factor: the
    /// node-seconds a ~5% machine share accrues over one half-life.
    fn machine_capacity_scale(&self) -> f64 {
        f64::from(self.config.total_nodes)
            * self.config.weights.usage_halflife_secs.max(1) as f64
            * 0.05
    }

    /// Multifactor priority (age + size + QOS + partition tier + fair-share).
    fn priority(&self, job: &JobRequest, sim: &JobSim, now: i64, fairshare: f64) -> u32 {
        let w = &self.config.weights;
        let age = (now - sim.eligible.0).clamp(0, w.max_age_secs) as f64;
        let age_factor = if w.max_age_secs > 0 {
            age / w.max_age_secs as f64
        } else {
            0.0
        };
        let size_factor = f64::from(job.nodes) / f64::from(self.config.total_nodes);
        let qos_weight = self
            .config
            .qos(&job.qos)
            .map_or(0.0, |q| f64::from(q.priority_weight));
        let tier = self
            .config
            .partition(&job.partition)
            .map_or(0.0, |p| f64::from(p.priority_tier));
        (1000.0
            + qos_weight
            + w.age * age_factor
            + w.size * size_factor
            + w.tier * tier
            + w.fairshare * fairshare)
            .max(0.0) as u32
    }

    #[allow(clippy::too_many_arguments)]
    fn schedule_pass(
        &self,
        now: i64,
        jobs: &[JobRequest],
        sims: &mut [JobSim],
        pending: &mut Vec<usize>,
        running: &mut Vec<usize>,
        pool: &mut NodePool,
        user_qos_running: &mut HashMap<(u32, String), u32>,
        usage: &mut UsageTracker,
        dependents: &mut [Vec<usize>],
        events: &mut BinaryHeap<Reverse<Event>>,
        seq: &mut u64,
        monitor: &mut Option<InvariantMonitor>,
        inject: Option<u64>,
    ) -> Result<usize, SimError> {
        if pending.is_empty() {
            return Ok(0);
        }
        // Priority order: descending priority, FIFO tiebreak on eligibility.
        let mut order: Vec<usize> = pending.clone();
        for &i in &order {
            let share = usage.factor(jobs[i].user, now, self.machine_capacity_scale());
            let p = self.priority(&jobs[i], &sims[i], now, share);
            sims[i].priority = p;
        }
        order.sort_by_key(|&i| (Reverse(sims[i].priority), sims[i].eligible.0, jobs[i].id));

        let mut started: Vec<usize> = Vec::new();
        let mut blocked: Vec<usize> = Vec::new();

        // Main pass: start in strict priority order until the head blocks.
        let mut cursor = 0usize;
        while cursor < order.len() {
            let i = order[cursor];
            cursor += 1;
            if self.qos_capped(&jobs[i], user_qos_running) {
                continue; // held by QOS limit; does not block others
            }
            let admitted = jobs[i].nodes <= pool.free_count()
                || self.try_preempt_for(
                    i,
                    now,
                    jobs,
                    sims,
                    pending,
                    running,
                    pool,
                    user_qos_running,
                    usage,
                    dependents,
                    events,
                    seq,
                    monitor,
                    inject,
                )?;
            if admitted {
                self.start_job(
                    i,
                    now,
                    false,
                    jobs,
                    sims,
                    pool,
                    user_qos_running,
                    events,
                    seq,
                    monitor,
                );
                running.push(i);
                started.push(i);
            } else {
                blocked.push(i);
                break;
            }
        }

        // Backfill pass.
        if !blocked.is_empty() && self.config.backfill != BackfillPolicy::None {
            // Project node availability from running jobs' *requested* ends.
            let mut frees: Vec<(i64, u32)> = running
                .iter()
                .map(|&r| (sims[r].requested_end, jobs[r].nodes))
                .collect();
            frees.sort_unstable();

            let head = blocked[0];
            let head_need = jobs[head].nodes;
            let (shadow_time, extra_at_shadow) = shadow(pool.free_count(), head_need, &frees);

            // Conservative: earliest reservation among the top blocked jobs;
            // candidates must finish before it. EASY: only the head reserves,
            // and spare nodes beyond the head's need may run long jobs.
            let conservative = self.config.backfill == BackfillPolicy::Conservative;
            let mut extra = extra_at_shadow;
            let mut examined = 0usize;
            while cursor < order.len() && examined < self.config.bf_max_job_test {
                let i = order[cursor];
                cursor += 1;
                examined += 1;
                if self.qos_capped(&jobs[i], user_qos_running) {
                    continue;
                }
                if jobs[i].nodes > pool.free_count() {
                    continue;
                }
                let finishes_before_shadow = now + jobs[i].walltime_secs <= shadow_time;
                let fits_spare = !conservative && jobs[i].nodes <= extra;
                if finishes_before_shadow || fits_spare {
                    // SF0603: independently re-derive the admission condition
                    // before committing the start.
                    if let Some(m) = monitor.as_ref() {
                        m.check_backfill(
                            now,
                            jobs[i].id,
                            jobs[i].nodes,
                            jobs[i].walltime_secs,
                            shadow_time,
                            extra,
                            conservative,
                        )
                        .map_err(|v| SimError::Invariant(Box::new(v)))?;
                    }
                    self.start_job(
                        i,
                        now,
                        true,
                        jobs,
                        sims,
                        pool,
                        user_qos_running,
                        events,
                        seq,
                        monitor,
                    );
                    running.push(i);
                    started.push(i);
                    if !finishes_before_shadow {
                        extra -= jobs[i].nodes;
                    }
                }
            }
        }

        pending.retain(|p| !started.contains(p));
        Ok(started.len())
    }

    /// Preemptive scheduling: when `i`'s QOS may preempt, retire just enough
    /// preemptible running jobs (most recently started first, minimizing
    /// lost work) to fit it. Returns true when enough nodes were freed —
    /// the NERSC "realtime" / urgent-computing pattern the paper discusses.
    #[allow(clippy::too_many_arguments)]
    fn try_preempt_for(
        &self,
        i: usize,
        now: i64,
        jobs: &[JobRequest],
        sims: &mut [JobSim],
        pending: &mut Vec<usize>,
        running: &mut Vec<usize>,
        pool: &mut NodePool,
        user_qos_running: &mut HashMap<(u32, String), u32>,
        usage: &mut UsageTracker,
        dependents: &mut [Vec<usize>],
        events: &mut BinaryHeap<Reverse<Event>>,
        seq: &mut u64,
        monitor: &mut Option<InvariantMonitor>,
        inject: Option<u64>,
    ) -> Result<bool, SimError> {
        let can_preempt = self.config.qos(&jobs[i].qos).is_some_and(|q| q.can_preempt);
        if !can_preempt {
            return Ok(false);
        }
        let mut victims: Vec<usize> = running
            .iter()
            .copied()
            .filter(|&r| self.config.qos(&jobs[r].qos).is_some_and(|q| q.preemptible))
            .collect();
        // Most recently started first: least work lost.
        victims.sort_by_key(|&r| Reverse(sims[r].start.map_or(0, |t| t.0)));
        let mut freed = pool.free_count();
        let mut chosen = Vec::new();
        for v in victims {
            if freed >= jobs[i].nodes {
                break;
            }
            freed += jobs[v].nodes;
            chosen.push(v);
        }
        if freed < jobs[i].nodes {
            return Ok(false);
        }
        for v in chosen {
            retire_running(
                v,
                now,
                Some(JobState::Preempted),
                jobs,
                sims,
                pending,
                running,
                pool,
                user_qos_running,
                usage,
                dependents,
                events,
                seq,
                monitor,
                inject,
            )?;
        }
        Ok(true)
    }

    fn qos_capped(&self, job: &JobRequest, user_qos_running: &HashMap<(u32, String), u32>) -> bool {
        let cap = self
            .config
            .qos(&job.qos)
            .map_or(0, |q| q.max_running_per_user);
        if cap == 0 {
            return false;
        }
        user_qos_running
            .get(&(job.user, job.qos.clone()))
            .copied()
            .unwrap_or(0)
            >= cap
    }

    #[allow(clippy::too_many_arguments)]
    fn start_job(
        &self,
        i: usize,
        now: i64,
        backfilled: bool,
        jobs: &[JobRequest],
        sims: &mut [JobSim],
        pool: &mut NodePool,
        user_qos_running: &mut HashMap<(u32, String), u32>,
        events: &mut BinaryHeap<Reverse<Event>>,
        seq: &mut u64,
        monitor: &mut Option<InvariantMonitor>,
    ) {
        let job = &jobs[i];
        if let Some(m) = monitor.as_mut() {
            m.record(format!(
                "t={now} start job {} on {} node(s){}",
                job.id,
                job.nodes,
                if backfilled { " (backfill)" } else { "" }
            ));
        }
        let nodes = pool.allocate(job.nodes).expect("checked fit");
        let (runtime, state, exit_code, exit_signal) = effective_run(job);
        let sim = &mut sims[i];
        sim.phase = Phase::Running;
        sim.start = Some(Timestamp(now));
        sim.end = Some(Timestamp(now + runtime));
        sim.requested_end = now + job.walltime_secs;
        sim.state = state;
        sim.exit_code = exit_code;
        sim.exit_signal = exit_signal;
        sim.backfilled = backfilled;
        sim.started_on_submit = now == sim.eligible.0;
        sim.nodes = nodes;
        *user_qos_running
            .entry((job.user, job.qos.clone()))
            .or_insert(0) += 1;
        *seq += 1;
        events.push(Reverse(Event {
            time: now + runtime,
            seq: *seq,
            kind: EventKind::Finish(i),
        }));
    }
}

fn make_eligible(
    i: usize,
    now: Timestamp,
    jobs: &[JobRequest],
    sims: &mut [JobSim],
    pending: &mut Vec<usize>,
    events: &mut BinaryHeap<Reverse<Event>>,
    seq: &mut u64,
) {
    let sim = &mut sims[i];
    debug_assert_eq!(sim.phase, Phase::Held);
    sim.phase = Phase::Pending;
    sim.eligible = now.max(jobs[i].submit);
    pending.push(i);
    if let PlannedOutcome::CancelPending { patience_secs } = jobs[i].outcome {
        *seq += 1;
        events.push(Reverse(Event {
            time: sim.eligible.0 + patience_secs,
            seq: *seq,
            kind: EventKind::CancelCheck(i),
        }));
    }
}

/// Exponentially decayed per-user resource usage (node-seconds), the input
/// to Slurm's fair-share priority factor: users who consumed little lately
/// score near 1, heavy users decay toward 0.
struct UsageTracker {
    halflife_secs: i64,
    /// user → (usage at `last`, last update time).
    usage: HashMap<u32, (f64, i64)>,
}

impl UsageTracker {
    fn new(halflife_secs: i64) -> Self {
        Self {
            halflife_secs: halflife_secs.max(1),
            usage: HashMap::new(),
        }
    }

    fn decayed(&self, user: u32, now: i64) -> f64 {
        match self.usage.get(&user) {
            None => 0.0,
            Some(&(u, last)) => {
                let dt = (now - last).max(0) as f64;
                u * 0.5f64.powf(dt / self.halflife_secs as f64)
            }
        }
    }

    /// Add `node_seconds` of usage for `user`, observed at `now`.
    fn charge(&mut self, user: u32, node_seconds: f64, now: i64) {
        let current = self.decayed(user, now);
        self.usage.insert(user, (current + node_seconds, now));
    }

    /// Fair-share factor in (0, 1]: `2^(-usage/scale)`.
    fn factor(&self, user: u32, now: i64, scale: f64) -> f64 {
        let u = self.decayed(user, now);
        if scale <= 0.0 {
            return 1.0;
        }
        0.5f64.powf(u / scale)
    }
}

/// Retire a running job: at its natural end (`state_override = None`, the
/// planned state applies) or by preemption (`Some(Preempted)`, ending now).
/// Frees nodes, updates QOS counts, and releases dependents (afterany).
#[allow(clippy::too_many_arguments)]
fn retire_running(
    i: usize,
    now: i64,
    state_override: Option<JobState>,
    jobs: &[JobRequest],
    sims: &mut [JobSim],
    pending: &mut Vec<usize>,
    running: &mut Vec<usize>,
    pool: &mut NodePool,
    user_qos_running: &mut HashMap<(u32, String), u32>,
    usage: &mut UsageTracker,
    dependents: &mut [Vec<usize>],
    events: &mut BinaryHeap<Reverse<Event>>,
    seq: &mut u64,
    monitor: &mut Option<InvariantMonitor>,
    inject: Option<u64>,
) -> Result<(), SimError> {
    debug_assert_eq!(sims[i].phase, Phase::Running);
    if let Some(start) = sims[i].start {
        let end = state_override.map_or_else(|| sims[i].end.map_or(now, |e| e.0), |_| now);
        usage.charge(
            jobs[i].user,
            f64::from(jobs[i].nodes) * (end - start.0).max(0) as f64,
            now,
        );
    }
    sims[i].phase = Phase::Done;
    if let Some(state) = state_override {
        sims[i].state = state;
        sims[i].end = Some(Timestamp(now));
        // SIGTERM delivered by the preemption plugin.
        sims[i].exit_code = 0;
        sims[i].exit_signal = 15;
    }
    if let Some(m) = monitor.as_mut() {
        m.record(format!(
            "t={now} retire job {}: release nodes {:?}",
            jobs[i].id, sims[i].nodes
        ));
    }
    let mut released = pool.release(&sims[i].nodes);
    if released.is_ok() && inject == Some(jobs[i].id) {
        // Forced fault for the SF0601 acceptance path: release again.
        released = pool.release(&sims[i].nodes);
    }
    if let Err(e) = released {
        return Err(match monitor.as_ref() {
            Some(m) => SimError::Invariant(Box::new(m.pool_fault(now, jobs[i].id, &e))),
            None => SimError::Pool(e),
        });
    }
    running.retain(|&r| r != i);
    let key = (jobs[i].user, jobs[i].qos.clone());
    if let Some(c) = user_qos_running.get_mut(&key) {
        *c = c.saturating_sub(1);
    }
    let deps = std::mem::take(&mut dependents[i]);
    for d in deps {
        make_eligible(d, Timestamp(now), jobs, sims, pending, events, seq);
    }
    Ok(())
}

/// Effective runtime and final state once a job starts.
fn effective_run(job: &JobRequest) -> (i64, JobState, u8, u8) {
    let limit = job.walltime_secs;
    let frac = |at: f64| ((job.actual_secs as f64 * at) as i64).clamp(1, limit.max(1));
    match job.outcome {
        PlannedOutcome::Complete | PlannedOutcome::CancelPending { .. } => {
            if job.actual_secs > limit {
                (limit, JobState::Timeout, 0, 1)
            } else {
                (job.actual_secs.max(1), JobState::Completed, 0, 0)
            }
        }
        PlannedOutcome::Fail { at, exit_code } => (frac(at), JobState::Failed, exit_code, 0),
        PlannedOutcome::CancelRunning { at } => (frac(at), JobState::Cancelled, 0, 15),
        PlannedOutcome::NodeFail { at } => (frac(at), JobState::NodeFail, 0, 0),
        PlannedOutcome::OutOfMemory { at } => (frac(at), JobState::OutOfMemory, 0, 9),
    }
}

/// Given current free nodes, the head job's need, and projected `(end, nodes)`
/// frees sorted by time: the time the head could start (shadow time) and the
/// spare nodes beyond its need at that instant.
fn shadow(mut free: u32, need: u32, frees: &[(i64, u32)]) -> (i64, u32) {
    for &(t, n) in frees {
        free += n;
        if free >= need {
            return (t, free - need);
        }
    }
    // Head can never start from projections (shouldn't happen when the
    // machine is large enough); treat as infinitely far.
    (i64::MAX / 4, free.saturating_sub(need))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;

    fn t0() -> Timestamp {
        Timestamp::from_ymd(2024, 1, 1)
    }

    fn run_toy(jobs: Vec<JobRequest>) -> Vec<SimOutcome> {
        Simulator::new(SystemConfig::toy(8)).run(&jobs).unwrap()
    }

    #[test]
    fn empty_machine_starts_job_immediately() {
        let out = run_toy(vec![JobRequest::simple(1, t0(), 4, 3600, 1800)]);
        let o = &out[0];
        assert_eq!(o.start, Some(t0()));
        assert_eq!(o.end, Some(t0() + 1800));
        assert_eq!(o.state, JobState::Completed);
        assert!(o.started_on_submit);
        assert!(!o.backfilled);
        assert_eq!(o.node_indices.len(), 4);
    }

    #[test]
    fn fifo_when_machine_full() {
        let out = run_toy(vec![
            JobRequest::simple(1, t0(), 8, 3600, 3600),
            JobRequest::simple(2, t0() + 10, 8, 3600, 100),
        ]);
        assert_eq!(out[0].start, Some(t0()));
        // Second job waits for the first to finish.
        assert_eq!(out[1].start, Some(t0() + 3600));
        assert_eq!(out[1].wait_secs(), Some(3590));
        assert!(!out[1].backfilled);
    }

    #[test]
    fn timeout_when_actual_exceeds_limit() {
        let out = run_toy(vec![JobRequest::simple(1, t0(), 1, 600, 1200)]);
        assert_eq!(out[0].state, JobState::Timeout);
        assert_eq!(out[0].elapsed_secs(), Some(600));
    }

    #[test]
    fn easy_backfill_starts_short_job_ahead() {
        // J1 occupies 6/8 nodes for 1000s. J2 (8 nodes) blocks.
        // J3 (2 nodes, 500s) fits the 2 idle nodes and finishes before the
        // shadow time (t0+1000) → backfilled.
        let out = run_toy(vec![
            JobRequest::simple(1, t0(), 6, 1000, 1000),
            JobRequest::simple(2, t0() + 1, 8, 1000, 100),
            JobRequest::simple(3, t0() + 2, 2, 500, 400),
        ]);
        assert_eq!(out[2].start, Some(t0() + 2));
        assert!(out[2].backfilled);
        // J2 starts when J1 ends, undelayed by the backfill.
        assert_eq!(out[1].start, Some(t0() + 1000));
    }

    #[test]
    fn backfill_does_not_delay_reservation() {
        // J3 would need 2 nodes for 2000s — longer than the shadow window and
        // wider than the spare (8-node head needs everything) → must wait.
        let out = run_toy(vec![
            JobRequest::simple(1, t0(), 6, 1000, 1000),
            JobRequest::simple(2, t0() + 1, 8, 1000, 100),
            JobRequest::simple(3, t0() + 2, 2, 2000, 1900),
        ]);
        // J2 must still start exactly at its shadow time.
        assert_eq!(out[1].start, Some(t0() + 1000));
        // J3 started only after J2 (or at least never before the shadow).
        assert!(out[2].start.unwrap().0 >= t0().0 + 1000);
    }

    #[test]
    fn easy_spare_nodes_run_long_narrow_jobs() {
        // Head needs 6 of 8; with 4 nodes busy (ends t+1000) and 4 free:
        // shadow frees 8 ≥ 6, extra = 2. A 2-node long job may run on spare.
        let out = run_toy(vec![
            JobRequest::simple(1, t0(), 4, 1000, 1000),
            JobRequest::simple(2, t0() + 1, 6, 1000, 100),
            JobRequest::simple(3, t0() + 2, 2, 5000, 4900),
        ]);
        assert_eq!(
            out[2].start,
            Some(t0() + 2),
            "long narrow job backfills on spare nodes"
        );
        assert!(out[2].backfilled);
        assert_eq!(out[1].start, Some(t0() + 1000));
    }

    #[test]
    fn conservative_rejects_spare_node_overruns_easy_allows() {
        // Same scenario as easy_spare_nodes_run_long_narrow_jobs: the 2-node
        // job outlives the shadow window but fits the spare nodes. EASY
        // starts it; conservative (which protects every projected
        // reservation) does not.
        let jobs = [
            JobRequest::simple(1, t0(), 4, 1000, 1000),
            JobRequest::simple(2, t0() + 1, 6, 1000, 100),
            JobRequest::simple(3, t0() + 2, 2, 5000, 4900),
        ];
        let mut cfg = SystemConfig::toy(8);
        cfg.backfill = BackfillPolicy::Conservative;
        let conservative = Simulator::new(cfg).run(&jobs).unwrap();
        assert!(
            conservative[2].start.unwrap().0 > t0().0 + 2,
            "conservative defers the overrunning candidate"
        );
        let easy = Simulator::new(SystemConfig::toy(8)).run(&jobs).unwrap();
        assert_eq!(easy[2].start, Some(t0() + 2), "EASY uses the spare nodes");
    }

    #[test]
    fn no_backfill_policy_blocks_queue() {
        let mut cfg = SystemConfig::toy(8);
        cfg.backfill = BackfillPolicy::None;
        let out = Simulator::new(cfg)
            .run(&[
                JobRequest::simple(1, t0(), 6, 1000, 1000),
                JobRequest::simple(2, t0() + 1, 8, 1000, 100),
                JobRequest::simple(3, t0() + 2, 2, 500, 400),
            ])
            .unwrap();
        // Without backfill, J3 cannot jump ahead of blocked J2.
        assert!(out[2].start.unwrap().0 >= out[1].start.unwrap().0);
    }

    #[test]
    fn failed_job_records_exit_code() {
        let mut j = JobRequest::simple(1, t0(), 1, 3600, 3000);
        j.outcome = PlannedOutcome::Fail {
            at: 0.5,
            exit_code: 2,
        };
        let out = run_toy(vec![j]);
        assert_eq!(out[0].state, JobState::Failed);
        assert_eq!(out[0].exit_code, 2);
        assert_eq!(out[0].elapsed_secs(), Some(1500));
    }

    #[test]
    fn cancel_pending_fires_when_queue_too_slow() {
        let mut j2 = JobRequest::simple(2, t0() + 1, 8, 3600, 100);
        j2.outcome = PlannedOutcome::CancelPending { patience_secs: 500 };
        let out = run_toy(vec![JobRequest::simple(1, t0(), 8, 3600, 3600), j2]);
        assert_eq!(out[1].state, JobState::Cancelled);
        assert_eq!(out[1].start, None);
    }

    #[test]
    fn cancel_pending_runs_if_started_in_time() {
        let mut j = JobRequest::simple(1, t0(), 2, 3600, 300);
        j.outcome = PlannedOutcome::CancelPending { patience_secs: 500 };
        let out = run_toy(vec![j]);
        assert_eq!(out[0].state, JobState::Completed);
    }

    #[test]
    fn dependency_waits_for_parent() {
        let mut child = JobRequest::simple(2, t0(), 1, 600, 300);
        child.dependency = Some(1);
        let out = run_toy(vec![JobRequest::simple(1, t0(), 1, 600, 500), child]);
        assert_eq!(out[1].eligible, t0() + 500);
        assert_eq!(out[1].start, Some(t0() + 500));
        // Wait measured from eligibility is zero.
        assert_eq!(out[1].wait_secs(), Some(0));
    }

    #[test]
    fn dependency_on_failed_parent_still_releases() {
        let mut parent = JobRequest::simple(1, t0(), 1, 600, 500);
        parent.outcome = PlannedOutcome::Fail {
            at: 0.2,
            exit_code: 1,
        };
        let mut child = JobRequest::simple(2, t0(), 1, 600, 300);
        child.dependency = Some(1);
        let out = run_toy(vec![parent, child]);
        assert_eq!(out[1].state, JobState::Completed);
        assert_eq!(out[1].eligible, t0() + 100);
    }

    #[test]
    fn validation_rejects_bad_requests() {
        let sim = Simulator::new(SystemConfig::toy(8));
        let mut j = JobRequest::simple(1, t0(), 99, 600, 300);
        assert!(matches!(
            sim.run(&[j.clone()]),
            Err(SimError::TooManyNodes { .. })
        ));
        j.nodes = 1;
        j.partition = "gpu".into();
        assert!(matches!(
            sim.run(&[j.clone()]),
            Err(SimError::UnknownPartition { .. })
        ));
        j.partition = "batch".into();
        j.walltime_secs = 999_999_999;
        assert!(matches!(
            sim.run(&[j.clone()]),
            Err(SimError::WalltimeOverLimit { .. })
        ));
        j.walltime_secs = 600;
        let dup = JobRequest::simple(1, t0(), 1, 600, 300);
        assert!(matches!(
            sim.run(&[j.clone(), dup]),
            Err(SimError::DuplicateId(1))
        ));
        j.dependency = Some(77);
        assert!(matches!(
            sim.run(&[j]),
            Err(SimError::UnknownDependency { .. })
        ));
    }

    #[test]
    fn fairshare_boosts_light_users_in_queue_order() {
        // Machine busy; user 0 has burned massive recent usage, user 1 none.
        // Two identical jobs queue; the light user's starts first despite
        // submitting later.
        let mut cfg = SystemConfig::toy(8);
        cfg.weights.fairshare = 50_000.0; // dominate the age factor
        let sim = Simulator::new(cfg);
        let mut history = JobRequest::simple(1, t0(), 8, 10_000, 9_000);
        history.user = 0; // charges user 0 heavily when it finishes
        let mut heavy = JobRequest::simple(2, t0() + 10, 8, 2000, 500);
        heavy.user = 0;
        let mut light = JobRequest::simple(3, t0() + 20, 8, 2000, 500);
        light.user = 1;
        let out = sim.run(&[history, heavy, light]).unwrap();
        assert!(
            out[2].start.unwrap() < out[1].start.unwrap(),
            "light user jumps the heavy user: {:?} vs {:?}",
            out[2].start,
            out[1].start
        );
    }

    #[test]
    fn fairshare_decays_over_time() {
        // Same scenario, but the contended jobs arrive ~120 half-lives after
        // user 0's usage — the penalty decays to nothing and the earlier
        // submission wins on the FIFO tiebreak again.
        let mut cfg = SystemConfig::toy(8);
        cfg.weights.fairshare = 50_000.0;
        cfg.weights.usage_halflife_secs = 600;
        let sim = Simulator::new(cfg);
        let mut history = JobRequest::simple(1, t0(), 8, 10_000, 9_000);
        history.user = 0;
        let late = t0() + 9_000 + 20 * 3600; // long idle gap
        let mut blocker = JobRequest::simple(2, late, 8, 10_000, 3000);
        blocker.user = 2;
        let mut heavy = JobRequest::simple(3, late + 10, 8, 2000, 500);
        heavy.user = 0;
        let mut light = JobRequest::simple(4, late + 20, 8, 2000, 500);
        light.user = 1;
        let out = sim.run(&[history, blocker, heavy, light]).unwrap();
        assert!(
            out[2].start.unwrap() <= out[3].start.unwrap(),
            "after decay, earlier submission wins again"
        );
    }

    #[test]
    fn conservation_of_nodes() {
        // Stress: many random-ish jobs; the pool must never oversubscribe.
        // The SF0601 monitor (on by default in debug builds) checks
        // free + used == total after every event — an Ok run is the
        // assertion.
        let mut jobs = Vec::new();
        for i in 0..200u64 {
            jobs.push(JobRequest::simple(
                i,
                t0() + (i as i64 * 37) % 5000,
                (i % 7 + 1) as u32,
                3600,
                ((i * 131) % 3000 + 10) as i64,
            ));
        }
        let out = run_toy(jobs);
        assert_eq!(out.len(), 200);
        assert!(out.iter().all(|o| o.state == JobState::Completed));
        // All jobs ran within machine capacity.
        assert!(out.iter().all(|o| o.node_indices.len() <= 8));
    }

    #[test]
    fn injected_double_release_caught_with_counterexample_trace() {
        let sim = Simulator::new(SystemConfig::toy(8))
            .with_verification(true)
            .inject_double_release(1);
        let err = sim
            .run(&[
                JobRequest::simple(1, t0(), 4, 3600, 1800),
                JobRequest::simple(2, t0() + 10, 2, 600, 300),
            ])
            .unwrap_err();
        match err {
            SimError::Invariant(v) => {
                assert_eq!(v.code, crate::invariant::codes::NODE_CONSERVATION);
                assert!(v.message.contains("double free"), "{}", v.message);
                assert!(v.message.contains("job 1"), "{}", v.message);
                assert!(
                    v.trace.iter().any(|e| e.contains("start job 1")),
                    "trace names the start event: {:?}",
                    v.trace
                );
                assert!(
                    v.trace.iter().any(|e| e.contains("retire job 1")),
                    "trace names the retire event: {:?}",
                    v.trace
                );
                let rendered = format!("{v}");
                assert!(rendered.contains("error[SF0601]"));
                assert!(rendered.contains("counterexample trace"));
            }
            other => panic!("expected invariant violation, got {other:?}"),
        }
    }

    #[test]
    fn injection_without_monitor_is_a_typed_pool_error() {
        // With verification off there is no trace, but the fault still
        // surfaces as a typed error instead of being absorbed.
        let sim = Simulator::new(SystemConfig::toy(8))
            .with_verification(false)
            .inject_double_release(1);
        let err = sim
            .run(&[JobRequest::simple(1, t0(), 1, 600, 300)])
            .unwrap_err();
        assert_eq!(err, SimError::Pool(PoolError::DoubleFree { node: 0 }));
    }

    #[test]
    fn urgent_preempts_standby_but_not_normal() {
        let mut cfg = SystemConfig::toy(8);
        cfg.qos.push(schedflow_model::partition::Qos::standby());
        cfg.qos.push(schedflow_model::partition::Qos::urgent());
        let sim = Simulator::new(cfg);

        // Standby filler holds the machine; urgent arrives and preempts it.
        let mut filler = JobRequest::simple(1, t0(), 8, 4000, 4000);
        filler.qos = "standby".into();
        let mut urgent = JobRequest::simple(2, t0() + 100, 4, 1000, 500);
        urgent.qos = "urgent".into();
        let out = sim.run(&[filler, urgent]).unwrap();
        assert_eq!(out[0].state, JobState::Preempted);
        assert_eq!(out[0].end, Some(t0() + 100), "preempted at urgent arrival");
        assert_eq!(out[0].exit_signal, 15);
        assert_eq!(out[1].start, Some(t0() + 100), "urgent starts immediately");
        assert_eq!(out[1].state, JobState::Completed);
    }

    #[test]
    fn urgent_does_not_preempt_non_preemptible_work() {
        let mut cfg = SystemConfig::toy(8);
        cfg.qos.push(schedflow_model::partition::Qos::urgent());
        let sim = Simulator::new(cfg);
        let filler = JobRequest::simple(1, t0(), 8, 2000, 2000); // normal QOS
        let mut urgent = JobRequest::simple(2, t0() + 100, 4, 1000, 500);
        urgent.qos = "urgent".into();
        let out = sim.run(&[filler, urgent]).unwrap();
        assert_eq!(out[0].state, JobState::Completed, "normal work untouched");
        assert_eq!(out[1].start, Some(t0() + 2000), "urgent waits for the end");
    }

    #[test]
    fn preemption_frees_only_what_is_needed() {
        let mut cfg = SystemConfig::toy(8);
        cfg.qos.push(schedflow_model::partition::Qos::standby());
        cfg.qos.push(schedflow_model::partition::Qos::urgent());
        let sim = Simulator::new(cfg);
        // Two standby jobs of 4 nodes each; urgent needs 4 → one victim.
        let mut s1 = JobRequest::simple(1, t0(), 4, 4000, 4000);
        s1.qos = "standby".into();
        let mut s2 = JobRequest::simple(2, t0() + 10, 4, 4000, 4000);
        s2.qos = "standby".into();
        let mut urgent = JobRequest::simple(3, t0() + 100, 4, 1000, 500);
        urgent.qos = "urgent".into();
        let out = sim.run(&[s1, s2, urgent]).unwrap();
        let preempted = out
            .iter()
            .filter(|o| o.state == JobState::Preempted)
            .count();
        assert_eq!(preempted, 1, "exactly one victim");
        // The most recently started standby is the victim (least work lost).
        assert_eq!(out[1].state, JobState::Preempted);
        assert_eq!(out[0].state, JobState::Completed);
    }

    #[test]
    fn dependents_of_preempted_jobs_are_released() {
        let mut cfg = SystemConfig::toy(8);
        cfg.qos.push(schedflow_model::partition::Qos::standby());
        cfg.qos.push(schedflow_model::partition::Qos::urgent());
        let sim = Simulator::new(cfg);
        let mut parent = JobRequest::simple(1, t0(), 8, 4000, 4000);
        parent.qos = "standby".into();
        let mut child = JobRequest::simple(2, t0(), 1, 600, 300);
        child.dependency = Some(1);
        let mut urgent = JobRequest::simple(3, t0() + 100, 8, 1000, 500);
        urgent.qos = "urgent".into();
        let out = sim.run(&[parent, child, urgent]).unwrap();
        assert_eq!(out[0].state, JobState::Preempted);
        // afterany: the child becomes eligible at preemption time.
        assert_eq!(out[1].eligible, t0() + 100);
        assert_eq!(out[1].state, JobState::Completed);
    }

    #[test]
    fn higher_qos_jumps_queue() {
        let mut cfg = SystemConfig::toy(8);
        cfg.qos.push(schedflow_model::partition::Qos::urgent());
        let sim = Simulator::new(cfg);
        // Fill the machine, then queue a normal and an urgent job.
        let filler = JobRequest::simple(1, t0(), 8, 2000, 2000);
        let normal = JobRequest::simple(2, t0() + 10, 8, 1000, 100);
        let mut urgent = JobRequest::simple(3, t0() + 20, 8, 1000, 100);
        urgent.qos = "urgent".into();
        let out = sim.run(&[filler, normal, urgent]).unwrap();
        // Urgent starts before normal despite later submission.
        assert!(out[2].start.unwrap() < out[1].start.unwrap());
    }
}
