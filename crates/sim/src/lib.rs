//! # schedflow-sim
//!
//! A discrete-event Slurm-like scheduler simulator.
//!
//! The paper analyzes traces whose scheduling artifacts (queue waits,
//! `SchedBackfill` flags, timeout/cancel states) were produced by Frontier's
//! real scheduler. Since those traces are not public, this crate *produces*
//! them: workload generators emit [`request::JobRequest`] submissions, and the
//! simulator plays them through a multifactor-priority queue with EASY or
//! conservative backfilling over a [`nodepool::NodePool`], yielding
//! [`request::SimOutcome`]s whose waits, flags, and end states emerge from the
//! same mechanisms the paper observes.
//!
//! [`system::SystemConfig`] ships calibrated Frontier and Andes machine
//! profiles; [`metrics`] summarizes runs for the policy-ablation benches.
//! [`invariant`] hosts the SF06xx runtime monitors (node conservation, clock
//! monotonicity, EASY-backfill guarantee) checked during [`Simulator::run`].
//! [`policy`] hosts the admission predicates shared with the static SF09xx
//! policy analyzer plus the starvation-witness replayer.

pub mod invariant;
pub mod metrics;
pub mod nodepool;
pub mod policy;
pub mod request;
pub mod sched;
pub mod system;

pub use invariant::{InvariantMonitor, InvariantViolation};
pub use metrics::{metrics, occupancy_series, SimMetrics};
pub use nodepool::{NodePool, PoolError};
pub use policy::{replay, ContrastEdit, PolicyWitness, ReplayReport, WitnessExpectation};
pub use request::{JobRequest, PlannedOutcome, SimOutcome};
pub use sched::{SimError, Simulator};
pub use system::{BackfillPolicy, PriorityWeights, SystemConfig, FRONTIER_USABLE_CORES};
