//! A minimal Markdown-to-HTML converter for analyst reports.
//!
//! Supports the subset the insight layer emits: `##` headings, `-` bullet
//! lists, `**bold**`, and paragraphs. Everything is HTML-escaped first.

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Inline formatting: `**bold**`.
fn inline(s: &str) -> String {
    let escaped = escape(s);
    let mut out = String::with_capacity(escaped.len());
    let mut rest = escaped.as_str();
    let mut open = false;
    while let Some(pos) = rest.find("**") {
        out.push_str(&rest[..pos]);
        out.push_str(if open { "</strong>" } else { "<strong>" });
        open = !open;
        rest = &rest[pos + 2..];
    }
    out.push_str(rest);
    if open {
        // Unbalanced marker: close to keep HTML valid.
        out.push_str("</strong>");
    }
    out
}

/// Convert a Markdown fragment to HTML.
pub fn to_html(md: &str) -> String {
    let mut out = String::new();
    let mut in_list = false;
    let mut paragraph: Vec<String> = Vec::new();

    let flush_paragraph = |out: &mut String, paragraph: &mut Vec<String>| {
        if !paragraph.is_empty() {
            out.push_str("<p>");
            out.push_str(&paragraph.join(" "));
            out.push_str("</p>\n");
            paragraph.clear();
        }
    };

    for line in md.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            flush_paragraph(&mut out, &mut paragraph);
            if in_list {
                out.push_str("</ul>\n");
                in_list = false;
            }
        } else if let Some(h) = trimmed.strip_prefix("## ") {
            flush_paragraph(&mut out, &mut paragraph);
            if in_list {
                out.push_str("</ul>\n");
                in_list = false;
            }
            out.push_str(&format!("<h2>{}</h2>\n", inline(h)));
        } else if let Some(h) = trimmed.strip_prefix("# ") {
            flush_paragraph(&mut out, &mut paragraph);
            if in_list {
                out.push_str("</ul>\n");
                in_list = false;
            }
            out.push_str(&format!("<h1>{}</h1>\n", inline(h)));
        } else if let Some(item) = trimmed.strip_prefix("- ") {
            flush_paragraph(&mut out, &mut paragraph);
            if !in_list {
                out.push_str("<ul>\n");
                in_list = true;
            }
            out.push_str(&format!("<li>{}</li>\n", inline(item)));
        } else {
            if in_list {
                out.push_str("</ul>\n");
                in_list = false;
            }
            paragraph.push(inline(trimmed));
        }
    }
    flush_paragraph(&mut out, &mut paragraph);
    if in_list {
        out.push_str("</ul>\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headings_lists_and_bold() {
        let md = "## Wait times\n\nSome **important** text.\n\n- first\n- second\n";
        let html = to_html(md);
        assert!(html.contains("<h2>Wait times</h2>"));
        assert!(html.contains("<p>Some <strong>important</strong> text.</p>"));
        assert!(html.contains("<ul>\n<li>first</li>\n<li>second</li>\n</ul>"));
    }

    #[test]
    fn multiline_paragraphs_join() {
        let html = to_html("line one\nline two\n\nnext para");
        assert!(html.contains("<p>line one line two</p>"));
        assert!(html.contains("<p>next para</p>"));
    }

    #[test]
    fn html_is_escaped() {
        let html = to_html("a < b & c > d");
        assert!(html.contains("a &lt; b &amp; c &gt; d"));
    }

    #[test]
    fn unbalanced_bold_is_closed() {
        let html = to_html("**oops");
        assert_eq!(
            html.matches("<strong>").count(),
            html.matches("</strong>").count()
        );
    }

    #[test]
    fn list_then_paragraph() {
        let html = to_html("- a\nplain text");
        assert!(html.contains("</ul>\n<p>plain text</p>"));
    }
}
